//! Monotone submodular maximization under matroid constraints.
//!
//! `BiGreedy` (paper Section 4) reduces FairHMS to maximizing the truncated
//! MHR — a monotone submodular function — under the fairness matroid. This
//! crate provides the generic machinery:
//!
//! * [`IncrementalObjective`] — an objective with `O(1)`-ish incremental
//!   state, so greedy loops never recompute values from scratch;
//! * [`greedy_matroid`] — the classic Fisher–Nemhauser–Wolsey greedy, a
//!   `1/2`-approximation for monotone submodular maximization under a
//!   matroid;
//! * [`lazy_greedy_matroid`] — the same algorithm with lazy (stale-gain)
//!   evaluation, valid because submodularity makes marginal gains
//!   monotonically non-increasing.
//!
//! Both variants *fill a base*: they keep adding feasible elements while
//! any exist, even at zero marginal gain, matching Algorithm 3's inner
//! loop (`while ∃p: S_i ∪ {p} ∈ I`).

pub mod streaming;

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fairhms_matroid::Matroid;

/// A set objective with incremental evaluation state.
///
/// Implementations must be monotone (`gain ≥ 0`); the lazy greedy
/// additionally requires submodularity (gains non-increasing as the state
/// grows) for correctness.
pub trait IncrementalObjective {
    /// Evaluation state for a growing set.
    type State: Clone;

    /// State of the empty set.
    fn empty_state(&self) -> Self::State;

    /// Objective value at `state`.
    fn value(&self, state: &Self::State) -> f64;

    /// Marginal gain of adding `item` to the set represented by `state`.
    fn gain(&self, state: &Self::State, item: usize) -> f64;

    /// Adds `item` to `state`.
    fn add(&self, state: &mut Self::State, item: usize);
}

/// Outcome of a greedy run.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Selected items in pick order.
    pub items: Vec<usize>,
    /// Objective value of the selection.
    pub value: f64,
}

/// Greedy maximization of `objective` over `candidates` under `matroid`.
///
/// At every step the feasible candidate with the largest marginal gain is
/// added (ties to the smaller index); the loop continues while any feasible
/// extension exists. Already-selected candidates are skipped. Runs in
/// `O(r · |candidates| · gain)` where `r` is the matroid rank.
///
/// ```
/// use fairhms_matroid::UniformMatroid;
/// use fairhms_submodular::{greedy_matroid, IncrementalObjective};
///
/// /// Weighted sum of distinct picks — modular, hence submodular.
/// struct Weights(Vec<f64>);
/// impl IncrementalObjective for Weights {
///     type State = f64;
///     fn empty_state(&self) -> f64 { 0.0 }
///     fn value(&self, s: &f64) -> f64 { *s }
///     fn gain(&self, _s: &f64, item: usize) -> f64 { self.0[item] }
///     fn add(&self, s: &mut f64, item: usize) { *s += self.0[item]; }
/// }
///
/// let objective = Weights(vec![0.3, 0.9, 0.5]);
/// let result = greedy_matroid(&objective, &UniformMatroid::new(3, 2), &[0, 1, 2]);
/// assert_eq!(result.items, vec![1, 2]); // two largest weights
/// assert_eq!(result.value, 1.4);
/// ```
pub fn greedy_matroid<O: IncrementalObjective, M: Matroid>(
    objective: &O,
    matroid: &M,
    candidates: &[usize],
) -> GreedyResult {
    let mut state = objective.empty_state();
    let mut items: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = candidates.to_vec();
    loop {
        let mut best: Option<(usize, usize, f64)> = None; // (pos, item, gain)
        for (pos, &cand) in remaining.iter().enumerate() {
            if !matroid.can_extend(&items, cand) {
                continue;
            }
            let g = objective.gain(&state, cand);
            // argmax with ties broken towards the smallest item index
            let better = match best {
                None => true,
                Some((_, bi, bg)) => g > bg || (g == bg && cand < bi),
            };
            if better {
                best = Some((pos, cand, g));
            }
        }
        let Some((pos, cand, _)) = best else { break };
        objective.add(&mut state, cand);
        items.push(cand);
        remaining.swap_remove(pos);
    }
    let value = objective.value(&state);
    GreedyResult { items, value }
}

#[derive(PartialEq)]
struct HeapEntry {
    gain: f64,
    item: usize,
    stamp: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp keeps the heap's Ord contract total even if a NaN
        // gain ever slips in (partial_cmp + unwrap_or silently broke
        // transitivity instead).
        self.gain
            .total_cmp(&other.gain)
            // prefer smaller item index on ties, like the eager greedy
            .then_with(|| other.item.cmp(&self.item))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy-evaluation variant of [`greedy_matroid`].
///
/// Marginal gains are kept in a max-heap and only re-evaluated when stale;
/// submodularity guarantees a re-evaluated gain can only shrink, so the
/// first up-to-date top of the heap is the true argmax. Behaviour matches
/// the eager greedy exactly (same tie-breaking) for submodular objectives.
pub fn lazy_greedy_matroid<O: IncrementalObjective, M: Matroid>(
    objective: &O,
    matroid: &M,
    candidates: &[usize],
) -> GreedyResult {
    let mut state = objective.empty_state();
    let mut items: Vec<usize> = Vec::new();
    let mut stamp = 0usize; // incremented on every add; entries older are stale
    let mut heap: BinaryHeap<HeapEntry> = candidates
        .iter()
        .map(|&item| HeapEntry {
            gain: objective.gain(&state, item),
            item,
            stamp,
        })
        .collect();
    loop {
        let mut chosen: Option<usize> = None;
        while let Some(top) = heap.pop() {
            if !matroid.can_extend(&items, top.item) {
                // Growing S only shrinks the feasible extension set in a
                // matroid, so an infeasible candidate never becomes feasible
                // again — drop it permanently.
                continue;
            }
            if top.stamp == stamp {
                chosen = Some(top.item);
                break;
            }
            // Stale: re-evaluate and re-queue; the refreshed entry competes
            // on heap order (gain, then smaller index), which reproduces the
            // eager greedy's tie-breaking exactly.
            heap.push(HeapEntry {
                gain: objective.gain(&state, top.item),
                item: top.item,
                stamp,
            });
        }
        let Some(item) = chosen else { break };
        objective.add(&mut state, item);
        items.push(item);
        stamp += 1;
    }
    let value = objective.value(&state);
    GreedyResult { items, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_matroid::{FairnessMatroid, UniformMatroid};

    /// Weighted coverage: ground set of items, each covering a set of
    /// elements with weights; value = total weight covered.
    struct Coverage {
        covers: Vec<Vec<usize>>,
        weights: Vec<f64>,
    }

    impl IncrementalObjective for Coverage {
        type State = Vec<bool>;
        fn empty_state(&self) -> Vec<bool> {
            vec![false; self.weights.len()]
        }
        fn value(&self, state: &Vec<bool>) -> f64 {
            state
                .iter()
                .zip(&self.weights)
                .filter(|(c, _)| **c)
                .map(|(_, w)| w)
                .sum()
        }
        fn gain(&self, state: &Vec<bool>, item: usize) -> f64 {
            self.covers[item]
                .iter()
                .filter(|&&e| !state[e])
                .map(|&e| self.weights[e])
                .sum()
        }
        fn add(&self, state: &mut Vec<bool>, item: usize) {
            for &e in &self.covers[item] {
                state[e] = true;
            }
        }
    }

    fn example_coverage() -> Coverage {
        Coverage {
            covers: vec![
                vec![0, 1, 2], // item 0
                vec![2, 3],    // item 1
                vec![3, 4, 5], // item 2
                vec![0, 5],    // item 3
                vec![1],       // item 4
            ],
            weights: vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        }
    }

    #[test]
    fn greedy_picks_best_coverage() {
        let cov = example_coverage();
        let m = UniformMatroid::new(5, 2);
        let r = greedy_matroid(&cov, &m, &[0, 1, 2, 3, 4]);
        assert_eq!(r.items, vec![0, 2]);
        assert_eq!(r.value, 6.0);
    }

    #[test]
    fn greedy_fills_base_even_at_zero_gain() {
        let cov = Coverage {
            covers: vec![vec![0], vec![0], vec![0]],
            weights: vec![1.0],
        };
        let m = UniformMatroid::new(3, 2);
        let r = greedy_matroid(&cov, &m, &[0, 1, 2]);
        assert_eq!(r.items.len(), 2, "base should be filled");
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn greedy_respects_fairness_matroid() {
        let cov = example_coverage();
        // items 0,1 in group 0; items 2,3,4 in group 1; one from each.
        let m = FairnessMatroid::new(vec![0, 0, 1, 1, 1], vec![1, 1], vec![1, 1], 2).unwrap();
        let r = greedy_matroid(&cov, &m, &[0, 1, 2, 3, 4]);
        assert_eq!(r.items.len(), 2);
        assert!(m.is_feasible(&r.items));
        assert_eq!(r.items, vec![0, 2]);
    }

    #[test]
    fn lazy_matches_eager_on_random_instances() {
        // pseudo-random coverage instances
        let mut seed = 12345u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for trial in 0..25 {
            let n_items = 8 + rnd() % 6;
            let n_elems = 10 + rnd() % 8;
            let covers: Vec<Vec<usize>> = (0..n_items)
                .map(|_| {
                    let len = 1 + rnd() % 5;
                    (0..len).map(|_| rnd() % n_elems).collect()
                })
                .collect();
            let weights: Vec<f64> = (0..n_elems).map(|_| 1.0 + (rnd() % 10) as f64).collect();
            let cov = Coverage { covers, weights };
            let groups: Vec<usize> = (0..n_items).map(|_| rnd() % 3).collect();
            let m = match FairnessMatroid::new(groups, vec![0, 0, 0], vec![2, 2, 2], 4) {
                Ok(m) => m,
                Err(_) => continue,
            };
            let cands: Vec<usize> = (0..n_items).collect();
            let eager = greedy_matroid(&cov, &m, &cands);
            let lazy = lazy_greedy_matroid(&cov, &m, &cands);
            assert_eq!(eager.items, lazy.items, "trial {trial}");
            assert!((eager.value - lazy.value).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_half_approximation_holds() {
        // brute-force the optimum over all independent sets and check the
        // 1/2 bound on a handful of instances
        let cov = example_coverage();
        let m = UniformMatroid::new(5, 2);
        let r = greedy_matroid(&cov, &m, &[0, 1, 2, 3, 4]);
        let mut opt = 0.0_f64;
        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut st = cov.empty_state();
                cov.add(&mut st, a);
                cov.add(&mut st, b);
                opt = opt.max(cov.value(&st));
            }
        }
        assert!(r.value >= 0.5 * opt - 1e-12);
    }

    #[test]
    fn empty_candidates_yield_empty_solution() {
        let cov = example_coverage();
        let m = UniformMatroid::new(5, 2);
        let r = greedy_matroid(&cov, &m, &[]);
        assert!(r.items.is_empty());
        assert_eq!(r.value, 0.0);
        let r2 = lazy_greedy_matroid(&cov, &m, &[]);
        assert!(r2.items.is_empty());
    }
}
