//! One-pass streaming submodular maximization under a matroid constraint.
//!
//! FairHMS inherits its fairness matroid from Halabi et al.'s *streaming*
//! submodular maximization (NeurIPS 2020); this module implements the
//! classic swap-based streaming algorithm of Chakrabarti & Kale that those
//! results build on. Elements arrive once, in arbitrary order; the
//! algorithm maintains an independent set `S` and, when a new element `e`
//! cannot be added directly, swaps it against the cheapest removable
//! element if `e`'s marginal value is at least [`StreamingConfig::swap_factor`]
//! times larger.
//!
//! For monotone submodular objectives this achieves a constant-factor
//! approximation (1/4 for modular weights, ≈ 1/7.75 for submodular ones);
//! the point here is practical: it lets FairHMS run over data too large to
//! buffer, trading solution quality for a single pass.

use crate::{GreedyResult, IncrementalObjective};
use fairhms_matroid::Matroid;

/// Parameters of [`streaming_matroid`].
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// A swap happens when the newcomer's gain exceeds `swap_factor ×` the
    /// cheapest removable element's recorded weight. The classic analysis
    /// uses 2.0; smaller values swap more aggressively.
    pub swap_factor: f64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self { swap_factor: 2.0 }
    }
}

/// Runs the swap-based streaming algorithm over `stream`.
///
/// Each element's *weight* is its marginal gain at insertion time (the
/// standard convention); weights are not refreshed on later swaps.
pub fn streaming_matroid<O, M, I>(
    objective: &O,
    matroid: &M,
    stream: I,
    config: &StreamingConfig,
) -> GreedyResult
where
    O: IncrementalObjective,
    M: Matroid,
    I: IntoIterator<Item = usize>,
{
    let mut items: Vec<usize> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut state = objective.empty_state();

    for e in stream {
        if items.contains(&e) {
            continue;
        }
        let gain = objective.gain(&state, e);
        if matroid.can_extend(&items, e) {
            objective.add(&mut state, e);
            items.push(e);
            weights.push(gain);
            continue;
        }
        // Find the cheapest element whose removal re-admits `e`.
        let mut cheapest: Option<(usize, f64)> = None; // (position, weight)
        #[allow(clippy::needless_range_loop)]
        for pos in 0..items.len() {
            let mut without: Vec<usize> = items.clone();
            without.swap_remove(pos);
            if matroid.can_extend(&without, e) {
                match cheapest {
                    Some((_, w)) if weights[pos] >= w => {}
                    _ => cheapest = Some((pos, weights[pos])),
                }
            }
        }
        if let Some((pos, w)) = cheapest {
            if gain >= config.swap_factor * w && gain > 0.0 {
                items.swap_remove(pos);
                weights.swap_remove(pos);
                items.push(e);
                weights.push(gain);
                // Rebuild the evaluation state for the new set.
                state = objective.empty_state();
                for &i in &items {
                    objective.add(&mut state, i);
                }
            }
        }
    }
    let value = objective.value(&state);
    GreedyResult { items, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_matroid;
    use fairhms_matroid::{FairnessMatroid, UniformMatroid};

    struct Coverage {
        covers: Vec<Vec<usize>>,
        n_elems: usize,
    }

    impl IncrementalObjective for Coverage {
        type State = Vec<bool>;
        fn empty_state(&self) -> Vec<bool> {
            vec![false; self.n_elems]
        }
        fn value(&self, state: &Vec<bool>) -> f64 {
            state.iter().filter(|c| **c).count() as f64
        }
        fn gain(&self, state: &Vec<bool>, item: usize) -> f64 {
            self.covers[item].iter().filter(|&&e| !state[e]).count() as f64
        }
        fn add(&self, state: &mut Vec<bool>, item: usize) {
            for &e in &self.covers[item] {
                state[e] = true;
            }
        }
    }

    fn example() -> Coverage {
        Coverage {
            covers: vec![
                vec![0, 1],
                vec![2, 3, 4],
                vec![0, 5],
                vec![5, 6, 7, 8],
                vec![1, 2],
            ],
            n_elems: 9,
        }
    }

    #[test]
    fn stays_independent_and_dedups() {
        let cov = example();
        let m = UniformMatroid::new(5, 2);
        let r = streaming_matroid(&cov, &m, [0, 0, 1, 2, 3, 4], &StreamingConfig::default());
        assert!(r.items.len() <= 2);
        assert!(m.is_independent(&r.items));
    }

    #[test]
    fn swaps_in_strictly_better_elements() {
        let cov = example();
        let m = UniformMatroid::new(5, 1);
        // Item 0 covers 2 elements; item 3 covers 4 — must swap in.
        let r = streaming_matroid(&cov, &m, [0, 3], &StreamingConfig::default());
        assert_eq!(r.items, vec![3]);
        assert_eq!(r.value, 4.0);
    }

    #[test]
    fn constant_factor_of_offline_greedy() {
        let cov = example();
        let m = FairnessMatroid::new(vec![0, 0, 1, 1, 1], vec![0, 0], vec![1, 2], 3).unwrap();
        let offline = greedy_matroid(&cov, &m, &[0, 1, 2, 3, 4]);
        for order in [
            vec![0, 1, 2, 3, 4],
            vec![4, 3, 2, 1, 0],
            vec![2, 0, 4, 1, 3],
        ] {
            let streamed = streaming_matroid(&cov, &m, order.clone(), &StreamingConfig::default());
            assert!(m.is_independent(&streamed.items), "order {order:?}");
            assert!(
                streamed.value >= 0.25 * offline.value,
                "order {order:?}: streaming {} < 1/4 × offline {}",
                streamed.value,
                offline.value
            );
        }
    }

    #[test]
    fn respects_group_bounds_under_swaps() {
        let cov = example();
        // one slot per group
        let m = FairnessMatroid::new(vec![0, 0, 1, 1, 1], vec![1, 1], vec![1, 1], 2).unwrap();
        let r = streaming_matroid(&cov, &m, [0, 1, 2, 3, 4], &StreamingConfig::default());
        assert!(m.is_independent(&r.items));
        // swaps stay within groups when the group cap binds
        let groups: Vec<usize> = r.items.iter().map(|&i| [0, 0, 1, 1, 1][i]).collect();
        let mut sorted = groups.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), groups.len(), "one per group");
    }
}
