//! Fair adaptations of the unconstrained baselines (paper Section 5.1).
//!
//! * [`g_adapt`] — the `G-<Alg>` scheme: split the budget `k` into
//!   per-group quotas `k_c ∈ [l_c, h_c]` (proportionally, by largest
//!   remainder), run the base algorithm on each group's sub-dataset with
//!   its quota, and take the union. Feasible by construction, but the
//!   per-group runs are blind to each other, so the union tends to contain
//!   redundant points — the quality gap Figures 5–7 show.
//! * [`f_greedy`] — the matroid-greedy adaptation of `RDP-Greedy`: at each
//!   step add the *feasible* point with the maximum LP-computed regret
//!   against the current selection. One LP per candidate per iteration —
//!   the cost the paper attributes to `F-Greedy`.

use fairhms_data::Dataset;
use fairhms_lp::hms::point_regret;
use fairhms_matroid::Matroid;

use crate::types::{CoreError, FairHmsInstance, Solution};

/// Splits `k` into per-group quotas `k_c ∈ [l_c, min(h_c, |D_c|)]`,
/// proportional to group sizes (largest-remainder rounding on top of the
/// lower bounds).
pub fn distribute_quota(inst: &FairHmsInstance) -> Vec<usize> {
    let m = inst.matroid();
    let sizes = inst.data().group_sizes();
    let c = m.num_groups();
    let n: usize = sizes.iter().sum();
    let mut quota: Vec<usize> = m.lower().to_vec();
    let mut remaining = inst.k().saturating_sub(quota.iter().sum());
    while remaining > 0 {
        // deficit = ideal proportional share − current quota
        let next = (0..c)
            .filter(|&g| quota[g] < m.upper()[g].min(sizes[g]))
            .max_by(|&a, &b| {
                let da = inst.k() as f64 * sizes[a] as f64 / n as f64 - quota[a] as f64;
                let db = inst.k() as f64 * sizes[b] as f64 / n as f64 - quota[b] as f64;
                da.total_cmp(&db)
            });
        match next {
            Some(g) => {
                quota[g] += 1;
                remaining -= 1;
            }
            None => break, // bounds saturated; instance validation makes this unreachable
        }
    }
    quota
}

/// Runs `base` (an unconstrained HMS algorithm) per group with the
/// proportional quotas and unions the results — the paper's `G-<Alg>`
/// adaptation. Errors from any group run propagate (e.g. `G-Sphere` when
/// some quota is below `d`).
pub fn g_adapt<F>(inst: &FairHmsInstance, base: F) -> Result<Solution, CoreError>
where
    F: Fn(&Dataset, usize) -> Result<Vec<usize>, CoreError>,
{
    let data = inst.data();
    let quota = distribute_quota(inst);
    let mut union: Vec<usize> = Vec::with_capacity(inst.k());
    for (g, &kc) in quota.iter().enumerate() {
        if kc == 0 {
            continue;
        }
        let rows = data.group_indices(g);
        let sub = data.subset(&rows);
        let local = base(&sub, kc)?;
        union.extend(local.into_iter().map(|i| rows[i]));
    }
    let sel = inst.complete_to_feasible(&union)?;
    Ok(Solution::new(sel, None))
}

/// `F-Greedy`: matroid-constrained LP greedy. The first pick maximizes the
/// uniform-utility score; every later pick maximizes the exact regret of
/// the current selection (one LP per feasible candidate), subject to the
/// fairness matroid. The final set is padded to `k` if the greedy stalls.
pub fn f_greedy(inst: &FairHmsInstance) -> Result<Solution, CoreError> {
    let data = inst.data();
    let dim = data.dim();
    let n = data.len();
    let matroid = inst.matroid();

    let mut sel: Vec<usize> = Vec::with_capacity(inst.k());
    let mut sel_flat: Vec<f64> = Vec::new();
    while sel.len() < inst.k() {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if sel.contains(&i) || !matroid.can_extend(&sel, i) {
                continue;
            }
            let gain = if sel.is_empty() {
                // all regrets are 1 on the first pick: use the uniform
                // utility score as the tie-breaker, as RDP-Greedy does.
                data.point(i).iter().sum::<f64>()
            } else {
                point_regret(dim, &sel_flat, data.point(i))
            };
            match best {
                Some((_, bg)) if gain <= bg => {}
                _ => best = Some((i, gain)),
            }
        }
        let Some((i, _)) = best else { break };
        sel.push(i);
        sel_flat.extend_from_slice(data.point(i));
    }
    let sel = inst.complete_to_feasible(&sel)?;
    Ok(Solution::new(sel, None))
}

/// The unconstrained `Greedy` adapted only by quota-splitting — kept
/// separate from [`f_greedy`] because the paper evaluates both
/// (`G-Greedy` vs `F-Greedy`).
pub fn g_greedy(inst: &FairHmsInstance) -> Result<Solution, CoreError> {
    g_adapt(inst, crate::baselines::rdp_greedy)
}

/// Convenience for evaluating seed utilities in tests.
#[cfg(test)]
fn uniform_score(data: &Dataset, i: usize) -> f64 {
    let d = data.dim();
    fairhms_geometry::vecmath::dot(data.point(i), &vec![1.0 / d as f64; d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{dmm, hitting_set, sphere, DmmConfig, HsConfig};
    use crate::eval::mhr_exact_2d;
    use fairhms_data::realsim::lsac_example;

    fn lsac_instance(k: usize) -> FairHmsInstance {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        let c = ds.num_groups();
        FairHmsInstance::new(ds, k, vec![1; c], vec![k - 1; c]).unwrap()
    }

    #[test]
    fn quota_respects_bounds_and_sums_to_k() {
        for k in 2..=6 {
            let inst = lsac_instance(k);
            let q = distribute_quota(&inst);
            assert_eq!(q.iter().sum::<usize>(), k);
            for (g, &qc) in q.iter().enumerate() {
                assert!(qc >= inst.matroid().lower()[g]);
                assert!(qc <= inst.matroid().upper()[g]);
            }
        }
    }

    #[test]
    fn g_greedy_feasible_and_reasonable() {
        let inst = lsac_instance(4);
        let sol = g_greedy(&inst).unwrap();
        assert_eq!(sol.len(), 4);
        assert!(inst.matroid().is_feasible(&sol.indices));
        let mhr = mhr_exact_2d(inst.data(), &sol.indices);
        assert!(mhr > 0.9, "G-Greedy mhr = {mhr}");
    }

    #[test]
    fn g_adapters_for_all_baselines_are_feasible() {
        let inst = lsac_instance(4);
        let runs: Vec<Solution> = vec![
            g_adapt(&inst, |d, k| dmm(d, k, &DmmConfig::default())).unwrap(),
            g_adapt(&inst, sphere).unwrap(),
            g_adapt(&inst, |d, k| hitting_set(d, k, &HsConfig::default())).unwrap(),
        ];
        for sol in runs {
            assert_eq!(sol.len(), 4);
            assert!(inst.matroid().is_feasible(&sol.indices));
            assert_eq!(inst.matroid().violations(&sol.indices), 0);
        }
    }

    #[test]
    fn g_sphere_fails_when_quota_below_d() {
        // k = 2, two groups, l = h = 1 each: quotas are 1 < d = 2.
        let inst = lsac_instance(2);
        assert!(matches!(
            g_adapt(&inst, sphere).unwrap_err(),
            CoreError::ResourceLimit { .. }
        ));
    }

    #[test]
    fn f_greedy_feasible_and_close_to_optimal() {
        let inst = lsac_instance(3);
        let sol = f_greedy(&inst).unwrap();
        assert_eq!(sol.len(), 3);
        assert!(inst.matroid().is_feasible(&sol.indices));
        let mhr = mhr_exact_2d(inst.data(), &sol.indices);
        // exact fair optimum for k = 3 is ≥ the k = 2 optimum 0.9834
        assert!(mhr > 0.94, "F-Greedy mhr = {mhr}");
    }

    #[test]
    fn f_greedy_beats_or_matches_g_greedy_usually() {
        // On this tiny instance the matroid-aware greedy should not be much
        // worse than the split-quota adaptation.
        let inst = lsac_instance(4);
        let f = mhr_exact_2d(inst.data(), &f_greedy(&inst).unwrap().indices);
        let g = mhr_exact_2d(inst.data(), &g_greedy(&inst).unwrap().indices);
        assert!(f >= g - 0.05, "f = {f}, g = {g}");
    }

    #[test]
    fn uniform_score_helper() {
        let inst = lsac_instance(2);
        // a5 has the best LSAT; uniform score blends both attributes.
        let s4 = uniform_score(inst.data(), 4);
        assert!(s4 > 0.5);
    }
}
