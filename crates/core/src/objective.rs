//! The truncated MHR objective (Equation 2).
//!
//! `mhr_τ(S|N) = (1/m) Σ_{u∈N} min(hr(u,S), τ)` — a nonnegative linear
//! combination of truncated happiness ratios, hence monotone and submodular
//! (Lemma 4.3). [`TruncatedMhrObjective`] exposes it through the
//! [`IncrementalObjective`] interface with a per-utility running-maximum
//! state, so a greedy step costs `O(m)` per candidate (plus the `O(m·d)`
//! score computation unless the score matrix is cached).

use fairhms_data::Dataset;
use fairhms_geometry::soa::{kernel_backend, KernelBackend};
use fairhms_geometry::vecmath::dot;
use fairhms_geometry::EPS;
use fairhms_submodular::IncrementalObjective;

/// Above this many `n × m` entries, scores are computed on the fly instead
/// of cached (the cache would exceed ~400 MB of `f64`s).
const CACHE_LIMIT: usize = 50_000_000;

/// The truncated MHR objective over a fixed utility sample.
pub struct TruncatedMhrObjective<'a> {
    data: &'a Dataset,
    net: &'a [Vec<f64>],
    /// `max_{p∈D}⟨u,p⟩` per utility.
    db_max: &'a [f64],
    tau: f64,
    /// Optional row-major `n × m` cache of normalized scores
    /// `⟨u,p⟩ / db_max[u]`.
    scores: Option<Vec<f64>>,
}

impl<'a> TruncatedMhrObjective<'a> {
    /// Creates the objective for cap `tau`. Pass `cache = true` to
    /// precompute the normalized score matrix (skipped automatically above
    /// an internal entry limit of fifty million).
    pub fn new(
        data: &'a Dataset,
        net: &'a [Vec<f64>],
        db_max: &'a [f64],
        tau: f64,
        cache: bool,
    ) -> Self {
        debug_assert_eq!(net.len(), db_max.len());
        let m = net.len();
        let n = data.len();
        let scores = if cache && n.saturating_mul(m) <= CACHE_LIMIT {
            let s = match kernel_backend() {
                KernelBackend::Scalar => {
                    let mut s = Vec::with_capacity(n * m);
                    for i in 0..n {
                        let p = data.point(i);
                        for (u, &dbm) in net.iter().zip(db_max) {
                            s.push(normalized_score(p, u, dbm));
                        }
                    }
                    s
                }
                KernelBackend::Blocked => {
                    // Tile-outer build: for each 64-row tile, sweep all
                    // utilities while the tile (a few KB) and its slice of
                    // the row-major cache (64 rows × m) stay cache-
                    // resident — a utility-outer sweep would re-fetch the
                    // whole n × m cache once per utility through the
                    // stride-m scatter. Each raw dot is bitwise-equal to
                    // the scalar loop (see fairhms_geometry::soa), so the
                    // cache contents are identical across backends.
                    let mut s = vec![0.0; n * m];
                    let mut acc = [0.0; fairhms_geometry::soa::BLOCK];
                    let soa = data.soa();
                    for b in 0..soa.num_tiles() {
                        let start = b * fairhms_geometry::soa::BLOCK;
                        for (u_idx, (u, &dbm)) in net.iter().zip(db_max).enumerate() {
                            let rows = soa.dot_tile(b, u, &mut acc);
                            for (r, &raw) in acc[..rows].iter().enumerate() {
                                s[(start + r) * m + u_idx] = normalize_raw(raw, dbm);
                            }
                        }
                    }
                    s
                }
            };
            Some(s)
        } else {
            None
        };
        Self {
            data,
            net,
            db_max,
            tau,
            scores,
        }
    }

    /// The cap `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Re-caps the objective without recomputing the score cache.
    pub fn set_tau(&mut self, tau: f64) {
        self.tau = tau;
    }

    #[inline]
    fn score(&self, item: usize, u_idx: usize) -> f64 {
        match &self.scores {
            Some(s) => s[item * self.net.len() + u_idx],
            None => normalized_score(self.data.point(item), &self.net[u_idx], self.db_max[u_idx]),
        }
    }

    /// Untruncated `mhr(S|N)` of the set represented by `state`.
    pub fn mhr_of_state(&self, state: &[f64]) -> f64 {
        state.iter().copied().fold(f64::INFINITY, f64::min).min(1.0)
    }

    /// Builds the state for an explicit selection.
    pub fn state_of(&self, sel: &[usize]) -> Vec<f64> {
        let mut st = self.empty_state();
        for &i in sel {
            self.add(&mut st, i);
        }
        st
    }
}

#[inline]
fn normalized_score(p: &[f64], u: &[f64], db_max: f64) -> f64 {
    normalize_raw(dot(p, u), db_max)
}

#[inline]
fn normalize_raw(raw: f64, db_max: f64) -> f64 {
    if db_max <= EPS {
        1.0 // the whole database scores 0: every subset is fully happy
    } else {
        (raw / db_max).clamp(0.0, 1.0)
    }
}

impl IncrementalObjective for TruncatedMhrObjective<'_> {
    /// Per-utility best normalized score of the current set.
    type State = Vec<f64>;

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.net.len()]
    }

    fn value(&self, state: &Vec<f64>) -> f64 {
        let m = state.len().max(1);
        state.iter().map(|&s| s.min(self.tau)).sum::<f64>() / m as f64
    }

    fn gain(&self, state: &Vec<f64>, item: usize) -> f64 {
        let m = state.len().max(1);
        let mut g = 0.0;
        for (u_idx, &cur) in state.iter().enumerate() {
            if cur >= self.tau {
                continue; // already capped: no headroom on this utility
            }
            let s = self.score(item, u_idx);
            if s > cur {
                g += s.min(self.tau) - cur;
            }
        }
        g / m as f64
    }

    fn add(&self, state: &mut Vec<f64>, item: usize) {
        for (u_idx, cur) in state.iter_mut().enumerate() {
            let s = self.score(item, u_idx);
            if s > *cur {
                *cur = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_data::Dataset;
    use fairhms_geometry::sphere::grid_net_2d;

    fn setup() -> (Dataset, Vec<Vec<f64>>, Vec<f64>) {
        let ds = Dataset::ungrouped("t", 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7, 0.2, 0.3]).unwrap();
        let net = grid_net_2d(9);
        let db_max: Vec<f64> = net
            .iter()
            .map(|u| {
                (0..ds.len())
                    .map(|i| dot(ds.point(i), u))
                    .fold(0.0_f64, f64::max)
            })
            .collect();
        (ds, net, db_max)
    }

    #[test]
    fn value_matches_definition() {
        let (ds, net, db_max) = setup();
        let obj = TruncatedMhrObjective::new(&ds, &net, &db_max, 0.9, true);
        let st = obj.state_of(&[0]);
        // manual: mean over utilities of min(0.9, score(0, u))
        let manual: f64 = net
            .iter()
            .zip(&db_max)
            .map(|(u, &m)| (dot(ds.point(0), u) / m).min(0.9))
            .sum::<f64>()
            / net.len() as f64;
        assert!((obj.value(&st) - manual).abs() < 1e-12);
    }

    #[test]
    fn gain_is_value_difference() {
        let (ds, net, db_max) = setup();
        let obj = TruncatedMhrObjective::new(&ds, &net, &db_max, 0.85, true);
        let st = obj.state_of(&[0]);
        for item in 1..ds.len() {
            let g = obj.gain(&st, item);
            let mut st2 = st.clone();
            obj.add(&mut st2, item);
            assert!((g - (obj.value(&st2) - obj.value(&st))).abs() < 1e-12);
        }
    }

    #[test]
    fn cached_and_uncached_agree() {
        let (ds, net, db_max) = setup();
        let a = TruncatedMhrObjective::new(&ds, &net, &db_max, 0.8, true);
        let b = TruncatedMhrObjective::new(&ds, &net, &db_max, 0.8, false);
        assert!(a.scores.is_some());
        assert!(b.scores.is_none());
        let st = a.empty_state();
        for item in 0..ds.len() {
            assert!((a.gain(&st, item) - b.gain(&st, item)).abs() < 1e-12);
        }
    }

    #[test]
    fn score_cache_is_bitwise_identical_across_kernel_backends() {
        use fairhms_geometry::soa::{kernel_backend, set_kernel_backend, KernelBackend};
        let (ds, net, db_max) = setup();
        let prev = kernel_backend();
        set_kernel_backend(KernelBackend::Scalar);
        let a = TruncatedMhrObjective::new(&ds, &net, &db_max, 0.8, true);
        set_kernel_backend(KernelBackend::Blocked);
        let b = TruncatedMhrObjective::new(&ds, &net, &db_max, 0.8, true);
        set_kernel_backend(prev);
        let (sa, sb) = (a.scores.as_ref().unwrap(), b.scores.as_ref().unwrap());
        assert_eq!(sa.len(), sb.len());
        for (x, y) in sa.iter().zip(sb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn submodularity_gains_shrink() {
        let (ds, net, db_max) = setup();
        let obj = TruncatedMhrObjective::new(&ds, &net, &db_max, 0.95, true);
        let empty = obj.empty_state();
        let bigger = obj.state_of(&[0, 1]);
        for item in 2..ds.len() {
            assert!(
                obj.gain(&empty, item) >= obj.gain(&bigger, item) - 1e-12,
                "gain should not grow with the set"
            );
        }
    }

    #[test]
    fn truncation_lemma_4_4() {
        // mhr(S|N) ≥ τ  ⟺  mhr_τ(S|N) = τ.
        let (ds, net, db_max) = setup();
        let sel = vec![0, 1]; // extremes: good mhr on the net
        for tau in [0.3, 0.5, 0.7, 0.9, 0.99] {
            let obj = TruncatedMhrObjective::new(&ds, &net, &db_max, tau, true);
            let st = obj.state_of(&sel);
            let mhr = obj.mhr_of_state(&st);
            let capped = obj.value(&st);
            if mhr >= tau {
                assert!((capped - tau).abs() < 1e-12, "τ={tau}: capped={capped}");
            } else {
                assert!(capped < tau - 1e-15, "τ={tau}: capped={capped} mhr={mhr}");
            }
        }
    }

    #[test]
    fn mhr_of_state_matches_net_evaluator() {
        let (ds, net, db_max) = setup();
        let obj = TruncatedMhrObjective::new(&ds, &net, &db_max, 1.0, true);
        let ev = crate::eval::NetEvaluator::new(&ds, net.clone());
        for sel in [vec![0], vec![0, 1], vec![2, 3]] {
            let st = obj.state_of(&sel);
            assert!((obj.mhr_of_state(&st) - ev.mhr(&ds, &sel)).abs() < 1e-12);
        }
    }
}
