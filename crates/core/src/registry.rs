//! A uniform algorithm interface for the experiment harness.
//!
//! Every figure in the paper compares a fixed cast of algorithms; the
//! [`Algorithm`] trait lets the harness iterate over them generically.
//! Fair algorithms guarantee `err(S) = 0`; the *unfair* entries run the
//! original baselines ignoring the bounds (used by Figure 3 to measure
//! their violations).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use fairhms_obs::sync::lock_or_recover;

use crate::adapt::{f_greedy, g_adapt, g_greedy};
use crate::adaptive::{bigreedy_plus, BiGreedyPlusConfig};
use crate::baselines::{dmm, hitting_set, rdp_greedy, sphere, DmmConfig, HsConfig};
use fairhms_data::Dataset;

use crate::bigreedy::{
    bigreedy, bigreedy_on_net_with_db_max, BiGreedyConfig, CachedDbMax, SampledNet,
};
use crate::intcov::intcov;
use crate::types::{CoreError, FairHmsInstance, Solution};

/// Reusable intermediate solver state threaded through
/// [`Algorithm::solve_with`] — the warm-start seam.
///
/// A serving layer seeds the context with whatever it has cached for the
/// `(dataset, k, algorithm family)` at hand; the algorithm *verifies the
/// preimage* before reusing anything (a mismatched net is regenerated,
/// never reused), and deposits freshly computed state back into the
/// context so the caller can cache it. Reuse is therefore **provably
/// inert**: every artifact is deterministic in its preimage, so a warm
/// solve is bit-identical to a cold one.
///
/// Algorithms that have no reusable state simply ignore the context
/// (the default [`Algorithm::solve_with`] does).
#[derive(Debug, Default)]
pub struct WarmStart {
    /// Sampled δ-net, tagged with its `(dim, m, seed)` preimage.
    net: Mutex<Option<Arc<SampledNet>>>,
    /// Whether the last solve actually reused the seeded net.
    net_reused: AtomicBool,
    /// Per-net `db_max` vector, tagged with its `(dim, m, seed, n)`
    /// preimage — the `m × n` extreme-value setup pass.
    db_max: Mutex<Option<Arc<CachedDbMax>>>,
    /// Whether the last solve actually reused the seeded `db_max`.
    db_max_reused: AtomicBool,
}

impl WarmStart {
    /// An empty context (everything will be computed fresh and deposited).
    pub fn new() -> Self {
        Self::default()
    }

    /// A context seeded with a previously deposited net (if any).
    pub fn with_net(net: Option<Arc<SampledNet>>) -> Self {
        Self::with_components(net, None)
    }

    /// A context seeded with previously deposited components (any subset).
    pub fn with_components(net: Option<Arc<SampledNet>>, db_max: Option<Arc<CachedDbMax>>) -> Self {
        Self {
            net: Mutex::new(net),
            net_reused: AtomicBool::new(false),
            db_max: Mutex::new(db_max),
            db_max_reused: AtomicBool::new(false),
        }
    }

    /// The δ-net for exactly `(dim, m, seed)`: the seeded net when its
    /// preimage matches (bit-identical to regeneration, so reuse cannot
    /// change answers), otherwise freshly sampled and deposited for the
    /// caller to cache.
    pub fn net_for(&self, dim: usize, m: usize, seed: u64) -> Arc<SampledNet> {
        let mut slot = lock_or_recover(&self.net);
        if let Some(net) = slot.as_ref() {
            if net.matches(dim, m, seed) {
                // ordering: reuse flag is read by the same caller after the
                // solve returns; the slot mutex already ordered the data.
                self.net_reused.store(true, Ordering::Relaxed);
                return Arc::clone(net);
            }
        }
        let fresh = Arc::new(SampledNet::generate(dim, m, seed));
        *slot = Some(Arc::clone(&fresh));
        fresh
    }

    /// The currently deposited net (seeded or freshly generated).
    pub fn net(&self) -> Option<Arc<SampledNet>> {
        lock_or_recover(&self.net).clone()
    }

    /// Whether the last [`WarmStart::net_for`] call reused the seeded net
    /// (for the caller's warm-hit accounting).
    pub fn net_was_reused(&self) -> bool {
        // ordering: caller-local accounting read, no data published via it.
        self.net_reused.load(Ordering::Relaxed)
    }

    /// The `db_max` vector for exactly `net` over `data`: the seeded
    /// vector when its `(dim, m, seed, n)` preimage matches
    /// (bit-identical to recomputation, so reuse cannot change answers),
    /// otherwise freshly computed — the `m × n` extreme-value pass — and
    /// deposited for the caller to cache.
    pub fn db_max_for(&self, net: &SampledNet, data: &Dataset) -> Arc<CachedDbMax> {
        let mut slot = lock_or_recover(&self.db_max);
        if let Some(cached) = slot.as_ref() {
            if cached.matches(net.dim, net.m, net.seed, data.len()) {
                // ordering: reuse flag is read by the same caller after the
                // solve returns; the slot mutex already ordered the data.
                self.db_max_reused.store(true, Ordering::Relaxed);
                return Arc::clone(cached);
            }
        }
        let fresh = Arc::new(CachedDbMax::compute(data, net));
        *slot = Some(Arc::clone(&fresh));
        fresh
    }

    /// The currently deposited `db_max` (seeded or freshly computed).
    pub fn db_max(&self) -> Option<Arc<CachedDbMax>> {
        lock_or_recover(&self.db_max).clone()
    }

    /// Whether the last [`WarmStart::db_max_for`] call reused the seeded
    /// vector (for the caller's warm-hit accounting).
    pub fn db_max_was_reused(&self) -> bool {
        // ordering: caller-local accounting read, no data published via it.
        self.db_max_reused.load(Ordering::Relaxed)
    }
}

/// An algorithm the harness can run on a [`FairHmsInstance`].
pub trait Algorithm: Send + Sync {
    /// Display name, matching the paper's figures (e.g. `"BiGreedy+"`).
    fn name(&self) -> &'static str;

    /// Whether the output is guaranteed to satisfy the fairness bounds.
    fn is_fair(&self) -> bool;

    /// Solves the instance.
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError>;

    /// Solves the instance, optionally reusing (and depositing)
    /// intermediate state through `warm` — **contractually
    /// bit-identical** to [`Algorithm::solve`] for every input; the
    /// context only changes *how fast* the answer is computed. The
    /// default implementation ignores the context.
    fn solve_with(&self, inst: &FairHmsInstance, warm: &WarmStart) -> Result<Solution, CoreError> {
        let _ = warm;
        self.solve(inst)
    }
}

/// `IntCov` — exact, 2D only.
pub struct IntCovAlg;

impl Algorithm for IntCovAlg {
    fn name(&self) -> &'static str {
        "IntCov"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        intcov(inst)
    }
}

/// `BiGreedy` with the paper's `m = mult·k·d` sampling.
pub struct BiGreedyAlg {
    /// Net-size multiplier (`m = mult·k·d`); the paper uses 10.
    pub m_multiplier: usize,
    /// Cap-search accuracy ε.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BiGreedyAlg {
    fn default() -> Self {
        Self {
            m_multiplier: 10,
            epsilon: 0.02,
            seed: 42,
        }
    }
}

impl BiGreedyAlg {
    fn config(&self, inst: &FairHmsInstance) -> BiGreedyConfig {
        BiGreedyConfig {
            epsilon: self.epsilon,
            sample_size: Some(self.m_multiplier * inst.k() * inst.dim()),
            seed: self.seed,
            ..BiGreedyConfig::default()
        }
    }
}

impl Algorithm for BiGreedyAlg {
    fn name(&self) -> &'static str {
        "BiGreedy"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        bigreedy(inst, &self.config(inst))
    }
    /// Reuses the context's δ-net when its `(dim, m, seed)` preimage
    /// matches this solve, and the per-net `db_max` vector when its
    /// `(dim, m, seed, n)` preimage matches — together the dominant
    /// per-query setup cost (`m = mult·k·d` vectors sampled, then an
    /// `m × n` extreme-value pass). Bit-identical to [`Self::solve`]
    /// because both artifacts are deterministic in their preimages.
    fn solve_with(&self, inst: &FairHmsInstance, warm: &WarmStart) -> Result<Solution, CoreError> {
        let cfg = self.config(inst);
        cfg.validate()?;
        let net = warm.net_for(inst.dim(), cfg.resolve_m(inst.dim()), cfg.seed);
        let db_max = warm.db_max_for(&net, inst.data());
        bigreedy_on_net_with_db_max(inst, &net.vectors, &db_max.values, &cfg).map(|(sol, _tau)| sol)
    }
}

/// `BiGreedy+` with the paper's `M = mult·k·d`, `m₀ = 0.05·M`.
pub struct BiGreedyPlusAlg {
    /// Net-size multiplier for `M`.
    pub m_multiplier: usize,
    /// Cap-search accuracy ε.
    pub epsilon: f64,
    /// Stabilization threshold λ.
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BiGreedyPlusAlg {
    fn default() -> Self {
        Self {
            m_multiplier: 10,
            epsilon: 0.02,
            lambda: 0.04,
            seed: 42,
        }
    }
}

impl Algorithm for BiGreedyPlusAlg {
    fn name(&self) -> &'static str {
        "BiGreedy+"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        let m = self.m_multiplier * inst.k() * inst.dim();
        let cfg = BiGreedyPlusConfig {
            epsilon: self.epsilon,
            lambda: self.lambda,
            m0: Some(((m as f64) * 0.05).ceil() as usize),
            max_m: Some(m),
            seed: self.seed,
            ..BiGreedyPlusConfig::default()
        };
        bigreedy_plus(inst, &cfg)
    }
}

/// `F-Greedy` — the matroid-constrained LP greedy.
pub struct FGreedyAlg;

impl Algorithm for FGreedyAlg {
    fn name(&self) -> &'static str {
        "F-Greedy"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        f_greedy(inst)
    }
}

/// `G-Greedy` — per-group `RDP-Greedy`.
pub struct GGreedyAlg;

impl Algorithm for GGreedyAlg {
    fn name(&self) -> &'static str {
        "G-Greedy"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        g_greedy(inst)
    }
}

/// `G-DMM` — per-group `DMM`.
#[derive(Default)]
pub struct GDmmAlg {
    /// DMM discretization configuration.
    pub config: DmmConfig,
}

impl Algorithm for GDmmAlg {
    fn name(&self) -> &'static str {
        "G-DMM"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        g_adapt(inst, |d, k| dmm(d, k, &self.config))
    }
}

/// `G-Sphere` — per-group `Sphere`.
pub struct GSphereAlg;

impl Algorithm for GSphereAlg {
    fn name(&self) -> &'static str {
        "G-Sphere"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        g_adapt(inst, sphere)
    }
}

/// `G-HS` — per-group hitting set.
#[derive(Default)]
pub struct GHsAlg {
    /// Hitting-set configuration.
    pub config: HsConfig,
}

impl Algorithm for GHsAlg {
    fn name(&self) -> &'static str {
        "G-HS"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        g_adapt(inst, |d, k| hitting_set(d, k, &self.config))
    }
}

/// Two-pass streaming FairHMS (extension; see [`crate::streaming`]).
#[derive(Default)]
pub struct StreamingAlg {
    /// Streaming configuration.
    pub config: crate::streaming::StreamingFairHmsConfig,
}

impl Algorithm for StreamingAlg {
    fn name(&self) -> &'static str {
        "Streaming"
    }
    fn is_fair(&self) -> bool {
        true
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        crate::streaming::streaming_fairhms(inst, &self.config)
    }
}

/// Original (unfair) `Greedy`, ignoring the bounds — Figure 3's subject.
pub struct UnfairGreedyAlg;

impl Algorithm for UnfairGreedyAlg {
    fn name(&self) -> &'static str {
        "Greedy"
    }
    fn is_fair(&self) -> bool {
        false
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        rdp_greedy(inst.data(), inst.k()).map(|v| Solution::new(v, None))
    }
}

/// Original (unfair) `DMM`.
#[derive(Default)]
pub struct UnfairDmmAlg {
    /// DMM discretization configuration.
    pub config: DmmConfig,
}

impl Algorithm for UnfairDmmAlg {
    fn name(&self) -> &'static str {
        "DMM"
    }
    fn is_fair(&self) -> bool {
        false
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        dmm(inst.data(), inst.k(), &self.config).map(|v| Solution::new(v, None))
    }
}

/// Original (unfair) `Sphere`.
pub struct UnfairSphereAlg;

impl Algorithm for UnfairSphereAlg {
    fn name(&self) -> &'static str {
        "Sphere"
    }
    fn is_fair(&self) -> bool {
        false
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        sphere(inst.data(), inst.k()).map(|v| Solution::new(v, None))
    }
}

/// Original (unfair) `HS`.
#[derive(Default)]
pub struct UnfairHsAlg {
    /// Hitting-set configuration.
    pub config: HsConfig,
}

impl Algorithm for UnfairHsAlg {
    fn name(&self) -> &'static str {
        "HS"
    }
    fn is_fair(&self) -> bool {
        false
    }
    fn solve(&self, inst: &FairHmsInstance) -> Result<Solution, CoreError> {
        hitting_set(inst.data(), inst.k(), &self.config).map(|v| Solution::new(v, None))
    }
}

/// Canonical wire/CLI names accepted by [`by_name`], in display order.
///
/// Matching is case-insensitive; `"bigreedy+"`/`"bigreedyplus"` and the
/// paper spellings (`"BiGreedy+"`, `"G-DMM"`, …) resolve to the same
/// algorithms.
pub const ALGORITHM_NAMES: [&str; 13] = [
    "intcov",
    "bigreedy",
    "bigreedy+",
    "f-greedy",
    "g-greedy",
    "g-dmm",
    "g-hs",
    "g-sphere",
    "streaming",
    "greedy",
    "dmm",
    "hs",
    "sphere",
];

/// Index of `name` (any accepted spelling) within [`ALGORITHM_NAMES`],
/// or `None` if unknown.
///
/// This gives telemetry and cost-model layers a stable, dense label
/// space: per-algorithm-family histograms are arrays of length
/// `ALGORITHM_NAMES.len()` indexed by this function, so labels never
/// drift from the registry.
pub fn family_index(name: &str) -> Option<usize> {
    let canon = canonical_name(name)?;
    ALGORITHM_NAMES.iter().position(|n| *n == canon)
}

/// Tunables threaded through [`by_name`] into the constructed algorithm.
///
/// Every field has the default the paper's evaluation uses; callers
/// override only what a query specifies. Algorithms ignore parameters they
/// do not consume (e.g. `seed` for the deterministic `IntCov`).
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmParams {
    /// RNG seed for sampling-based algorithms.
    pub seed: u64,
    /// Net-size multiplier for `BiGreedy`/`BiGreedy+` (`m = mult·k·d`).
    pub m_multiplier: usize,
    /// Cap-search accuracy ε for `BiGreedy`/`BiGreedy+`.
    pub epsilon: f64,
}

impl Default for AlgorithmParams {
    fn default() -> Self {
        Self {
            seed: 42,
            m_multiplier: 10,
            epsilon: 0.02,
        }
    }
}

/// Resolves any accepted spelling of an algorithm name (paper display
/// names, CLI names, alias forms — case-insensitive) to its canonical
/// entry in [`ALGORITHM_NAMES`], or `None` if unknown.
///
/// Callers that key caches or fingerprints on an algorithm name must hash
/// the canonical form, not the raw input, so `"BiGreedy+"`,
/// `"bigreedyplus"`, and `"bigreedy+"` share one entry.
pub fn canonical_name(name: &str) -> Option<&'static str> {
    let lower = name.to_ascii_lowercase();
    Some(match lower.as_str() {
        "intcov" => "intcov",
        "bigreedy" => "bigreedy",
        "bigreedy+" | "bigreedyplus" => "bigreedy+",
        "f-greedy" | "fgreedy" => "f-greedy",
        "g-greedy" | "ggreedy" => "g-greedy",
        "g-dmm" | "gdmm" => "g-dmm",
        "g-hs" | "ghs" => "g-hs",
        "g-sphere" | "gsphere" => "g-sphere",
        "streaming" => "streaming",
        "greedy" | "rdp-greedy" => "greedy",
        "dmm" => "dmm",
        "hs" => "hs",
        "sphere" => "sphere",
        _ => return None,
    })
}

/// Constructs the algorithm registered under `name` (case-insensitive,
/// aliases accepted — see [`canonical_name`]).
///
/// This is the single name→algorithm seam shared by the CLI `solve` path
/// and the service wire protocol; new algorithms become reachable from
/// both by extending [`canonical_name`] and the match here. Returns
/// [`CoreError::UnknownAlgorithm`] for unrecognized names.
pub fn by_name(name: &str, params: &AlgorithmParams) -> Result<Box<dyn Algorithm>, CoreError> {
    let Some(canon) = canonical_name(name) else {
        return Err(CoreError::UnknownAlgorithm {
            name: name.to_string(),
        });
    };
    let alg: Box<dyn Algorithm> = match canon {
        "intcov" => Box::new(IntCovAlg),
        "bigreedy" => Box::new(BiGreedyAlg {
            m_multiplier: params.m_multiplier,
            epsilon: params.epsilon,
            seed: params.seed,
        }),
        "bigreedy+" => Box::new(BiGreedyPlusAlg {
            m_multiplier: params.m_multiplier,
            epsilon: params.epsilon,
            seed: params.seed,
            ..BiGreedyPlusAlg::default()
        }),
        "f-greedy" => Box::new(FGreedyAlg),
        "g-greedy" => Box::new(GGreedyAlg),
        "g-dmm" => Box::new(GDmmAlg::default()),
        "g-hs" => Box::new(GHsAlg::default()),
        "g-sphere" => Box::new(GSphereAlg),
        "streaming" => Box::new(StreamingAlg {
            config: crate::streaming::StreamingFairHmsConfig {
                seed: params.seed,
                ..crate::streaming::StreamingFairHmsConfig::default()
            },
        }),
        "greedy" => Box::new(UnfairGreedyAlg),
        "dmm" => Box::new(UnfairDmmAlg::default()),
        "hs" => Box::new(UnfairHsAlg::default()),
        "sphere" => Box::new(UnfairSphereAlg),
        _ => unreachable!("canonical_name returned a name outside ALGORITHM_NAMES"),
    };
    Ok(alg)
}

/// The fair cast of the multi-dimensional figures (5–7): our algorithms
/// plus every adapted baseline.
pub fn fair_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(BiGreedyAlg::default()),
        Box::new(BiGreedyPlusAlg::default()),
        Box::new(FGreedyAlg),
        Box::new(GGreedyAlg),
        Box::new(GDmmAlg::default()),
        Box::new(GHsAlg::default()),
        Box::new(GSphereAlg),
    ]
}

/// The unfair cast of Figure 3 plus our (fair) algorithms for contrast.
pub fn fig3_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(BiGreedyAlg::default()),
        Box::new(BiGreedyPlusAlg::default()),
        Box::new(UnfairGreedyAlg),
        Box::new(UnfairDmmAlg::default()),
        Box::new(UnfairHsAlg::default()),
        Box::new(UnfairSphereAlg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_data::realsim::lsac_example;

    fn lsac_instance(k: usize) -> FairHmsInstance {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        let c = ds.num_groups();
        FairHmsInstance::new(ds, k, vec![1; c], vec![k - 1; c]).unwrap()
    }

    #[test]
    fn fair_algorithms_produce_feasible_solutions() {
        let inst = lsac_instance(4);
        for alg in fair_algorithms() {
            let sol = match alg.solve(&inst) {
                Ok(s) => s,
                // G-DMM / G-Sphere may legitimately refuse tiny quotas
                Err(CoreError::ResourceLimit { .. }) => continue,
                Err(e) => panic!("{} failed: {e}", alg.name()),
            };
            assert!(alg.is_fair());
            assert_eq!(sol.len(), 4, "{}", alg.name());
            assert!(
                inst.matroid().is_feasible(&sol.indices),
                "{} infeasible",
                alg.name()
            );
        }
    }

    #[test]
    fn unfair_algorithms_report_unfair() {
        for alg in fig3_algorithms() {
            match alg.name() {
                "BiGreedy" | "BiGreedy+" => assert!(alg.is_fair()),
                _ => assert!(!alg.is_fair(), "{}", alg.name()),
            }
        }
    }

    #[test]
    fn by_name_resolves_every_registered_name() {
        let params = AlgorithmParams::default();
        for name in ALGORITHM_NAMES {
            let alg =
                by_name(name, &params).unwrap_or_else(|e| panic!("{name} failed to resolve: {e}"));
            // Paper display names resolve back to the same algorithm.
            let display = alg.name();
            let again = by_name(display, &params)
                .unwrap_or_else(|e| panic!("display name {display} failed: {e}"));
            assert_eq!(again.name(), display);
            assert_eq!(again.is_fair(), alg.is_fair());
        }
    }

    #[test]
    fn canonical_name_covers_registry_and_aliases() {
        // every canonical name maps to itself
        for name in ALGORITHM_NAMES {
            assert_eq!(canonical_name(name), Some(name));
        }
        assert_eq!(canonical_name("BiGreedyPlus"), Some("bigreedy+"));
        assert_eq!(canonical_name("RDP-Greedy"), Some("greedy"));
        assert_eq!(canonical_name("GSphere"), Some("g-sphere"));
        assert_eq!(canonical_name("quantum"), None);
    }

    #[test]
    fn family_index_is_dense_and_alias_stable() {
        for (i, name) in ALGORITHM_NAMES.iter().enumerate() {
            assert_eq!(family_index(name), Some(i));
        }
        assert_eq!(family_index("BiGreedyPlus"), family_index("bigreedy+"));
        assert_eq!(family_index("RDP-Greedy"), family_index("greedy"));
        assert_eq!(family_index("nope"), None);
    }

    #[test]
    fn by_name_rejects_unknown_names() {
        let err = match by_name("no-such-alg", &AlgorithmParams::default()) {
            Ok(alg) => panic!("resolved unexpectedly to {}", alg.name()),
            Err(e) => e,
        };
        assert_eq!(
            err,
            CoreError::UnknownAlgorithm {
                name: "no-such-alg".into()
            }
        );
        assert!(err.to_string().contains("bigreedy+"));
    }

    #[test]
    fn by_name_threads_params() {
        let params = AlgorithmParams {
            seed: 7,
            m_multiplier: 3,
            epsilon: 0.5,
        };
        let inst = lsac_instance(4);
        // Same params → identical solutions from a sampling algorithm.
        let a = by_name("bigreedy", &params).unwrap().solve(&inst).unwrap();
        let b = by_name("BiGreedy", &params).unwrap().solve(&inst).unwrap();
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.mhr.map(f64::to_bits), b.mhr.map(f64::to_bits));
    }

    #[test]
    fn solve_with_matches_solve_for_every_algorithm() {
        // The warm-start contract: an empty context, a populated context,
        // and the plain `solve` path are all bit-identical.
        let inst = lsac_instance(4);
        let params = AlgorithmParams::default();
        for name in ALGORITHM_NAMES {
            let alg = by_name(name, &params).unwrap();
            let cold = alg.solve(&inst);
            let warm_ctx = WarmStart::new();
            let first = alg.solve_with(&inst, &warm_ctx);
            // Second solve reuses whatever the first deposited.
            let second = alg.solve_with(&inst, &warm_ctx);
            for (label, got) in [("fresh ctx", &first), ("reused ctx", &second)] {
                match (&cold, got) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.indices, b.indices, "{name} ({label})");
                        assert_eq!(
                            a.mhr.map(f64::to_bits),
                            b.mhr.map(f64::to_bits),
                            "{name} ({label})"
                        );
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "{name} ({label})"),
                    (a, b) => panic!("{name} ({label}): diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn warm_start_net_reuse_and_preimage_verification() {
        let ctx = WarmStart::new();
        assert!(ctx.net().is_none());
        let a = ctx.net_for(3, 60, 42);
        assert!(!ctx.net_was_reused(), "fresh generation counted as reuse");
        // Matching preimage: the same allocation comes back.
        let b = ctx.net_for(3, 60, 42);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert!(ctx.net_was_reused());
        // Mismatched preimage (different seed): regenerated, deposited.
        let c = ctx.net_for(3, 60, 7);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(ctx.net().unwrap().seed, 7);

        // Seeding a context from a cached net short-circuits generation.
        let seeded = WarmStart::with_net(Some(std::sync::Arc::clone(&a)));
        let d = seeded.net_for(3, 60, 42);
        assert!(std::sync::Arc::ptr_eq(&a, &d));
        assert!(seeded.net_was_reused());
    }

    #[test]
    fn warm_start_db_max_reuse_and_preimage_verification() {
        let inst = lsac_instance(4);
        let data = inst.data();
        let ctx = WarmStart::new();
        assert!(ctx.db_max().is_none());
        let net = ctx.net_for(inst.dim(), 60, 42);
        let a = ctx.db_max_for(&net, data);
        assert!(
            !ctx.db_max_was_reused(),
            "fresh computation counted as reuse"
        );
        assert_eq!(a.values.len(), net.vectors.len());
        // Matching preimage: the same allocation comes back.
        let b = ctx.db_max_for(&net, data);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert!(ctx.db_max_was_reused());
        // Mismatched preimage (different net seed): recomputed, deposited.
        let other_net = SampledNet::generate(inst.dim(), 60, 7);
        let c = ctx.db_max_for(&other_net, data);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(ctx.db_max().unwrap().seed, 7);
        // Mismatched preimage (different n, e.g. full vs skyline form):
        // never reused, even for the same net.
        let smaller = data.subset(&[0, 1, 2]);
        let d = ctx.db_max_for(&other_net, &smaller);
        assert!(!std::sync::Arc::ptr_eq(&c, &d));
        assert_eq!(d.n, 3);

        // Seeding a context from a cached vector short-circuits the pass.
        let seeded = WarmStart::with_components(Some(std::sync::Arc::clone(&net)), Some(a.clone()));
        let e = seeded.db_max_for(&net, data);
        assert!(std::sync::Arc::ptr_eq(&a, &e));
        assert!(seeded.db_max_was_reused());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = fair_algorithms().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "BiGreedy",
                "BiGreedy+",
                "F-Greedy",
                "G-Greedy",
                "G-DMM",
                "G-HS",
                "G-Sphere"
            ]
        );
    }
}
