//! Problem instance and solution types.

use std::sync::Arc;

use fairhms_data::Dataset;
use fairhms_matroid::{FairnessError, FairnessMatroid};

/// Errors shared by the FairHMS algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The fairness bounds are inconsistent (see inner error).
    Bounds(FairnessError),
    /// `k` exceeds the number of points.
    KTooLarge {
        /// Requested size.
        k: usize,
        /// Available points.
        n: usize,
    },
    /// `k` must be positive.
    KZero,
    /// The algorithm requires 2D data but the instance is not 2D.
    Not2D {
        /// Actual dimensionality.
        dim: usize,
    },
    /// The dataset is empty.
    EmptyDataset,
    /// The algorithm could not produce a feasible solution (reported
    /// instead of silently returning an infeasible set).
    NoFeasibleSolution,
    /// The algorithm hit a documented resource gate — e.g. DMM's memory
    /// blowup above seven dimensions (paper Section 5.2) or a `k < d`
    /// requirement of Sphere/DMM.
    ResourceLimit {
        /// Human-readable reason.
        what: &'static str,
    },
    /// No algorithm is registered under the requested name (see
    /// [`crate::registry::by_name`]).
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
    },
    /// A numeric configuration parameter is out of range or non-finite
    /// (NaN/∞) — reported at config-validation time instead of silently
    /// poisoning thresholds downstream (`NaN.clamp(..)` stays NaN).
    InvalidParameter {
        /// Parameter name, e.g. `"epsilon"`.
        param: &'static str,
        /// The offending value, rendered (kept as a string so the error
        /// stays `Eq`).
        value: String,
        /// The accepted range, e.g. `"(0, 1)"`.
        expected: &'static str,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Bounds(e) => write!(f, "fairness bounds: {e}"),
            CoreError::KTooLarge { k, n } => write!(f, "k = {k} exceeds dataset size {n}"),
            CoreError::KZero => write!(f, "k must be positive"),
            CoreError::Not2D { dim } => write!(f, "algorithm requires 2D data, got d = {dim}"),
            CoreError::EmptyDataset => write!(f, "dataset is empty"),
            CoreError::NoFeasibleSolution => write!(f, "no feasible solution found"),
            CoreError::ResourceLimit { what } => write!(f, "resource limit: {what}"),
            CoreError::UnknownAlgorithm { name } => {
                write!(
                    f,
                    "unknown algorithm {name:?} (expected one of: {})",
                    crate::registry::ALGORITHM_NAMES.join(", ")
                )
            }
            CoreError::InvalidParameter {
                param,
                value,
                expected,
            } => {
                write!(
                    f,
                    "invalid parameter {param} = {value} (expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FairnessError> for CoreError {
    fn from(e: FairnessError) -> Self {
        CoreError::Bounds(e)
    }
}

/// A FairHMS problem: a normalized grouped dataset, the solution size `k`,
/// and per-group bounds `l_c ≤ |S ∩ D_c| ≤ h_c`.
///
/// The dataset is typically restricted to the union of per-group skylines
/// before constructing the instance (see
/// [`fairhms_data::skyline::group_skyline_indices`]); the restriction is
/// lossless because the global skyline — which realizes every utility's
/// maximum — is contained in that union.
///
/// The instance holds its dataset behind an [`Arc`], so constructing an
/// instance from already-shared data (a serving catalog, a bench workload)
/// never copies the point matrix: concurrent solves against the same
/// prepared dataset all read one allocation. Cloning an instance is cheap
/// for the same reason.
#[derive(Debug, Clone)]
pub struct FairHmsInstance {
    data: Arc<Dataset>,
    k: usize,
    matroid: FairnessMatroid,
}

impl FairHmsInstance {
    /// Builds an instance, validating `k` and the bounds.
    ///
    /// Accepts either an owned [`Dataset`] (moved into a fresh `Arc`; no
    /// matrix copy) or an `Arc<Dataset>` handle, which is shared
    /// zero-copy:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use fairhms_core::types::FairHmsInstance;
    /// use fairhms_data::Dataset;
    ///
    /// let points = vec![1.0, 0.1, 0.2, 0.9, 0.7, 0.7, 0.9, 0.3];
    /// let data = Arc::new(Dataset::new("toy", 2, points, vec![0, 1, 0, 1], vec![]).unwrap());
    ///
    /// // Two concurrent instances over the same prepared data: both hold
    /// // the *same* allocation — no per-instance matrix copy.
    /// let a = FairHmsInstance::new(Arc::clone(&data), 2, vec![1, 1], vec![1, 1]).unwrap();
    /// let b = FairHmsInstance::unconstrained(Arc::clone(&data), 3).unwrap();
    /// assert!(std::ptr::eq(a.data(), &*data));
    /// assert!(std::ptr::eq(b.data(), &*data));
    /// ```
    pub fn new(
        data: impl Into<Arc<Dataset>>,
        k: usize,
        lower: Vec<usize>,
        upper: Vec<usize>,
    ) -> Result<Self, CoreError> {
        let data = data.into();
        if data.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        if k == 0 {
            return Err(CoreError::KZero);
        }
        if k > data.len() {
            return Err(CoreError::KTooLarge { k, n: data.len() });
        }
        // The matroid shares the dataset's label allocation — together
        // with the `Arc<Dataset>` above, construction allocates nothing
        // proportional to the data; the only remaining O(n) work is the
        // matroid's bounds-validation scan over the labels.
        let matroid = FairnessMatroid::new(data.shared_groups(), lower, upper, k)?;
        Ok(Self { data, k, matroid })
    }

    /// [`FairHmsInstance::new`] reusing an already-prepared label scan —
    /// the warm-start seam: `prepared` (see
    /// [`fairhms_matroid::PreparedBounds`]) carries the validated group
    /// labels and per-group counts, so constructing the instance costs
    /// `O(C)` bounds validation instead of the `O(n)` label scan.
    ///
    /// The result — including every validation error, in the same
    /// precedence — is identical to [`FairHmsInstance::new`] for **every**
    /// input: when `prepared` does not cover this exact `(labels,
    /// bounds-shape)` combination (wrong length, or bounds vectors whose
    /// length differs from the prepared group count — `new` accepts
    /// bounds longer than the dataset's own group count by treating the
    /// extra groups as empty), construction falls back to the
    /// from-scratch scan instead of erroring, so reuse can only change
    /// *speed*. The same-allocation fast-path case is additionally
    /// asserted in debug builds.
    pub fn with_bounds(
        data: impl Into<Arc<Dataset>>,
        k: usize,
        lower: Vec<usize>,
        upper: Vec<usize>,
        prepared: &fairhms_matroid::PreparedBounds,
    ) -> Result<Self, CoreError> {
        let data = data.into();
        if data.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        if k == 0 {
            return Err(CoreError::KZero);
        }
        if k > data.len() {
            return Err(CoreError::KTooLarge { k, n: data.len() });
        }
        if lower.len() != upper.len() {
            return Err(CoreError::Bounds(FairnessError::ShapeMismatch));
        }
        if prepared.len() != data.len() || lower.len() != prepared.num_groups() {
            // The prepared scan does not apply to this input; rebuild
            // from scratch rather than diverging from `new`'s contract.
            let matroid = FairnessMatroid::new(data.shared_groups(), lower, upper, k)?;
            return Ok(Self { data, k, matroid });
        }
        debug_assert!(
            Arc::ptr_eq(&prepared.shared_groups(), &data.shared_groups()),
            "prepared bounds built over a different label allocation than the dataset"
        );
        let matroid = prepared.matroid(lower, upper, k)?;
        Ok(Self { data, k, matroid })
    }

    /// An unconstrained (vanilla HMS) instance: bounds `0 ≤ |S ∩ D_c| ≤ k`.
    pub fn unconstrained(data: impl Into<Arc<Dataset>>, k: usize) -> Result<Self, CoreError> {
        let data = data.into();
        let c = data.num_groups();
        Self::new(data, k, vec![0; c], vec![k; c])
    }

    /// The dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// A shared handle to the dataset (a refcount bump, never a copy) —
    /// for building derived instances over the same data.
    pub fn shared_data(&self) -> Arc<Dataset> {
        Arc::clone(&self.data)
    }

    /// Solution size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The fairness matroid encoding the bounds.
    pub fn matroid(&self) -> &FairnessMatroid {
        &self.matroid
    }

    /// Dimensionality shortcut.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }

    /// Number of points shortcut.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Never empty (validated at construction); required by clippy pairing.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Completes `partial` (an independent set) to a feasible size-`k`
    /// selection: first satisfies unmet lower bounds, then fills remaining
    /// slots from any group with headroom. Points are drawn in index order.
    ///
    /// Returns `Err(NoFeasibleSolution)` only if the instance bounds are
    /// unattainable, which construction-time validation precludes.
    pub fn complete_to_feasible(&self, partial: &[usize]) -> Result<Vec<usize>, CoreError> {
        let mut sel: Vec<usize> = partial.to_vec();
        sel.sort_unstable();
        sel.dedup();
        let mut counts = self.matroid.counts(&sel);
        let in_sel = |sel: &[usize], i: usize| sel.binary_search(&i).is_ok();

        // Pass 1: unmet lower bounds.
        #[allow(clippy::needless_range_loop)]
        for c in 0..self.matroid.num_groups() {
            if counts[c] >= self.matroid.lower()[c] {
                continue;
            }
            for i in 0..self.data.len() {
                if counts[c] >= self.matroid.lower()[c] {
                    break;
                }
                if self.data.group_of(i) == c && !in_sel(&sel, i) {
                    let pos = sel.binary_search(&i).unwrap_err();
                    sel.insert(pos, i);
                    counts[c] += 1;
                }
            }
        }
        // Pass 2: fill to k within upper bounds.
        let mut total: usize = counts.iter().sum();
        if total < self.k {
            for i in 0..self.data.len() {
                if total >= self.k {
                    break;
                }
                let c = self.data.group_of(i);
                if counts[c] < self.matroid.upper()[c] && !in_sel(&sel, i) {
                    let pos = sel.binary_search(&i).unwrap_err();
                    sel.insert(pos, i);
                    counts[c] += 1;
                    total += 1;
                }
            }
        }
        if self.matroid.counts_feasible(&counts) {
            Ok(sel)
        } else {
            Err(CoreError::NoFeasibleSolution)
        }
    }
}

/// A reduced candidate set: the (possibly restricted) dataset a solver
/// actually runs on, plus the map from its row ids back to the originating
/// dataset's row ids.
///
/// This is the seam between preprocessing (skyline reduction, sharded
/// prep + merge) and solving: the reducer materializes the candidate
/// dataset **once** (per dataset, not per query), every solve shares it
/// through the `Arc`, and answers are translated back to original row ids
/// with [`CandidateSet::to_original`]. The CLI `solve` path and the
/// serving engine both route through this type, so a reduction produces
/// identical answer indices no matter which front end ran it.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    data: Arc<Dataset>,
    /// `row_map[i]` = original row id of candidate row `i`; `None` means
    /// the candidate set *is* the full dataset (identity map).
    row_map: Option<Arc<[usize]>>,
}

impl CandidateSet {
    /// The full dataset as its own candidate set (identity row map).
    pub fn full(data: Arc<Dataset>) -> Self {
        Self {
            data,
            row_map: None,
        }
    }

    /// An already-materialized reduction: `data` holds the candidate rows
    /// and `rows[i]` is the original id of `data`'s row `i`.
    ///
    /// Panics if the map length does not match the candidate count — a
    /// mismatched map would silently translate answers to wrong rows.
    pub fn reduced(data: Arc<Dataset>, rows: Arc<[usize]>) -> Self {
        assert_eq!(
            data.len(),
            rows.len(),
            "candidate row map length must match candidate dataset size"
        );
        Self {
            data,
            row_map: Some(rows),
        }
    }

    /// Materializes the sub-dataset induced by `rows` of `full` as a
    /// candidate set (the one point-matrix copy of a reduction's life).
    pub fn restrict(full: &Dataset, rows: &[usize]) -> Self {
        Self {
            data: Arc::new(full.subset(rows)),
            row_map: Some(rows.into()),
        }
    }

    /// The candidate dataset (what [`FairHmsInstance`] should be built on).
    pub fn data(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// Number of candidate rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the candidate set holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when the candidate set is the full dataset (identity map).
    pub fn is_full(&self) -> bool {
        self.row_map.is_none()
    }

    /// Translates candidate-local row ids to original row ids, sorted
    /// ascending — the form answers are reported in.
    pub fn to_original(&self, local: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = match &self.row_map {
            Some(map) => local.iter().map(|&i| map[i]).collect(),
            None => local.to_vec(),
        };
        out.sort_unstable();
        out
    }
}

/// A solution to a FairHMS instance.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Selected row indices (into the instance's dataset), sorted.
    pub indices: Vec<usize>,
    /// The minimum happiness ratio as evaluated by the producing algorithm
    /// (exact for `IntCov`, δ-net-estimated for `BiGreedy`); `None` when
    /// the algorithm does not evaluate it.
    pub mhr: Option<f64>,
}

impl Solution {
    /// Creates a solution, sorting and deduplicating the indices.
    pub fn new(mut indices: Vec<usize>, mhr: Option<f64>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        Self { indices, mhr }
    }

    /// Number of selected points.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_data::Dataset;

    fn four_points() -> Dataset {
        Dataset::new(
            "t",
            2,
            vec![1.0, 0.0, 0.0, 1.0, 0.8, 0.5, 0.5, 0.8],
            vec![0, 0, 1, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap()
    }

    #[test]
    fn instance_validation() {
        let d = Arc::new(four_points());
        assert!(FairHmsInstance::new(Arc::clone(&d), 2, vec![1, 1], vec![1, 1]).is_ok());
        assert_eq!(
            FairHmsInstance::new(Arc::clone(&d), 0, vec![0, 0], vec![1, 1]).unwrap_err(),
            CoreError::KZero
        );
        assert_eq!(
            FairHmsInstance::new(Arc::clone(&d), 9, vec![0, 0], vec![9, 9]).unwrap_err(),
            CoreError::KTooLarge { k: 9, n: 4 }
        );
        assert!(matches!(
            FairHmsInstance::new(d, 2, vec![2, 2], vec![2, 2]).unwrap_err(),
            CoreError::Bounds(_)
        ));
        let empty = Dataset::ungrouped("e", 2, vec![]).unwrap();
        assert_eq!(
            FairHmsInstance::unconstrained(empty, 1).unwrap_err(),
            CoreError::EmptyDataset
        );
    }

    #[test]
    fn candidate_set_maps_rows_back() {
        let d = four_points();
        // Restrict to rows 1 and 3 (one per group).
        let cand = CandidateSet::restrict(&d, &[1, 3]);
        assert_eq!(cand.len(), 2);
        assert!(!cand.is_full());
        assert_eq!(cand.data().point(0), &[0.0, 1.0]);
        assert_eq!(cand.to_original(&[1, 0]), vec![1, 3]);

        let full = CandidateSet::full(Arc::new(four_points()));
        assert!(full.is_full());
        assert_eq!(full.to_original(&[2, 0]), vec![0, 2]);

        // A reduced set built from parts shares — never copies — the
        // already-materialized candidate dataset.
        let sky = Arc::new(d.subset(&[0, 2]));
        let before = fairhms_data::deep_clone_count();
        let shared = CandidateSet::reduced(Arc::clone(&sky), vec![0usize, 2].into());
        assert_eq!(fairhms_data::deep_clone_count(), before);
        assert!(std::ptr::eq(&**shared.data(), &*sky));
    }

    #[test]
    #[should_panic(expected = "candidate row map length")]
    fn candidate_set_rejects_mismatched_map() {
        let d = Arc::new(four_points());
        let _ = CandidateSet::reduced(d, vec![0usize].into());
    }

    #[test]
    fn with_bounds_matches_new_for_every_input_shape() {
        use fairhms_matroid::PreparedBounds;
        let d = Arc::new(four_points()); // 2 groups
        let prepared = PreparedBounds::new(d.shared_groups(), d.num_groups()).unwrap();

        let same = |a: Result<FairHmsInstance, CoreError>,
                    b: Result<FairHmsInstance, CoreError>| {
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.matroid(), b.matroid());
                    assert_eq!(a.k(), b.k());
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("paths diverged: {a:?} vs {b:?}"),
            }
        };

        // Matching shapes: the fast path.
        same(
            FairHmsInstance::new(Arc::clone(&d), 2, vec![1, 1], vec![1, 1]),
            FairHmsInstance::with_bounds(Arc::clone(&d), 2, vec![1, 1], vec![1, 1], &prepared),
        );
        // Bounds longer than the dataset's group count: `new` accepts
        // (extra groups are empty); `with_bounds` must fall back, not
        // reject — the documented every-input equivalence.
        same(
            FairHmsInstance::new(Arc::clone(&d), 2, vec![1, 1, 0], vec![1, 1, 0]),
            FairHmsInstance::with_bounds(
                Arc::clone(&d),
                2,
                vec![1, 1, 0],
                vec![1, 1, 0],
                &prepared,
            ),
        );
        // Bounds shorter than the group count: identical ShapeMismatch.
        same(
            FairHmsInstance::new(Arc::clone(&d), 2, vec![1], vec![1]),
            FairHmsInstance::with_bounds(Arc::clone(&d), 2, vec![1], vec![1], &prepared),
        );
        // Mismatched lower/upper lengths and every invalid-bounds error.
        for (l, u, k) in [
            (vec![1, 1], vec![1], 2),    // shape
            (vec![2, 1], vec![1, 1], 2), // crossed
            (vec![2, 2], vec![2, 2], 2), // Σl > k
            (vec![0, 0], vec![1, 1], 3), // attainable < k
        ] {
            same(
                FairHmsInstance::new(Arc::clone(&d), k, l.clone(), u.clone()),
                FairHmsInstance::with_bounds(Arc::clone(&d), k, l, u, &prepared),
            );
        }
    }

    #[test]
    fn complete_to_feasible_meets_bounds() {
        let d = four_points();
        let inst = FairHmsInstance::new(d, 3, vec![1, 1], vec![2, 2]).unwrap();
        let sel = inst.complete_to_feasible(&[0]).unwrap();
        assert_eq!(sel.len(), 3);
        assert!(inst.matroid().is_feasible(&sel));
        // lower bound of group b satisfied
        assert!(sel.iter().any(|&i| inst.data().group_of(i) == 1));
        // from empty
        let sel2 = inst.complete_to_feasible(&[]).unwrap();
        assert!(inst.matroid().is_feasible(&sel2));
    }

    #[test]
    fn instances_share_the_dataset_allocation() {
        let d = Arc::new(four_points());
        let before = fairhms_data::deep_clone_count();
        let a = FairHmsInstance::new(Arc::clone(&d), 2, vec![1, 1], vec![1, 1]).unwrap();
        let b = a.clone();
        // Construction and instance cloning are refcount bumps on the one
        // allocation — never point-matrix copies.
        assert!(std::ptr::eq(a.data(), &*d));
        assert!(std::ptr::eq(b.data(), &*d));
        assert!(Arc::ptr_eq(&a.shared_data(), &d));
        assert_eq!(fairhms_data::deep_clone_count(), before);
    }

    #[test]
    fn solution_sorts_and_dedups() {
        let s = Solution::new(vec![3, 1, 3, 0], Some(0.5));
        assert_eq!(s.indices, vec![0, 1, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
