//! Problem instance and solution types.

use std::sync::Arc;

use fairhms_data::Dataset;
use fairhms_matroid::{FairnessError, FairnessMatroid};

/// Errors shared by the FairHMS algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The fairness bounds are inconsistent (see inner error).
    Bounds(FairnessError),
    /// `k` exceeds the number of points.
    KTooLarge {
        /// Requested size.
        k: usize,
        /// Available points.
        n: usize,
    },
    /// `k` must be positive.
    KZero,
    /// The algorithm requires 2D data but the instance is not 2D.
    Not2D {
        /// Actual dimensionality.
        dim: usize,
    },
    /// The dataset is empty.
    EmptyDataset,
    /// The algorithm could not produce a feasible solution (reported
    /// instead of silently returning an infeasible set).
    NoFeasibleSolution,
    /// The algorithm hit a documented resource gate — e.g. DMM's memory
    /// blowup above seven dimensions (paper Section 5.2) or a `k < d`
    /// requirement of Sphere/DMM.
    ResourceLimit {
        /// Human-readable reason.
        what: &'static str,
    },
    /// No algorithm is registered under the requested name (see
    /// [`crate::registry::by_name`]).
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Bounds(e) => write!(f, "fairness bounds: {e}"),
            CoreError::KTooLarge { k, n } => write!(f, "k = {k} exceeds dataset size {n}"),
            CoreError::KZero => write!(f, "k must be positive"),
            CoreError::Not2D { dim } => write!(f, "algorithm requires 2D data, got d = {dim}"),
            CoreError::EmptyDataset => write!(f, "dataset is empty"),
            CoreError::NoFeasibleSolution => write!(f, "no feasible solution found"),
            CoreError::ResourceLimit { what } => write!(f, "resource limit: {what}"),
            CoreError::UnknownAlgorithm { name } => {
                write!(
                    f,
                    "unknown algorithm {name:?} (expected one of: {})",
                    crate::registry::ALGORITHM_NAMES.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FairnessError> for CoreError {
    fn from(e: FairnessError) -> Self {
        CoreError::Bounds(e)
    }
}

/// A FairHMS problem: a normalized grouped dataset, the solution size `k`,
/// and per-group bounds `l_c ≤ |S ∩ D_c| ≤ h_c`.
///
/// The dataset is typically restricted to the union of per-group skylines
/// before constructing the instance (see
/// [`fairhms_data::skyline::group_skyline_indices`]); the restriction is
/// lossless because the global skyline — which realizes every utility's
/// maximum — is contained in that union.
///
/// The instance holds its dataset behind an [`Arc`], so constructing an
/// instance from already-shared data (a serving catalog, a bench workload)
/// never copies the point matrix: concurrent solves against the same
/// prepared dataset all read one allocation. Cloning an instance is cheap
/// for the same reason.
#[derive(Debug, Clone)]
pub struct FairHmsInstance {
    data: Arc<Dataset>,
    k: usize,
    matroid: FairnessMatroid,
}

impl FairHmsInstance {
    /// Builds an instance, validating `k` and the bounds.
    ///
    /// Accepts either an owned [`Dataset`] (moved into a fresh `Arc`; no
    /// matrix copy) or an `Arc<Dataset>` handle, which is shared
    /// zero-copy:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use fairhms_core::types::FairHmsInstance;
    /// use fairhms_data::Dataset;
    ///
    /// let points = vec![1.0, 0.1, 0.2, 0.9, 0.7, 0.7, 0.9, 0.3];
    /// let data = Arc::new(Dataset::new("toy", 2, points, vec![0, 1, 0, 1], vec![]).unwrap());
    ///
    /// // Two concurrent instances over the same prepared data: both hold
    /// // the *same* allocation — no per-instance matrix copy.
    /// let a = FairHmsInstance::new(Arc::clone(&data), 2, vec![1, 1], vec![1, 1]).unwrap();
    /// let b = FairHmsInstance::unconstrained(Arc::clone(&data), 3).unwrap();
    /// assert!(std::ptr::eq(a.data(), &*data));
    /// assert!(std::ptr::eq(b.data(), &*data));
    /// ```
    pub fn new(
        data: impl Into<Arc<Dataset>>,
        k: usize,
        lower: Vec<usize>,
        upper: Vec<usize>,
    ) -> Result<Self, CoreError> {
        let data = data.into();
        if data.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        if k == 0 {
            return Err(CoreError::KZero);
        }
        if k > data.len() {
            return Err(CoreError::KTooLarge { k, n: data.len() });
        }
        // The matroid shares the dataset's label allocation — together
        // with the `Arc<Dataset>` above, construction allocates nothing
        // proportional to the data; the only remaining O(n) work is the
        // matroid's bounds-validation scan over the labels.
        let matroid = FairnessMatroid::new(data.shared_groups(), lower, upper, k)?;
        Ok(Self { data, k, matroid })
    }

    /// An unconstrained (vanilla HMS) instance: bounds `0 ≤ |S ∩ D_c| ≤ k`.
    pub fn unconstrained(data: impl Into<Arc<Dataset>>, k: usize) -> Result<Self, CoreError> {
        let data = data.into();
        let c = data.num_groups();
        Self::new(data, k, vec![0; c], vec![k; c])
    }

    /// The dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// A shared handle to the dataset (a refcount bump, never a copy) —
    /// for building derived instances over the same data.
    pub fn shared_data(&self) -> Arc<Dataset> {
        Arc::clone(&self.data)
    }

    /// Solution size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The fairness matroid encoding the bounds.
    pub fn matroid(&self) -> &FairnessMatroid {
        &self.matroid
    }

    /// Dimensionality shortcut.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }

    /// Number of points shortcut.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Never empty (validated at construction); required by clippy pairing.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Completes `partial` (an independent set) to a feasible size-`k`
    /// selection: first satisfies unmet lower bounds, then fills remaining
    /// slots from any group with headroom. Points are drawn in index order.
    ///
    /// Returns `Err(NoFeasibleSolution)` only if the instance bounds are
    /// unattainable, which construction-time validation precludes.
    pub fn complete_to_feasible(&self, partial: &[usize]) -> Result<Vec<usize>, CoreError> {
        let mut sel: Vec<usize> = partial.to_vec();
        sel.sort_unstable();
        sel.dedup();
        let mut counts = self.matroid.counts(&sel);
        let in_sel = |sel: &[usize], i: usize| sel.binary_search(&i).is_ok();

        // Pass 1: unmet lower bounds.
        #[allow(clippy::needless_range_loop)]
        for c in 0..self.matroid.num_groups() {
            if counts[c] >= self.matroid.lower()[c] {
                continue;
            }
            for i in 0..self.data.len() {
                if counts[c] >= self.matroid.lower()[c] {
                    break;
                }
                if self.data.group_of(i) == c && !in_sel(&sel, i) {
                    let pos = sel.binary_search(&i).unwrap_err();
                    sel.insert(pos, i);
                    counts[c] += 1;
                }
            }
        }
        // Pass 2: fill to k within upper bounds.
        let mut total: usize = counts.iter().sum();
        if total < self.k {
            for i in 0..self.data.len() {
                if total >= self.k {
                    break;
                }
                let c = self.data.group_of(i);
                if counts[c] < self.matroid.upper()[c] && !in_sel(&sel, i) {
                    let pos = sel.binary_search(&i).unwrap_err();
                    sel.insert(pos, i);
                    counts[c] += 1;
                    total += 1;
                }
            }
        }
        if self.matroid.counts_feasible(&counts) {
            Ok(sel)
        } else {
            Err(CoreError::NoFeasibleSolution)
        }
    }
}

/// A solution to a FairHMS instance.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Selected row indices (into the instance's dataset), sorted.
    pub indices: Vec<usize>,
    /// The minimum happiness ratio as evaluated by the producing algorithm
    /// (exact for `IntCov`, δ-net-estimated for `BiGreedy`); `None` when
    /// the algorithm does not evaluate it.
    pub mhr: Option<f64>,
}

impl Solution {
    /// Creates a solution, sorting and deduplicating the indices.
    pub fn new(mut indices: Vec<usize>, mhr: Option<f64>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        Self { indices, mhr }
    }

    /// Number of selected points.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_data::Dataset;

    fn four_points() -> Dataset {
        Dataset::new(
            "t",
            2,
            vec![1.0, 0.0, 0.0, 1.0, 0.8, 0.5, 0.5, 0.8],
            vec![0, 0, 1, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap()
    }

    #[test]
    fn instance_validation() {
        let d = Arc::new(four_points());
        assert!(FairHmsInstance::new(Arc::clone(&d), 2, vec![1, 1], vec![1, 1]).is_ok());
        assert_eq!(
            FairHmsInstance::new(Arc::clone(&d), 0, vec![0, 0], vec![1, 1]).unwrap_err(),
            CoreError::KZero
        );
        assert_eq!(
            FairHmsInstance::new(Arc::clone(&d), 9, vec![0, 0], vec![9, 9]).unwrap_err(),
            CoreError::KTooLarge { k: 9, n: 4 }
        );
        assert!(matches!(
            FairHmsInstance::new(d, 2, vec![2, 2], vec![2, 2]).unwrap_err(),
            CoreError::Bounds(_)
        ));
        let empty = Dataset::ungrouped("e", 2, vec![]).unwrap();
        assert_eq!(
            FairHmsInstance::unconstrained(empty, 1).unwrap_err(),
            CoreError::EmptyDataset
        );
    }

    #[test]
    fn complete_to_feasible_meets_bounds() {
        let d = four_points();
        let inst = FairHmsInstance::new(d, 3, vec![1, 1], vec![2, 2]).unwrap();
        let sel = inst.complete_to_feasible(&[0]).unwrap();
        assert_eq!(sel.len(), 3);
        assert!(inst.matroid().is_feasible(&sel));
        // lower bound of group b satisfied
        assert!(sel.iter().any(|&i| inst.data().group_of(i) == 1));
        // from empty
        let sel2 = inst.complete_to_feasible(&[]).unwrap();
        assert!(inst.matroid().is_feasible(&sel2));
    }

    #[test]
    fn instances_share_the_dataset_allocation() {
        let d = Arc::new(four_points());
        let before = fairhms_data::deep_clone_count();
        let a = FairHmsInstance::new(Arc::clone(&d), 2, vec![1, 1], vec![1, 1]).unwrap();
        let b = a.clone();
        // Construction and instance cloning are refcount bumps on the one
        // allocation — never point-matrix copies.
        assert!(std::ptr::eq(a.data(), &*d));
        assert!(std::ptr::eq(b.data(), &*d));
        assert!(Arc::ptr_eq(&a.shared_data(), &d));
        assert_eq!(fairhms_data::deep_clone_count(), before);
    }

    #[test]
    fn solution_sorts_and_dedups() {
        let s = Solution::new(vec![3, 1, 3, 0], Some(0.5));
        assert_eq!(s.indices, vec![0, 1, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
