//! Candidate MHR values for the 2D exact algorithm (Algorithm 1, lines 1–8).
//!
//! By [Asudeh et al. 2017, Theorem 2], the minimum happiness ratio of any
//! subset `S` is attained either at an axis utility `(1,0)` / `(0,1)` or at
//! a utility where two points of `S` score equally. The optimal MHR of
//! FairHMS therefore lies in the set `H` containing, for every point, its
//! happiness ratios at the axes and, for every pair of points, the
//! happiness ratio of the pair at their crossing utility.

use fairhms_data::Dataset;
use fairhms_geometry::envelope::Envelope;
use fairhms_geometry::line::Line;
use fairhms_geometry::EPS;

/// All candidate MHR values of `data`, sorted ascending and deduplicated
/// (within [`EPS`]). `O(n²)` pairs; callers restrict `data` to the skyline
/// union first.
pub fn candidate_mhrs(data: &Dataset) -> Vec<f64> {
    assert_eq!(data.dim(), 2, "candidate_mhrs requires 2D data");
    let n = data.len();
    let lines: Vec<Line> = (0..n).map(|i| Line::from_point(data.point(i))).collect();
    let env = Envelope::upper(&lines);

    let mut h: Vec<f64> = Vec::with_capacity(n * (n + 1) / 2 + 2 * n);
    // Axis utilities: λ = 1 is u = (1, 0); λ = 0 is u = (0, 1).
    let max_at = |lambda: f64| env.eval(lambda);
    let (m1, m0) = (max_at(1.0), max_at(0.0));
    for i in 0..n {
        let p = data.point(i);
        if m1 > EPS {
            h.push((p[0] / m1).clamp(0.0, 1.0));
        }
        if m0 > EPS {
            h.push((p[1] / m0).clamp(0.0, 1.0));
        }
    }
    // Pairwise crossing utilities.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(lambda) = Line::crossing_of_points(data.point(i), data.point(j)) {
                let denom = env.eval(lambda);
                if denom > EPS {
                    let score = lines[i].eval(lambda);
                    h.push((score / denom).clamp(0.0, 1.0));
                }
            }
        }
    }
    h.sort_by(|a, b| a.total_cmp(b));
    h.dedup_by(|a, b| (*a - *b).abs() <= EPS);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::mhr_exact_2d;
    use fairhms_data::realsim::lsac_example;

    fn lsac() -> Dataset {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        ds
    }

    #[test]
    fn candidates_sorted_unique_in_unit_range() {
        let ds = lsac();
        let h = candidate_mhrs(&ds);
        assert!(!h.is_empty());
        for w in h.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(h.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((h.last().copied().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_mhr_of_every_pair_is_a_candidate() {
        // Theorem 2 instantiated: mhr of any subset must appear in H.
        let ds = lsac();
        let h = candidate_mhrs(&ds);
        let contains = |v: f64| h.iter().any(|&c| (c - v).abs() < 1e-7);
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let m = mhr_exact_2d(&ds, &[i, j]);
                assert!(contains(m), "mhr({i},{j}) = {m} missing from H");
            }
        }
        // ...and of some triples
        for tri in [[0, 1, 2], [3, 4, 6], [4, 5, 7]] {
            let m = mhr_exact_2d(&ds, &tri);
            assert!(contains(m), "mhr({tri:?}) = {m} missing from H");
        }
    }
}
