//! Minimum-happiness-ratio evaluators.
//!
//! Three evaluators with different exactness/cost trade-offs:
//!
//! * [`mhr_exact_2d`] — exact in 2D via upper envelopes, `O(n log n)`:
//!   `mhr(S) = min_λ env_S(λ)/env_D(λ)`, and since both envelopes are
//!   piecewise linear the ratio is monotone between consecutive breakpoints,
//!   so the minimum is attained at a breakpoint of either envelope.
//! * [`mhr_exact_lp`] — exact in any dimension via one LP per database
//!   point (the classical regret-LP reduction; see `fairhms_lp::hms`).
//! * [`NetEvaluator`] — the δ-net estimate `mhr(S|N) = min_{u∈N} hr(u, S)`,
//!   an upper bound on `mhr(S)` within `2δd/(1+δd)` (Lemma 4.1).

use fairhms_data::Dataset;
use fairhms_geometry::envelope::Envelope;
use fairhms_geometry::line::Line;
use fairhms_geometry::vecmath::dot;
use fairhms_geometry::EPS;

/// Happiness ratio `hr(u, S) = max_{p∈S}⟨u,p⟩ / max_{p∈D}⟨u,p⟩` for one
/// utility. Returns 1 when the database maximum is 0 (every subset ties).
pub fn hr_for_utility(data: &Dataset, sel: &[usize], u: &[f64]) -> f64 {
    let db_max = data.max_dot(u);
    if db_max <= EPS {
        return 1.0;
    }
    let sel_max = sel
        .iter()
        .map(|&i| dot(data.point(i), u))
        .fold(0.0_f64, f64::max);
    (sel_max / db_max).clamp(0.0, 1.0)
}

/// Exact `mhr(S, D)` for 2D data via upper envelopes.
///
/// # Panics
/// Panics if the dataset is not 2-dimensional or `sel` is empty.
pub fn mhr_exact_2d(data: &Dataset, sel: &[usize]) -> f64 {
    assert_eq!(data.dim(), 2, "mhr_exact_2d requires 2D data");
    assert!(!sel.is_empty(), "selection must be non-empty");
    let db_lines: Vec<Line> = (0..data.len())
        .map(|i| Line::from_point(data.point(i)))
        .collect();
    let sel_lines: Vec<Line> = sel
        .iter()
        .map(|&i| Line::from_point(data.point(i)))
        .collect();
    let env_db = Envelope::upper(&db_lines);
    let env_sel = Envelope::upper(&sel_lines);

    let mut lambdas: Vec<f64> = Vec::new();
    for seg in env_db.segments().iter().chain(env_sel.segments()) {
        lambdas.push(seg.from);
        lambdas.push(seg.to);
    }
    lambdas.sort_by(f64::total_cmp);
    lambdas.dedup_by(|a, b| (*a - *b).abs() <= EPS);

    let mut mhr = f64::INFINITY;
    for &l in &lambdas {
        let denom = env_db.eval(l);
        let ratio = if denom <= EPS {
            1.0
        } else {
            (env_sel.eval(l) / denom).clamp(0.0, 1.0)
        };
        mhr = mhr.min(ratio);
    }
    mhr
}

/// Exact `mhr(S, D)` in any dimension via the regret LPs.
///
/// Runs `|D|` linear programs of size `(|S|+1) × (d+1)`; callers typically
/// pass a skyline-restricted dataset.
pub fn mhr_exact_lp(data: &Dataset, sel: &[usize]) -> f64 {
    assert!(!sel.is_empty(), "selection must be non-empty");
    let dim = data.dim();
    let sel_flat: Vec<f64> = sel
        .iter()
        .flat_map(|&i| data.point(i).iter().copied())
        .collect();
    fairhms_lp::hms::min_happiness_ratio(dim, &sel_flat, data.points_flat())
}

/// δ-net estimator: caches the per-utility database maxima once and
/// evaluates `mhr(S|N)` for many candidate selections.
#[derive(Debug, Clone)]
pub struct NetEvaluator {
    net: Vec<Vec<f64>>,
    db_max: Vec<f64>,
}

impl NetEvaluator {
    /// Builds the evaluator for `data` and the utility sample `net`.
    pub fn new(data: &Dataset, net: Vec<Vec<f64>>) -> Self {
        // The m × n extreme-value pass, routed through the active kernel
        // backend (bitwise-equal to the scalar fold — see
        // fairhms_geometry::soa).
        let db_max = crate::bigreedy::db_max_of(data, &net);
        Self { net, db_max }
    }

    /// The utility sample.
    pub fn net(&self) -> &[Vec<f64>] {
        &self.net
    }

    /// Per-utility database maxima `max_{p∈D}⟨u,p⟩`.
    pub fn db_max(&self) -> &[f64] {
        &self.db_max
    }

    /// `mhr(S|N) = min_{u∈N} hr(u, S)` — an upper bound on `mhr(S)`.
    pub fn mhr(&self, data: &Dataset, sel: &[usize]) -> f64 {
        assert!(!sel.is_empty(), "selection must be non-empty");
        let mut mhr = f64::INFINITY;
        for (u, &dbm) in self.net.iter().zip(&self.db_max) {
            let ratio = if dbm <= EPS {
                1.0
            } else {
                let best = sel
                    .iter()
                    .map(|&i| dot(data.point(i), u))
                    .fold(0.0_f64, f64::max);
                (best / dbm).clamp(0.0, 1.0)
            };
            mhr = mhr.min(ratio);
            if mhr <= 0.0 {
                break;
            }
        }
        mhr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_data::realsim::lsac_example;
    use fairhms_geometry::sphere::grid_net_2d;

    fn lsac_normalized() -> Dataset {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        ds
    }

    #[test]
    fn lsac_pinned_constants_2d() {
        // Example 2.2 of the paper, reproduced exactly under scale-only
        // normalization (indices: a1..a8 ↦ 0..7).
        let ds = lsac_normalized();
        let m45 = mhr_exact_2d(&ds, &[3, 4]); // {a4, a5}
        assert!((m45 - 0.9846).abs() < 5e-4, "mhr(a4,a5) = {m45}");
        let m58 = mhr_exact_2d(&ds, &[4, 7]); // {a5, a8}
        assert!((m58 - 0.9834).abs() < 5e-4, "mhr(a5,a8) = {m58}");
        let m457 = mhr_exact_2d(&ds, &[3, 4, 6]); // {a4, a5, a7}
        assert!((m457 - 0.9984).abs() < 5e-4, "mhr(a4,a5,a7) = {m457}");
    }

    #[test]
    fn lp_evaluator_agrees_with_2d_envelope() {
        let ds = lsac_normalized();
        for sel in [vec![3, 4], vec![4, 7], vec![3, 4, 6], vec![0, 1], vec![2]] {
            let a = mhr_exact_2d(&ds, &sel);
            let b = mhr_exact_lp(&ds, &sel);
            assert!((a - b).abs() < 1e-6, "sel {sel:?}: envelope {a} vs LP {b}");
        }
    }

    #[test]
    fn full_selection_has_mhr_one() {
        let ds = lsac_normalized();
        let all: Vec<usize> = (0..ds.len()).collect();
        assert!((mhr_exact_2d(&ds, &all) - 1.0).abs() < 1e-9);
        assert!((mhr_exact_lp(&ds, &all) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn net_upper_bounds_exact() {
        let ds = lsac_normalized();
        let ev = NetEvaluator::new(&ds, grid_net_2d(64));
        for sel in [vec![3, 4], vec![4, 7], vec![0]] {
            let exact = mhr_exact_2d(&ds, &sel);
            let net = ev.mhr(&ds, &sel);
            assert!(
                net >= exact - 1e-9,
                "net {net} should upper-bound exact {exact} (Lemma 4.1)"
            );
            assert!(
                net - exact < 0.05,
                "net estimate too loose: {net} vs {exact}"
            );
        }
    }

    #[test]
    fn hr_for_utility_extremes() {
        let ds = lsac_normalized();
        // u = (1,0): a5 has the max LSAT, so hr({a5}) = 1.
        assert!((hr_for_utility(&ds, &[4], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        // u = (0,1): a7 has the max GPA.
        assert!((hr_for_utility(&ds, &[6], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        let hr = hr_for_utility(&ds, &[4], &[0.0, 1.0]);
        assert!(hr < 1.0 && hr > 0.5);
    }

    #[test]
    fn zero_database_gives_hr_one() {
        let ds = Dataset::ungrouped("z", 2, vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(hr_for_utility(&ds, &[0], &[1.0, 0.0]), 1.0);
    }
}
