//! `IntCov`: the exact interval-cover algorithm for 2D FairHMS
//! (Algorithms 1 and 2 of the paper).
//!
//! The decision problem — "is there a feasible set with `mhr ≥ τ`?" —
//! reduces to *fair interval cover*: each point's line contributes the
//! sub-interval of `λ ∈ [0, 1]` where it stays above the `τ`-scaled upper
//! envelope, and a feasible cover of `[0, 1]` by intervals respecting the
//! group bounds answers "yes". A binary search over the candidate MHR array
//! `H` (see [`crate::candidates2d`]) finds the optimum.
//!
//! The fair-cover decision is the dynamic program of Algorithm 2: states
//! `IC[k_1, …, k_C]` (points taken per group, `k_c ≤ h_c`) hold the
//! furthest coverage reachable, with the greedy transition of Equation 1.
//! We process states by layers of total count instead of the paper's
//! explicit stack — the recurrence and visit set are identical — and keep
//! parent pointers for solution reconstruction.

use std::sync::Arc;

use fairhms_data::Dataset;
use fairhms_geometry::envelope::Envelope;
use fairhms_geometry::line::Line;
use fairhms_geometry::EPS;
use fairhms_matroid::FairnessMatroid;

use crate::candidates2d::candidate_mhrs;
use crate::eval::mhr_exact_2d;
use crate::types::{CoreError, FairHmsInstance, Solution};

/// Exact FairHMS in 2D. Returns the optimal feasible solution together with
/// its exact MHR.
///
/// Complexity: `O(n² log n)` to build candidates, `O(log n)` decision
/// rounds, each `O(n log n + n·Π_c(1 + h_c))`.
pub fn intcov(inst: &FairHmsInstance) -> Result<Solution, CoreError> {
    let data = inst.data();
    if data.dim() != 2 {
        return Err(CoreError::Not2D { dim: data.dim() });
    }

    let lines: Vec<Line> = (0..data.len())
        .map(|i| Line::from_point(data.point(i)))
        .collect();
    let env = Envelope::upper(&lines);
    let h = candidate_mhrs(data);

    // Binary search for the largest candidate τ with a feasible fair cover.
    let mut lo = 0usize;
    let mut hi = h.len().saturating_sub(1);
    let mut best: Option<Vec<usize>> = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        let tau = h[mid];
        match decide(data, inst.matroid(), &env, &lines, tau) {
            Some(cover) => {
                best = Some(cover);
                lo = mid + 1;
            }
            None => {
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
        }
    }

    let partial = best.unwrap_or_default();
    let sel = inst.complete_to_feasible(&partial)?;
    let mhr = mhr_exact_2d(data, &sel);
    Ok(Solution::new(sel, Some(mhr)))
}

/// The dual problem (α-happiness with minimum tuples, cf. Xie et al., ICDE
/// 2020, under group fairness): the *smallest* fair selection with
/// `mhr ≥ alpha`, if one of size at most `max_k` exists.
///
/// Runs the fair interval-cover DP once — its layers enumerate solution
/// sizes in increasing order, so the first cover found is minimum-size —
/// then pads up to the lower bounds. 2D only. Takes a shared dataset
/// handle (e.g. [`FairHmsInstance::shared_data`]); the internal budget
/// instance shares it instead of copying the matrix.
pub fn intcov_min_size(
    data: Arc<fairhms_data::Dataset>,
    lower: Vec<usize>,
    upper: Vec<usize>,
    max_k: usize,
    alpha: f64,
) -> Result<Option<Solution>, CoreError> {
    if data.dim() != 2 {
        return Err(CoreError::Not2D { dim: data.dim() });
    }
    // max_k bounds the DP budget; the returned set may be smaller.
    let inst = FairHmsInstance::new(Arc::clone(&data), max_k, lower, upper)?;
    let data = inst.data();
    let lines: Vec<Line> = (0..data.len())
        .map(|i| Line::from_point(data.point(i)))
        .collect();
    let env = Envelope::upper(&lines);
    match decide(data, inst.matroid(), &env, &lines, alpha.clamp(0.0, 1.0)) {
        Some(cover) => {
            // Meet unmet lower bounds without changing the cover.
            let mut sel = cover;
            let counts = inst.matroid().counts(&sel);
            #[allow(clippy::needless_range_loop)]
            for c in 0..inst.matroid().num_groups() {
                let mut need = inst.matroid().lower()[c].saturating_sub(counts[c]);
                for i in 0..data.len() {
                    if need == 0 {
                        break;
                    }
                    if data.group_of(i) == c && !sel.contains(&i) {
                        sel.push(i);
                        need -= 1;
                    }
                }
            }
            sel.sort_unstable();
            let mhr = mhr_exact_2d(data, &sel);
            debug_assert!(mhr >= alpha - 1e-9);
            Ok(Some(Solution::new(sel, Some(mhr))))
        }
        None => Ok(None),
    }
}

/// The fair interval-cover decision (Algorithm 2): returns point indices
/// covering `[0, 1]` at threshold `tau` whose group counts extend to a
/// feasible selection, or `None`.
fn decide(
    data: &Dataset,
    matroid: &FairnessMatroid,
    env: &Envelope,
    lines: &[Line],
    tau: f64,
) -> Option<Vec<usize>> {
    let c = matroid.num_groups();
    let upper = matroid.upper();

    // τ-intervals per group, sorted by left end with prefix-max right ends
    // for O(log) "best interval starting within coverage" queries.
    struct GroupIntervals {
        /// `(left, right, point)` sorted by `left`.
        ivs: Vec<(f64, f64, usize)>,
        /// `prefix_best[i]` = index (into `ivs`) of the max-right interval
        /// among `ivs[0..=i]`.
        prefix_best: Vec<usize>,
    }
    let mut groups: Vec<GroupIntervals> = (0..c)
        .map(|_| GroupIntervals {
            ivs: Vec::new(),
            prefix_best: Vec::new(),
        })
        .collect();
    for (i, line) in lines.iter().enumerate() {
        if let Some((a, b)) = env.tau_interval(line, tau) {
            groups[data.group_of(i)].ivs.push((a, b, i));
        }
    }
    for g in &mut groups {
        g.ivs.sort_by(|x, y| x.0.total_cmp(&y.0));
        let mut best = 0usize;
        g.prefix_best = (0..g.ivs.len())
            .map(|i| {
                if g.ivs[i].1 > g.ivs[best].1 {
                    best = i;
                }
                best
            })
            .collect();
    }
    // Best-right interval of group g with left ≤ v, if any.
    let best_reaching = |g: &GroupIntervals, v: f64| -> Option<(f64, usize)> {
        let cnt = g.ivs.partition_point(|iv| iv.0 <= v + EPS);
        if cnt == 0 {
            return None;
        }
        let idx = g.prefix_best[cnt - 1];
        Some((g.ivs[idx].1, g.ivs[idx].2))
    };

    // Mixed-radix DP over group counts.
    let strides: Vec<usize> = {
        let mut s = vec![0usize; c];
        let mut acc = 1usize;
        for g in 0..c {
            s[g] = acc;
            acc = acc.saturating_mul(upper[g] + 1);
        }
        s
    };
    let n_states: usize = upper.iter().map(|&h| h + 1).product();
    let mut value = vec![f64::NEG_INFINITY; n_states];
    let mut parent: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); n_states];
    value[0] = 0.0;

    // Check the zero state first: coverage 0 counts as full only if 1 ≤ EPS.
    let mut counts = vec![0usize; c];
    // Iterate states by layers of total count (predecessors always have a
    // smaller total, so each layer only reads finished layers).
    let max_total = matroid.k();
    let mut layer: Vec<usize> = vec![0]; // state indices with total = t
    for _t in 0..max_total {
        let mut next: Vec<usize> = Vec::new();
        for &s in &layer {
            let v = value[s];
            if v == f64::NEG_INFINITY {
                continue;
            }
            // decode counts
            {
                let mut rem = s;
                for g in (0..c).rev() {
                    counts[g] = rem / strides[g];
                    rem %= strides[g];
                }
            }
            for g in 0..c {
                if counts[g] >= upper[g] {
                    continue;
                }
                counts[g] += 1;
                let feasible = matroid.counts_independent(&counts);
                counts[g] -= 1;
                if !feasible {
                    continue; // Algorithm 2, lines 10–11
                }
                let succ = s + strides[g];
                let (new_v, point) = match best_reaching(&groups[g], v) {
                    // Equation 1, with coverage kept monotone: an interval
                    // inside the covered prefix "wastes" the pick.
                    Some((r, p)) => (r.max(v), p),
                    // No interval starts within coverage: the pick is
                    // wasted on an arbitrary group member (needed when
                    // lower bounds force picks from weak groups).
                    None => (v, usize::MAX),
                };
                if new_v > value[succ] + EPS {
                    value[succ] = new_v;
                    parent[succ] = (s, point);
                    if !next.contains(&succ) {
                        next.push(succ);
                    }
                    if new_v >= 1.0 - EPS {
                        return Some(reconstruct(&parent, succ));
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        layer = next;
    }
    None
}

/// Walks parent pointers back to the initial state, collecting the chosen
/// points (skipping wasted picks).
fn reconstruct(parent: &[(usize, usize)], mut state: usize) -> Vec<usize> {
    let mut out = Vec::new();
    while state != 0 {
        let (pred, point) = parent[state];
        debug_assert_ne!(pred, usize::MAX, "broken parent chain");
        if point != usize::MAX {
            out.push(point);
        }
        state = pred;
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_data::realsim::lsac_example;

    fn lsac_instance(k: usize, gender_bounds: Option<(usize, usize)>) -> FairHmsInstance {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        let c = ds.num_groups();
        match gender_bounds {
            Some((l, h)) => FairHmsInstance::new(ds, k, vec![l; c], vec![h; c]).unwrap(),
            None => FairHmsInstance::unconstrained(ds, k).unwrap(),
        }
    }

    #[test]
    fn lsac_unconstrained_k2_matches_paper() {
        // Example 2.2: HMS with k = 2 returns {a4, a5}, mhr 0.9846.
        let inst = lsac_instance(2, None);
        let sol = intcov(&inst).unwrap();
        assert_eq!(sol.indices, vec![3, 4]);
        assert!(
            (sol.mhr.unwrap() - 0.9846).abs() < 5e-4,
            "mhr = {:?}",
            sol.mhr
        );
    }

    #[test]
    fn lsac_fair_k2_matches_paper() {
        // Example 2.2: FairHMS with l = h = 1 per gender returns {a5, a8},
        // mhr 0.9834.
        let inst = lsac_instance(2, Some((1, 1)));
        let sol = intcov(&inst).unwrap();
        assert_eq!(sol.indices, vec![4, 7]);
        assert!(
            (sol.mhr.unwrap() - 0.9834).abs() < 5e-4,
            "mhr = {:?}",
            sol.mhr
        );
    }

    #[test]
    fn lsac_unconstrained_k3_matches_intro() {
        // Introduction: the size-3 HMS is {a4, a5, a7} with mhr 0.9984.
        let inst = lsac_instance(3, None);
        let sol = intcov(&inst).unwrap();
        assert_eq!(sol.indices, vec![3, 4, 6]);
        assert!((sol.mhr.unwrap() - 0.9984).abs() < 5e-4);
    }

    #[test]
    fn intcov_optimal_vs_brute_force() {
        // Enumerate all feasible size-3 subsets and compare.
        let inst = lsac_instance(3, Some((1, 2)));
        let sol = intcov(&inst).unwrap();
        let ds = inst.data();
        let mut best = 0.0_f64;
        let n = ds.len();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let sel = [a, b, c];
                    if !inst.matroid().is_feasible(&sel) {
                        continue;
                    }
                    best = best.max(mhr_exact_2d(ds, &sel));
                }
            }
        }
        assert!(
            (sol.mhr.unwrap() - best).abs() < 1e-7,
            "intcov {} vs brute {best}",
            sol.mhr.unwrap()
        );
    }

    #[test]
    fn fairness_always_satisfied() {
        for k in 2..=5 {
            let inst = lsac_instance(k, Some((1, k - 1)));
            let sol = intcov(&inst).unwrap();
            assert_eq!(sol.len(), k);
            assert!(inst.matroid().is_feasible(&sol.indices));
            assert_eq!(inst.matroid().violations(&sol.indices), 0);
        }
    }

    #[test]
    fn rejects_non_2d() {
        let ds =
            fairhms_data::Dataset::ungrouped("3d", 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]).unwrap();
        let inst = FairHmsInstance::unconstrained(ds, 1).unwrap();
        assert_eq!(intcov(&inst).unwrap_err(), CoreError::Not2D { dim: 3 });
    }

    #[test]
    fn min_size_dual_matches_primal() {
        // If FairHMS at size k reaches mhr*, the dual at α = mhr* must find
        // a cover of at most k points — and a binary cross-check: the dual
        // at a slightly larger α must need more points or be infeasible.
        let inst = lsac_instance(3, Some((1, 2)));
        let primal = intcov(&inst).unwrap();
        let alpha = primal.mhr.unwrap();
        let dual = intcov_min_size(
            inst.shared_data(),
            inst.matroid().lower().to_vec(),
            inst.matroid().upper().to_vec(),
            3,
            alpha - 1e-9,
        )
        .unwrap()
        .expect("dual must be feasible at the primal optimum");
        assert!(dual.len() <= 3);
        assert!(dual.mhr.unwrap() >= alpha - 1e-9);
    }

    #[test]
    fn min_size_dual_reports_infeasible_targets() {
        let inst = lsac_instance(2, Some((1, 1)));
        let ds = inst.shared_data();
        // α above the k=2 fair optimum (0.9834) but with max_k = 2: no cover.
        let none = intcov_min_size(Arc::clone(&ds), vec![1, 1], vec![1, 1], 2, 0.999).unwrap();
        assert!(none.is_none());
        // trivial α: a single point plus lower-bound padding suffices
        let some = intcov_min_size(ds, vec![1, 1], vec![2, 2], 4, 0.1)
            .unwrap()
            .expect("low α always feasible");
        assert!(some.len() <= 4);
        assert!(some.mhr.unwrap() >= 0.1);
    }

    #[test]
    fn min_size_dual_monotone_in_alpha() {
        let inst = lsac_instance(4, Some((1, 3)));
        let ds = inst.shared_data();
        let mut prev = 0usize;
        for alpha in [0.5, 0.9, 0.98, 0.9833] {
            let sol = intcov_min_size(Arc::clone(&ds), vec![1, 1], vec![4, 4], 5, alpha)
                .unwrap()
                .unwrap_or_else(|| panic!("α = {alpha} should be feasible"));
            assert!(sol.len() >= prev, "α = {alpha}: size decreased");
            prev = sol.len();
        }
    }

    #[test]
    fn price_of_fairness_is_nonnegative() {
        let unfair = intcov(&lsac_instance(3, None)).unwrap();
        let fair = intcov(&lsac_instance(3, Some((1, 2)))).unwrap();
        assert!(unfair.mhr.unwrap() >= fair.mhr.unwrap() - 1e-9);
    }
}
