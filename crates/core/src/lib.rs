//! FairHMS: happiness maximizing sets under group fairness constraints.
//!
//! This crate implements the algorithms of *"Happiness Maximizing Sets
//! under Group Fairness Constraints"* (Zheng, Ma, Ma, Wang, Wang — VLDB
//! 2022) together with the state-of-the-art RMS/HMS baselines they are
//! evaluated against:
//!
//! * [`mod@intcov`] — the exact 2D algorithm (Algorithm 1 + the fair
//!   interval-cover dynamic program of Algorithm 2);
//! * [`mod@bigreedy`] — the bicriteria approximation for any dimension
//!   (Algorithm 3), reducing FairHMS to multi-objective submodular
//!   maximization over a δ-net under the fairness matroid;
//! * [`adaptive`] — `BiGreedy+`, the adaptive-sampling variant
//!   (Algorithm 4);
//! * [`baselines`] — `RDP-Greedy`, `DMM`, `Sphere`, and the hitting-set
//!   algorithm `HS`, implemented from their original papers;
//! * [`adapt`] — the paper's fair adaptations: per-group `G-<Alg>`
//!   wrappers and the LP-based `F-Greedy`;
//! * [`eval`] — exact (2D-envelope and LP-based) and δ-net-sampled
//!   minimum-happiness-ratio evaluators plus the `err(S)` fairness
//!   violation count;
//! * [`registry`] — a uniform [`registry::Algorithm`] interface for the
//!   experiment harness.
//!
//! The entry type is [`FairHmsInstance`]: a normalized grouped dataset plus
//! the solution size `k` and per-group bounds. Instances hold their
//! dataset behind an `Arc`, so building many instances over one prepared
//! dataset (the serving catalog's pattern) shares a single allocation —
//! construction never copies the point matrix. See the crate-level
//! examples in the repository's `examples/` directory for end-to-end
//! usage.

pub mod adapt;
pub mod adaptive;
pub mod baselines;
pub mod bigreedy;
pub mod candidates2d;
#[cfg(test)]
mod edge_tests;
pub mod eval;
pub mod eval_ext;
pub mod exact2d_greedy;
pub mod intcov;
pub mod objective;
pub mod registry;
pub mod streaming;
pub mod types;

pub use adaptive::{bigreedy_plus, BiGreedyPlusConfig};
pub use bigreedy::{bigreedy, BiGreedyConfig, BiGreedyMode, CachedDbMax, SampledNet, TauSearch};
pub use intcov::{intcov, intcov_min_size};
pub use registry::WarmStart;
pub use streaming::{streaming_fairhms, StreamingFairHmsConfig};
pub use types::{CoreError, FairHmsInstance, Solution};
