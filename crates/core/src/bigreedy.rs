//! `BiGreedy`: the bicriteria approximation for multi-dimensional FairHMS
//! (Algorithm 3 of the paper).
//!
//! Pipeline: sample a `δ/(d(2−δ))`-net `N` of `m` utility vectors (Lemma
//! 4.1 caps the MHR estimation error at `δ`), then search the capped value
//! `τ` over the geometric grid `{(1−ε/2)^j}` for the largest value at which
//! the multi-round greedy `MRGreedy` — the Fisher–Nemhauser–Wolsey greedy
//! on the truncated objective `mhr_τ(·|N)` under the fairness matroid, run
//! for up to `γ = ⌈log₂(2m/ε)⌉` rounds (Lemma 4.5) — reaches
//! `mhr_τ(S|N) ≥ (1 − ε/2m)·τ`.
//!
//! Two deliberate engineering deviations from the paper's pseudocode, both
//! recorded in DESIGN.md:
//!
//! 1. **τ search.** Achievability of `τ` is monotone (smaller caps are
//!    easier), so instead of sweeping every grid value — `O(ln(m)/ε)`
//!    MRGreedy invocations — we binary-search the grid, which the paper's
//!    own experiments implicitly require to reach their reported runtimes.
//!    A failed greedy additionally aborts early once a round stops
//!    improving the objective (further rounds repeat the argument of the
//!    stalled round on a strictly smaller candidate pool).
//! 2. **Feasible output.** The theoretical guarantee allows `|S| ≤ γk`
//!    (bicriteria), yet the paper's experiments report `|S| = k` and
//!    `err(S) = 0`. [`BiGreedyMode::Feasible`] (the default) therefore runs
//!    `MRGreedy` with `γ = 1`: every greedy base of the fairness matroid is
//!    itself a feasible size-`k` selection, so the achieved `τ` certifies
//!    exactly the returned set. [`BiGreedyMode::Bicriteria`] keeps the full
//!    `γ`-round union with its `(O(d log 1/δε), 1−ε−δ/OPT)` guarantee.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_data::Dataset;
use fairhms_geometry::sphere::{bigreedy_net_delta, net_size, random_net_with_basis};
use fairhms_submodular::{greedy_matroid, lazy_greedy_matroid, IncrementalObjective};

use crate::objective::TruncatedMhrObjective;
use crate::types::{CoreError, FairHmsInstance, Solution};

/// Output contract of [`bigreedy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BiGreedyMode {
    /// Always return a feasible size-`k` selection (prune + pad).
    #[default]
    Feasible,
    /// Return the raw multi-round union (up to `γ·k` points, bounds scaled
    /// by the number of rounds) — the theoretical bicriteria object.
    Bicriteria,
}

/// How the capped value `τ` is searched over the geometric grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TauSearch {
    /// Binary search over the grid (engineering deviation #1; default).
    /// `O(log(ln(m)/ε))` `MRGreedy` invocations.
    #[default]
    Binary,
    /// The paper's literal lines 3–8: try every grid value descending.
    /// `O(ln(m)/ε)` invocations — kept for fidelity and ablation.
    Linear,
}

/// Configuration for [`bigreedy`].
#[derive(Debug, Clone)]
pub struct BiGreedyConfig {
    /// Cap-search accuracy `ε ∈ (0, 1)`; the paper fixes 0.02.
    pub epsilon: f64,
    /// Explicit δ-net size `m`. The paper's experiments use `m = 10·k·d`.
    /// When `None`, `m` is derived from `delta` via the covering bound.
    pub sample_size: Option<usize>,
    /// Net parameter `δ` used only when `sample_size` is `None`.
    pub delta: f64,
    /// Output contract.
    pub mode: BiGreedyMode,
    /// τ-grid traversal strategy.
    pub tau_search: TauSearch,
    /// RNG seed for the δ-net sample.
    pub seed: u64,
    /// Use lazy greedy (identical output, usually much faster).
    pub use_lazy: bool,
}

impl Default for BiGreedyConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.02,
            sample_size: None,
            delta: 0.1,
            mode: BiGreedyMode::Feasible,
            tau_search: TauSearch::Binary,
            seed: 42,
            use_lazy: true,
        }
    }
}

impl BiGreedyConfig {
    /// The paper's experimental configuration: `m = 10·k·d`, `ε = 0.02`.
    pub fn paper_default(k: usize, d: usize) -> Self {
        Self {
            sample_size: Some(10 * k * d),
            ..Self::default()
        }
    }

    /// Smallest `epsilon` [`BiGreedyConfig::validate`] accepts. Below
    /// this the geometric τ grid `{(1−ε/2)^j}` down to `1/m` explodes to
    /// billions of entries, so tiny ε is rejected up front instead of
    /// being silently clamped (the pre-validation behaviour).
    pub const EPSILON_MIN: f64 = 1e-6;
    /// Largest `epsilon` [`BiGreedyConfig::validate`] accepts.
    pub const EPSILON_MAX: f64 = 0.999;

    /// Validates the numeric parameters: `epsilon` must be finite and in
    /// `[EPSILON_MIN, EPSILON_MAX]` — exactly the range the solver runs
    /// at; there is no silent clamp between validation and use — and,
    /// when `sample_size` is `None` so it actually drives the covering
    /// bound, `delta` must be finite in `(0, 1)`. A NaN here would
    /// otherwise poison every threshold comparison downstream, silently
    /// returning garbage instead of an error.
    pub fn validate(&self) -> Result<(), CoreError> {
        let e = self.epsilon;
        if !e.is_finite() || !(Self::EPSILON_MIN..=Self::EPSILON_MAX).contains(&e) {
            return Err(CoreError::InvalidParameter {
                param: "epsilon",
                value: format!("{e}"),
                expected: "a finite value in [1e-6, 0.999]",
            });
        }
        if self.sample_size.is_none() {
            let v = self.delta;
            if !v.is_finite() || v <= 0.0 || v >= 1.0 {
                return Err(CoreError::InvalidParameter {
                    param: "delta",
                    value: format!("{v}"),
                    expected: "a finite value in (0, 1)",
                });
            }
        }
        Ok(())
    }

    /// The net size `m` this configuration samples at for dimension `d`.
    pub fn resolve_m(&self, d: usize) -> usize {
        match self.sample_size {
            Some(m) => m.max(2),
            None => net_size(bigreedy_net_delta(self.delta, d.max(2)), d.max(2)),
        }
    }
}

/// A sampled δ-net together with the exact preimage (`dim`, `m`, `seed`)
/// that generated it — the warm-start currency for `BiGreedy`.
///
/// Sampling is deterministic given the preimage, so a cached `SampledNet`
/// whose preimage matches a query is **bit-identical** to regenerating:
/// reuse can never change an answer. Callers verify the match with
/// [`SampledNet::matches`] before reusing (a stale or mismatched net must
/// be regenerated, not silently reused).
#[derive(Debug, Clone, PartialEq)]
pub struct SampledNet {
    /// Utility-space dimensionality the net was sampled in.
    pub dim: usize,
    /// Number of net vectors.
    pub m: usize,
    /// RNG seed the sample was drawn with.
    pub seed: u64,
    /// The net vectors (first `min(d, m)` are the basis directions).
    pub vectors: Vec<Vec<f64>>,
}

impl SampledNet {
    /// Samples the net exactly as [`bigreedy`] does internally: a fresh
    /// `StdRng` from `seed`, then [`random_net_with_basis`].
    pub fn generate(dim: usize, m: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors = random_net_with_basis(dim, m, &mut rng);
        Self {
            dim,
            m,
            seed,
            vectors,
        }
    }

    /// Whether this net was generated from exactly `(dim, m, seed)` — the
    /// precondition for reuse being bit-identical to regeneration.
    pub fn matches(&self, dim: usize, m: usize, seed: u64) -> bool {
        self.dim == dim && self.m == m && self.seed == seed
    }
}

/// The per-utility database maxima `db_max[u] = max_{p ∈ D} ⟨u, p⟩` for a
/// [`SampledNet`] over an `n`-point dataset.
///
/// Routed through [`Dataset::max_dot_many`], the cache-blocked batched
/// sweep (one stream of the point matrix for all `m` utilities) —
/// bitwise-equal to the per-utility scalar scan under either backend.
pub fn db_max_of(data: &Dataset, net: &[Vec<f64>]) -> Vec<f64> {
    data.max_dot_many(net)
}

/// A computed `db_max` vector together with the exact preimage that
/// produced it — the third warm-start component (after the δ-net and the
/// prepared bounds).
///
/// `db_max` is a pure function of the net (identified by `(dim, m, seed)`)
/// and the point matrix (identified, within one catalog epoch and prepared
/// form, by `n`). The warm caches key entries by epoch, so a cached vector
/// whose [`CachedDbMax::matches`] preimage checks out is **bit-identical**
/// to recomputation: reuse skips the `m × n` setup pass without being able
/// to change an answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedDbMax {
    /// Utility-space dimensionality of the generating net.
    pub dim: usize,
    /// Net size `m` (`values.len() == m` net vectors were scanned).
    pub m: usize,
    /// RNG seed of the generating net.
    pub seed: u64,
    /// Number of points in the dataset the maxima were taken over.
    pub n: usize,
    /// `values[u] = max_{p ∈ D} ⟨net[u], p⟩`.
    pub values: Vec<f64>,
}

impl CachedDbMax {
    /// Computes the maxima for `net` over `data` (through the active
    /// kernel backend) and records the preimage.
    pub fn compute(data: &Dataset, net: &SampledNet) -> Self {
        Self {
            dim: net.dim,
            m: net.m,
            seed: net.seed,
            n: data.len(),
            values: db_max_of(data, &net.vectors),
        }
    }

    /// Whether this vector was computed from exactly `(dim, m, seed)` over
    /// an `n`-point dataset — the precondition for reuse being
    /// bit-identical to recomputation.
    pub fn matches(&self, dim: usize, m: usize, seed: u64, n: usize) -> bool {
        self.dim == dim && self.m == m && self.seed == seed && self.n == n
    }
}

/// Runs `BiGreedy` on `inst`. The returned [`Solution::mhr`] is the δ-net
/// estimate `mhr(S|N)` (an upper bound on the true MHR within `δ`).
pub fn bigreedy(inst: &FairHmsInstance, config: &BiGreedyConfig) -> Result<Solution, CoreError> {
    config.validate()?;
    let net = SampledNet::generate(inst.dim(), config.resolve_m(inst.dim()), config.seed);
    let (sol, _tau) = bigreedy_on_net(inst, &net.vectors, config)?;
    Ok(sol)
}

/// `BiGreedy` on an explicit utility sample; also returns the largest
/// achieved capped value `τ` (consumed by `BiGreedy+`'s stopping rule).
///
/// In [`BiGreedyMode::Feasible`] the multi-round budget is `γ = 1`: a
/// single greedy base of the fairness matroid is always a feasible size-`k`
/// selection (a base has `Σ count_c = k` with `count_c ≤ h_c`, and
/// `Σ max(count_c, l_c) ≤ k` then forces `count_c ≥ l_c`), so the achieved
/// `τ` certifies the *returned* set. [`BiGreedyMode::Bicriteria`] uses the
/// full `γ = ⌈log₂(2m/ε)⌉` rounds of Lemma 4.5 and returns the union.
pub fn bigreedy_on_net(
    inst: &FairHmsInstance,
    net: &[Vec<f64>],
    config: &BiGreedyConfig,
) -> Result<(Solution, f64), CoreError> {
    config.validate()?;
    let db_max = db_max_of(inst.data(), net);
    bigreedy_on_net_with_db_max(inst, net, &db_max, config)
}

/// [`bigreedy_on_net`] with the `m × n` `db_max` setup pass supplied by
/// the caller — the warm-start entry point. `db_max[u]` **must** equal
/// `max_{p ∈ D} ⟨net[u], p⟩` over `inst`'s dataset (see [`CachedDbMax`]);
/// callers verify the cached preimage before passing a reused vector.
pub fn bigreedy_on_net_with_db_max(
    inst: &FairHmsInstance,
    net: &[Vec<f64>],
    db_max: &[f64],
    config: &BiGreedyConfig,
) -> Result<(Solution, f64), CoreError> {
    config.validate()?;
    debug_assert_eq!(db_max.len(), net.len(), "db_max/net length mismatch");
    let data = inst.data();
    let m = net.len().max(1);
    // validate() pins epsilon to exactly the range used here — no clamp.
    let epsilon = config.epsilon;
    let gamma = match config.mode {
        BiGreedyMode::Feasible => 1,
        BiGreedyMode::Bicriteria => ((2.0 * m as f64 / epsilon).log2().ceil() as usize).max(1),
    };

    let mut objective = TruncatedMhrObjective::new(data, net, db_max, 1.0, true);
    let candidates: Vec<usize> = (0..data.len()).collect();

    // Geometric τ grid from 1 down to 1/m (Algorithm 3, lines 3–8).
    let ratio = 1.0 - epsilon / 2.0;
    let mut grid: Vec<f64> = Vec::new();
    let mut tau = 1.0_f64;
    while tau >= 1.0 / m as f64 {
        grid.push(tau);
        tau *= ratio;
    }

    // Probe the τ grid, collecting *every* generated solution — Algorithm
    // 3's line 9 returns the argmax of mhr(S|N) over all candidate
    // solutions, and the bases produced while attempting a too-ambitious τ
    // are frequently the best worst-case covers even though they miss the
    // average-value target.
    let mut achieved: Option<f64> = None; // largest passed τ
    let mut pool: Vec<(Vec<usize>, bool)> = Vec::new(); // (union, passed)
    let probe = |tau: f64,
                 objective: &mut TruncatedMhrObjective<'_>,
                 pool: &mut Vec<(Vec<usize>, bool)>,
                 achieved: &mut Option<f64>|
     -> bool {
        let (union, passed) = mr_greedy(
            inst,
            objective,
            &candidates,
            tau,
            gamma,
            epsilon,
            config.use_lazy,
        );
        if !union.is_empty() {
            pool.push((union, passed));
        }
        if passed && achieved.is_none_or(|a| tau > a) {
            *achieved = Some(tau);
        }
        passed
    };
    match config.tau_search {
        TauSearch::Binary => {
            // Achievability is monotone in τ: binary search the boundary.
            let mut lo = 0usize; // grid is descending: smaller index = larger τ
            let mut hi = grid.len() - 1;
            // First check the easiest cap to guarantee a fallback solution.
            if probe(grid[hi], &mut objective, &mut pool, &mut achieved) && hi > 0 {
                hi -= 1;
                while lo <= hi {
                    let mid = (lo + hi) / 2;
                    if probe(grid[mid], &mut objective, &mut pool, &mut achieved) {
                        if mid == 0 {
                            break;
                        }
                        hi = mid - 1; // try larger τ (smaller index)
                    } else {
                        lo = mid + 1; // τ too ambitious
                    }
                }
            }
        }
        TauSearch::Linear => {
            // The paper's literal sweep from τ = 1 downward. Once a cap has
            // passed, a few more grid steps suffice: every later candidate
            // certifies a strictly smaller mhr_τ and cannot win the argmax.
            let mut passed_steps = 0usize;
            for &tau in &grid {
                if probe(tau, &mut objective, &mut pool, &mut achieved) {
                    passed_steps += 1;
                    if passed_steps > 4 {
                        break;
                    }
                }
            }
        }
    }
    let achieved_tau = achieved.unwrap_or(0.0);

    // Rank the candidate solutions by their net-estimated MHR.
    objective.set_tau(1.0);
    let rank = |sel: &[usize]| -> f64 {
        let state = objective.state_of(sel);
        objective.mhr_of_state(&state)
    };
    let indices = match config.mode {
        BiGreedyMode::Bicriteria => {
            // The theoretical object: the best *passed* union, falling back
            // to the best base when nothing passed.
            let best = pool
                .iter()
                .filter(|(_, passed)| *passed)
                .max_by(|a, b| rank(&a.0).total_cmp(&rank(&b.0)))
                .or_else(|| pool.iter().max_by(|a, b| rank(&a.0).total_cmp(&rank(&b.0))));
            match best {
                Some((union, _)) => union.clone(),
                None => inst.complete_to_feasible(&[])?,
            }
        }
        BiGreedyMode::Feasible => {
            // Every γ = 1 base is feasible: take the argmax over all of
            // them (paper line 9), pad only the degenerate empty fallback.
            let best = pool.iter().max_by(|a, b| rank(&a.0).total_cmp(&rank(&b.0)));
            match best {
                Some((union, _)) => inst.complete_to_feasible(union)?,
                None => inst.complete_to_feasible(&[])?,
            }
        }
    };

    let mhr_net = rank(&indices);
    Ok((Solution::new(indices, Some(mhr_net)), achieved_tau))
}

/// `MRGreedy` (Algorithm 3, lines 10–22): up to `gamma` greedy rounds on
/// disjoint candidate pools. Returns the union (possibly partial) and
/// whether it met the target `mhr_τ(S|N) ≥ (1 − ε/2m)·τ`.
#[allow(clippy::too_many_arguments)]
fn mr_greedy(
    inst: &FairHmsInstance,
    objective: &mut TruncatedMhrObjective<'_>,
    candidates: &[usize],
    tau: f64,
    gamma: usize,
    epsilon: f64,
    use_lazy: bool,
) -> (Vec<usize>, bool) {
    objective.set_tau(tau);
    let m = objective.state_of(&[]).len().max(1);
    let target = (1.0 - epsilon / (2.0 * m as f64)) * tau;

    let mut union: Vec<usize> = Vec::new();
    let mut union_state = objective.empty_state();
    let mut pool: Vec<usize> = candidates.to_vec();
    let mut last_value = f64::NEG_INFINITY;
    for _round in 0..gamma {
        if pool.is_empty() {
            break;
        }
        let round = if use_lazy {
            lazy_greedy_matroid(objective, inst.matroid(), &pool)
        } else {
            greedy_matroid(objective, inst.matroid(), &pool)
        };
        if round.items.is_empty() {
            break;
        }
        for &i in &round.items {
            objective.add(&mut union_state, i);
        }
        union.extend_from_slice(&round.items);
        pool.retain(|i| !round.items.contains(i));

        let value = objective.value(&union_state);
        if value >= target - 1e-12 {
            return (union, true);
        }
        if value <= last_value + 1e-12 {
            break; // plateau: additional rounds cannot help
        }
        last_value = value;
    }
    (union, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{mhr_exact_2d, mhr_exact_lp};
    use fairhms_data::realsim::lsac_example;
    use fairhms_data::Dataset;

    fn lsac_instance(k: usize, fair: bool) -> FairHmsInstance {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        let c = ds.num_groups();
        if fair {
            FairHmsInstance::new(ds, k, vec![1; c], vec![k - 1; c]).unwrap()
        } else {
            FairHmsInstance::unconstrained(ds, k).unwrap()
        }
    }

    #[test]
    fn feasible_mode_returns_feasible_k_set() {
        for k in 2..=4 {
            let inst = lsac_instance(k, true);
            let sol = bigreedy(&inst, &BiGreedyConfig::paper_default(k, 2)).unwrap();
            assert_eq!(sol.len(), k);
            assert!(inst.matroid().is_feasible(&sol.indices));
            assert_eq!(inst.matroid().violations(&sol.indices), 0);
        }
    }

    #[test]
    fn near_optimal_on_lsac() {
        // IntCov's optimum for the fair k = 2 instance is 0.9834; BiGreedy
        // with a decent net should land within δ-ish of it.
        let inst = lsac_instance(2, true);
        let sol = bigreedy(&inst, &BiGreedyConfig::paper_default(2, 2)).unwrap();
        let exact = mhr_exact_2d(inst.data(), &sol.indices);
        assert!(exact > 0.93, "exact mhr of BiGreedy solution = {exact}");
    }

    #[test]
    fn net_mhr_upper_bounds_exact_mhr() {
        let inst = lsac_instance(3, false);
        let sol = bigreedy(&inst, &BiGreedyConfig::paper_default(3, 2)).unwrap();
        let exact = mhr_exact_lp(inst.data(), &sol.indices);
        assert!(sol.mhr.unwrap() >= exact - 1e-9, "Lemma 4.1 violated");
    }

    #[test]
    fn bicriteria_mode_may_exceed_k() {
        let inst = lsac_instance(2, true);
        let cfg = BiGreedyConfig {
            mode: BiGreedyMode::Bicriteria,
            ..BiGreedyConfig::paper_default(2, 2)
        };
        let sol = bigreedy(&inst, &cfg).unwrap();
        assert!(!sol.is_empty());
        // union of feasible rounds: per-group counts within γ·h_c
        assert!(sol.len() >= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = lsac_instance(3, true);
        let cfg = BiGreedyConfig::paper_default(3, 2);
        let a = bigreedy(&inst, &cfg).unwrap();
        let b = bigreedy(&inst, &cfg).unwrap();
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn non_finite_or_out_of_range_params_yield_typed_errors() {
        // Regression (PR 5): a NaN ε used to survive `clamp` and run the
        // whole solve with NaN thresholds. Regression (PR 8): validated
        // values like 1e-9 or 0.9999 used to pass `(0, 1)` validation and
        // then run silently clamped to [1e-6, 0.999] — a *different* ε
        // than requested. validate() now accepts exactly the range the
        // solver runs at, and the clamp is gone.
        let inst = lsac_instance(2, true);
        for bad in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.5,
            1.0,
            1.5,
            1e-9,   // previously validated, then silently ran at 1e-6
            0.9999, // previously validated, then silently ran at 0.999
        ] {
            let cfg = BiGreedyConfig {
                epsilon: bad,
                ..BiGreedyConfig::paper_default(2, 2)
            };
            match bigreedy(&inst, &cfg) {
                Err(CoreError::InvalidParameter {
                    param: "epsilon", ..
                }) => {}
                other => panic!("epsilon = {bad}: expected typed error, got {other:?}"),
            }
            // The explicit-net entry point validates identically.
            let net = SampledNet::generate(2, 10, 42);
            assert!(matches!(
                bigreedy_on_net(&inst, &net.vectors, &cfg),
                Err(CoreError::InvalidParameter {
                    param: "epsilon",
                    ..
                })
            ));
        }
        // δ is validated only when it drives the net size.
        for bad in [f64::NAN, 0.0, 1.0] {
            let cfg = BiGreedyConfig {
                delta: bad,
                sample_size: None,
                ..BiGreedyConfig::default()
            };
            assert!(matches!(
                bigreedy(&inst, &cfg),
                Err(CoreError::InvalidParameter { param: "delta", .. })
            ));
            // …and ignored when an explicit sample size overrides it.
            let cfg = BiGreedyConfig {
                delta: bad,
                sample_size: Some(20),
                ..BiGreedyConfig::default()
            };
            assert!(
                bigreedy(&inst, &cfg).is_ok(),
                "delta = {bad} with explicit m"
            );
        }
    }

    #[test]
    fn epsilon_boundaries_run_unclamped() {
        // The accepted range *is* the range used: both boundary values run
        // (no clamp can change them), and just-outside values error.
        let inst = lsac_instance(2, true);
        for eps in [BiGreedyConfig::EPSILON_MIN, BiGreedyConfig::EPSILON_MAX] {
            let cfg = BiGreedyConfig {
                epsilon: eps,
                ..BiGreedyConfig::paper_default(2, 2)
            };
            let sol = bigreedy(&inst, &cfg).unwrap_or_else(|e| panic!("epsilon = {eps}: {e:?}"));
            assert_eq!(sol.len(), 2);
        }
    }

    #[test]
    fn cached_db_max_reuse_is_bit_identical_to_recomputation() {
        let inst = lsac_instance(3, true);
        let cfg = BiGreedyConfig::paper_default(3, 2);
        let net = SampledNet::generate(inst.dim(), cfg.resolve_m(inst.dim()), cfg.seed);
        let cached = CachedDbMax::compute(inst.data(), &net);
        assert!(cached.matches(net.dim, net.m, net.seed, inst.data().len()));
        assert!(!cached.matches(net.dim, net.m, net.seed + 1, inst.data().len()));
        assert!(!cached.matches(net.dim, net.m, net.seed, inst.data().len() + 1));
        // Recomputation is deterministic…
        let again = CachedDbMax::compute(inst.data(), &net);
        let (ba, bb): (Vec<u64>, Vec<u64>) = (
            cached.values.iter().map(|x| x.to_bits()).collect(),
            again.values.iter().map(|x| x.to_bits()).collect(),
        );
        assert_eq!(ba, bb);
        // …and the solver consuming a cached vector equals the
        // compute-inline entry point to the bit.
        let (with_cache, tau_a) =
            bigreedy_on_net_with_db_max(&inst, &net.vectors, &cached.values, &cfg).unwrap();
        let (inline, tau_b) = bigreedy_on_net(&inst, &net.vectors, &cfg).unwrap();
        assert_eq!(with_cache.indices, inline.indices);
        assert_eq!(
            with_cache.mhr.map(f64::to_bits),
            inline.mhr.map(f64::to_bits)
        );
        assert_eq!(tau_a.to_bits(), tau_b.to_bits());
    }

    #[test]
    fn sampled_net_reuse_is_bit_identical_to_regeneration() {
        let a = SampledNet::generate(3, 90, 42);
        let b = SampledNet::generate(3, 90, 42);
        assert_eq!(a.vectors.len(), 90);
        for (va, vb) in a.vectors.iter().zip(&b.vectors) {
            let (ba, bb): (Vec<u64>, Vec<u64>) = (
                va.iter().map(|x| x.to_bits()).collect(),
                vb.iter().map(|x| x.to_bits()).collect(),
            );
            assert_eq!(ba, bb);
        }
        assert!(a.matches(3, 90, 42));
        assert!(!a.matches(3, 90, 43));
        assert!(!a.matches(2, 90, 42));
        assert!(!a.matches(3, 91, 42));

        // And the solver consuming a pre-sampled net equals the all-in-one
        // entry point to the bit.
        let inst = lsac_instance(3, true);
        let cfg = BiGreedyConfig::paper_default(3, 2);
        let net = SampledNet::generate(inst.dim(), cfg.resolve_m(inst.dim()), cfg.seed);
        let (on_net, _) = bigreedy_on_net(&inst, &net.vectors, &cfg).unwrap();
        let direct = bigreedy(&inst, &cfg).unwrap();
        assert_eq!(on_net.indices, direct.indices);
        assert_eq!(on_net.mhr.map(f64::to_bits), direct.mhr.map(f64::to_bits));
    }

    #[test]
    fn linear_sweep_matches_binary_search_quality() {
        // Ablation for engineering deviation #1: the paper's literal τ
        // sweep and our binary search must land on solutions of equal
        // exact quality (the τ boundary is the same).
        let inst = lsac_instance(3, true);
        let binary = bigreedy(&inst, &BiGreedyConfig::paper_default(3, 2)).unwrap();
        let linear = bigreedy(
            &inst,
            &BiGreedyConfig {
                tau_search: TauSearch::Linear,
                ..BiGreedyConfig::paper_default(3, 2)
            },
        )
        .unwrap();
        let mb = mhr_exact_2d(inst.data(), &binary.indices);
        let ml = mhr_exact_2d(inst.data(), &linear.indices);
        assert!((mb - ml).abs() < 0.02, "binary {mb} vs linear {ml}");
        assert!(inst.matroid().is_feasible(&linear.indices));
    }

    #[test]
    fn lazy_and_eager_agree() {
        let inst = lsac_instance(3, true);
        let lazy = bigreedy(&inst, &BiGreedyConfig::paper_default(3, 2)).unwrap();
        let eager = bigreedy(
            &inst,
            &BiGreedyConfig {
                use_lazy: false,
                ..BiGreedyConfig::paper_default(3, 2)
            },
        )
        .unwrap();
        assert_eq!(lazy.indices, eager.indices);
    }

    #[test]
    fn works_in_higher_dimensions() {
        // 4D simplex corners + interior points, two groups. The optimal
        // feasible base is the four corners (mhr 0.625); the greedy's first
        // pick is the high-average diagonal point, so its base misses one
        // corner and lands at 0.4 — within the 1/2-approximation of the
        // matroid greedy, which is all Feasible mode promises.
        let pts = vec![
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            0.4, 0.4, 0.4, 0.4, //
            0.3, 0.3, 0.3, 0.3, //
        ];
        let ds = Dataset::new("4d", 4, pts, vec![0, 0, 1, 1, 0, 1], vec![]).unwrap();
        let inst = FairHmsInstance::new(ds, 4, vec![1, 1], vec![3, 3]).unwrap();
        let sol = bigreedy(&inst, &BiGreedyConfig::paper_default(4, 4)).unwrap();
        assert_eq!(sol.len(), 4);
        assert!(inst.matroid().is_feasible(&sol.indices));
        let exact = mhr_exact_lp(inst.data(), &sol.indices);
        assert!(exact >= 0.5 * 0.625 - 1e-9, "exact = {exact}");

        // The bicriteria union, by contrast, reaches the Lemma 4.5 bound —
        // here the full dataset, mhr 1.
        let cfg = BiGreedyConfig {
            mode: BiGreedyMode::Bicriteria,
            ..BiGreedyConfig::paper_default(4, 4)
        };
        let union = bigreedy(&inst, &cfg).unwrap();
        let exact_union = mhr_exact_lp(inst.data(), &union.indices);
        assert!(exact_union > 0.99, "bicriteria exact = {exact_union}");
    }
}
