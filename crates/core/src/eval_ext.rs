//! Extended evaluators: average happiness and `k`-happiness.
//!
//! The RMS/HMS literature the paper builds on studies two prominent
//! relaxations (Section 6, Related Work):
//!
//! * **Average regret/happiness** (Shetiya et al., Storandt & Funke,
//!   Zeighami & Wong): replace the worst case `min_u hr(u, S)` by the
//!   expectation over utilities. [`avg_happiness_ratio`] estimates it on a
//!   utility sample; it is exactly the `τ = 1` truncated objective, so the
//!   same greedy machinery optimizes it.
//! * **`k`-regret / `k`HMS** (Chester et al.): compare against the `t`-th
//!   best tuple instead of the best, i.e.
//!   `hr_t(u, S) = max_{p∈S}⟨u,p⟩ / t-th-max_{p∈D}⟨u,p⟩` capped at 1.
//!   A selection with `mhr_t = 1` satisfies every user who is happy with a
//!   top-`t` answer. [`KthNetEvaluator`] estimates `mhr_t(S|N)`.
//!
//! Both are evaluation-only extensions: they let downstream users measure
//! their FairHMS solutions against the relaxed objectives without changing
//! the solvers.

use fairhms_data::Dataset;
use fairhms_geometry::vecmath::dot;
use fairhms_geometry::EPS;

/// Average happiness ratio of `sel` over a utility sample:
/// `(1/m) Σ_{u∈N} hr(u, S)`.
pub fn avg_happiness_ratio(data: &Dataset, sel: &[usize], net: &[Vec<f64>]) -> f64 {
    assert!(!sel.is_empty(), "selection must be non-empty");
    if net.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for u in net {
        let db = data.max_dot(u);
        if db <= EPS {
            total += 1.0;
            continue;
        }
        let best = sel
            .iter()
            .map(|&i| dot(data.point(i), u))
            .fold(0.0_f64, f64::max);
        total += (best / db).clamp(0.0, 1.0);
    }
    total / net.len() as f64
}

/// `k`-happiness evaluator: denominators are the `t`-th largest database
/// score per sampled utility (`t = 1` recovers the ordinary evaluator).
#[derive(Debug, Clone)]
pub struct KthNetEvaluator {
    net: Vec<Vec<f64>>,
    /// `t`-th-max database score per utility.
    db_kth: Vec<f64>,
    t: usize,
}

impl KthNetEvaluator {
    /// Builds the evaluator for rank `t ≥ 1` over `net`.
    ///
    /// # Panics
    /// Panics if `t == 0` or `t > |D|`.
    pub fn new(data: &Dataset, net: Vec<Vec<f64>>, t: usize) -> Self {
        assert!(t >= 1 && t <= data.len(), "rank t must be in 1..=n");
        let db_kth = net
            .iter()
            .map(|u| {
                let mut scores = vec![0.0; data.len()];
                data.dot_batch(u, &mut scores);
                // t-th largest via partial sort
                scores.sort_by(|a, b| b.total_cmp(a));
                scores[t - 1]
            })
            .collect();
        Self { net, db_kth, t }
    }

    /// The rank `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// `mhr_t(S|N) = min_{u∈N} min(1, max_S⟨u,p⟩ / t-th-max_D⟨u,p⟩)`.
    pub fn mhr(&self, data: &Dataset, sel: &[usize]) -> f64 {
        assert!(!sel.is_empty(), "selection must be non-empty");
        let mut out = f64::INFINITY;
        for (u, &kth) in self.net.iter().zip(&self.db_kth) {
            let ratio = if kth <= EPS {
                1.0
            } else {
                let best = sel
                    .iter()
                    .map(|&i| dot(data.point(i), u))
                    .fold(0.0_f64, f64::max);
                (best / kth).min(1.0)
            };
            out = out.min(ratio);
            if out <= 0.0 {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NetEvaluator;
    use fairhms_data::realsim::lsac_example;
    use fairhms_geometry::sphere::grid_net_2d;

    fn lsac() -> Dataset {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        ds
    }

    #[test]
    fn avg_bounds_min() {
        let ds = lsac();
        let net = grid_net_2d(33);
        for sel in [vec![3, 4], vec![0], vec![4, 7]] {
            let avg = avg_happiness_ratio(&ds, &sel, &net);
            let ev = NetEvaluator::new(&ds, net.clone());
            let min = ev.mhr(&ds, &sel);
            assert!(avg >= min - 1e-12, "avg {avg} below min {min}");
            assert!(avg <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn avg_of_full_dataset_is_one() {
        let ds = lsac();
        let net = grid_net_2d(17);
        let all: Vec<usize> = (0..ds.len()).collect();
        assert!((avg_happiness_ratio(&ds, &all, &net) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_happiness_rank1_matches_plain_evaluator() {
        let ds = lsac();
        let net = grid_net_2d(21);
        let k1 = KthNetEvaluator::new(&ds, net.clone(), 1);
        let ev = NetEvaluator::new(&ds, net);
        for sel in [vec![3, 4], vec![4, 7], vec![2]] {
            assert!((k1.mhr(&ds, &sel) - ev.mhr(&ds, &sel)).abs() < 1e-12);
        }
    }

    #[test]
    fn k_happiness_monotone_in_rank() {
        // Larger t weakens the denominator: mhr_t is non-decreasing in t.
        let ds = lsac();
        let net = grid_net_2d(21);
        let sel = vec![4, 7];
        let mut prev = 0.0;
        for t in 1..=4 {
            let ev = KthNetEvaluator::new(&ds, net.clone(), t);
            let v = ev.mhr(&ds, &sel);
            assert!(v >= prev - 1e-12, "t={t}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn k_happiness_saturates_at_one() {
        // With t = 2 a single second-best point can reach mhr_t = 1.
        let ds = lsac();
        let net = grid_net_2d(21);
        let ev = KthNetEvaluator::new(&ds, net, 3);
        let all: Vec<usize> = (0..ds.len()).collect();
        assert_eq!(ev.mhr(&ds, &all), 1.0);
    }

    #[test]
    #[should_panic]
    fn rank_zero_rejected() {
        let ds = lsac();
        KthNetEvaluator::new(&ds, grid_net_2d(5), 0);
    }
}
