//! `BiGreedy+`: adaptive δ-net sampling (Algorithm 4 of the paper).
//!
//! `BiGreedy`'s cost is dominated by the net size `m = O(δ^{-d})`.
//! `BiGreedy+` starts from a small sample `m₀`, doubles it until the
//! achieved capped value stabilizes (`τ_{i−1} − τ_i < λ`) or the cap `M` is
//! reached, and returns the best solution found across rounds. Worst-case
//! cost matches `BiGreedy` at `m = M`; in practice it stops much earlier.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_geometry::sphere::random_net_with_basis;

use crate::bigreedy::{bigreedy_on_net, BiGreedyConfig, BiGreedyMode};
use crate::eval::NetEvaluator;
use crate::types::{CoreError, FairHmsInstance, Solution};

/// Configuration for [`bigreedy_plus`].
#[derive(Debug, Clone)]
pub struct BiGreedyPlusConfig {
    /// Cap-search accuracy `ε` (shared with the inner `BiGreedy` runs).
    pub epsilon: f64,
    /// Stabilization threshold `λ`: stop once `τ_{i−1} − τ_i < λ`.
    pub lambda: f64,
    /// Initial sample size `m₀`; the paper uses `0.05·M`.
    pub m0: Option<usize>,
    /// Maximum sample size `M`; the paper uses `10·k·d`.
    pub max_m: Option<usize>,
    /// Output contract for the inner runs.
    pub mode: BiGreedyMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BiGreedyPlusConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.02,
            lambda: 0.04,
            m0: None,
            max_m: None,
            mode: BiGreedyMode::Feasible,
            seed: 42,
        }
    }
}

impl BiGreedyPlusConfig {
    /// The paper's experimental configuration: `M = 10kd`, `m₀ = 0.05·M`,
    /// `ε = 0.02`, `λ = 0.04`.
    pub fn paper_default(k: usize, d: usize) -> Self {
        let m = 10 * k * d;
        Self {
            m0: Some(((m as f64) * 0.05).ceil() as usize),
            max_m: Some(m),
            ..Self::default()
        }
    }
}

/// Runs `BiGreedy+` on `inst`. [`Solution::mhr`] is the estimate on the
/// final (largest) net, which is also used to compare candidate solutions
/// across rounds on an equal footing.
pub fn bigreedy_plus(
    inst: &FairHmsInstance,
    config: &BiGreedyPlusConfig,
) -> Result<Solution, CoreError> {
    let d = inst.dim();
    let k = inst.k();
    let max_m = config.max_m.unwrap_or(10 * k * d).max(4);
    let m0 = config.m0.unwrap_or(((max_m as f64) * 0.05).ceil() as usize);
    let m0 = m0.clamp(2, max_m);

    let inner = BiGreedyConfig {
        epsilon: config.epsilon,
        sample_size: None, // nets are supplied explicitly below
        delta: 0.1,
        mode: config.mode,
        seed: config.seed,
        ..BiGreedyConfig::default()
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut m = m0;
    let mut prev_tau: Option<f64> = None;
    let mut rounds: Vec<(Solution, usize)> = Vec::new(); // (solution, net size)
    let mut last_net: Vec<Vec<f64>>;
    loop {
        let net = random_net_with_basis(d, m, &mut rng);
        let (sol, tau) = bigreedy_on_net(inst, &net, &inner)?;
        rounds.push((sol, m));
        last_net = net;
        let stop = match prev_tau {
            // τ estimates shrink as nets tighten (Lemma 4.1); stabilization
            // within λ means more samples no longer change the answer.
            Some(prev) => (prev - tau).abs() < config.lambda,
            None => false,
        };
        prev_tau = Some(tau);
        if stop || m >= max_m {
            break;
        }
        m = (m * 2).min(max_m);
    }

    // Compare all round solutions on the final net (the tightest estimate).
    let ev = NetEvaluator::new(inst.data(), last_net);
    let best = rounds
        .into_iter()
        .filter(|(s, _)| !s.is_empty())
        .map(|(s, _)| {
            let est = ev.mhr(inst.data(), &s.indices);
            (s, est)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1));
    match best {
        Some((sol, est)) => Ok(Solution::new(sol.indices, Some(est))),
        None => Err(CoreError::NoFeasibleSolution),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigreedy::bigreedy;
    use crate::eval::mhr_exact_2d;
    use fairhms_data::realsim::lsac_example;

    fn lsac_instance(k: usize) -> FairHmsInstance {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        let c = ds.num_groups();
        FairHmsInstance::new(ds, k, vec![1; c], vec![k - 1; c]).unwrap()
    }

    #[test]
    fn feasible_and_close_to_bigreedy() {
        let inst = lsac_instance(3);
        let plus = bigreedy_plus(&inst, &BiGreedyPlusConfig::paper_default(3, 2)).unwrap();
        assert_eq!(plus.len(), 3);
        assert!(inst.matroid().is_feasible(&plus.indices));
        let full = bigreedy(&inst, &BiGreedyConfig::paper_default(3, 2)).unwrap();
        let exact_plus = mhr_exact_2d(inst.data(), &plus.indices);
        let exact_full = mhr_exact_2d(inst.data(), &full.indices);
        // BiGreedy+ trades a bit of quality for speed (paper Section 4.3).
        assert!(
            exact_plus >= exact_full - 0.1,
            "plus {exact_plus} vs full {exact_full}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = lsac_instance(2);
        let cfg = BiGreedyPlusConfig::paper_default(2, 2);
        let a = bigreedy_plus(&inst, &cfg).unwrap();
        let b = bigreedy_plus(&inst, &cfg).unwrap();
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn respects_max_m() {
        let inst = lsac_instance(2);
        let cfg = BiGreedyPlusConfig {
            m0: Some(2),
            max_m: Some(8),
            lambda: 0.0, // never stabilizes: must stop at max_m
            ..BiGreedyPlusConfig::default()
        };
        let sol = bigreedy_plus(&inst, &cfg).unwrap();
        assert_eq!(sol.len(), 2);
    }
}
