//! Edge-case and failure-injection tests across the core algorithms.
//!
//! Every algorithm must behave sensibly on degenerate inputs: duplicate
//! points, identical points, single groups, exact bounds (`l = h`),
//! infeasible bounds, and `k = n`. These are deliberately nasty inputs the
//! figure harness never produces.

#![cfg(test)]

use fairhms_data::Dataset;

use crate::adapt::{f_greedy, g_greedy};
use crate::adaptive::{bigreedy_plus, BiGreedyPlusConfig};
use crate::bigreedy::{bigreedy, BiGreedyConfig};
use crate::eval::{mhr_exact_2d, mhr_exact_lp};
use crate::intcov::intcov;
use crate::streaming::{streaming_fairhms, StreamingFairHmsConfig};
use crate::types::{CoreError, FairHmsInstance};

fn duplicated_dataset() -> Dataset {
    // Three distinct points, each duplicated, alternating groups.
    let pts = vec![
        1.0, 0.2, 1.0, 0.2, //
        0.2, 1.0, 0.2, 1.0, //
        0.7, 0.7, 0.7, 0.7,
    ];
    Dataset::new("dups", 2, pts, vec![0, 1, 0, 1, 0, 1], vec![]).unwrap()
}

#[test]
fn intcov_handles_duplicate_points() {
    let inst = FairHmsInstance::new(duplicated_dataset(), 3, vec![1, 1], vec![2, 2]).unwrap();
    let sol = intcov(&inst).unwrap();
    assert_eq!(sol.len(), 3);
    assert!(inst.matroid().is_feasible(&sol.indices));
    // duplicates mean the unconstrained optimum is also fair-reachable
    assert!(sol.mhr.unwrap() > 0.9);
}

#[test]
fn all_identical_points_give_mhr_one() {
    let pts = [0.5, 0.5].repeat(6);
    let ds = Dataset::new("same", 2, pts, vec![0, 0, 0, 1, 1, 1], vec![]).unwrap();
    let inst = FairHmsInstance::new(ds, 2, vec![1, 1], vec![1, 1]).unwrap();
    let a = intcov(&inst).unwrap();
    assert!((a.mhr.unwrap() - 1.0).abs() < 1e-9);
    let b = bigreedy(&inst, &BiGreedyConfig::paper_default(2, 2)).unwrap();
    assert!((mhr_exact_2d(inst.data(), &b.indices) - 1.0).abs() < 1e-9);
}

#[test]
fn single_group_reduces_to_vanilla_hms() {
    let mut ds = fairhms_data::realsim::lsac_example()
        .dataset(&["gender"])
        .unwrap();
    ds.normalize();
    // collapse all labels into one group
    let flat = ds.points_flat().to_vec();
    let one = Dataset::new("one", 2, flat, vec![0; ds.len()], vec!["all".into()]).unwrap();
    let via_single = intcov(&FairHmsInstance::new(one, 2, vec![2], vec![2]).unwrap()).unwrap();
    let via_unconstrained = intcov(&FairHmsInstance::unconstrained(ds, 2).unwrap()).unwrap();
    assert_eq!(via_single.indices, via_unconstrained.indices);
    assert!((via_single.mhr.unwrap() - via_unconstrained.mhr.unwrap()).abs() < 1e-12);
}

#[test]
fn exact_bounds_force_exact_counts() {
    let ds = duplicated_dataset();
    let inst = FairHmsInstance::new(ds, 4, vec![2, 2], vec![2, 2]).unwrap();
    for sol in [
        intcov(&inst).unwrap(),
        bigreedy(&inst, &BiGreedyConfig::paper_default(4, 2)).unwrap(),
        f_greedy(&inst).unwrap(),
        g_greedy(&inst).unwrap(),
        streaming_fairhms(&inst, &StreamingFairHmsConfig::default()).unwrap(),
    ] {
        let counts = inst.matroid().counts(&sol.indices);
        assert_eq!(counts, vec![2, 2]);
    }
}

#[test]
fn k_equals_n_selects_everything_feasible() {
    let ds = duplicated_dataset();
    let n = ds.len();
    let inst = FairHmsInstance::new(ds, n, vec![3, 3], vec![3, 3]).unwrap();
    let sol = intcov(&inst).unwrap();
    assert_eq!(sol.len(), n);
    assert!((sol.mhr.unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn infeasible_bounds_rejected_at_construction() {
    let ds = std::sync::Arc::new(duplicated_dataset());
    // lower bound exceeds group size
    assert!(matches!(
        FairHmsInstance::new(std::sync::Arc::clone(&ds), 5, vec![4, 1], vec![4, 4]).unwrap_err(),
        CoreError::Bounds(_)
    ));
    // Σ lower > k
    assert!(matches!(
        FairHmsInstance::new(ds, 2, vec![2, 2], vec![3, 3]).unwrap_err(),
        CoreError::Bounds(_)
    ));
}

#[test]
fn bigreedy_plus_on_tiny_instances() {
    // m0 clamps, k = 1 with one group: the smallest legal problem.
    let ds = Dataset::new("tiny", 2, vec![0.9, 0.1, 0.1, 0.9], vec![0, 0], vec![]).unwrap();
    let inst = FairHmsInstance::new(ds, 1, vec![1], vec![1]).unwrap();
    let sol = bigreedy_plus(&inst, &BiGreedyPlusConfig::paper_default(1, 2)).unwrap();
    assert_eq!(sol.len(), 1);
}

#[test]
fn zero_coordinate_points_are_legal() {
    // points on the axes + origin-ish point
    let pts = vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.5, 0.5];
    let ds = Dataset::new("axes", 2, pts, vec![0, 0, 1, 1], vec![]).unwrap();
    let inst = FairHmsInstance::new(ds, 2, vec![1, 1], vec![1, 1]).unwrap();
    let sol = intcov(&inst).unwrap();
    assert!(inst.matroid().is_feasible(&sol.indices));
    let bg = bigreedy(&inst, &BiGreedyConfig::paper_default(2, 2)).unwrap();
    assert!(inst.matroid().is_feasible(&bg.indices));
}

#[test]
fn evaluators_agree_on_degenerate_selections() {
    let ds = duplicated_dataset();
    // selection of two copies of the same point
    let sel = vec![0, 2];
    let a = mhr_exact_2d(&ds, &sel);
    let b = mhr_exact_lp(&ds, &sel);
    assert!((a - b).abs() < 1e-6);
}

#[test]
fn streaming_order_independence_of_feasibility() {
    // feasibility must hold regardless of stream order (here: row order of
    // a reversed dataset).
    let ds = duplicated_dataset();
    let rev: Vec<usize> = (0..ds.len()).rev().collect();
    let reversed = ds.subset(&rev);
    let inst = FairHmsInstance::new(reversed, 3, vec![1, 1], vec![2, 2]).unwrap();
    let sol = streaming_fairhms(&inst, &StreamingFairHmsConfig::default()).unwrap();
    assert!(inst.matroid().is_feasible(&sol.indices));
}
