//! One-pass (plus one aggregate pass) streaming FairHMS.
//!
//! For datasets too large to buffer, FairHMS can be answered in two passes:
//!
//! 1. an *aggregate* pass computing `max_{p∈D} ⟨u,p⟩` for every utility in
//!    the δ-net (a `m`-vector of running maxima — constant memory);
//! 2. a *selection* pass feeding each tuple once to the swap-based
//!    streaming algorithm ([`fairhms_submodular::streaming`]) under the
//!    fairness matroid with the truncated MHR objective.
//!
//! The output is always feasible (`|S| = k`, bounds met); quality carries
//! the constant-factor streaming guarantee instead of the offline greedy's
//! `1/2`, which is the price of not buffering the data. This extends the
//! paper along the direction of its own foundation — Halabi et al.'s
//! streaming fair submodular maximization.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_geometry::sphere::random_net_with_basis;
use fairhms_geometry::vecmath::dot;
use fairhms_submodular::streaming::{streaming_matroid, StreamingConfig};

use crate::objective::TruncatedMhrObjective;
use crate::types::{CoreError, FairHmsInstance, Solution};

/// Configuration for [`streaming_fairhms`].
#[derive(Debug, Clone)]
pub struct StreamingFairHmsConfig {
    /// δ-net size; defaults to the paper's `10·k·d` when `None`.
    pub sample_size: Option<usize>,
    /// Cap `τ` of the truncated objective. `1.0` (default) maximizes the
    /// plain average happiness; smaller caps focus on the worst case at the
    /// cost of swap sensitivity.
    pub tau: f64,
    /// Swap aggressiveness (see [`StreamingConfig`]).
    pub swap_factor: f64,
    /// RNG seed for the net.
    pub seed: u64,
}

impl Default for StreamingFairHmsConfig {
    fn default() -> Self {
        Self {
            sample_size: None,
            tau: 1.0,
            swap_factor: 2.0,
            seed: 42,
        }
    }
}

/// Runs two-pass streaming FairHMS over the instance's dataset in row
/// order. [`Solution::mhr`] is the δ-net estimate of the result.
pub fn streaming_fairhms(
    inst: &FairHmsInstance,
    config: &StreamingFairHmsConfig,
) -> Result<Solution, CoreError> {
    let data = inst.data();
    let d = inst.dim();
    let m = config.sample_size.unwrap_or(10 * inst.k() * d).max(2);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let net = random_net_with_basis(d, m, &mut rng);

    // Pass 1: running per-utility maxima (the only global aggregate used).
    let mut db_max = vec![0.0_f64; net.len()];
    for i in 0..data.len() {
        let p = data.point(i);
        for (mx, u) in db_max.iter_mut().zip(&net) {
            let s = dot(p, u);
            if s > *mx {
                *mx = s;
            }
        }
    }

    // Pass 2: swap-based streaming selection. The score cache is disabled:
    // a streaming setting cannot precompute an n × m matrix.
    let objective = TruncatedMhrObjective::new(
        data,
        &net,
        &db_max,
        config.tau.clamp(f64::MIN_POSITIVE, 1.0),
        false,
    );
    let stream_cfg = StreamingConfig {
        swap_factor: config.swap_factor,
    };
    let result = streaming_matroid(&objective, inst.matroid(), 0..data.len(), &stream_cfg);
    let indices = inst.complete_to_feasible(&result.items)?;

    let state = objective.state_of(&indices);
    let mut full = TruncatedMhrObjective::new(data, &net, &db_max, 1.0, false);
    full.set_tau(1.0);
    let mhr = full.mhr_of_state(&state);
    Ok(Solution::new(indices, Some(mhr)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigreedy::{bigreedy, BiGreedyConfig};
    use crate::eval::mhr_exact_2d;
    use fairhms_data::realsim::lsac_example;

    fn lsac_instance(k: usize) -> FairHmsInstance {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        let c = ds.num_groups();
        FairHmsInstance::new(ds, k, vec![1; c], vec![k - 1; c]).unwrap()
    }

    #[test]
    fn always_feasible() {
        for k in 2..=4 {
            let inst = lsac_instance(k);
            let sol = streaming_fairhms(&inst, &StreamingFairHmsConfig::default()).unwrap();
            assert_eq!(sol.len(), k);
            assert!(inst.matroid().is_feasible(&sol.indices));
        }
    }

    #[test]
    fn quality_within_constant_of_offline() {
        let inst = lsac_instance(3);
        let streamed = streaming_fairhms(&inst, &StreamingFairHmsConfig::default()).unwrap();
        let offline = bigreedy(&inst, &BiGreedyConfig::paper_default(3, 2)).unwrap();
        let ms = mhr_exact_2d(inst.data(), &streamed.indices);
        let mo = mhr_exact_2d(inst.data(), &offline.indices);
        assert!(ms >= 0.25 * mo, "streaming {ms} vs offline {mo}");
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = lsac_instance(3);
        let cfg = StreamingFairHmsConfig::default();
        assert_eq!(
            streaming_fairhms(&inst, &cfg).unwrap().indices,
            streaming_fairhms(&inst, &cfg).unwrap().indices
        );
    }

    #[test]
    fn smaller_tau_accepted() {
        let inst = lsac_instance(2);
        let cfg = StreamingFairHmsConfig {
            tau: 0.9,
            ..StreamingFairHmsConfig::default()
        };
        let sol = streaming_fairhms(&inst, &cfg).unwrap();
        assert!(inst.matroid().is_feasible(&sol.indices));
    }
}
