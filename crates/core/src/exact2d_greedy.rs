//! An independent exact solver for *unconstrained* 2D HMS, used to
//! cross-validate `IntCov`.
//!
//! Asudeh et al. (SIGMOD 2017) solve 2D RMS exactly by reducing the
//! decision problem to covering `[0, 1]` with at most `k` utility
//! intervals, which — without group constraints — the classic greedy scan
//! answers optimally: repeatedly take the interval that starts within the
//! covered prefix and reaches furthest right. Binary search over the
//! candidate MHR array yields the optimum.
//!
//! This module shares no decision logic with [`mod@crate::intcov`]'s dynamic
//! program (only the geometric primitives), so agreement between the two
//! is a meaningful end-to-end check — enforced by tests here and in
//! `tests/exactness.rs`.

use fairhms_data::Dataset;
use fairhms_geometry::envelope::Envelope;
use fairhms_geometry::line::Line;
use fairhms_geometry::EPS;

use crate::candidates2d::candidate_mhrs;
use crate::eval::mhr_exact_2d;
use crate::types::{CoreError, Solution};

/// Exact unconstrained 2D HMS via greedy interval cover.
///
/// Returns the optimal size-`≤ k` selection (padded to exactly `k` with
/// arbitrary extra points) and its exact MHR.
pub fn exact2d_greedy(data: &Dataset, k: usize) -> Result<Solution, CoreError> {
    if data.dim() != 2 {
        return Err(CoreError::Not2D { dim: data.dim() });
    }
    let n = data.len();
    if n == 0 {
        return Err(CoreError::EmptyDataset);
    }
    if k == 0 {
        return Err(CoreError::KZero);
    }
    if k > n {
        return Err(CoreError::KTooLarge { k, n });
    }

    let lines: Vec<Line> = (0..n).map(|i| Line::from_point(data.point(i))).collect();
    let env = Envelope::upper(&lines);
    let h = candidate_mhrs(data);

    let mut lo = 0usize;
    let mut hi = h.len().saturating_sub(1);
    let mut best: Option<Vec<usize>> = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        match greedy_cover_at(&lines, &env, h[mid], k) {
            Some(cover) => {
                best = Some(cover);
                lo = mid + 1;
            }
            None => {
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
        }
    }

    let mut sel = best.unwrap_or_default();
    // pad to exactly k with unused points (never hurts the MHR)
    for i in 0..n {
        if sel.len() >= k {
            break;
        }
        if !sel.contains(&i) {
            sel.push(i);
        }
    }
    sel.sort_unstable();
    let mhr = mhr_exact_2d(data, &sel);
    Ok(Solution::new(sel, Some(mhr)))
}

/// Greedy interval cover: can `[0, 1]` be covered by at most `k` of the
/// points' `τ`-intervals? Returns the chosen points if so.
fn greedy_cover_at(lines: &[Line], env: &Envelope, tau: f64, k: usize) -> Option<Vec<usize>> {
    let mut intervals: Vec<(f64, f64, usize)> = lines
        .iter()
        .enumerate()
        .filter_map(|(i, l)| env.tau_interval(l, tau).map(|(a, b)| (a, b, i)))
        .collect();
    intervals.sort_by(|x, y| x.0.total_cmp(&y.0));

    let mut covered = 0.0_f64;
    let mut chosen: Vec<usize> = Vec::new();
    let mut idx = 0usize;
    while covered < 1.0 - EPS {
        if chosen.len() >= k {
            return None;
        }
        // furthest-reaching interval starting within the covered prefix
        let mut best: Option<(f64, usize)> = None;
        while idx < intervals.len() && intervals[idx].0 <= covered + EPS {
            let (_, b, i) = intervals[idx];
            match best {
                Some((bb, _)) if b <= bb => {}
                _ => best = Some((b, i)),
            }
            idx += 1;
        }
        match best {
            Some((reach, i)) if reach > covered + EPS => {
                covered = reach;
                chosen.push(i);
            }
            _ => return None, // gap: no interval extends the cover
        }
    }
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intcov::intcov;
    use crate::types::FairHmsInstance;
    use fairhms_data::realsim::lsac_example;

    fn lsac() -> Dataset {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        ds
    }

    #[test]
    fn matches_paper_constants() {
        let ds = lsac();
        let k2 = exact2d_greedy(&ds, 2).unwrap();
        assert!((k2.mhr.unwrap() - 0.9846).abs() < 5e-4);
        let k3 = exact2d_greedy(&ds, 3).unwrap();
        assert!((k3.mhr.unwrap() - 0.9984).abs() < 5e-4);
    }

    #[test]
    fn agrees_with_intcov_on_unconstrained_instances() {
        // Independent decision procedures (greedy scan vs DP) must agree.
        let ds = std::sync::Arc::new(lsac());
        for k in 1..=6 {
            let a = exact2d_greedy(&ds, k).unwrap();
            let inst = FairHmsInstance::unconstrained(std::sync::Arc::clone(&ds), k).unwrap();
            let b = intcov(&inst).unwrap();
            assert!(
                (a.mhr.unwrap() - b.mhr.unwrap()).abs() < 1e-9,
                "k={k}: greedy {} vs intcov {}",
                a.mhr.unwrap(),
                b.mhr.unwrap()
            );
        }
    }

    #[test]
    fn agrees_with_intcov_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<f64> = (0..60).map(|_| rng.gen::<f64>()).collect();
            let mut ds = Dataset::ungrouped("r", 2, pts).unwrap();
            ds.normalize();
            let ds = std::sync::Arc::new(ds);
            let k = 2 + (seed as usize % 3);
            let a = exact2d_greedy(&ds, k).unwrap();
            let inst = FairHmsInstance::unconstrained(std::sync::Arc::clone(&ds), k).unwrap();
            let b = intcov(&inst).unwrap();
            assert!(
                (a.mhr.unwrap() - b.mhr.unwrap()).abs() < 1e-9,
                "seed {seed}, k={k}: {} vs {}",
                a.mhr.unwrap(),
                b.mhr.unwrap()
            );
        }
    }

    #[test]
    fn input_validation() {
        let ds = lsac();
        assert_eq!(exact2d_greedy(&ds, 0).unwrap_err(), CoreError::KZero);
        assert!(matches!(
            exact2d_greedy(&ds, 999).unwrap_err(),
            CoreError::KTooLarge { .. }
        ));
        let three_d = Dataset::ungrouped("3d", 3, vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(
            exact2d_greedy(&three_d, 1).unwrap_err(),
            CoreError::Not2D { dim: 3 }
        );
    }
}
