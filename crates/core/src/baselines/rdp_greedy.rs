//! `RDP-Greedy` (Nanongkai et al., VLDB 2010).
//!
//! The classic regret-driven greedy: seed with the best point for the
//! uniform utility, then repeatedly add the point that currently inflicts
//! the maximum regret on the selection — found by solving one regret LP per
//! candidate (`min t s.t. ⟨u,q⟩ ≤ t ∀q∈S, ⟨u,p⟩ = 1, u ≥ 0`).

use fairhms_data::Dataset;
use fairhms_geometry::vecmath::dot;
use fairhms_lp::hms::point_regret;

use crate::types::CoreError;

/// Runs RDP-Greedy for an unconstrained size-`k` HMS.
pub fn rdp_greedy(data: &Dataset, k: usize) -> Result<Vec<usize>, CoreError> {
    let n = data.len();
    if n == 0 {
        return Err(CoreError::EmptyDataset);
    }
    if k == 0 {
        return Err(CoreError::KZero);
    }
    if k > n {
        return Err(CoreError::KTooLarge { k, n });
    }
    let dim = data.dim();

    // Seed: the best point for the uniform utility.
    let uniform = vec![1.0 / dim as f64; dim];
    let seed = (0..n)
        .max_by(|&a, &b| dot(data.point(a), &uniform).total_cmp(&dot(data.point(b), &uniform)))
        .expect("non-empty");
    let mut sel: Vec<usize> = vec![seed];
    let mut sel_flat: Vec<f64> = data.point(seed).to_vec();

    while sel.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if sel.contains(&i) {
                continue;
            }
            let r = point_regret(dim, &sel_flat, data.point(i));
            match best {
                Some((_, br)) if r <= br => {}
                _ => best = Some((i, r)),
            }
        }
        let Some((i, _)) = best else { break };
        sel.push(i);
        sel_flat.extend_from_slice(data.point(i));
    }
    sel.sort_unstable();
    Ok(sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::mhr_exact_2d;
    use fairhms_data::realsim::lsac_example;

    fn lsac() -> Dataset {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        ds
    }

    #[test]
    fn selects_k_distinct_points() {
        let ds = lsac();
        let sel = rdp_greedy(&ds, 3).unwrap();
        assert_eq!(sel.len(), 3);
        let mut d = sel.clone();
        d.dedup();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn quality_reasonable_on_lsac() {
        // The exact size-3 optimum is 0.9984; the greedy should land close.
        let ds = lsac();
        let sel = rdp_greedy(&ds, 3).unwrap();
        let mhr = mhr_exact_2d(&ds, &sel);
        assert!(mhr > 0.95, "greedy mhr = {mhr}");
    }

    #[test]
    fn covers_extremes_eventually() {
        // With k = n the whole dataset is selected and mhr = 1.
        let ds = lsac();
        let n = ds.len();
        let sel = rdp_greedy(&ds, n).unwrap();
        assert_eq!(sel.len(), n);
        assert!((mhr_exact_2d(&ds, &sel) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn input_validation() {
        let ds = lsac();
        assert_eq!(rdp_greedy(&ds, 0).unwrap_err(), CoreError::KZero);
        assert!(matches!(
            rdp_greedy(&ds, 99).unwrap_err(),
            CoreError::KTooLarge { .. }
        ));
    }
}
