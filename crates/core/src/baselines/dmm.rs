//! `DMM` (Asudeh et al., SIGMOD 2017): discretized matrix min-max.
//!
//! The utility space is discretized into a grid of directions; a binary
//! search over the regret threshold finds the smallest `τ`-gap for which a
//! greedy set cover selects at most `k` points whose happiness ratio is at
//! least `τ` on every grid direction.
//!
//! Faithfulness notes:
//! * Like the original, the discretization is a per-dimension grid, so the
//!   direction count — and the `n × m` score matrix — grows exponentially
//!   with `d`. The paper reports DMM cannot finish beyond `d = 7` due to
//!   memory; we enforce the same gate explicitly ([`DmmConfig::max_dim`])
//!   and also cap the matrix size so pathological inputs fail fast instead
//!   of thrashing.
//! * Like the original, DMM requires `k ≥ d` (its seed/cover structure is
//!   degenerate otherwise); smaller `k` returns
//!   [`CoreError::ResourceLimit`], which is why `G-DMM` curves are missing
//!   whenever some group budget `h_c < d` (paper Section 5.2).

use fairhms_data::Dataset;
use fairhms_geometry::sphere::simplex_grid;

use crate::baselines::{greedy_cover, pad_to_k, score_matrix};
use crate::types::CoreError;

/// Configuration for [`dmm`].
#[derive(Debug, Clone)]
pub struct DmmConfig {
    /// Grid subdivisions per dimension (the paper's γ).
    pub steps: usize,
    /// Dimension gate mirroring the paper's observed memory blowup.
    pub max_dim: usize,
    /// Hard cap on `n × m` score-matrix entries.
    pub max_entries: usize,
    /// Bisection iterations for the regret threshold.
    pub bisection_iters: usize,
}

impl Default for DmmConfig {
    fn default() -> Self {
        Self {
            steps: 8,
            max_dim: 7,
            max_entries: 80_000_000,
            bisection_iters: 40,
        }
    }
}

/// Runs DMM for an unconstrained size-`k` HMS.
pub fn dmm(data: &Dataset, k: usize, config: &DmmConfig) -> Result<Vec<usize>, CoreError> {
    let n = data.len();
    let d = data.dim();
    if n == 0 {
        return Err(CoreError::EmptyDataset);
    }
    if k == 0 {
        return Err(CoreError::KZero);
    }
    if k > n {
        return Err(CoreError::KTooLarge { k, n });
    }
    if d > config.max_dim {
        return Err(CoreError::ResourceLimit {
            what: "DMM's direction grid exceeds memory beyond 7 dimensions",
        });
    }
    if k < d {
        return Err(CoreError::ResourceLimit {
            what: "DMM requires k >= d",
        });
    }
    let net = simplex_grid(d, config.steps);
    let m = net.len();
    if n.saturating_mul(m) > config.max_entries {
        return Err(CoreError::ResourceLimit {
            what: "DMM score matrix exceeds the configured memory cap",
        });
    }
    let scores = score_matrix(data, &net);

    // Bisect the largest τ whose greedy cover fits in k points.
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut best: Option<Vec<usize>> = greedy_cover(&scores, n, m, 0.0, k);
    for _ in 0..config.bisection_iters {
        let mid = 0.5 * (lo + hi);
        match greedy_cover(&scores, n, m, mid, k) {
            Some(cover) => {
                best = Some(cover);
                lo = mid;
            }
            None => hi = mid,
        }
    }
    let cover = best.ok_or(CoreError::NoFeasibleSolution)?;
    Ok(pad_to_k(data, cover, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::mhr_exact_2d;
    use fairhms_data::realsim::lsac_example;

    fn lsac() -> Dataset {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        ds
    }

    #[test]
    fn produces_k_points_with_good_mhr() {
        let ds = lsac();
        let sel = dmm(&ds, 3, &DmmConfig::default()).unwrap();
        assert_eq!(sel.len(), 3);
        let mhr = mhr_exact_2d(&ds, &sel);
        assert!(mhr > 0.9, "DMM mhr = {mhr}");
    }

    #[test]
    fn dimension_gate_enforced() {
        let pts: Vec<f64> = (0..20 * 9).map(|i| (i % 7) as f64 / 7.0).collect();
        let ds = Dataset::ungrouped("9d", 9, pts).unwrap();
        assert!(matches!(
            dmm(&ds, 9, &DmmConfig::default()).unwrap_err(),
            CoreError::ResourceLimit { .. }
        ));
    }

    #[test]
    fn requires_k_at_least_d() {
        let ds = lsac();
        assert!(matches!(
            dmm(&ds, 1, &DmmConfig::default()).unwrap_err(),
            CoreError::ResourceLimit { .. }
        ));
    }

    #[test]
    fn memory_cap_enforced() {
        let ds = lsac();
        let cfg = DmmConfig {
            max_entries: 4,
            ..DmmConfig::default()
        };
        assert!(matches!(
            dmm(&ds, 3, &cfg).unwrap_err(),
            CoreError::ResourceLimit { .. }
        ));
    }
}
