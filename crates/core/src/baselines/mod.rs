//! The RMS/HMS baselines the paper compares against, implemented from
//! their original publications:
//!
//! * [`fn@rdp_greedy`] — the LP-driven greedy of Nanongkai et al. (VLDB 2010);
//! * [`fn@dmm`] — the discretized min-max set-cover algorithm of Asudeh et
//!   al. (SIGMOD 2017);
//! * [`fn@sphere`] — the ε-kernel-flavoured algorithm of Xie et al.
//!   (SIGMOD 2018);
//! * [`fn@hitting_set`] — the hitting-set algorithm of Agarwal et al. /
//!   Kumar & Sintos (SEA 2017 / ALENEX 2018).
//!
//! All four solve *unconstrained* HMS (they predate group fairness); the
//! fair adaptations `G-<Alg>` and `F-Greedy` live in [`crate::adapt`].

pub mod dmm;
pub mod hitting_set;
pub mod rdp_greedy;
pub mod sphere;

pub use dmm::{dmm, DmmConfig};
pub use hitting_set::{hitting_set, HsConfig};
pub use rdp_greedy::rdp_greedy;
pub use sphere::sphere;

use fairhms_data::Dataset;
use fairhms_geometry::vecmath::dot;
use fairhms_geometry::EPS;

/// Normalized score matrix `hr(u, {p})` — row-major `n × m` — plus the
/// per-utility database maxima. Shared by the set-cover-based baselines.
pub(crate) fn score_matrix(data: &Dataset, net: &[Vec<f64>]) -> Vec<f64> {
    let n = data.len();
    let m = net.len();
    let mut db_max = vec![0.0_f64; m];
    for i in 0..n {
        let p = data.point(i);
        for (j, u) in net.iter().enumerate() {
            db_max[j] = db_max[j].max(dot(p, u));
        }
    }
    let mut scores = Vec::with_capacity(n * m);
    for i in 0..n {
        let p = data.point(i);
        for (j, u) in net.iter().enumerate() {
            scores.push(if db_max[j] <= EPS {
                1.0
            } else {
                (dot(p, u) / db_max[j]).clamp(0.0, 1.0)
            });
        }
    }
    scores
}

/// Greedy set cover of `m` utilities by points: point `i` covers utility
/// `j` iff `scores[i·m + j] ≥ tau`. Returns the cover (≤ `limit` points) or
/// `None` when the limit is exceeded or some utility is uncoverable.
pub(crate) fn greedy_cover(
    scores: &[f64],
    n: usize,
    m: usize,
    tau: f64,
    limit: usize,
) -> Option<Vec<usize>> {
    let mut covered = vec![false; m];
    let mut n_covered = 0usize;
    let mut picked: Vec<usize> = Vec::new();
    while n_covered < m {
        if picked.len() >= limit {
            return None;
        }
        let mut best: Option<(usize, usize)> = None; // (count, point)
        for i in 0..n {
            if picked.contains(&i) {
                continue;
            }
            let row = &scores[i * m..(i + 1) * m];
            let count = row
                .iter()
                .zip(&covered)
                .filter(|(&s, &c)| !c && s >= tau - EPS)
                .count();
            match best {
                Some((bc, _)) if count <= bc => {}
                _ => {
                    if count > 0 {
                        best = Some((count, i));
                    }
                }
            }
        }
        let (_, point) = best?; // None: some utility is uncoverable at τ
        let row = &scores[point * m..(point + 1) * m];
        for (j, c) in covered.iter_mut().enumerate() {
            if !*c && row[j] >= tau - EPS {
                *c = true;
                n_covered += 1;
            }
        }
        picked.push(point);
    }
    Some(picked)
}

/// Pads `sel` to `k` distinct points, preferring points with the largest
/// coordinate sums (a cheap quality heuristic for leftover slots).
pub(crate) fn pad_to_k(data: &Dataset, mut sel: Vec<usize>, k: usize) -> Vec<usize> {
    sel.sort_unstable();
    sel.dedup();
    if sel.len() >= k {
        sel.truncate(k);
        return sel;
    }
    let mut rest: Vec<usize> = (0..data.len()).filter(|i| !sel.contains(i)).collect();
    rest.sort_by(|&a, &b| {
        let sa: f64 = data.point(a).iter().sum();
        let sb: f64 = data.point(b).iter().sum();
        sb.total_cmp(&sa)
    });
    for i in rest {
        if sel.len() >= k {
            break;
        }
        sel.push(i);
    }
    sel.sort_unstable();
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_geometry::sphere::grid_net_2d;

    fn toy() -> Dataset {
        Dataset::ungrouped("t", 2, vec![1.0, 0.0, 0.0, 1.0, 0.8, 0.8, 0.1, 0.1]).unwrap()
    }

    #[test]
    fn score_matrix_normalized() {
        let ds = toy();
        let net = grid_net_2d(5);
        let s = score_matrix(&ds, &net);
        assert_eq!(s.len(), 4 * 5);
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // grid_net_2d(5)[0] = (1, 0): point 0 = (1, 0) achieves it exactly,
        // and grid_net_2d(5)[4] = (0, 1) is achieved by point 1.
        assert!((s[0] - 1.0).abs() < 1e-9);
        assert!((s[5 + 4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_cover_finds_small_cover() {
        let ds = toy();
        let net = grid_net_2d(9);
        let s = score_matrix(&ds, &net);
        // τ = 0.8: the diagonal point plus the extremes cover everything.
        let cover = greedy_cover(&s, 4, 9, 0.8, 4).unwrap();
        assert!(cover.len() <= 3);
        // impossible τ with limit 1
        assert!(greedy_cover(&s, 4, 9, 0.999, 1).is_none());
    }

    #[test]
    fn pad_to_k_prefers_large_points() {
        let ds = toy();
        let p = pad_to_k(&ds, vec![3], 2);
        assert_eq!(p.len(), 2);
        assert!(p.contains(&2)); // (0.8, 0.8) has the largest sum
        let q = pad_to_k(&ds, vec![0, 1, 2, 3], 2);
        assert_eq!(q.len(), 2);
    }
}
