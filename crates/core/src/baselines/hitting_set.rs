//! `HS` (Agarwal et al., SEA 2017 / Kumar & Sintos, ALENEX 2018):
//! hitting-set / set-cover with LP validation.
//!
//! The algorithm alternates between (a) solving the discrete problem on a
//! finite utility sample — bisecting the largest threshold `τ` whose greedy
//! set cover uses at most `k` points — and (b) *validating* the candidate
//! solution against the continuous utility space with the exact regret LPs:
//! the utility witnessing the worst violation is added to the sample and
//! the loop repeats. Convergence is declared when the exact MHR is within
//! tolerance of the sampled threshold.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_data::Dataset;
use fairhms_geometry::sphere::random_net;
use fairhms_geometry::vecmath::normalize2;
use fairhms_lp::hms::point_regret_with_witness;

use crate::baselines::{greedy_cover, pad_to_k, score_matrix};
use crate::types::CoreError;

/// Configuration for [`hitting_set`].
#[derive(Debug, Clone)]
pub struct HsConfig {
    /// Initial utility-sample size.
    pub initial_m: usize,
    /// Maximum validate-and-grow iterations.
    pub max_iters: usize,
    /// Convergence tolerance between sampled and exact MHR.
    pub tolerance: f64,
    /// Bisection iterations per discrete solve.
    pub bisection_iters: usize,
    /// RNG seed for the initial sample.
    pub seed: u64,
}

impl Default for HsConfig {
    fn default() -> Self {
        Self {
            initial_m: 64,
            max_iters: 12,
            tolerance: 0.01,
            bisection_iters: 30,
            seed: 42,
        }
    }
}

/// Runs HS for an unconstrained size-`k` HMS.
pub fn hitting_set(data: &Dataset, k: usize, config: &HsConfig) -> Result<Vec<usize>, CoreError> {
    let n = data.len();
    let d = data.dim();
    if n == 0 {
        return Err(CoreError::EmptyDataset);
    }
    if k == 0 {
        return Err(CoreError::KZero);
    }
    if k > n {
        return Err(CoreError::KTooLarge { k, n });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut net = random_net(d, config.initial_m.max(d), &mut rng);
    let mut best_sel: Option<Vec<usize>> = None;

    for _iter in 0..config.max_iters {
        let m = net.len();
        let scores = score_matrix(data, &net);

        // Discrete solve: bisect the largest τ with a ≤ k greedy cover.
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        let mut cover = greedy_cover(&scores, n, m, 0.0, k).ok_or(CoreError::NoFeasibleSolution)?;
        for _ in 0..config.bisection_iters {
            let mid = 0.5 * (lo + hi);
            match greedy_cover(&scores, n, m, mid, k) {
                Some(c) => {
                    cover = c;
                    lo = mid;
                }
                None => hi = mid,
            }
        }
        let sel = pad_to_k(data, cover, k);

        // Validation: exact worst-case regret and its witness utility.
        let sel_flat: Vec<f64> = sel
            .iter()
            .flat_map(|&i| data.point(i).iter().copied())
            .collect();
        let mut worst_regret = 0.0_f64;
        let mut witness: Option<Vec<f64>> = None;
        for i in 0..n {
            let w = point_regret_with_witness(d, &sel_flat, data.point(i));
            if w.regret > worst_regret {
                worst_regret = w.regret;
                witness = Some(w.utility);
            }
        }
        best_sel = Some(sel);
        let exact_mhr = 1.0 - worst_regret;
        if exact_mhr >= lo - config.tolerance {
            break; // the sample certifies the solution
        }
        if let Some(mut u) = witness {
            normalize2(&mut u);
            net.push(u);
        } else {
            break;
        }
    }
    best_sel.ok_or(CoreError::NoFeasibleSolution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::mhr_exact_2d;
    use fairhms_data::realsim::lsac_example;

    fn lsac() -> Dataset {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        ds
    }

    #[test]
    fn produces_k_points() {
        let ds = lsac();
        let sel = hitting_set(&ds, 3, &HsConfig::default()).unwrap();
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn quality_close_to_optimal_on_lsac() {
        // exact optimum for k = 3 is 0.9984
        let ds = lsac();
        let sel = hitting_set(&ds, 3, &HsConfig::default()).unwrap();
        let mhr = mhr_exact_2d(&ds, &sel);
        assert!(mhr > 0.95, "HS mhr = {mhr}");
    }

    #[test]
    fn validation_loop_grows_sample() {
        // With a deliberately tiny initial sample, the validation loop must
        // still converge to a decent solution.
        let ds = lsac();
        let cfg = HsConfig {
            initial_m: 2,
            max_iters: 10,
            ..HsConfig::default()
        };
        let sel = hitting_set(&ds, 2, &cfg).unwrap();
        let mhr = mhr_exact_2d(&ds, &sel);
        assert!(mhr > 0.9, "HS mhr with tiny sample = {mhr}");
    }

    #[test]
    fn input_validation() {
        let ds = lsac();
        assert_eq!(
            hitting_set(&ds, 0, &HsConfig::default()).unwrap_err(),
            CoreError::KZero
        );
    }
}
