//! `Sphere` (Xie et al., SIGMOD 2018), ε-kernel flavoured.
//!
//! The original algorithm seeds the solution with `d` per-dimension extreme
//! ("boundary") points and then covers the utility sphere with a bounded
//! direction set, adding the best point per direction. We reproduce that
//! two-stage structure (seeds + deterministic direction cover) without the
//! original's recursive cell refinement; the behaviour the paper's
//! evaluation exercises is preserved — in particular, when `k` is close to
//! `d` the output is dominated by the extreme points, which is why
//! `G-Sphere` is fast but weak (Section 5.2), and `k < d` is rejected,
//! which is why `G-Sphere` curves vanish whenever some `h_c < d`.

use fairhms_data::Dataset;
use fairhms_geometry::kernel::cover_directions;
use fairhms_geometry::vecmath::dot;

use crate::types::CoreError;

/// Runs Sphere for an unconstrained size-`k` HMS. Requires `k ≥ d`.
pub fn sphere(data: &Dataset, k: usize) -> Result<Vec<usize>, CoreError> {
    let n = data.len();
    let d = data.dim();
    if n == 0 {
        return Err(CoreError::EmptyDataset);
    }
    if k == 0 {
        return Err(CoreError::KZero);
    }
    if k > n {
        return Err(CoreError::KTooLarge { k, n });
    }
    if k < d {
        return Err(CoreError::ResourceLimit {
            what: "Sphere requires k >= d",
        });
    }

    let mut sel: Vec<usize> = Vec::with_capacity(k);
    let push_unique = |sel: &mut Vec<usize>, i: usize| {
        if !sel.contains(&i) {
            sel.push(i);
        }
    };

    // Stage 1: per-dimension extremes (ties to larger coordinate sums).
    for j in 0..d {
        let best = (0..n)
            .max_by(|&a, &b| {
                let pa = data.point(a);
                let pb = data.point(b);
                pa[j]
                    .total_cmp(&pb[j])
                    .then_with(|| pa.iter().sum::<f64>().total_cmp(&pb.iter().sum::<f64>()))
            })
            .expect("non-empty");
        push_unique(&mut sel, best);
    }

    // Stage 2: cover directions, best point per direction, progressively
    // finer covers until k points are collected (or the data is exhausted).
    let mut want = k.max(2 * d);
    while sel.len() < k {
        let dirs = cover_directions(d, want);
        for u in &dirs {
            if sel.len() >= k {
                break;
            }
            let best = (0..n)
                .max_by(|&a, &b| dot(data.point(a), u).total_cmp(&dot(data.point(b), u)))
                .expect("non-empty");
            push_unique(&mut sel, best);
        }
        if want > 64 * k + 64 {
            // Directions keep hitting already-selected points: fall back to
            // the largest remaining points.
            let mut rest: Vec<usize> = (0..n).filter(|i| !sel.contains(i)).collect();
            rest.sort_by(|&a, &b| {
                let sa: f64 = data.point(a).iter().sum();
                let sb: f64 = data.point(b).iter().sum();
                sb.total_cmp(&sa)
            });
            for i in rest {
                if sel.len() >= k {
                    break;
                }
                sel.push(i);
            }
            break;
        }
        want *= 2;
    }
    sel.sort_unstable();
    sel.truncate(k);
    Ok(sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::mhr_exact_2d;
    use fairhms_data::realsim::lsac_example;

    fn lsac() -> Dataset {
        let mut ds = lsac_example().dataset(&["gender"]).unwrap();
        ds.normalize();
        ds
    }

    #[test]
    fn includes_extreme_points() {
        let ds = lsac();
        let sel = sphere(&ds, 2).unwrap();
        // a5 (index 4) has max LSAT, a7 (index 6) max GPA.
        assert_eq!(sel, vec![4, 6]);
    }

    #[test]
    fn rejects_k_below_d() {
        let ds = lsac();
        assert!(matches!(
            sphere(&ds, 1).unwrap_err(),
            CoreError::ResourceLimit { .. }
        ));
    }

    #[test]
    fn larger_k_improves_quality() {
        let ds = lsac();
        let m2 = mhr_exact_2d(&ds, &sphere(&ds, 2).unwrap());
        let m5 = mhr_exact_2d(&ds, &sphere(&ds, 5).unwrap());
        assert!(m5 >= m2 - 1e-12, "m2={m2}, m5={m5}");
        assert_eq!(sphere(&ds, 5).unwrap().len(), 5);
    }

    #[test]
    fn k_equals_n_selects_everything() {
        let ds = lsac();
        let sel = sphere(&ds, ds.len()).unwrap();
        assert_eq!(sel.len(), ds.len());
    }
}
