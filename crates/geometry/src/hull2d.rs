//! 2D convex hulls (Andrew's monotone chain).
//!
//! HMS in two dimensions only ever selects points that are optimal for some
//! nonnegative linear utility — exactly the vertices of the "upper-right"
//! convex hull chain. [`convex_hull`] computes the full hull;
//! [`maxima_chain`] extracts the chain relevant to nonnegative utilities,
//! ordered from the best point for `u = (1, 0)` to the best for `u = (0, 1)`.

use crate::EPS;

/// Cross product of `(b − a) × (c − a)`; positive when `a→b→c` turns left.
#[inline]
fn cross(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
    (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
}

/// Returns the indices of the convex hull of `points` (rows of length 2) in
/// counter-clockwise order. Collinear interior points are excluded.
/// Duplicate points are collapsed. Returns all distinct indices when fewer
/// than three distinct points exist.
pub fn convex_hull(points: &[[f64; 2]]) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return vec![];
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        // Lexicographic (x, y) with total_cmp: total over NaN inputs, and
        // identical to the PartialOrd order for the finite coordinates
        // every caller feeds (validated at dataset construction).
        points[a][0]
            .total_cmp(&points[b][0])
            .then(points[a][1].total_cmp(&points[b][1]))
    });
    idx.dedup_by(|&mut a, &mut b| {
        (points[a][0] - points[b][0]).abs() <= EPS && (points[a][1] - points[b][1]).abs() <= EPS
    });
    if idx.len() <= 2 {
        return idx;
    }

    let mut hull: Vec<usize> = Vec::with_capacity(2 * idx.len());
    // lower chain
    for &i in &idx {
        while hull.len() >= 2
            && cross(
                &points[hull[hull.len() - 2]],
                &points[hull[hull.len() - 1]],
                &points[i],
            ) <= EPS
        {
            hull.pop();
        }
        hull.push(i);
    }
    // upper chain
    let lower_len = hull.len() + 1;
    for &i in idx.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(
                &points[hull[hull.len() - 2]],
                &points[hull[hull.len() - 1]],
                &points[i],
            ) <= EPS
        {
            hull.pop();
        }
        hull.push(i);
    }
    hull.pop(); // last point repeats the first
    hull
}

/// Indices of points optimal for at least one utility `u ∈ R²₊ \ {0}`,
/// ordered by decreasing first coordinate (from the `u = (1,0)` optimum to
/// the `u = (0,1)` optimum). This is the 2D *maxima chain*: the convex hull
/// vertices on the upper-right boundary.
pub fn maxima_chain(points: &[[f64; 2]]) -> Vec<usize> {
    if points.is_empty() {
        return vec![];
    }
    // The chain runs from argmax x (tie: max y) to argmax y (tie: max x)
    // along the hull. Extract by a dedicated monotone scan: sort by
    // (x desc, y desc); sweep keeping points with strictly increasing y and
    // convex turning.
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[b][0]
            .total_cmp(&points[a][0])
            .then(points[b][1].total_cmp(&points[a][1]))
    });
    let mut chain: Vec<usize> = Vec::new();
    for &i in &idx {
        // skip duplicates and y-dominated points
        if let Some(&last) = chain.last() {
            if points[i][1] <= points[last][1] + EPS {
                continue;
            }
        }
        while chain.len() >= 2 {
            let a = &points[chain[chain.len() - 2]];
            let b = &points[chain[chain.len() - 1]];
            // The chain from argmax-x to argmax-y is part of the CCW hull:
            // consecutive triples must turn left; pop right turns and
            // collinear middles.
            if cross(a, b, &points[i]) <= EPS {
                chain.pop();
            } else {
                break;
            }
        }
        chain.push(i);
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_plus_center() {
        let pts = [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.5, 0.5]];
        let mut h = convex_hull(&pts);
        h.sort_unstable();
        assert_eq!(h, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hull_degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[[0.3, 0.4]]), vec![0]);
        let dup = [[0.3, 0.4], [0.3, 0.4]];
        assert_eq!(convex_hull(&dup).len(), 1);
        let collinear = [[0.0, 0.0], [0.5, 0.5], [1.0, 1.0]];
        let h = convex_hull(&collinear);
        assert_eq!(h.len(), 2); // interior collinear point dropped
    }

    #[test]
    fn maxima_chain_basic() {
        let pts = [
            [1.0, 0.0],  // best for (1,0)
            [0.0, 1.0],  // best for (0,1)
            [0.7, 0.7],  // on the chain
            [0.4, 0.4],  // dominated by (0.7,0.7)
            [0.2, 0.95], // on the chain
        ];
        let chain = maxima_chain(&pts);
        assert_eq!(chain, vec![0, 2, 4, 1]);
    }

    #[test]
    fn maxima_chain_agrees_with_envelope_support() {
        use crate::envelope::Envelope;
        use crate::line::Line;
        let mut pts = Vec::new();
        let mut x = 0.37_f64;
        for _ in 0..200 {
            x = (x * 997.3).fract();
            let y = (x * 631.7).fract();
            pts.push([x, y]);
        }
        let lines: Vec<Line> = pts.iter().map(|p| Line::from_point(p)).collect();
        let mut support = Envelope::upper(&lines).support();
        support.sort_unstable();
        support.dedup();
        let mut chain = maxima_chain(&pts);
        chain.sort_unstable();
        // Envelope support ⊆ maxima chain (chain may keep boundary-only
        // points optimal exactly at λ∈{0,1} that tie on the envelope).
        for s in &support {
            assert!(chain.contains(s), "envelope line {s} missing from chain");
        }
    }

    #[test]
    fn maxima_chain_single_dominating_point() {
        let pts = [[0.9, 0.9], [0.1, 0.2], [0.5, 0.5]];
        assert_eq!(maxima_chain(&pts), vec![0]);
    }
}
