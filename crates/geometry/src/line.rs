//! Lines over the 2D utility parameter `λ`.
//!
//! In two dimensions every nonnegative linear utility can be written (after
//! `l1` normalization) as `u = (λ, 1 − λ)` with `λ ∈ [0, 1]`. The score of a
//! point `p = (p₁, p₂)` is then the *line*
//!
//! ```text
//! L_p(λ) = ⟨u, p⟩ = p₂ + (p₁ − p₂)·λ
//! ```
//!
//! `IntCov` reasons entirely about these lines: the database maximum is
//! their upper envelope and a point's `τ`-interval is where its line stays
//! above the scaled envelope.

use crate::EPS;

/// A line `λ ↦ intercept + slope·λ` over `λ ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Value at `λ = 0` (the point's second coordinate).
    pub intercept: f64,
    /// `p₁ − p₂`; the line's value at `λ = 1` is `intercept + slope`.
    pub slope: f64,
}

impl Line {
    /// Creates a line with the given intercept and slope.
    pub fn new(intercept: f64, slope: f64) -> Self {
        Self { intercept, slope }
    }

    /// The score line of a 2D point `p` under `u = (λ, 1 − λ)`.
    pub fn from_point(p: &[f64]) -> Self {
        debug_assert_eq!(p.len(), 2, "Line::from_point requires 2D input");
        Self {
            intercept: p[1],
            slope: p[0] - p[1],
        }
    }

    /// Evaluates the line at `λ`.
    #[inline]
    pub fn eval(&self, lambda: f64) -> f64 {
        self.intercept + self.slope * lambda
    }

    /// The `λ` where `self` and `other` intersect, or `None` if they are
    /// parallel within [`EPS`].
    pub fn intersect(&self, other: &Line) -> Option<f64> {
        let ds = self.slope - other.slope;
        if ds.abs() <= EPS {
            return None;
        }
        Some((other.intercept - self.intercept) / ds)
    }

    /// The utility vector `(λ, 1 − λ)` at which two *points* score equally,
    /// if that crossing lies in `[0, 1]` (i.e. the equalizing utility is
    /// nonnegative). This is the candidate-utility construction of
    /// Algorithm 1, lines 4–7.
    pub fn crossing_of_points(p: &[f64], q: &[f64]) -> Option<f64> {
        let lp = Line::from_point(p);
        let lq = Line::from_point(q);
        let lambda = lp.intersect(&lq)?;
        if (-EPS..=1.0 + EPS).contains(&lambda) {
            Some(lambda.clamp(0.0, 1.0))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_point_matches_inner_product() {
        let p = [0.75, 0.6975]; // normalized LSAC a5
        let l = Line::from_point(&p);
        for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let u = [lambda, 1.0 - lambda];
            let score = u[0] * p[0] + u[1] * p[1];
            assert!((l.eval(lambda) - score).abs() < 1e-12);
        }
    }

    #[test]
    fn intersect_parallel_is_none() {
        let a = Line::new(0.0, 1.0);
        let b = Line::new(0.5, 1.0);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn intersect_basic() {
        let a = Line::new(0.0, 1.0); // λ
        let b = Line::new(1.0, -1.0); // 1 − λ
        let x = a.intersect(&b).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_of_points_inside_unit_interval() {
        // p better at λ=1, q better at λ=0, cross at λ=0.5.
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let lambda = Line::crossing_of_points(&p, &q).unwrap();
        assert!((lambda - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_outside_unit_interval_rejected() {
        // q dominates p; lines cross outside [0,1] or are parallel.
        let p = [0.2, 0.1];
        let q = [0.9, 0.8];
        // slopes are equal (0.1), parallel => None
        assert!(Line::crossing_of_points(&p, &q).is_none());
        // a pair whose crossing is at λ > 1
        let a = [1.0, 0.9];
        let b = [1.2, 0.8];
        // cross: 0.9 + 0.1λ = 0.8 + 0.4λ → λ = 1/3 in range; pick another
        let c = [1.0, 0.0];
        let d = [2.2, 1.0];
        // 0 + λ = 1 + 1.2λ → λ = −5 < 0 → rejected
        assert!(Line::crossing_of_points(&c, &d).is_none());
        let _ = (a, b);
    }
}
