//! Upper envelopes of lines over `λ ∈ [0, 1]`.
//!
//! The upper envelope of the score lines of all database points is exactly
//! the function `λ ↦ max_{p∈D} ⟨(λ, 1−λ), p⟩`, i.e. the best achievable
//! score for every 2D utility. `IntCov` (paper Section 3.1) scales this
//! envelope by a threshold `τ` (the *τ-envelope*) and intersects each
//! point's line with it to obtain the sub-interval of utilities for which
//! that point achieves happiness ratio at least `τ`.
//!
//! The envelope is built with the classic convex-hull-trick stack in
//! `O(n log n)`; because it is a pointwise maximum of linear functions it is
//! convex, which makes every `τ`-interval a single (possibly empty)
//! interval — the fact the interval-cover reduction relies on.

use crate::line::Line;
use crate::EPS;

/// One linear piece of an envelope, active on `[from, to]`.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// The line attaining the maximum on this piece.
    pub line: Line,
    /// Index of the line in the input slice passed to [`Envelope::upper`].
    pub id: usize,
    /// Left end of the piece (inclusive).
    pub from: f64,
    /// Right end of the piece (inclusive).
    pub to: f64,
}

/// The upper envelope of a set of lines, restricted to `λ ∈ [0, 1]`.
#[derive(Debug, Clone)]
pub struct Envelope {
    segments: Vec<Segment>,
}

impl Envelope {
    /// Builds the upper envelope of `lines` over `[0, 1]`.
    ///
    /// ```
    /// use fairhms_geometry::envelope::Envelope;
    /// use fairhms_geometry::line::Line;
    ///
    /// // the two extreme points (1,0) and (0,1): env(λ) = max(λ, 1−λ)
    /// let lines = [Line::from_point(&[1.0, 0.0]), Line::from_point(&[0.0, 1.0])];
    /// let env = Envelope::upper(&lines);
    /// assert_eq!(env.eval(0.0), 1.0);
    /// assert_eq!(env.eval(0.5), 0.5);
    /// assert_eq!(env.support(), vec![1, 0]); // (0,1) wins on the left
    /// ```
    ///
    /// # Panics
    /// Panics if `lines` is empty.
    pub fn upper(lines: &[Line]) -> Self {
        assert!(!lines.is_empty(), "Envelope::upper: no lines");
        // Sort by slope ascending; for equal slopes only the largest
        // intercept can ever be on the envelope.
        let mut order: Vec<usize> = (0..lines.len()).collect();
        order.sort_by(|&a, &b| {
            lines[a]
                .slope
                .total_cmp(&lines[b].slope)
                .then(lines[a].intercept.total_cmp(&lines[b].intercept))
        });
        let mut dedup: Vec<usize> = Vec::with_capacity(order.len());
        for id in order {
            if let Some(&last) = dedup.last() {
                if (lines[last].slope - lines[id].slope).abs() <= EPS {
                    // same slope: keep the higher intercept (current `id`,
                    // since ties sort intercept-ascending)
                    if lines[id].intercept >= lines[last].intercept {
                        dedup.pop();
                    } else {
                        continue;
                    }
                }
            }
            dedup.push(id);
        }

        // Convex-hull-trick stack: a line is dropped when the interval in
        // which it would be maximal is empty.
        let mut stack: Vec<usize> = Vec::with_capacity(dedup.len());
        for id in dedup {
            while stack.len() >= 2 {
                let l1 = &lines[stack[stack.len() - 2]];
                let l2 = &lines[stack[stack.len() - 1]];
                let l3 = &lines[id];
                // l2 is maximal on [x(l1,l2), x(l2,l3)]; empty ⇒ pop.
                let x12 = l1.intersect(l2).expect("distinct slopes");
                let x23 = l2.intersect(l3).expect("distinct slopes");
                if x12 >= x23 - EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if stack.len() == 1 {
                let l1 = &lines[stack[0]];
                let l2 = &lines[id];
                // If the new (steeper) line is everywhere ≥ the single
                // stack line on [0,1], that line is never maximal.
                if l2.eval(0.0) >= l1.eval(0.0) - EPS {
                    stack.pop();
                }
            }
            stack.push(id);
        }

        // Materialize segments, clipped to [0, 1].
        let mut segments = Vec::with_capacity(stack.len());
        let mut from = 0.0_f64;
        for (i, &id) in stack.iter().enumerate() {
            let to = if i + 1 < stack.len() {
                lines[id]
                    .intersect(&lines[stack[i + 1]])
                    .expect("distinct slopes")
                    .clamp(0.0, 1.0)
            } else {
                1.0
            };
            if to > from + EPS || (i + 1 == stack.len() && segments.is_empty()) {
                segments.push(Segment {
                    line: lines[id],
                    id,
                    from,
                    to,
                });
                from = to;
            } else if to >= 1.0 {
                break;
            }
        }
        // Guarantee full coverage of [0,1] even under degenerate clipping.
        if let Some(last) = segments.last_mut() {
            last.to = 1.0;
        }
        if let Some(first) = segments.first_mut() {
            first.from = 0.0;
        }
        Self { segments }
    }

    /// The linear pieces, ordered left to right, jointly covering `[0, 1]`.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Evaluates the envelope at `lambda ∈ [0, 1]`.
    pub fn eval(&self, lambda: f64) -> f64 {
        let seg = self.segment_at(lambda);
        seg.line.eval(lambda)
    }

    /// The segment active at `lambda` (right-continuous at breakpoints).
    pub fn segment_at(&self, lambda: f64) -> &Segment {
        debug_assert!((-EPS..=1.0 + EPS).contains(&lambda));
        let idx = self
            .segments
            .partition_point(|s| s.to < lambda)
            .min(self.segments.len() - 1);
        &self.segments[idx]
    }

    /// Indices (into the original line slice) of the lines that appear on
    /// the envelope — in 2D HMS terms, the points that are optimal for some
    /// utility.
    pub fn support(&self) -> Vec<usize> {
        self.segments.iter().map(|s| s.id).collect()
    }

    /// The interval of `λ` where `line` lies on or above `τ ×` envelope,
    /// or `None` if no such `λ` exists.
    ///
    /// `g(λ) = line(λ) − τ·env(λ)` is concave (linear minus convex), so its
    /// nonnegativity region is one interval; we locate the boundary roots by
    /// walking the pieces.
    pub fn tau_interval(&self, line: &Line, tau: f64) -> Option<(f64, f64)> {
        let g = |seg: &Segment, x: f64| line.eval(x) - tau * seg.line.eval(x);

        let mut left: Option<f64> = None;
        let mut right: Option<f64> = None;
        for seg in &self.segments {
            let g0 = g(seg, seg.from);
            let g1 = g(seg, seg.to);
            if left.is_none() {
                if g0 >= -EPS {
                    left = Some(seg.from);
                } else if g1 >= -EPS {
                    // root in (from, to]: g0 < 0 ≤ g1
                    let t = g0 / (g0 - g1);
                    left = Some(seg.from + t * (seg.to - seg.from));
                }
            }
            if left.is_some() {
                if g1 >= -EPS {
                    right = Some(seg.to);
                } else {
                    if g0 >= -EPS {
                        // root in [from, to): g0 ≥ 0 > g1
                        let t = g0 / (g0 - g1);
                        right = Some(seg.from + t * (seg.to - seg.from));
                    }
                    break; // concavity: g stays negative afterwards
                }
            }
        }
        match (left, right) {
            (Some(l), Some(r)) if r >= l - EPS => Some((l.clamp(0.0, 1.0), r.clamp(0.0, 1.0))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of(points: &[[f64; 2]]) -> Envelope {
        let lines: Vec<Line> = points.iter().map(|p| Line::from_point(p)).collect();
        Envelope::upper(&lines)
    }

    #[test]
    fn single_line_envelope_covers_unit_interval() {
        let env = env_of(&[[0.4, 0.7]]);
        assert_eq!(env.segments().len(), 1);
        assert_eq!(env.segments()[0].from, 0.0);
        assert_eq!(env.segments()[0].to, 1.0);
        assert!((env.eval(0.5) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn two_crossing_lines() {
        let env = env_of(&[[1.0, 0.0], [0.0, 1.0]]);
        assert_eq!(env.segments().len(), 2);
        // At λ=0 the second point (line 1) wins; at λ=1 the first.
        assert_eq!(env.segments()[0].id, 1);
        assert_eq!(env.segments()[1].id, 0);
        assert!((env.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((env.eval(0.5) - 0.5).abs() < 1e-12);
        assert!((env.eval(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_line_not_on_envelope() {
        let env = env_of(&[[1.0, 0.0], [0.0, 1.0], [0.3, 0.3]]);
        assert!(!env.support().contains(&2));
    }

    #[test]
    fn envelope_upper_bounds_all_lines() {
        // deterministic pseudo-random points
        let mut pts = Vec::new();
        let mut x = 0.123_f64;
        for _ in 0..50 {
            x = (x * 997.0).fract();
            let y = ((x * 313.0).fract() * 0.9) + 0.05;
            pts.push([x, y]);
        }
        let lines: Vec<Line> = pts.iter().map(|p| Line::from_point(p)).collect();
        let env = Envelope::upper(&lines);
        for i in 0..=100 {
            let lambda = i as f64 / 100.0;
            let e = env.eval(lambda);
            let best = lines
                .iter()
                .map(|l| l.eval(lambda))
                .fold(f64::MIN, f64::max);
            assert!(
                (e - best).abs() < 1e-9,
                "envelope mismatch at λ={lambda}: env={e} brute={best}"
            );
        }
    }

    #[test]
    fn equal_slope_keeps_higher_intercept() {
        let env = env_of(&[[0.5, 0.2], [0.9, 0.6]]); // both slope 0.3
        assert_eq!(env.support(), vec![1]);
    }

    #[test]
    fn tau_interval_full_for_envelope_member() {
        let pts = [[1.0, 0.0], [0.0, 1.0]];
        let env = env_of(&pts);
        // With τ = 0.5, the line of (1,0) is above 0.5·env wherever
        // λ ≥ ... compute: L(λ)=λ, env = max(1−λ, λ). Need λ ≥ 0.5·max(..).
        let l = Line::from_point(&pts[0]);
        let (a, b) = env.tau_interval(&l, 0.5).unwrap();
        // λ ≥ 0.5(1−λ) ⇔ λ ≥ 1/3, and λ ≥ 0.5λ always on right half.
        assert!((a - 1.0 / 3.0).abs() < 1e-9, "a = {a}");
        assert!((b - 1.0).abs() < 1e-9, "b = {b}");
    }

    #[test]
    fn tau_interval_empty_for_weak_point() {
        let pts = [[1.0, 0.0], [0.0, 1.0], [0.1, 0.1]];
        let env = env_of(&pts);
        let l = Line::from_point(&pts[2]);
        // point (0.1,0.1) scores 0.1 everywhere; envelope min is 0.5.
        assert!(env.tau_interval(&l, 0.5).is_none());
        // ...but for tiny τ it covers everything.
        let (a, b) = env.tau_interval(&l, 0.1).unwrap();
        assert!(a <= 1e-9 && (b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tau_interval_matches_brute_force() {
        let pts: Vec<[f64; 2]> = vec![
            [0.95, 0.05],
            [0.8, 0.5],
            [0.55, 0.75],
            [0.3, 0.9],
            [0.05, 0.98],
        ];
        let env = env_of(&pts);
        for p in &pts {
            let l = Line::from_point(p);
            for tau in [0.5, 0.8, 0.9, 0.95, 0.99] {
                let iv = env.tau_interval(&l, tau);
                // brute force over a fine grid
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for i in 0..=10_000 {
                    let x = i as f64 / 10_000.0;
                    if l.eval(x) >= tau * env.eval(x) - 1e-12 {
                        lo = lo.min(x);
                        hi = hi.max(x);
                    }
                }
                match iv {
                    None => assert!(lo.is_infinite(), "missed interval for τ={tau}"),
                    Some((a, b)) => {
                        assert!((a - lo).abs() < 2e-4, "left: {a} vs {lo} (τ={tau})");
                        assert!((b - hi).abs() < 2e-4, "right: {b} vs {hi} (τ={tau})");
                    }
                }
            }
        }
    }

    #[test]
    fn segment_at_is_right_continuous() {
        let env = env_of(&[[1.0, 0.0], [0.0, 1.0]]);
        let s = env.segment_at(0.5);
        assert!(s.from <= 0.5 && 0.5 <= s.to);
        assert_eq!(env.segment_at(0.0).id, 1);
        assert_eq!(env.segment_at(1.0).id, 0);
    }
}
