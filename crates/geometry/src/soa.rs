//! Cache-blocked structure-of-arrays (SoA) evaluation kernels.
//!
//! The BiGreedy hot path evaluates `m` utility vectors against all `n`
//! points — an `m × n` sweep of inner products that dominates cold solve
//! setup (the `db_max` pass) and the truncated-objective score cache. The
//! row-major layout in [`crate::vecmath`] forces that sweep through one
//! scalar dot product per point: `dim` is tiny (2–8) so each row is a
//! handful of multiply-adds with a loop-carried dependency, and the
//! compiler cannot vectorize across rows.
//!
//! [`SoaMatrix`] stores the same matrix block-tiled column-major: rows are
//! grouped into tiles of [`BLOCK`] rows, and within a tile coordinate `j`
//! of all `BLOCK` rows is contiguous. The kernels then iterate dims-outer /
//! rows-inner, keeping one independent accumulator per row in the tile —
//! a shape LLVM auto-vectorizes into wide FMA lanes.
//!
//! **Bit-identity contract:** for every row `i`, the kernel performs the
//! *same* floating-point operations in the *same* order as
//! [`crate::vecmath::dot`] (`acc = 0.0; for j { acc += p[j] * u[j] }`), and
//! [`SoaMatrix::max_dot`] folds the per-row results with `f64::max` in
//! ascending row order from `0.0`, exactly like
//! [`crate::vecmath::max_utility`]. Reordering happens only *across* rows,
//! never within one, so results are bitwise-equal to the scalar oracle —
//! pinned by `tests/kernel_properties.rs` and the service-level
//! `kernel_equivalence` suite.
//!
//! The active backend is a process global (see [`kernel_backend`]): callers
//! like `Dataset::max_dot` dispatch through it so the scalar path stays
//! reachable as a test/CI axis (`FAIRHMS_TEST_KERNEL=scalar`), mirroring
//! the `FAIRHMS_TEST_SHARDS`/`CODEC`/`WARMSTART` axes.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::vecmath::dot;

/// Rows per SoA tile.
///
/// 64 rows × 8 bytes = one 512-byte column per dimension — a handful of
/// cache lines that stay resident while the kernel walks the (tiny) `dim`
/// axis, and a multiple of every SIMD width the autovectorizer targets
/// (2/4/8 f64 lanes). Larger tiles spill the per-row accumulator array out
/// of registers; smaller ones waste the loop overhead amortization.
pub const BLOCK: usize = 64;

/// Which kernel implementation the workspace routes hot-path evaluation
/// through. See [`kernel_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Row-major scalar loops (`vecmath::dot` per point) — the oracle.
    Scalar,
    /// Block-tiled SoA kernels ([`SoaMatrix`]) — bitwise-equal, faster.
    Blocked,
}

impl KernelBackend {
    /// Stable lowercase name (used in logs and bench output).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Blocked => "blocked",
        }
    }

    /// Backend selected by the `FAIRHMS_TEST_KERNEL` environment variable:
    /// `scalar` forces the oracle path, anything else (or unset) selects
    /// the blocked kernels.
    pub fn from_env() -> Self {
        match std::env::var("FAIRHMS_TEST_KERNEL") {
            Ok(v) if v.eq_ignore_ascii_case("scalar") => KernelBackend::Scalar,
            _ => KernelBackend::Blocked,
        }
    }
}

const BACKEND_UNSET: u8 = 0;
const BACKEND_SCALAR: u8 = 1;
const BACKEND_BLOCKED: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// The process-wide kernel backend.
///
/// Initialized lazily from `FAIRHMS_TEST_KERNEL` on first call; tests and
/// benches may flip it at runtime via [`set_kernel_backend`]. Because both
/// backends are bitwise-equal by contract, a concurrent flip is harmless —
/// any interleaving of backends produces the same answers.
pub fn kernel_backend() -> KernelBackend {
    // ordering: standalone backend flag; no data is published through
    // it (both kernels read the same immutable matrix).
    match BACKEND.load(Ordering::Relaxed) {
        BACKEND_SCALAR => KernelBackend::Scalar,
        BACKEND_BLOCKED => KernelBackend::Blocked,
        _ => {
            let b = KernelBackend::from_env();
            set_kernel_backend(b);
            b
        }
    }
}

/// Overrides the process-wide kernel backend (test/bench hook — the
/// equivalence suites and the scalar-vs-blocked bench need both backends
/// within one process).
pub fn set_kernel_backend(backend: KernelBackend) {
    let v = match backend {
        KernelBackend::Scalar => BACKEND_SCALAR,
        KernelBackend::Blocked => BACKEND_BLOCKED,
    };
    // ordering: standalone backend flag; see kernel_backend().
    BACKEND.store(v, Ordering::Relaxed);
}

/// Block-tiled column-major view of an `n × dim` row-major matrix.
///
/// Layout: rows are split into `⌈n / BLOCK⌉` tiles of [`BLOCK`] rows; the
/// tail tile is zero-padded. Within tile `b`, coordinate `j` of local row
/// `r` (global row `b·BLOCK + r`) lives at
///
/// ```text
/// data[b·BLOCK·dim + j·BLOCK + r]
/// ```
///
/// so each `(tile, dim)` column is a contiguous `BLOCK`-long slice and the
/// kernels stream it with unit stride.
#[derive(Debug, Clone)]
pub struct SoaMatrix {
    n: usize,
    dim: usize,
    data: Vec<f64>,
}

impl SoaMatrix {
    /// Builds the tiled view from a row-major matrix (`points[i*dim + j]`).
    ///
    /// # Panics
    /// Panics if `dim == 0` or `points.len()` is not a multiple of `dim`.
    pub fn from_rows(points: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "SoaMatrix: dim must be positive");
        assert_eq!(
            points.len() % dim,
            0,
            "SoaMatrix: points length {} is not a multiple of dim {dim}",
            points.len()
        );
        let n = points.len() / dim;
        let tiles = n.div_ceil(BLOCK);
        let mut data = vec![0.0; tiles * BLOCK * dim];
        for (i, row) in points.chunks_exact(dim).enumerate() {
            let (b, r) = (i / BLOCK, i % BLOCK);
            let tile = b * BLOCK * dim;
            for (j, &v) in row.iter().enumerate() {
                data[tile + j * BLOCK + r] = v;
            }
        }
        Self { n, dim, data }
    }

    /// Number of rows in the underlying matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Computes one tile's dot products into `acc[0..BLOCK]`.
    ///
    /// Dispatches to a const-`dim` specialization for the workspace's
    /// small dimensionalities (2–8): with the dim loop fully unrolled,
    /// each row's accumulator lives in a register across all dims and the
    /// row axis vectorizes into wide FMA lanes over the unit-stride
    /// columns. The generic fallback (dims-outer, accumulator array in
    /// memory) covers larger dims; both perform each row's multiply-adds
    /// in ascending dim order from `0.0`, matching the scalar `dot`
    /// exactly.
    #[inline]
    fn tile_dots(tile: &[f64], u: &[f64], acc: &mut [f64; BLOCK]) {
        match u.len() {
            1 => Self::tile_dots_fixed::<1>(tile, u, acc),
            2 => Self::tile_dots_fixed::<2>(tile, u, acc),
            3 => Self::tile_dots_fixed::<3>(tile, u, acc),
            4 => Self::tile_dots_fixed::<4>(tile, u, acc),
            5 => Self::tile_dots_fixed::<5>(tile, u, acc),
            6 => Self::tile_dots_fixed::<6>(tile, u, acc),
            7 => Self::tile_dots_fixed::<7>(tile, u, acc),
            8 => Self::tile_dots_fixed::<8>(tile, u, acc),
            _ => Self::tile_dots_generic(tile, u, acc),
        }
    }

    /// Const-`dim` tile kernel: per row, an unrolled `D`-term fold kept in
    /// a register; across rows, independent lanes over unit-stride columns.
    #[inline]
    fn tile_dots_fixed<const D: usize>(tile: &[f64], u: &[f64], acc: &mut [f64; BLOCK]) {
        // Exact-length reslices let LLVM discharge the bounds checks once.
        let tile = &tile[..D * BLOCK];
        let u = &u[..D];
        for (r, a) in acc.iter_mut().enumerate() {
            let mut s = 0.0;
            for j in 0..D {
                s += tile[j * BLOCK + r] * u[j];
            }
            *a = s;
        }
    }

    /// Generic-`dim` fallback: dims-outer with the accumulator array in
    /// memory (still unit-stride, just not register-resident).
    #[inline]
    fn tile_dots_generic(tile: &[f64], u: &[f64], acc: &mut [f64; BLOCK]) {
        acc.fill(0.0);
        for (j, &uj) in u.iter().enumerate() {
            let col = &tile[j * BLOCK..(j + 1) * BLOCK];
            for (a, &v) in acc.iter_mut().zip(col) {
                *a += v * uj;
            }
        }
    }

    /// `max_{i} ⟨row_i, u⟩`, folded from `0.0` in ascending row order —
    /// bitwise-equal to [`crate::vecmath::max_utility`] on the same data.
    ///
    /// # Panics
    /// Panics in debug builds if `u.len() != self.dim()`.
    pub fn max_dot(&self, u: &[f64]) -> f64 {
        debug_assert_eq!(u.len(), self.dim, "max_dot: dimension mismatch");
        let mut best = 0.0_f64;
        let mut acc = [0.0_f64; BLOCK];
        for (b, tile) in self.data.chunks_exact(BLOCK * self.dim).enumerate() {
            Self::tile_dots(tile, u, &mut acc);
            let rows = (self.n - b * BLOCK).min(BLOCK);
            for &v in &acc[..rows] {
                best = best.max(v);
            }
        }
        best
    }

    /// Computes `max_{i} ⟨row_i, u⟩` for *many* utilities in one pass:
    /// `out[t] = max_dot(us[t])`, each bitwise-equal to the single-utility
    /// kernel (and hence to [`crate::vecmath::max_utility`]).
    ///
    /// This is the cache-blocked form of the `m × n` extreme-value sweep:
    /// the tile loop is outermost, so every utility scores a tile while
    /// its few KB are cache-resident and the point matrix streams through
    /// memory **once** instead of once per utility. The per-utility form
    /// is bandwidth-bound at realistic `n` (the matrix exceeds L2); this
    /// form is compute-bound, which is where the SoA layout's wide FMA
    /// lanes actually pay off.
    ///
    /// Bit-identity: per utility, tiles are visited in ascending row
    /// order and each tile's partial results fold into the running max in
    /// ascending row order from `0.0` — the exact fold sequence of the
    /// scalar oracle, merely interleaved across utilities.
    ///
    /// # Panics
    /// Panics if `out.len() != us.len()`; in debug builds also if any
    /// utility's length differs from `self.dim()`.
    pub fn max_dot_many(&self, us: &[Vec<f64>], out: &mut [f64]) {
        assert_eq!(out.len(), us.len(), "max_dot_many: output length mismatch");
        #[cfg(debug_assertions)]
        for u in us {
            debug_assert_eq!(u.len(), self.dim, "max_dot_many: dimension mismatch");
        }
        out.fill(0.0);
        for (b, tile) in self.data.chunks_exact(BLOCK * self.dim).enumerate() {
            let rows = (self.n - b * BLOCK).min(BLOCK);
            // Utilities in groups of 4: each group's four running maxima
            // are independent dependency chains, so the serial `f64::max`
            // latency of one chain hides behind the other three, and each
            // tile value is loaded once for all four utilities.
            let mut ug = us.chunks_exact(4);
            let mut mg = out.chunks_exact_mut(4);
            for (uq, mq) in (&mut ug).zip(&mut mg) {
                let uq = [
                    uq[0].as_slice(),
                    uq[1].as_slice(),
                    uq[2].as_slice(),
                    uq[3].as_slice(),
                ];
                let mq: &mut [f64; 4] = mq.try_into().expect("chunk of 4");
                Self::tile_max4(tile, self.dim, rows, uq, mq);
            }
            let mut acc = [0.0_f64; BLOCK];
            for (u, best) in ug.remainder().iter().zip(mg.into_remainder().iter_mut()) {
                Self::tile_dots(tile, u, &mut acc);
                let mut m = *best;
                for &v in &acc[..rows] {
                    m = m.max(v);
                }
                *best = m;
            }
        }
    }

    /// One tile × four utilities, dispatched to a const-`dim`
    /// specialization (falls back to the accumulator-array path for
    /// `dim > 8`).
    #[inline]
    fn tile_max4(tile: &[f64], dim: usize, rows: usize, us: [&[f64]; 4], m: &mut [f64; 4]) {
        match dim {
            1 => Self::tile_max4_fixed::<1>(tile, rows, us, m),
            2 => Self::tile_max4_fixed::<2>(tile, rows, us, m),
            3 => Self::tile_max4_fixed::<3>(tile, rows, us, m),
            4 => Self::tile_max4_fixed::<4>(tile, rows, us, m),
            5 => Self::tile_max4_fixed::<5>(tile, rows, us, m),
            6 => Self::tile_max4_fixed::<6>(tile, rows, us, m),
            7 => Self::tile_max4_fixed::<7>(tile, rows, us, m),
            8 => Self::tile_max4_fixed::<8>(tile, rows, us, m),
            _ => {
                let mut acc = [0.0_f64; BLOCK];
                for (u, best) in us.iter().zip(m.iter_mut()) {
                    Self::tile_dots_generic(tile, u, &mut acc);
                    let mut mx = *best;
                    for &v in &acc[..rows] {
                        mx = mx.max(v);
                    }
                    *best = mx;
                }
            }
        }
    }

    /// Const-`dim` four-utility tile kernel: per row, four unrolled
    /// `D`-term folds (scalar op order per utility) feeding four
    /// independent register-resident max chains.
    #[inline]
    fn tile_max4_fixed<const D: usize>(
        tile: &[f64],
        rows: usize,
        us: [&[f64]; 4],
        m: &mut [f64; 4],
    ) {
        let tile = &tile[..D * BLOCK];
        let (u0, u1, u2, u3) = (&us[0][..D], &us[1][..D], &us[2][..D], &us[3][..D]);
        let (mut m0, mut m1, mut m2, mut m3) = (m[0], m[1], m[2], m[3]);
        for r in 0..rows.min(BLOCK) {
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for j in 0..D {
                let v = tile[j * BLOCK + r];
                s0 += v * u0[j];
                s1 += v * u1[j];
                s2 += v * u2[j];
                s3 += v * u3[j];
            }
            m0 = m0.max(s0);
            m1 = m1.max(s1);
            m2 = m2.max(s2);
            m3 = m3.max(s3);
        }
        *m = [m0, m1, m2, m3];
    }

    /// Number of row tiles (`⌈n / BLOCK⌉`).
    pub fn num_tiles(&self) -> usize {
        self.n.div_ceil(BLOCK)
    }

    /// Computes tile `b`'s dot products against `u` into `acc`, returning
    /// the number of live rows in the tile (global rows `b·BLOCK ..
    /// b·BLOCK + rows`). Each live element of `acc` is bitwise-equal to
    /// [`crate::vecmath::dot`] on its row.
    ///
    /// This is the building block for callers that interleave their own
    /// per-tile work between utilities (e.g. the objective score cache,
    /// which scatters normalized scores row-major and needs the tile loop
    /// outermost for write locality).
    ///
    /// # Panics
    /// Panics if `b >= self.num_tiles()`.
    pub fn dot_tile(&self, b: usize, u: &[f64], acc: &mut [f64; BLOCK]) -> usize {
        debug_assert_eq!(u.len(), self.dim, "dot_tile: dimension mismatch");
        let tile = &self.data[b * BLOCK * self.dim..(b + 1) * BLOCK * self.dim];
        Self::tile_dots(tile, u, acc);
        (self.n - b * BLOCK).min(BLOCK)
    }

    /// Writes `⟨row_i, u⟩` for every row into `out` — each element
    /// bitwise-equal to [`crate::vecmath::dot`] on the same row.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`; in debug builds also if
    /// `u.len() != self.dim()`.
    pub fn dot_batch(&self, u: &[f64], out: &mut [f64]) {
        debug_assert_eq!(u.len(), self.dim, "dot_batch: dimension mismatch");
        assert_eq!(out.len(), self.n, "dot_batch: output length mismatch");
        let mut acc = [0.0_f64; BLOCK];
        for (b, tile) in self.data.chunks_exact(BLOCK * self.dim).enumerate() {
            Self::tile_dots(tile, u, &mut acc);
            let start = b * BLOCK;
            let rows = (self.n - start).min(BLOCK);
            out[start..start + rows].copy_from_slice(&acc[..rows]);
        }
    }
}

/// Scalar reference for a batched dot pass: `out[i] = ⟨row_i, u⟩` via
/// [`crate::vecmath::dot`] per row. The oracle [`SoaMatrix::dot_batch`] is
/// pinned against.
///
/// # Panics
/// Panics if `out.len()` is not the number of rows.
pub fn dot_batch_rows(points: &[f64], dim: usize, u: &[f64], out: &mut [f64]) {
    debug_assert_eq!(u.len(), dim, "dot_batch_rows: dimension mismatch");
    assert_eq!(
        out.len(),
        points.len() / dim.max(1),
        "dot_batch_rows: output length mismatch"
    );
    for (o, p) in out.iter_mut().zip(points.chunks_exact(dim)) {
        *o = dot(p, u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecmath::{self, dot};

    fn matrix(n: usize, dim: usize) -> Vec<f64> {
        // Deterministic, irregular positive values (the workspace admits
        // only finite non-negative coordinates).
        (0..n * dim)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 997.0)
            .collect()
    }

    #[test]
    fn blocked_kernels_match_scalar_oracle_bitwise() {
        for &n in &[0usize, 1, 2, 63, 64, 65, 127, 128, 129, 300] {
            for &dim in &[1usize, 2, 3, 5, 8] {
                let pts = matrix(n, dim);
                let u: Vec<f64> = (0..dim).map(|j| 0.1 + j as f64 * 0.37).collect();
                let soa = SoaMatrix::from_rows(&pts, dim);
                assert_eq!(soa.len(), n);
                assert_eq!(soa.dim(), dim);
                assert_eq!(
                    soa.max_dot(&u).to_bits(),
                    vecmath::max_utility(&pts, dim, &u).to_bits(),
                    "max_dot mismatch at n={n} dim={dim}"
                );
                let us: Vec<Vec<f64>> = (0..5)
                    .map(|t| {
                        (0..dim)
                            .map(|j| 0.05 * t as f64 + j as f64 * 0.21)
                            .collect()
                    })
                    .collect();
                let mut many = vec![f64::NAN; us.len()];
                soa.max_dot_many(&us, &mut many);
                for (t, got) in many.iter().enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        vecmath::max_utility(&pts, dim, &us[t]).to_bits(),
                        "max_dot_many mismatch at n={n} dim={dim} utility {t}"
                    );
                }
                let mut blocked = vec![0.0; n];
                soa.dot_batch(&u, &mut blocked);
                let mut scalar = vec![0.0; n];
                dot_batch_rows(&pts, dim, &u, &mut scalar);
                for i in 0..n {
                    assert_eq!(
                        blocked[i].to_bits(),
                        scalar[i].to_bits(),
                        "dot_batch mismatch at n={n} dim={dim} row {i}"
                    );
                    assert_eq!(
                        blocked[i].to_bits(),
                        dot(&pts[i * dim..(i + 1) * dim], &u).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn tail_padding_does_not_leak_into_max() {
        // All rows score negative; the zero-padded tail rows must not win
        // the max fold (they are skipped, not compared).
        let pts = vec![0.5; 3 * 2]; // 3 rows, dim 2
        let soa = SoaMatrix::from_rows(&pts, 2);
        let u = [-1.0, -1.0];
        // fold starts at 0.0, exactly like the scalar oracle
        assert_eq!(
            soa.max_dot(&u).to_bits(),
            vecmath::max_utility(&pts, 2, &u).to_bits()
        );
    }

    #[test]
    fn backend_env_parse_and_runtime_override() {
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Blocked.name(), "blocked");
        let prev = kernel_backend();
        set_kernel_backend(KernelBackend::Scalar);
        assert_eq!(kernel_backend(), KernelBackend::Scalar);
        set_kernel_backend(KernelBackend::Blocked);
        assert_eq!(kernel_backend(), KernelBackend::Blocked);
        set_kernel_backend(prev);
    }
}
