//! Geometric substrate for FairHMS.
//!
//! This crate provides the computational-geometry building blocks the
//! FairHMS algorithms rely on:
//!
//! * [`vecmath`] — dense vector kernels (dot products, norms, scaling) on
//!   `&[f64]` slices, shared by every other crate.
//! * [`mod@line`] / [`envelope`] — lines over the 2D utility parameter
//!   `λ ∈ [0, 1]` and their *upper envelope*, the core structure behind the
//!   paper's `IntCov` algorithm (Section 3): each 2D point maps to the line
//!   `λ ↦ p[2] + (p[1] − p[2])λ`, the database maximum is the upper
//!   envelope, and the `τ`-envelope decides which utilities a point keeps
//!   happy.
//! * [`hull2d`] — monotone-chain convex hulls, used to extract the points
//!   that are optimal for at least one linear utility.
//! * [`sphere`] — uniform sampling on the nonnegative unit sphere
//!   `S^{d−1}_+` and `δ`-net construction (Section 4.1 of the paper).
//! * [`kernel`] — ε-kernel style direction sets used by the `Sphere`
//!   baseline.
//! * [`soa`] — cache-blocked structure-of-arrays evaluation kernels
//!   (`SoaMatrix`), bitwise-equal to the scalar `vecmath` loops and the
//!   backbone of the service's `m × n` utility-evaluation hot path.
//!
//! All floating-point comparisons go through the crate-level [`EPS`]
//! tolerance; the algorithms in `fairhms-core` depend on the exact
//! tie-breaking rules documented on each function.

pub mod envelope;
pub mod hull2d;
pub mod kernel;
pub mod line;
pub mod soa;
pub mod sphere;
pub mod vecmath;

pub use envelope::{Envelope, Segment};
pub use line::Line;

/// Global absolute tolerance for floating-point comparisons.
///
/// The FairHMS inputs are normalized to `[0, 1]`, so an absolute tolerance
/// is appropriate: all envelope intersections, happiness ratios, and LP
/// reduced costs live in `O(1)` magnitude.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` and `b` are equal within [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Returns `true` if `a ≥ b − EPS`, i.e. `a` is at least `b` up to tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - EPS
}

/// Returns `true` if `a ≤ b + EPS`.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_helpers_agree_on_boundaries() {
        assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
        assert!(!approx_eq(1.0, 1.0 + 10.0 * EPS));
        assert!(approx_ge(1.0, 1.0 + EPS / 2.0));
        assert!(approx_le(1.0, 1.0 - EPS / 2.0));
        assert!(!approx_ge(0.0, 1.0));
        assert!(!approx_le(1.0, 0.0));
    }
}
