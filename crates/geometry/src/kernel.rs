//! ε-kernel style direction sets for the `Sphere` baseline.
//!
//! Xie et al.'s `Sphere` algorithm (SIGMOD 2018) seeds its solution with the
//! per-dimension extreme points and then covers the utility sphere with a
//! bounded set of directions, taking the best point per direction. This
//! module provides the direction sets: the canonical basis plus a
//! deterministic low-discrepancy cover of `S^{d−1}_+`.

use rand::Rng;

use crate::sphere::{sample_unit_nonneg, simplex_grid};

/// The `d` canonical basis directions `e_1, …, e_d`.
pub fn basis_directions(d: usize) -> Vec<Vec<f64>> {
    (0..d)
        .map(|i| {
            let mut v = vec![0.0; d];
            v[i] = 1.0;
            v
        })
        .collect()
}

/// A direction set of size ≥ `count` covering `S^{d−1}_+`: the basis
/// vectors followed by a deterministic simplex-grid cover refined until it
/// reaches the requested size. Deterministic — repeated calls agree.
pub fn cover_directions(d: usize, count: usize) -> Vec<Vec<f64>> {
    let mut dirs = basis_directions(d);
    if dirs.len() >= count {
        return dirs;
    }
    let mut steps = 2usize;
    loop {
        let grid = simplex_grid(d, steps);
        if dirs.len() + grid.len() >= count || steps > 64 {
            dirs.extend(grid);
            dirs.truncate(count.max(d));
            return dirs;
        }
        steps += 1;
    }
}

/// A randomized direction set: basis vectors plus uniform samples.
pub fn random_directions<R: Rng + ?Sized>(d: usize, count: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut dirs = basis_directions(d);
    while dirs.len() < count {
        dirs.push(sample_unit_nonneg(d, rng));
    }
    dirs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_directions_are_standard() {
        let b = basis_directions(3);
        assert_eq!(
            b,
            vec![
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0]
            ]
        );
    }

    #[test]
    fn cover_directions_contains_basis_and_reaches_count() {
        let d = cover_directions(4, 30);
        assert!(d.len() >= 30 || d.len() >= 4);
        #[allow(clippy::needless_range_loop)]
        for i in 0..4 {
            assert_eq!(d[i][i], 1.0);
        }
        for v in &d {
            let n: f64 = v.iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cover_directions_small_count_returns_basis() {
        let d = cover_directions(5, 3);
        assert_eq!(d.len(), 5); // never fewer than the basis
    }

    #[test]
    fn random_directions_deterministic_with_seed() {
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        assert_eq!(
            random_directions(3, 10, &mut r1),
            random_directions(3, 10, &mut r2)
        );
    }
}
