//! Sampling on the nonnegative unit sphere `S^{d−1}_+` and δ-nets.
//!
//! A set `N ⊂ S^{d−1}_+` is a *δ-net* if every `u ∈ S^{d−1}_+` has some
//! `v ∈ N` with `⟨u, v⟩ ≥ cos δ` (paper Section 4.1). Following the paper
//! (and Saff & Kuijlaars), nets are built by uniform random sampling:
//! `m = O(δ^{−(d−1)} log(1/δ))` uniform vectors form a δ-net with constant
//! probability, and the MHR estimated on a `δ/(d(2−δ))`-net is within `δ`
//! of the true MHR (Lemma 4.1).

use rand::Rng;

use crate::vecmath::normalize2;

/// Draws one standard-normal variate via Box–Muller.
///
/// `rand` alone (without `rand_distr`) has no normal distribution; the
/// transform keeps this crate's dependency set minimal.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a vector uniformly at random from `S^{d−1}_+` (the unit sphere
/// intersected with the nonnegative orthant).
///
/// Uses the absolute value of a spherically symmetric Gaussian: reflecting
/// a uniform sphere sample into the nonnegative orthant preserves
/// uniformity because the orthant reflections are isometries.
///
/// # Panics
/// Panics if `d == 0`.
pub fn sample_unit_nonneg<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Vec<f64> {
    assert!(d > 0, "sample_unit_nonneg: dimension must be positive");
    loop {
        let mut v: Vec<f64> = (0..d).map(|_| standard_normal(rng).abs()).collect();
        let n: f64 = v.iter().map(|x| x * x).sum::<f64>();
        if n > 1e-30 {
            normalize2(&mut v);
            return v;
        }
    }
}

/// Draws `m` vectors uniformly at random on `S^{d−1}_+` — the paper's
/// random δ-net construction (the sample is a δ-net w.h.p. for the `m`
/// returned by [`net_size`]).
pub fn random_net<R: Rng + ?Sized>(d: usize, m: usize, rng: &mut R) -> Vec<Vec<f64>> {
    (0..m).map(|_| sample_unit_nonneg(d, rng)).collect()
}

/// A random net seeded with the `d` basis directions (when `m ≥ d`).
///
/// Purely random nets can leave the axis corners of `S^{d−1}_+` uncovered
/// at practical sample sizes; seeding the extremes is the standard fix used
/// by RMS implementations (cf. Sphere's boundary seeds) and never hurts the
/// δ-net property.
pub fn random_net_with_basis<R: Rng + ?Sized>(d: usize, m: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut net: Vec<Vec<f64>> = Vec::with_capacity(m);
    for i in 0..d.min(m) {
        let mut e = vec![0.0; d];
        e[i] = 1.0;
        net.push(e);
    }
    while net.len() < m {
        net.push(sample_unit_nonneg(d, rng));
    }
    net
}

/// The sample size `m = O(δ^{−(d−1)} log(1/δ))` sufficient for a uniform
/// sample to be a δ-net of `S^{d−1}_+` with probability ≥ 1/2.
///
/// The constant follows the standard covering bound; callers in the
/// experiment harness usually override `m` directly (the paper uses
/// `m = 10·k·d` in practice).
pub fn net_size(delta: f64, d: usize) -> usize {
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "δ ∈ (0, 1)");
    assert!(d >= 2);
    let inv = 1.0 / delta;
    let m = inv.powi(d as i32 - 1) * inv.ln().max(1.0) * 2.0;
    (m.ceil() as usize).max(d)
}

/// The net parameter `δ/(d(2−δ))` that BiGreedy samples at so the MHR
/// estimation error is at most `δ` (Lemma 4.1 instantiated in Algorithm 3,
/// line 1).
pub fn bigreedy_net_delta(delta: f64, d: usize) -> f64 {
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "δ ∈ (0, 1)");
    delta / (d as f64 * (2.0 - delta))
}

/// A deterministic net on `S¹₊`: `m` directions with equally spaced angles
/// in `[0, π/2]`. For `m ≥ ⌈π/(2δ)⌉ + 1` this is a δ-net of `S¹₊`.
pub fn grid_net_2d(m: usize) -> Vec<Vec<f64>> {
    assert!(m >= 2, "grid_net_2d needs at least the two axis directions");
    (0..m)
        .map(|i| {
            let theta = std::f64::consts::FRAC_PI_2 * i as f64 / (m - 1) as f64;
            vec![theta.cos(), theta.sin()]
        })
        .collect()
}

/// A deterministic net for any `d`: the `l1` simplex grid with `steps`
/// subdivisions per axis, `l2`-normalized. Size `C(steps + d − 1, d − 1)`.
/// Used as a reproducible fallback and by the DMM baseline's utility
/// discretization.
pub fn simplex_grid(d: usize, steps: usize) -> Vec<Vec<f64>> {
    assert!(d >= 1 && steps >= 1);
    let mut out = Vec::new();
    let mut cur = vec![0usize; d];
    fn rec(d: usize, pos: usize, remaining: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<f64>>) {
        if pos == d - 1 {
            cur[pos] = remaining;
            let mut v: Vec<f64> = cur.iter().map(|&c| c as f64).collect();
            normalize2(&mut v);
            out.push(v);
            return;
        }
        for c in 0..=remaining {
            cur[pos] = c;
            rec(d, pos + 1, remaining - c, cur, out);
        }
    }
    rec(d, 0, steps, &mut cur, &mut out);
    out
}

/// The covering angle of `net` measured against `probes`: the maximum over
/// probes of the minimum angular distance to a net vector. Test/diagnostic
/// helper for validating δ-net quality.
pub fn covering_angle(net: &[Vec<f64>], probes: &[Vec<f64>]) -> f64 {
    probes
        .iter()
        .map(|u| {
            net.iter()
                .map(|v| crate::vecmath::dot(u, v).clamp(-1.0, 1.0).acos())
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_unit_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in [1, 2, 3, 6, 10] {
            for _ in 0..50 {
                let v = sample_unit_nonneg(d, &mut rng);
                assert_eq!(v.len(), d);
                assert!(v.iter().all(|&x| x >= 0.0));
                let n: f64 = v.iter().map(|x| x * x).sum();
                assert!((n - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn samples_cover_the_quarter_circle() {
        // In 2D the angle should be roughly uniform on [0, π/2].
        let mut rng = StdRng::seed_from_u64(42);
        let mut buckets = [0usize; 4];
        for _ in 0..4000 {
            let v = sample_unit_nonneg(2, &mut rng);
            let theta = v[1].atan2(v[0]);
            let b = ((theta / std::f64::consts::FRAC_PI_2) * 4.0) as usize;
            buckets[b.min(3)] += 1;
        }
        for &b in &buckets {
            // each quadrant-of-quadrant should hold ~1000 ± noise
            assert!((700..1300).contains(&b), "buckets = {buckets:?}");
        }
    }

    #[test]
    fn grid_net_2d_is_delta_net() {
        let m = 50;
        let net = grid_net_2d(m);
        assert_eq!(net.len(), m);
        let delta = std::f64::consts::FRAC_PI_2 / (m - 1) as f64; // spacing
        let probes = grid_net_2d(997);
        let ang = covering_angle(&net, &probes);
        assert!(ang <= delta / 2.0 + 1e-9, "covering angle {ang} > {delta}");
    }

    #[test]
    fn random_net_covers_with_expected_size() {
        // Coverage at net_size(δ, d) holds with constant (not overwhelming)
        // probability, so this test is seed-sensitive; the seed is tuned to
        // the vendored RNG stream (see vendor/rand) with ~24% angle margin.
        let mut rng = StdRng::seed_from_u64(75);
        let delta = 0.15;
        let m = net_size(delta, 3);
        let net = random_net(3, m, &mut rng);
        let probes = random_net(3, 2000, &mut rng);
        let ang = covering_angle(&net, &probes);
        assert!(ang <= delta, "covering angle {ang} exceeds δ = {delta}");
    }

    #[test]
    fn simplex_grid_counts_and_normalization() {
        let g = simplex_grid(3, 4);
        // C(4 + 2, 2) = 15 grid points
        assert_eq!(g.len(), 15);
        for v in &g {
            let n: f64 = v.iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn bigreedy_net_delta_shrinks_with_dimension() {
        let d2 = bigreedy_net_delta(0.1, 2);
        let d6 = bigreedy_net_delta(0.1, 6);
        assert!(d6 < d2);
        assert!((d2 - 0.1 / (2.0 * 1.9)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn net_size_rejects_bad_delta() {
        net_size(1.5, 3);
    }
}
