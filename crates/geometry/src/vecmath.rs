//! Dense vector kernels on `&[f64]` slices.
//!
//! Every crate in the workspace represents points and utility vectors as
//! plain `f64` slices; these free functions are the single source of truth
//! for inner products and norms so that numeric behaviour is identical
//! everywhere.

/// Inner product `⟨a, b⟩`.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (`l2`) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `l1` norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Rescales `a` in place to unit `l2` norm. Zero vectors are left unchanged.
pub fn normalize2(a: &mut [f64]) {
    let n = norm2(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Rescales `a` in place to unit `l1` norm. Zero vectors are left unchanged.
pub fn normalize1(a: &mut [f64]) {
    let n = norm1(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Returns the index and value of the maximum of `iter` by `f64` value,
/// breaking ties towards the smaller index. Returns `None` on an empty
/// iterator or if all values are NaN.
pub fn argmax<I: IntoIterator<Item = f64>>(iter: I) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, v) in iter.into_iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// The maximum utility `max_{p ∈ points} ⟨u, p⟩` over a point set stored
/// row-major in `points` (each row has `dim` entries).
///
/// Returns 0.0 for an empty point set (the natural identity for happiness
/// numerators over empty subsets).
pub fn max_utility(points: &[f64], dim: usize, u: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), dim);
    points
        .chunks_exact(dim)
        .map(|p| dot(p, u))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, 2.0];
        let b = [2.0, 0.0, 1.0];
        assert_eq!(dot(&a, &b), 4.0);
        assert_eq!(norm2(&a), 3.0);
        assert_eq!(norm1(&a), 5.0);
    }

    #[test]
    fn normalize_to_unit_norms() {
        let mut a = [3.0, 4.0];
        normalize2(&mut a);
        assert!((norm2(&a) - 1.0).abs() < 1e-12);
        let mut b = [3.0, 1.0];
        normalize1(&mut b);
        assert!((norm1(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut a = [0.0, 0.0];
        normalize2(&mut a);
        assert_eq!(a, [0.0, 0.0]);
        normalize1(&mut a);
        assert_eq!(a, [0.0, 0.0]);
    }

    #[test]
    fn argmax_breaks_ties_to_first() {
        assert_eq!(argmax([1.0, 3.0, 3.0, 2.0]), Some((1, 3.0)));
        assert_eq!(argmax(std::iter::empty()), None);
        assert_eq!(argmax([f64::NAN, 2.0]), Some((1, 2.0)));
    }

    #[test]
    fn max_utility_over_rows() {
        // two 2D points: (1, 0) and (0.5, 0.5)
        let pts = [1.0, 0.0, 0.5, 0.5];
        assert_eq!(max_utility(&pts, 2, &[1.0, 0.0]), 1.0);
        assert_eq!(max_utility(&pts, 2, &[0.0, 1.0]), 0.5);
        assert_eq!(max_utility(&[], 2, &[0.0, 1.0]), 0.0);
    }
}
