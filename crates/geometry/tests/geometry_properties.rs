//! Property tests for envelopes, hulls, and sphere sampling.

use proptest::prelude::*;

use fairhms_geometry::envelope::Envelope;
use fairhms_geometry::hull2d::{convex_hull, maxima_chain};
use fairhms_geometry::line::Line;
use fairhms_geometry::sphere::{sample_unit_nonneg, simplex_grid};
use fairhms_geometry::vecmath::dot;

fn points_2d() -> impl Strategy<Value = Vec<[f64; 2]>> {
    prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 2..30)
        .prop_map(|v| v.into_iter().map(|(x, y)| [x, y]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn envelope_is_pointwise_max(points in points_2d()) {
        let lines: Vec<Line> = points.iter().map(|p| Line::from_point(p)).collect();
        let env = Envelope::upper(&lines);
        for i in 0..=40 {
            let x = i as f64 / 40.0;
            let brute = lines.iter().map(|l| l.eval(x)).fold(f64::MIN, f64::max);
            prop_assert!((env.eval(x) - brute).abs() < 1e-9, "x = {}", x);
        }
        // segments tile [0, 1] in order
        let segs = env.segments();
        prop_assert_eq!(segs[0].from, 0.0);
        prop_assert_eq!(segs[segs.len() - 1].to, 1.0);
        for w in segs.windows(2) {
            prop_assert!((w[0].to - w[1].from).abs() < 1e-12);
        }
    }

    #[test]
    fn tau_interval_is_sound(points in points_2d(), tau in 0.1f64..=1.0) {
        let lines: Vec<Line> = points.iter().map(|p| Line::from_point(p)).collect();
        let env = Envelope::upper(&lines);
        for l in &lines {
            if let Some((a, b)) = env.tau_interval(l, tau) {
                prop_assert!(a <= b + 1e-12);
                // interior of the interval really is above τ·env
                for i in 1..10 {
                    let x = a + (b - a) * i as f64 / 10.0;
                    prop_assert!(
                        l.eval(x) >= tau * env.eval(x) - 1e-6,
                        "violated at x = {}", x
                    );
                }
            } else {
                // no point is above τ·env anywhere
                for i in 0..=20 {
                    let x = i as f64 / 20.0;
                    prop_assert!(l.eval(x) < tau * env.eval(x) + 1e-6);
                }
            }
        }
    }

    #[test]
    fn hull_contains_all_extremes(points in points_2d()) {
        let hull = convex_hull(&points);
        prop_assert!(!hull.is_empty());
        // argmax of any of a few directions must be on the hull
        for dir in [[1.0, 0.0], [0.0, 1.0], [0.7, 0.3], [-1.0, 0.2]] {
            let best = (0..points.len())
                .max_by(|&a, &b| {
                    dot(&points[a], &dir).total_cmp(&dot(&points[b], &dir))
                })
                .unwrap();
            let best_val = dot(&points[best], &dir);
            // some hull vertex achieves the same value (ties allowed)
            prop_assert!(hull.iter().any(|&h| (dot(&points[h], &dir) - best_val).abs() < 1e-9));
        }
    }

    #[test]
    fn maxima_chain_covers_nonneg_optima(points in points_2d()) {
        let chain = maxima_chain(&points);
        prop_assert!(!chain.is_empty());
        for i in 0..=10 {
            let l = i as f64 / 10.0;
            let u = [l, 1.0 - l];
            let best = (0..points.len())
                .map(|j| dot(&points[j], &u))
                .fold(f64::MIN, f64::max);
            let on_chain = chain
                .iter()
                .map(|&j| dot(&points[j], &u))
                .fold(f64::MIN, f64::max);
            prop_assert!((best - on_chain).abs() < 1e-9, "λ = {}", l);
        }
    }

    #[test]
    fn sphere_samples_unit_nonneg(seed in 0u64..1000, d in 1usize..8) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = sample_unit_nonneg(d, &mut rng);
        prop_assert_eq!(v.len(), d);
        prop_assert!(v.iter().all(|&x| x >= 0.0));
        let n: f64 = v.iter().map(|x| x * x).sum();
        prop_assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_grid_size_formula(d in 2usize..=4, steps in 1usize..=6) {
        // C(steps + d − 1, d − 1)
        let expect = {
            let mut num = 1usize;
            let mut den = 1usize;
            for i in 0..(d - 1) {
                num *= steps + d - 1 - i;
                den *= i + 1;
            }
            num / den
        };
        prop_assert_eq!(simplex_grid(d, steps).len(), expect);
    }
}
