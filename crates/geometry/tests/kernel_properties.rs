//! Property tests pinning the blocked SoA kernels bitwise-equal to the
//! scalar `vecmath` oracles.
//!
//! The whole kernel layer rests on one contract (see `fairhms_geometry::
//! soa`): for every row, the blocked layout performs the *same* sequence
//! of floating-point operations as the scalar fold — multiply by `u[j]`
//! in ascending dimension order, accumulate from `0.0` — so `dot_batch`
//! and `max_dot` are `to_bits`-identical to `vecmath::dot` /
//! `vecmath::max_utility`, not merely close. These properties exercise
//! the contract across arbitrary matrix shapes (tail tiles of every
//! size, n below/at/above `BLOCK` multiples) and value ranges, including
//! negative utilities where tail-padding leaks would surface.

use proptest::prelude::*;

use fairhms_geometry::soa::{SoaMatrix, BLOCK};
use fairhms_geometry::vecmath::{dot, max_utility};

/// A row-major matrix (n·dim values) plus a matching utility vector.
/// Sizes straddle the BLOCK boundary so tail tiles of every occupancy
/// (1..=BLOCK rows) are generated.
fn matrix_and_utility() -> impl Strategy<Value = (Vec<f64>, usize, Vec<f64>)> {
    (1usize..=6, 0usize..=(2 * BLOCK + 5)).prop_flat_map(|(dim, n)| {
        (
            prop::collection::vec(-1.0f64..=1.0, n * dim),
            Just(dim),
            prop::collection::vec(-1.0f64..=1.0, dim),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dot_batch_is_bitwise_equal_to_scalar_dot((points, dim, u) in matrix_and_utility()) {
        let soa = SoaMatrix::from_rows(&points, dim);
        let n = points.len() / dim;
        let mut out = vec![f64::NAN; n];
        soa.dot_batch(&u, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let want = dot(&points[i * dim..(i + 1) * dim], &u);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "row {} of n={} dim={}: blocked {} vs scalar {}", i, n, dim, got, want
            );
        }
    }

    #[test]
    fn max_dot_is_bitwise_equal_to_scalar_fold((points, dim, u) in matrix_and_utility()) {
        let soa = SoaMatrix::from_rows(&points, dim);
        let got = soa.max_dot(&u);
        let want = max_utility(&points, dim, &u);
        prop_assert_eq!(
            got.to_bits(), want.to_bits(),
            "n={} dim={}: blocked {} vs scalar {}", points.len() / dim, dim, got, want
        );
    }

    #[test]
    fn max_dot_many_is_bitwise_equal_per_utility(
        // The batched (tile-outer) sweep interleaves utilities across the
        // tile loop; per utility the fold sequence must stay the scalar
        // one regardless.
        (points, dim, u) in matrix_and_utility(),
        shifts in prop::collection::vec(-0.5f64..=0.5, 1..8),
    ) {
        let us: Vec<Vec<f64>> = shifts
            .iter()
            .map(|s| u.iter().map(|x| x + s).collect())
            .collect();
        let soa = SoaMatrix::from_rows(&points, dim);
        let mut out = vec![f64::NAN; us.len()];
        soa.max_dot_many(&us, &mut out);
        for (t, &got) in out.iter().enumerate() {
            let want = max_utility(&points, dim, &us[t]);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "utility {} of n={} dim={}: batched {} vs scalar {}",
                t, points.len() / dim, dim, got, want
            );
        }
    }

    #[test]
    fn soa_roundtrips_every_row_stride(
        // Re-reading single rows through dot with a one-hot utility
        // recovers the original row-major values exactly: the layout
        // transform loses nothing.
        (points, dim, _) in matrix_and_utility(),
        j in 0usize..6,
    ) {
        let dim_j = j % dim.max(1);
        let soa = SoaMatrix::from_rows(&points, dim);
        let n = points.len() / dim;
        let mut onehot = vec![0.0; dim];
        onehot[dim_j] = 1.0;
        let mut out = vec![0.0; n];
        soa.dot_batch(&onehot, &mut out);
        for i in 0..n {
            let want = points[i * dim + dim_j];
            // x·1.0 plus zero-terms is numerically exact for these finite
            // inputs (== rather than to_bits: a -0.0 row value may come
            // back as +0.0 through the zero accumulation).
            prop_assert_eq!(out[i], want);
        }
    }
}
