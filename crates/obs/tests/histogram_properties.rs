//! Property tests for the log-bucketed histogram: concurrent recording
//! never loses a sample, quantiles stay within the documented relative
//! error bound, and merging two histograms equals recording the union
//! of their samples.

use fairhms_obs::{Histogram, QUANTILE_REL_ERROR};
use proptest::prelude::*;

/// Exact reference quantile over a sorted sample set, using the same
/// rank convention the histogram documents: the smallest value with
/// cumulative rank ≥ ⌈q·count⌉.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram's quantile must land within `QUANTILE_REL_ERROR` of the
/// exact sample quantile (bucket midpoints can sit on either side of the
/// true value, so the bound is two-sided).
fn assert_within_bound(got: u64, exact: u64, q: f64) {
    let tol = (exact as f64 * QUANTILE_REL_ERROR).max(1.0);
    assert!(
        (got as f64 - exact as f64).abs() <= tol,
        "quantile {q}: got {got}, exact {exact}, tolerance {tol}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_documented_relative_error(
        mut values in prop::collection::vec(0u64..1_000_000_000, 1..400)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.max(), *values.last().unwrap());
        for q in [0.5, 0.9, 0.99] {
            assert_within_bound(snap.quantile(q), exact_quantile(&values, q), q);
        }
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        ha.merge_from(&hb);

        let hu = Histogram::new();
        for &v in a.iter().chain(&b) {
            hu.record(v);
        }

        // Bucket counts merge exactly, so every derived statistic of the
        // merged histogram matches the union histogram bit-for-bit.
        let (ma, mu) = (ha.snapshot(), hu.snapshot());
        prop_assert_eq!(ma.count(), mu.count());
        prop_assert_eq!(ma.sum(), mu.sum());
        prop_assert_eq!(ma.max(), mu.max());
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            if ma.count() > 0 {
                prop_assert_eq!(ma.quantile(q), mu.quantile(q));
            }
        }
    }
}

/// Concurrent recorders never lose or double-count a sample: the total
/// count equals the sum of per-thread record counts, the sum equals the
/// sum of recorded values, and quantiles still respect the error bound.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;

    let h = Histogram::new();
    let mut all: Vec<u64> = Vec::with_capacity(THREADS * PER_THREAD);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let h = &h;
            handles.push(scope.spawn(move || {
                // Deterministic per-thread values spanning several octaves.
                let mut local_sum = 0u64;
                for i in 0..PER_THREAD {
                    let v = ((t * PER_THREAD + i) as u64).wrapping_mul(2_654_435_761) % 10_000_000;
                    h.record(v);
                    local_sum += v;
                }
                local_sum
            }));
        }
        let thread_sum: u64 = handles.into_iter().map(|j| j.join().unwrap()).sum();
        // Recompute the same values serially for the reference set.
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                all.push(((t * PER_THREAD + i) as u64).wrapping_mul(2_654_435_761) % 10_000_000);
            }
        }
        assert_eq!(h.sum(), thread_sum);
    });

    assert_eq!(h.count(), (THREADS * PER_THREAD) as u64);
    assert_eq!(h.sum(), all.iter().sum::<u64>());
    all.sort_unstable();
    let snap = h.snapshot();
    assert_eq!(snap.max(), *all.last().unwrap());
    for q in [0.5, 0.9, 0.99] {
        assert_within_bound(snap.quantile(q), exact_quantile(&all, q), q);
    }
}

/// Merging into a histogram that is being concurrently recorded is safe
/// and the final totals account for every sample from both sources.
#[test]
fn concurrent_merge_and_record_totals_agree() {
    const ROUNDS: usize = 50;
    const PER_ROUND: usize = 200;

    let target = Histogram::new();
    std::thread::scope(|scope| {
        let t = &target;
        let writer = scope.spawn(move || {
            for i in 0..(ROUNDS * PER_ROUND) as u64 {
                t.record(i % 4096);
            }
        });
        let merger = scope.spawn(move || {
            for _ in 0..ROUNDS {
                let side = Histogram::new();
                for i in 0..PER_ROUND as u64 {
                    side.record(i);
                }
                t.merge_from(&side);
            }
        });
        writer.join().unwrap();
        merger.join().unwrap();
    });
    assert_eq!(target.count(), 2 * (ROUNDS * PER_ROUND) as u64);
}
