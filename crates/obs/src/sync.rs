//! Poison-recovering synchronization helpers shared by every crate.
//!
//! A worker thread that panics while holding a `Mutex`/`RwLock` poisons
//! it; with the std default, every later `lock().unwrap()` on the same
//! lock then panics too, so one bad query can wedge the whole server.
//! Every lock in this workspace guards data that is structurally valid
//! at each instruction boundary a panic can interrupt — cache maps, LRU
//! tick indexes, queue `VecDeque`s, warm-start slots — because no
//! multi-step invariant spans an unwind point (the maps are updated with
//! single `insert`/`remove` calls). Recovery is therefore safe: take the
//! guard anyway and keep serving.
//!
//! Every recovery increments a process-wide counter surfaced as
//! `locks.recovered` on the service `METRICS` verb, so a panicking
//! worker is visible to operators instead of silently absorbed.
//!
//! The `fairhms-lint` R4 rule bans bare `lock().unwrap()` in non-test
//! service code; these helpers are the sanctioned replacement, and the
//! lint's lock-order graph recognizes their call sites as acquisitions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Process-wide count of poisoned-lock recoveries (all lock kinds).
static RECOVERED: AtomicU64 = AtomicU64::new(0);

/// Number of poisoned locks recovered by this process so far.
///
/// Monotone; nonzero means some thread panicked while holding a lock
/// (the panic itself is reported through the panic hook — this counter
/// is the durable trace once the stderr scrollback is gone).
pub fn recovered_lock_count() -> u64 {
    // ordering: monotonic stat counter; readers tolerate staleness and
    // need no ordering against the recovered data itself.
    RECOVERED.load(Ordering::Relaxed)
}

#[inline]
fn note_recovered() {
    // ordering: monotonic stat counter; increment needs no ordering
    // with respect to the lock state it describes.
    RECOVERED.fetch_add(1, Ordering::Relaxed);
}

/// Locks `m`, recovering (and counting) a poisoned guard instead of
/// propagating the poison panic.
#[inline]
pub fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            note_recovered();
            poisoned.into_inner()
        }
    }
}

/// Read-locks `rw`, recovering (and counting) a poisoned guard instead
/// of propagating the poison panic.
#[inline]
pub fn read_or_recover<T>(rw: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match rw.read() {
        Ok(g) => g,
        Err(poisoned) => {
            note_recovered();
            poisoned.into_inner()
        }
    }
}

/// Write-locks `rw`, recovering (and counting) a poisoned guard instead
/// of propagating the poison panic.
#[inline]
pub fn write_or_recover<T>(rw: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match rw.write() {
        Ok(g) => g,
        Err(poisoned) => {
            note_recovered();
            poisoned.into_inner()
        }
    }
}

/// Waits on `cv` releasing `guard`, recovering (and counting) a
/// poisoned reacquired guard instead of propagating the poison panic.
///
/// Spurious wakeups are *not* filtered — callers keep their usual
/// `while`-condition loop around the wait.
#[inline]
pub fn wait_or_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => {
            note_recovered();
            poisoned.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_a_poisoned_mutex_and_counts_it() {
        let m = Arc::new(Mutex::new(7u32));
        let before = recovered_lock_count();
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        // A bare lock().unwrap() would panic here; the helper recovers.
        {
            let mut g = lock_or_recover(&m);
            *g += 1;
        }
        assert_eq!(*lock_or_recover(&m), 8);
        assert!(recovered_lock_count() > before);
    }

    #[test]
    fn recovers_a_poisoned_rwlock_both_ways() {
        let rw = Arc::new(RwLock::new(1u32));
        let rw2 = Arc::clone(&rw);
        let _ = std::thread::spawn(move || {
            let _g = rw2.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert!(rw.is_poisoned());
        let before = recovered_lock_count();
        assert_eq!(*read_or_recover(&rw), 1);
        *write_or_recover(&rw) = 2;
        assert_eq!(*read_or_recover(&rw), 2);
        assert!(recovered_lock_count() >= before + 3);
    }

    #[test]
    fn unpoisoned_path_does_not_count() {
        let m = Mutex::new(0u8);
        let before = recovered_lock_count();
        drop(lock_or_recover(&m));
        let rw = RwLock::new(0u8);
        drop(read_or_recover(&rw));
        drop(write_or_recover(&rw));
        assert_eq!(recovered_lock_count(), before);
    }

    #[test]
    fn wait_or_recover_passes_through_notifications() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = lock_or_recover(m);
            while !*done {
                done = wait_or_recover(cv, done);
            }
        });
        {
            let (m, cv) = &*pair;
            *lock_or_recover(m) = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
