//! Std-only, offline-safe telemetry primitives for the fairhms service.
//!
//! Everything here is lock-free and allocation-free on the hot path:
//!
//! - [`Counter`] — a monotonically increasing atomic `u64`.
//! - [`Gauge`] — an atomic `i64` level with an RAII [`GaugeGuard`] for
//!   scope-bound increments (active connections, in-flight streams).
//! - [`Histogram`] — a fixed-size, log-bucketed latency histogram with
//!   atomic buckets. Recording is one atomic add per observation (plus a
//!   `fetch_max`), merging is bucket-wise addition (exact), and quantile
//!   extraction carries a documented relative-error bound (see below).
//! - [`Recorder`] / [`SpanTimer`] — a lightweight span API. When the
//!   recorder is disabled a span is a no-op that never reads the clock,
//!   so the disabled cost is a single branch.
//! - [`json`] — a tiny hand-rolled JSON writer so snapshot export needs
//!   no external dependency.
//! - [`sync`] — poison-recovering lock/condvar helpers with a
//!   process-wide recovery counter (`locks.recovered` on `METRICS`), so
//!   one panicking worker cannot wedge every thread behind a poisoned
//!   mutex.
//!
//! # Histogram bucketing and error bound
//!
//! Values (nanoseconds, but the histogram is unit-agnostic) are mapped to
//! buckets HDR-style with `SUB_BITS = 5` sub-buckets per power of two:
//!
//! - `v < 32`: one exact bucket per value (`index = v`, zero error).
//! - `v >= 32`: with `e = 63 - v.leading_zeros()` (so `e >= 5`) and
//!   mantissa `m = v >> (e - 5)` (in `32..64`), the bucket index is
//!   `(e - 5) * 32 + m`. The bucket covering `v` spans `2^(e-5)`
//!   consecutive values starting at `m << (e - 5)`, so its width is at
//!   most `lower / 32`.
//!
//! A quantile estimate returns the **midpoint** of the selected bucket,
//! so the estimate differs from the true value by at most half a bucket
//! width: the relative error is **≤ 1/64 (~1.6%)** against the bucket's
//! lower bound, and trivially ≤ 1/32 (3.125%) against any member of the
//! bucket. Counts and sums are exact; only quantile placement within a
//! bucket is approximate. The top bucket caps at `u64::MAX`, so no value
//! is ever dropped or clamped.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

pub mod sync;

/// Sub-bucket resolution: `2^SUB_BITS` sub-buckets per power of two.
pub const SUB_BITS: u32 = 5;
/// Number of sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count: 32 exact low buckets + 59 octaves (`e = 5..=63`)
/// × 32 sub-buckets.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;
/// Worst-case relative error of a quantile estimate (midpoint rule)
/// against the true observation: half a bucket width over the bucket's
/// lower bound, i.e. `1 / 2^(SUB_BITS + 1)`.
pub const QUANTILE_REL_ERROR: f64 = 1.0 / (1 << (SUB_BITS + 1)) as f64;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        // ordering: independent monotonic cell; merges/readers tolerate staleness.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: independent monotonic cell; merges/readers tolerate staleness.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: stat read; snapshots tolerate torn cross-bucket views.
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (active connections, in-flight streams).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Raises the level by one.
    #[inline]
    pub fn inc(&self) {
        // ordering: independent monotonic cell; merges/readers tolerate staleness.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by one.
    #[inline]
    pub fn dec(&self) {
        // ordering: independent gauge cell; readers tolerate staleness.
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        // ordering: stat read; snapshots tolerate torn cross-bucket views.
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the level for the lifetime of the returned guard.
    pub fn guard(&self) -> GaugeGuard<'_> {
        self.inc();
        GaugeGuard(Some(self))
    }
}

/// RAII handle from [`Gauge::guard`]; lowers the gauge on drop.
#[derive(Debug)]
pub struct GaugeGuard<'a>(Option<&'a Gauge>);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        if let Some(g) = self.0 {
            g.dec();
        }
    }
}

impl GaugeGuard<'_> {
    /// A guard that tracks nothing (disabled telemetry).
    pub const fn disabled() -> Self {
        GaugeGuard(None)
    }
}

/// Maps a value to its bucket index. Exact for `v < 32`, log-bucketed
/// with 32 sub-buckets per octave above that.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let m = (v >> (e - SUB_BITS)) as usize;
        (e - SUB_BITS) as usize * SUB_BUCKETS + m
    }
}

/// Inclusive lower bound of bucket `idx`.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let e = (idx / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        let m = (idx % SUB_BUCKETS + SUB_BUCKETS) as u64;
        m << (e - SUB_BITS)
    }
}

/// Width (number of distinct values) of bucket `idx`.
#[inline]
fn bucket_width(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        1
    } else {
        let e = (idx / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        1u64 << (e - SUB_BITS)
    }
}

/// Midpoint of bucket `idx`, used as the quantile estimate.
#[inline]
fn bucket_midpoint(idx: usize) -> u64 {
    bucket_lower(idx) + bucket_width(idx) / 2
}

/// A fixed-size, mergeable, lock-free latency histogram.
///
/// All mutation is relaxed atomics; `record` is wait-free. See the crate
/// docs for the bucketing scheme and the error bound.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let boxed: Box<[AtomicU64; NUM_BUCKETS]> = match v.into_boxed_slice().try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("vec length is NUM_BUCKETS"),
        };
        Histogram {
            buckets: boxed,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        // ordering: independent monotonic cell; merges/readers tolerate staleness.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // ordering: independent monotonic cell; merges/readers tolerate staleness.
        self.count.fetch_add(1, Ordering::Relaxed);
        // ordering: independent monotonic cell; merges/readers tolerate staleness.
        self.sum.fetch_add(v, Ordering::Relaxed);
        // ordering: running max cell; no cross-variable ordering needed.
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        // ordering: stat read; snapshots tolerate torn cross-bucket views.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations (wraps only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        // ordering: stat read; snapshots tolerate torn cross-bucket views.
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        // ordering: stat read; snapshots tolerate torn cross-bucket views.
        self.max.load(Ordering::Relaxed)
    }

    /// Adds every observation recorded in `other` into `self`.
    /// Bucket-wise addition, so merging is exact: `merge(a, b)` holds the
    /// same distribution as recording the union of both input streams.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            // ordering: stat read; snapshots tolerate torn cross-bucket views.
            let n = src.load(Ordering::Relaxed);
            if n != 0 {
                // ordering: independent monotonic cell; merges/readers tolerate staleness.
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            // ordering: independent monotonic cell; merges/readers tolerate staleness.
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            // ordering: independent monotonic cell; merges/readers tolerate staleness.
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            // ordering: running max cell; no cross-variable ordering needed.
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Takes a point-in-time copy for quantile extraction and export.
    ///
    /// Concurrent recording during the snapshot may skew `count` vs. the
    /// bucket totals by in-flight observations; the snapshot recomputes
    /// its count from the bucket copy so quantiles are self-consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            // ordering: stat read; snapshots tolerate torn cross-bucket views.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            // ordering: stat read; snapshots tolerate torn cross-bucket views.
            sum: self.sum.load(Ordering::Relaxed),
            // ordering: stat read; snapshots tolerate torn cross-bucket views.
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`] with quantile extraction.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Number of observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the midpoint of the
    /// bucket holding the rank-`ceil(q * count)` observation, clamped to
    /// the exact recorded maximum. Returns 0 for an empty snapshot.
    ///
    /// Relative error vs. the true order statistic is bounded by
    /// [`QUANTILE_REL_ERROR`] (half a bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_midpoint(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Gates span recording; cloneable flag shared across subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recorder {
    enabled: bool,
}

impl Recorder {
    /// A recorder that records.
    pub const fn enabled() -> Self {
        Recorder { enabled: true }
    }

    /// A recorder whose spans and guards are no-ops.
    pub const fn disabled() -> Self {
        Recorder { enabled: false }
    }

    /// Whether spans record.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a span that records its elapsed nanoseconds into `hist`
    /// when dropped (or [`SpanTimer::stop`]ped). When the recorder is
    /// disabled this never reads the clock.
    #[inline]
    #[allow(clippy::disallowed_methods)] // the one sanctioned clock read: gated spans
    pub fn span<'a>(&self, hist: &'a Histogram) -> SpanTimer<'a> {
        if self.enabled {
            SpanTimer(Some((hist, Instant::now())))
        } else {
            SpanTimer(None)
        }
    }

    /// Raises `gauge` for the guard's lifetime when enabled; otherwise a
    /// no-op guard.
    #[inline]
    pub fn gauge_guard<'a>(&self, gauge: &'a Gauge) -> GaugeGuard<'a> {
        if self.enabled {
            gauge.guard()
        } else {
            GaugeGuard::disabled()
        }
    }
}

/// RAII span: records elapsed nanoseconds into its histogram on drop.
#[derive(Debug)]
pub struct SpanTimer<'a>(Option<(&'a Histogram, Instant)>);

impl SpanTimer<'_> {
    /// A span that records nothing.
    pub const fn noop() -> Self {
        SpanTimer(None)
    }

    /// Whether this span is live (telemetry enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Ends the span now, returning the recorded nanoseconds (None when
    /// the span was disabled).
    pub fn stop(mut self) -> Option<u64> {
        let (hist, start) = self.0.take()?;
        let ns = saturating_ns(start);
        hist.record(ns);
        Some(ns)
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.0.take() {
            hist.record(saturating_ns(start));
        }
    }
}

#[inline]
fn saturating_ns(start: Instant) -> u64 {
    let ns = start.elapsed().as_nanos();
    if ns > u64::MAX as u128 {
        u64::MAX
    } else {
        ns as u64
    }
}

pub mod json {
    //! Minimal JSON emission — just enough to write snapshot files
    //! without an external dependency. Produces compact, valid JSON for
    //! string/u64/f64 scalars, nested objects, and arrays.

    /// Escapes `s` for inclusion in a JSON string literal (quotes not
    /// included).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders an `f64` as JSON (finite values only; non-finite become
    /// `null` since JSON has no NaN/Inf).
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Incremental JSON object builder.
    #[derive(Debug, Default)]
    pub struct Obj {
        body: String,
    }

    impl Obj {
        /// An empty object.
        pub fn new() -> Self {
            Obj::default()
        }

        fn push_key(&mut self, key: &str) {
            if !self.body.is_empty() {
                self.body.push(',');
            }
            self.body.push('"');
            self.body.push_str(&escape(key));
            self.body.push_str("\":");
        }

        /// Adds a string field.
        pub fn str(mut self, key: &str, val: &str) -> Self {
            self.push_key(key);
            self.body.push('"');
            self.body.push_str(&escape(val));
            self.body.push('"');
            self
        }

        /// Adds an unsigned integer field.
        pub fn u64(mut self, key: &str, val: u64) -> Self {
            self.push_key(key);
            self.body.push_str(&val.to_string());
            self
        }

        /// Adds a float field (non-finite rendered as `null`).
        pub fn f64(mut self, key: &str, val: f64) -> Self {
            self.push_key(key);
            self.body.push_str(&num(val));
            self
        }

        /// Adds a pre-rendered JSON value (object, array, literal).
        pub fn raw(mut self, key: &str, val: &str) -> Self {
            self.push_key(key);
            self.body.push_str(val);
            self
        }

        /// Finishes the object.
        pub fn build(self) -> String {
            format!("{{{}}}", self.body)
        }
    }

    /// Renders a sequence of pre-rendered JSON values as an array.
    pub fn arr<I: IntoIterator<Item = String>>(items: I) -> String {
        let mut body = String::new();
        for it in items {
            if !body.is_empty() {
                body.push(',');
            }
            body.push_str(&it);
        }
        format!("[{body}]")
    }
}

impl HistogramSnapshot {
    /// Renders the snapshot's summary statistics as a JSON object
    /// (`count`, `sum`, `mean`, `p50`, `p90`, `p99`, `max` — times in
    /// the recorded unit, nanoseconds throughout the service).
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .u64("count", self.count())
            .u64("sum", self.sum())
            .f64("mean", self.mean())
            .u64("p50", self.p50())
            .u64("p90", self.p90())
            .u64("p99", self.p99())
            .u64("max", self.max())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            let idx = bucket_index(v);
            assert_eq!(idx, v as usize);
            assert_eq!(bucket_lower(idx), v);
            assert_eq!(bucket_width(idx), 1);
        }
    }

    #[test]
    fn bucket_bounds_cover_value() {
        for &v in &[
            32u64,
            33,
            63,
            64,
            100,
            1_000,
            4_095,
            4_096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "idx {idx} for {v}");
            let lo = bucket_lower(idx);
            let width = bucket_width(idx);
            assert!(lo <= v, "lower {lo} > v {v}");
            assert!(
                v - lo < width,
                "v {v} outside bucket [{lo}, {lo}+{width}) idx {idx}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone_across_boundaries() {
        let mut prev = bucket_index(0);
        for v in 1..10_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
        }
    }

    #[test]
    fn quantiles_hit_documented_bound() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        for &(q, exact) in &[(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let est = s.quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= QUANTILE_REL_ERROR + 1e-9,
                "q={q}: est {est} vs exact {exact} (err {err})"
            );
        }
        assert_eq!(s.max(), 10_000);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let u = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            u.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 7 + 1);
            u.record(v * 7 + 1);
        }
        a.merge_from(&b);
        let sa = a.snapshot();
        let su = u.snapshot();
        assert_eq!(sa.count(), su.count());
        assert_eq!(sa.sum(), su.sum());
        assert_eq!(sa.max(), su.max());
        assert_eq!(sa.buckets, su.buckets);
    }

    #[test]
    fn disabled_recorder_spans_do_not_record() {
        let h = Histogram::new();
        let r = Recorder::disabled();
        {
            let span = r.span(&h);
            assert!(!span.is_recording());
        }
        assert_eq!(h.count(), 0);
        assert_eq!(r.span(&h).stop(), None);
    }

    #[test]
    fn enabled_recorder_spans_record_on_drop_and_stop() {
        let h = Histogram::new();
        let r = Recorder::enabled();
        {
            let _span = r.span(&h);
        }
        let ns = r.span(&h).stop();
        assert!(ns.is_some());
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn gauge_guard_tracks_scope() {
        let g = Gauge::new();
        let r = Recorder::enabled();
        {
            let _a = r.gauge_guard(&g);
            let _b = r.gauge_guard(&g);
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
        {
            let _c = Recorder::disabled().gauge_guard(&g);
            assert_eq!(g.get(), 0);
        }
    }

    #[test]
    fn json_writer_emits_valid_shapes() {
        let obj = json::Obj::new()
            .str("name", "a\"b\\c\n")
            .u64("n", 7)
            .f64("x", 1.5)
            .raw("inner", &json::arr(vec!["1".into(), "2".into()]))
            .build();
        assert_eq!(
            obj,
            "{\"name\":\"a\\\"b\\\\c\\n\",\"n\":7,\"x\":1.5,\"inner\":[1,2]}"
        );
        assert_eq!(json::num(f64::NAN), "null");
    }

    #[test]
    fn snapshot_json_contains_quantiles() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let j = h.snapshot().to_json();
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("\"p50\""));
        assert!(j.contains("\"max\":20"));
    }
}
