//! Property tests: the fairness matroid satisfies the matroid axioms for
//! arbitrary valid bounds, and its helpers are mutually consistent.

use proptest::prelude::*;

use fairhms_matroid::{verify_axioms, FairnessMatroid, Matroid, PartitionMatroid, UniformMatroid};

/// Random ground set of ≤ 8 elements over ≤ 3 groups with valid bounds.
fn instance_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>, usize)> {
    (2usize..=8, 1usize..=3).prop_flat_map(|(n, c)| {
        (
            prop::collection::vec(0..c, n),
            prop::collection::vec(0usize..=2, c),
            Just(c),
            1usize..=5,
        )
            .prop_map(move |(groups, raw_lower, c, k)| {
                // make bounds valid for these groups
                let mut sizes = vec![0usize; c];
                for &g in &groups {
                    sizes[g] += 1;
                }
                let lower: Vec<usize> = raw_lower
                    .iter()
                    .zip(&sizes)
                    .map(|(&l, &s)| l.min(s))
                    .collect();
                let mut k = k.max(lower.iter().sum());
                let upper: Vec<usize> = lower
                    .iter()
                    .zip(&sizes)
                    .map(|(&l, &s)| (l + 2).min(s).max(l))
                    .collect();
                let attainable: usize = upper.iter().zip(&sizes).map(|(&h, &s)| h.min(s)).sum();
                k = k.min(attainable.max(1));
                (groups, lower, upper, k)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fairness_matroid_axioms((groups, lower, upper, k) in instance_strategy()) {
        if let Ok(m) = FairnessMatroid::new(groups, lower, upper, k) {
            prop_assert!(verify_axioms(&m).is_ok(), "{:?}", verify_axioms(&m));
        }
    }

    #[test]
    fn feasible_sets_are_independent((groups, lower, upper, k) in instance_strategy()) {
        let Ok(m) = FairnessMatroid::new(groups.clone(), lower, upper, k) else { return Ok(()); };
        let n = groups.len();
        // every subset: feasible ⟹ independent (paper Section 2)
        for mask in 0u32..(1 << n) {
            let items: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if m.is_feasible(&items) {
                prop_assert!(m.is_independent(&items));
                prop_assert_eq!(m.violations(&items), 0);
            }
        }
    }

    #[test]
    fn independent_sets_extend_to_feasible((groups, lower, upper, k) in instance_strategy()) {
        // Halabi et al.: every independent set has a feasible superset.
        let Ok(m) = FairnessMatroid::new(groups.clone(), lower, upper, k) else { return Ok(()); };
        let n = groups.len();
        for mask in 0u32..(1 << n) {
            let items: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if !m.is_independent(&items) {
                continue;
            }
            // greedily grow to size k if possible
            let mut grown = items.clone();
            loop {
                if m.is_feasible(&grown) {
                    break;
                }
                let next = (0..n).find(|&i| !grown.contains(&i) && m.can_extend(&grown, i));
                match next {
                    Some(i) => grown.push(i),
                    None => break,
                }
            }
            prop_assert!(
                m.is_feasible(&grown),
                "independent set {:?} could not grow to feasible (got {:?})",
                items,
                grown
            );
        }
    }

    #[test]
    fn uniform_and_partition_axioms(n in 2usize..=7, k in 0usize..=4, caps in prop::collection::vec(0usize..=2, 1..=3)) {
        verify_axioms(&UniformMatroid::new(n, k)).unwrap();
        let c = caps.len();
        let groups: Vec<usize> = (0..n).map(|i| i % c).collect();
        verify_axioms(&PartitionMatroid::new(groups, caps)).unwrap();
    }
}
