//! The uniform matroid: independent iff `|S| ≤ k`.

use crate::Matroid;

/// Uniform matroid `U_{k,n}`: sets of at most `k` of the `n` elements.
#[derive(Debug, Clone)]
pub struct UniformMatroid {
    n: usize,
    k: usize,
}

impl UniformMatroid {
    /// Creates `U_{k,n}`.
    pub fn new(n: usize, k: usize) -> Self {
        Self { n, k }
    }

    /// The cardinality budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Matroid for UniformMatroid {
    fn ground_size(&self) -> usize {
        self.n
    }

    fn is_independent(&self, items: &[usize]) -> bool {
        items.len() <= self.k && items.iter().all(|&i| i < self.n)
    }

    fn can_extend(&self, items: &[usize], new_item: usize) -> bool {
        items.len() < self.k && new_item < self.n
    }

    fn rank_upper_bound(&self) -> usize {
        self.k.min(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_axioms;

    #[test]
    fn axioms_hold() {
        verify_axioms(&UniformMatroid::new(6, 3)).unwrap();
        verify_axioms(&UniformMatroid::new(4, 0)).unwrap();
        verify_axioms(&UniformMatroid::new(3, 5)).unwrap();
    }

    #[test]
    fn basic_membership() {
        let m = UniformMatroid::new(5, 2);
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[0, 4]));
        assert!(!m.is_independent(&[0, 1, 2]));
        assert!(!m.is_independent(&[9]));
        assert!(m.can_extend(&[0], 1));
        assert!(!m.can_extend(&[0, 1], 2));
        assert_eq!(m.rank_upper_bound(), 2);
    }
}
