//! The group-fairness matroid of the paper (Section 2).
//!
//! Independent sets are
//! `{ S : Σ_c max(|S ∩ D_c|, l_c) ≤ k ∧ |S ∩ D_c| ≤ h_c ∀c }`.
//! Intuitively: a set is independent when it can still be completed to a
//! feasible size-`k` selection — the slack `k − Σ_c max(count_c, l_c)`
//! measures how many "free" picks remain after reserving room for every
//! group's unmet lower bound.

use std::sync::Arc;

use crate::Matroid;

/// Validation failures for fairness bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FairnessError {
    /// `lower.len() != upper.len()` or labels exceed the bound arrays.
    ShapeMismatch,
    /// Some `l_c > h_c`.
    CrossedBounds {
        /// Offending group.
        group: usize,
    },
    /// `Σ_c l_c > k`: lower bounds cannot all be met within the budget.
    LowerExceedsK,
    /// `Σ_c min(h_c, |D_c|) < k`: no size-`k` feasible set exists.
    UpperBelowK,
}

impl std::fmt::Display for FairnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FairnessError::ShapeMismatch => write!(f, "bounds shape mismatch"),
            FairnessError::CrossedBounds { group } => {
                write!(f, "lower bound exceeds upper bound for group {group}")
            }
            FairnessError::LowerExceedsK => write!(f, "sum of lower bounds exceeds k"),
            FairnessError::UpperBelowK => {
                write!(f, "sum of attainable upper bounds is below k")
            }
        }
    }
}

impl std::error::Error for FairnessError {}

/// The `O(n)` part of [`FairnessMatroid`] construction, done once and
/// reused: the shared group labels, validated (`groups[i] < num_groups`),
/// together with the per-group member counts.
///
/// Building a matroid from scratch scans every label twice (bounds check +
/// size count); a serving layer that constructs one matroid per query over
/// the *same* dataset pays that scan per query. `PreparedBounds` hoists it
/// out: prepare once per dataset (or fetch from a warm-start cache), then
/// [`PreparedBounds::matroid`] validates any `(lower, upper, k)` bounds in
/// `O(C)` and shares the label allocation.
///
/// ```
/// use fairhms_matroid::{FairnessMatroid, PreparedBounds};
///
/// let prepared = PreparedBounds::new(vec![0, 0, 1, 1], 2).unwrap();
/// assert_eq!(prepared.group_sizes(), &[2, 2]);
/// // O(C) per query instead of O(n):
/// let m = prepared.matroid(vec![1, 1], vec![2, 2], 3).unwrap();
/// // …and identical to the from-scratch construction.
/// assert_eq!(m, FairnessMatroid::new(vec![0, 0, 1, 1], vec![1, 1], vec![2, 2], 3).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedBounds {
    /// Validated shared group labels.
    groups: Arc<[usize]>,
    /// `group_sizes[c]` = number of elements labeled `c`.
    group_sizes: Vec<usize>,
}

impl PreparedBounds {
    /// Validates `groups` against `num_groups` and counts per-group sizes —
    /// the one `O(n)` scan. Pass either an owned `Vec<usize>` or a shared
    /// `Arc<[usize]>` handle (no copy).
    pub fn new(groups: impl Into<Arc<[usize]>>, num_groups: usize) -> Result<Self, FairnessError> {
        let groups = groups.into();
        let mut group_sizes = vec![0usize; num_groups];
        for &g in groups.iter() {
            if g >= num_groups {
                return Err(FairnessError::ShapeMismatch);
            }
            group_sizes[g] += 1;
        }
        Ok(Self {
            groups,
            group_sizes,
        })
    }

    /// Number of ground-set elements.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the ground set is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of groups the labels were validated against.
    pub fn num_groups(&self) -> usize {
        self.group_sizes.len()
    }

    /// Per-group member counts.
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// A shared handle to the validated labels (refcount bump, no copy).
    pub fn shared_groups(&self) -> Arc<[usize]> {
        Arc::clone(&self.groups)
    }

    /// Builds the fairness matroid for `(lower, upper, k)` in `O(C)`,
    /// sharing this prepared scan — output (and every validation error,
    /// in the same precedence order) identical to
    /// [`FairnessMatroid::new`] over the same labels.
    pub fn matroid(
        &self,
        lower: Vec<usize>,
        upper: Vec<usize>,
        k: usize,
    ) -> Result<FairnessMatroid, FairnessError> {
        if lower.len() != upper.len() || lower.len() != self.num_groups() {
            return Err(FairnessError::ShapeMismatch);
        }
        for (g, (&l, &h)) in lower.iter().zip(&upper).enumerate() {
            if l > h {
                return Err(FairnessError::CrossedBounds { group: g });
            }
        }
        if lower.iter().sum::<usize>() > k {
            return Err(FairnessError::LowerExceedsK);
        }
        // lower bounds must be attainable within each group as well
        if lower.iter().zip(&self.group_sizes).any(|(&l, &sz)| l > sz) {
            return Err(FairnessError::UpperBelowK);
        }
        let attainable: usize = self
            .group_sizes
            .iter()
            .zip(&upper)
            .map(|(s, h)| s.min(h))
            .sum();
        if attainable < k {
            return Err(FairnessError::UpperBelowK);
        }
        Ok(FairnessMatroid {
            groups: Arc::clone(&self.groups),
            lower,
            upper,
            k,
        })
    }
}

/// The fairness matroid `M = (D, I)` for group bounds `l, h` and budget `k`.
///
/// ```
/// use fairhms_matroid::{FairnessMatroid, Matroid};
///
/// // four elements in two groups, one to two picks per group, k = 3
/// let m = FairnessMatroid::new(vec![0, 0, 1, 1], vec![1, 1], vec![2, 2], 3).unwrap();
/// assert!(m.is_independent(&[0, 1]));      // can still satisfy group 1
/// assert!(!m.is_independent(&[0, 1, 2]) || m.is_feasible(&[0, 1, 2]));
/// assert!(m.is_feasible(&[0, 1, 2]));      // counts (2, 1) within bounds
/// assert_eq!(m.violations(&[0, 1]), 1);    // group 1 below its lower bound
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairnessMatroid {
    /// Shared group labels: instances built over an `Arc`-held dataset
    /// hand the matroid the same allocation (see
    /// `Dataset::shared_groups` in `fairhms-data`) instead of an `O(n)`
    /// copy per solve.
    groups: Arc<[usize]>,
    lower: Vec<usize>,
    upper: Vec<usize>,
    k: usize,
}

impl FairnessMatroid {
    /// Builds and validates the matroid. `groups[i]` is element `i`'s
    /// group; pass either an owned `Vec<usize>` or a shared `Arc<[usize]>`
    /// handle (no copy).
    pub fn new(
        groups: impl Into<Arc<[usize]>>,
        lower: Vec<usize>,
        upper: Vec<usize>,
        k: usize,
    ) -> Result<Self, FairnessError> {
        if lower.len() != upper.len() {
            return Err(FairnessError::ShapeMismatch);
        }
        // One-shot path: the prepared scan and the O(C) validation are the
        // same code the warm-start reuse path runs, so the two can never
        // drift apart.
        PreparedBounds::new(groups, lower.len())?.matroid(lower, upper, k)
    }

    /// Group label of element `i`.
    pub fn group_of(&self, i: usize) -> usize {
        self.groups[i]
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.lower.len()
    }

    /// The budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Lower bounds per group.
    pub fn lower(&self) -> &[usize] {
        &self.lower
    }

    /// Upper bounds per group.
    pub fn upper(&self) -> &[usize] {
        &self.upper
    }

    /// Per-group selection counts of `items`.
    pub fn counts(&self, items: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.lower.len()];
        for &i in items {
            counts[self.groups[i]] += 1;
        }
        counts
    }

    /// Whether per-group counts describe an independent set.
    pub fn counts_independent(&self, counts: &[usize]) -> bool {
        debug_assert_eq!(counts.len(), self.lower.len());
        let mut reserved = 0usize;
        for ((&n, &l), &h) in counts.iter().zip(&self.lower).zip(&self.upper) {
            if n > h {
                return false;
            }
            reserved += n.max(l);
        }
        reserved <= self.k
    }

    /// Whether counts describe a *complete feasible* selection:
    /// `l_c ≤ count_c ≤ h_c` and `Σ count_c = k`.
    pub fn counts_feasible(&self, counts: &[usize]) -> bool {
        counts.iter().sum::<usize>() == self.k
            && counts
                .iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(&n, (&l, &h))| l <= n && n <= h)
    }

    /// Whether `items` is a complete feasible FairHMS selection.
    pub fn is_feasible(&self, items: &[usize]) -> bool {
        self.counts_feasible(&self.counts(items))
    }

    /// The number of fairness violations `err(S)` of Equation 3:
    /// `Σ_c max(|S∩D_c| − h_c, l_c − |S∩D_c|, 0)`.
    pub fn violations(&self, items: &[usize]) -> usize {
        self.counts(items)
            .iter()
            .zip(self.lower.iter().zip(&self.upper))
            .map(|(&n, (&l, &h))| n.saturating_sub(h).max(l.saturating_sub(n)))
            .sum()
    }
}

impl Matroid for FairnessMatroid {
    fn ground_size(&self) -> usize {
        self.groups.len()
    }

    fn is_independent(&self, items: &[usize]) -> bool {
        if items.iter().any(|&i| i >= self.groups.len()) {
            return false;
        }
        self.counts_independent(&self.counts(items))
    }

    fn can_extend(&self, items: &[usize], new_item: usize) -> bool {
        if new_item >= self.groups.len() {
            return false;
        }
        let counts = self.counts(items);
        let g = self.groups[new_item];
        if counts[g] >= self.upper[g] {
            return false;
        }
        // Adding to group g increases Σ max(count, l) only when the count
        // is already at or above the lower bound.
        let reserved: usize = counts
            .iter()
            .zip(&self.lower)
            .map(|(&n, &l)| n.max(l))
            .sum();
        let delta = usize::from(counts[g] >= self.lower[g]);
        reserved + delta <= self.k
    }

    fn rank_upper_bound(&self) -> usize {
        self.k
    }
}

/// Computes the paper's proportional-representation bounds (Section 5.1):
/// `l_c = max(⌊(1−α)·k·|D_c|/|D|⌋, 1)` capped and
/// `h_c = min(⌈(1+α)·k·|D_c|/|D|⌉, k − C + 1)`, with a repair pass that
/// keeps `Σ l_c ≤ k ≤ Σ h_c` attainable.
pub fn proportional_bounds(
    group_sizes: &[usize],
    k: usize,
    alpha: f64,
) -> (Vec<usize>, Vec<usize>) {
    let n: usize = group_sizes.iter().sum();
    let c = group_sizes.len();
    let mut lower = Vec::with_capacity(c);
    let mut upper = Vec::with_capacity(c);
    for &sz in group_sizes {
        let frac = k as f64 * sz as f64 / n.max(1) as f64;
        let l = (((1.0 - alpha) * frac).floor() as usize).max(1).min(sz);
        let h = (((1.0 + alpha) * frac).ceil() as usize)
            .min(k.saturating_sub(c.saturating_sub(1)).max(1))
            .min(sz);
        lower.push(l.min(h));
        upper.push(h);
    }
    repair_bounds(group_sizes, k, &mut lower, &mut upper);
    (lower, upper)
}

/// Computes the paper's balanced-representation bounds:
/// `l_c = ⌊(1−α)k/C⌋, h_c = ⌈(1+α)k/C⌉` (clamped like the proportional
/// variant).
pub fn balanced_bounds(group_sizes: &[usize], k: usize, alpha: f64) -> (Vec<usize>, Vec<usize>) {
    let c = group_sizes.len();
    let frac = k as f64 / c.max(1) as f64;
    let mut lower = Vec::with_capacity(c);
    let mut upper = Vec::with_capacity(c);
    for &sz in group_sizes {
        let l = (((1.0 - alpha) * frac).floor() as usize).max(1).min(sz);
        // No trailing `.max(1)`: a group with zero members must get
        // `h = 0` (an upper bound of 1 on an empty group is vacuous at
        // best and used to survive the `.min(sz)` cap). For non-empty
        // groups `⌈(1+α)k/C⌉ ≥ 1` whenever `k ≥ 1`, so nothing changes.
        let h = (((1.0 + alpha) * frac).ceil() as usize).min(sz);
        lower.push(l.min(h));
        upper.push(h);
    }
    repair_bounds(group_sizes, k, &mut lower, &mut upper);
    (lower, upper)
}

/// Shrinks lower bounds / raises upper bounds minimally until a feasible
/// size-`k` selection exists (`Σ l ≤ k ≤ Σ min(h, |D_c|)`).
fn repair_bounds(group_sizes: &[usize], k: usize, lower: &mut [usize], upper: &mut [usize]) {
    // Lower bounds too demanding: shave the largest ones first.
    while lower.iter().sum::<usize>() > k {
        let (idx, _) = lower
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)
            .expect("non-empty");
        lower[idx] -= 1;
    }
    // Upper bounds too tight: raise the group with the most headroom.
    loop {
        let attainable: usize = upper.iter().zip(group_sizes).map(|(&h, &s)| h.min(s)).sum();
        if attainable >= k {
            break;
        }
        let candidate = (0..upper.len())
            .filter(|&g| upper[g] < group_sizes[g])
            .max_by_key(|&g| group_sizes[g] - upper[g]);
        match candidate {
            Some(g) => upper[g] += 1,
            None => break, // k > n: caller's validation will reject
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_axioms;

    #[test]
    fn axioms_hold_for_various_bounds() {
        // groups: 0,0,0,1,1,2
        let g = vec![0, 0, 0, 1, 1, 2];
        for (l, h, k) in [
            (vec![1, 1, 1], vec![2, 2, 1], 4),
            (vec![0, 0, 0], vec![3, 2, 1], 3),
            (vec![1, 0, 0], vec![1, 1, 1], 2),
            (vec![2, 2, 1], vec![3, 2, 1], 5),
        ] {
            let m = FairnessMatroid::new(g.clone(), l.clone(), h.clone(), k)
                .unwrap_or_else(|e| panic!("bounds {l:?}/{h:?}/{k}: {e}"));
            verify_axioms(&m).unwrap_or_else(|e| panic!("bounds {l:?}/{h:?}/{k}: {e}"));
        }
    }

    #[test]
    fn validation_rejects_bad_bounds() {
        let g = vec![0, 0, 1];
        assert_eq!(
            FairnessMatroid::new(g.clone(), vec![2, 1], vec![1, 1], 3).unwrap_err(),
            FairnessError::CrossedBounds { group: 0 }
        );
        assert_eq!(
            FairnessMatroid::new(g.clone(), vec![2, 2], vec![2, 2], 3).unwrap_err(),
            FairnessError::LowerExceedsK
        );
        assert_eq!(
            FairnessMatroid::new(g.clone(), vec![0, 0], vec![1, 1], 3).unwrap_err(),
            FairnessError::UpperBelowK
        );
        assert_eq!(
            FairnessMatroid::new(vec![0, 5], vec![1], vec![1], 1).unwrap_err(),
            FairnessError::ShapeMismatch
        );
        // lower bound larger than the group itself
        assert_eq!(
            FairnessMatroid::new(g, vec![0, 2], vec![3, 2], 2).unwrap_err(),
            FairnessError::UpperBelowK
        );
    }

    #[test]
    fn feasibility_and_violations() {
        let m = FairnessMatroid::new(vec![0, 0, 1, 1], vec![1, 1], vec![2, 2], 3).unwrap();
        assert!(m.is_feasible(&[0, 1, 2]));
        assert!(!m.is_feasible(&[0, 1])); // size 2 < k
        assert_eq!(m.violations(&[0, 1, 2]), 0);
        assert_eq!(m.violations(&[0, 1]), 1); // group 1 below lower bound
        assert_eq!(m.violations(&[]), 2);
    }

    #[test]
    fn independence_reserves_lower_bounds() {
        // k = 2, two groups each with l = 1: picking two elements of group 0
        // is NOT independent (no room left for group 1's lower bound).
        let m = FairnessMatroid::new(vec![0, 0, 1, 1], vec![1, 1], vec![2, 2], 2).unwrap();
        assert!(m.is_independent(&[0]));
        assert!(!m.is_independent(&[0, 1]));
        assert!(m.is_independent(&[0, 2]));
        assert!(!m.can_extend(&[0], 1));
        assert!(m.can_extend(&[0], 2));
    }

    #[test]
    fn proportional_bounds_match_paper_formula() {
        // |D| = 100, groups 60/40, k = 10, α = 0.1:
        // group 0: l = ⌊0.9·6⌋ = 5, h = ⌈1.1·6⌉ = 7
        // group 1: l = ⌊0.9·4⌋ = 3, h = ⌈1.1·4⌉ = 5
        let (l, h) = proportional_bounds(&[60, 40], 10, 0.1);
        assert_eq!(l, vec![5, 3]);
        assert_eq!(h, vec![7, 5]);
        // bounds always admit a feasible solution
        assert!(FairnessMatroid::new(
            (0..100).map(|i| usize::from(i >= 60)).collect::<Vec<_>>(),
            l,
            h,
            10
        )
        .is_ok());
    }

    #[test]
    fn proportional_bounds_tiny_group_gets_floor_one() {
        let (l, h) = proportional_bounds(&[97, 3], 10, 0.1);
        assert_eq!(l[1], 1); // the "or at least 1" clause of Section 5.1
        assert!(h[1] >= 1);
    }

    #[test]
    fn balanced_bounds_are_uniformish() {
        let (l, h) = balanced_bounds(&[50, 30, 20], 9, 0.1);
        assert_eq!(l, vec![2, 2, 2]);
        assert_eq!(h, vec![4, 4, 4]);
    }

    #[test]
    fn bounds_repair_keeps_feasibility() {
        // k = 10 over three tiny groups: upper bounds must be raised/capped
        // so that a feasible set exists.
        let sizes = [4, 3, 3];
        let (l, h) = proportional_bounds(&sizes, 10, 0.1);
        let attainable: usize = h.iter().zip(&sizes).map(|(&h, &s)| h.min(s)).sum();
        assert!(attainable >= 10, "l={l:?} h={h:?}");
        assert!(l.iter().sum::<usize>() <= 10);
    }

    #[test]
    fn empty_groups_never_get_positive_lower_bounds() {
        // Regression: a group with 0 members must end up with l = 0 (a
        // lower bound ≥ 1 would make every matroid over it vacuously
        // infeasible) — under both bound policies, at several (k, α).
        for sizes in [
            vec![50usize, 0, 30],
            vec![0, 0, 7],
            vec![9, 0, 0, 4],
            vec![0, 12],
        ] {
            for k in [1usize, 3, 5] {
                for alpha in [0.0, 0.1, 0.5] {
                    for (policy, (l, h)) in [
                        ("proportional", proportional_bounds(&sizes, k, alpha)),
                        ("balanced", balanced_bounds(&sizes, k, alpha)),
                    ] {
                        for (g, &sz) in sizes.iter().enumerate() {
                            if sz == 0 {
                                assert_eq!(
                                    l[g], 0,
                                    "{policy}: empty group {g} got lower {} \
                                     (sizes {sizes:?}, k={k}, α={alpha})",
                                    l[g]
                                );
                                assert_eq!(
                                    h[g], 0,
                                    "{policy}: empty group {g} got upper {} \
                                     (sizes {sizes:?}, k={k}, α={alpha})",
                                    h[g]
                                );
                            }
                            assert!(l[g] <= h[g], "{policy}: crossed bounds at {g}");
                        }
                        // The derived bounds must admit a feasible size-k
                        // set whenever one exists at all (k ≤ n).
                        let n: usize = sizes.iter().sum();
                        if k <= n {
                            let groups: Vec<usize> = sizes
                                .iter()
                                .enumerate()
                                .flat_map(|(g, &sz)| std::iter::repeat_n(g, sz))
                                .collect();
                            FairnessMatroid::new(groups, l.clone(), h.clone(), k).unwrap_or_else(
                                |e| {
                                    panic!(
                                        "{policy}: infeasible bounds l={l:?} h={h:?} \
                                         for sizes {sizes:?}, k={k}, α={alpha}: {e}"
                                    )
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prepared_bounds_matches_from_scratch_construction() {
        let g = vec![0usize, 0, 0, 1, 1, 2];
        let prepared = PreparedBounds::new(g.clone(), 3).unwrap();
        assert_eq!(prepared.group_sizes(), &[3, 2, 1]);
        assert_eq!(prepared.len(), 6);
        assert_eq!(prepared.num_groups(), 3);
        // Valid bounds: identical matroid, labels shared (not re-copied).
        for (l, h, k) in [
            (vec![1, 1, 1], vec![2, 2, 1], 4),
            (vec![0, 0, 0], vec![3, 2, 1], 3),
            (vec![2, 2, 1], vec![3, 2, 1], 5),
        ] {
            let fast = prepared.matroid(l.clone(), h.clone(), k).unwrap();
            let slow = FairnessMatroid::new(g.clone(), l, h, k).unwrap();
            assert_eq!(fast, slow);
            assert!(Arc::ptr_eq(&fast.groups, &prepared.groups));
        }
        // Invalid bounds: identical typed errors, same precedence.
        for (l, h, k) in [
            (vec![2, 1, 1], vec![1, 1, 1], 4), // crossed
            (vec![2, 2, 1], vec![2, 2, 1], 3), // Σl > k
            (vec![0, 0, 0], vec![1, 1, 1], 4), // attainable < k
            (vec![1, 1], vec![1, 1], 2),       // shape
            (vec![0, 3, 0], vec![3, 3, 1], 3), // lower exceeds group size
        ] {
            assert_eq!(
                prepared.matroid(l.clone(), h.clone(), k).unwrap_err(),
                FairnessMatroid::new(g.clone(), l, h, k).unwrap_err()
            );
        }
        // Out-of-range labels are caught by the prepared scan itself.
        assert_eq!(
            PreparedBounds::new(vec![0usize, 5], 2).unwrap_err(),
            FairnessError::ShapeMismatch
        );
    }

    #[test]
    fn counts_roundtrip() {
        let m = FairnessMatroid::new(vec![0, 1, 1, 2], vec![0, 0, 0], vec![1, 2, 1], 3).unwrap();
        assert_eq!(m.counts(&[0, 2, 3]), vec![1, 1, 1]);
        assert!(m.counts_independent(&[1, 1, 1]));
        assert!(!m.counts_independent(&[2, 0, 0]));
        assert!(m.counts_feasible(&[1, 1, 1]));
        assert!(!m.counts_feasible(&[1, 2, 1]));
    }
}
