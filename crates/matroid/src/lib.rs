//! Matroid substrate for FairHMS.
//!
//! The paper (Section 2, following Halabi et al., NeurIPS 2020) treats the
//! group fairness constraint as a matroid: given groups `D_1, …, D_C`,
//! lower bounds `l_c`, upper bounds `h_c`, and a total budget `k`, the
//! independent sets are
//!
//! ```text
//! I = { S ⊆ D : Σ_c max(|S ∩ D_c|, l_c) ≤ k  ∧  |S ∩ D_c| ≤ h_c ∀c }
//! ```
//!
//! Every feasible size-`k` set satisfying `l_c ≤ |S ∩ D_c| ≤ h_c` is a base
//! of this matroid, and every independent set extends to such a base — the
//! properties the greedy algorithms in `fairhms-submodular` rely on.
//!
//! Besides the [`FairnessMatroid`], the crate provides the classic
//! [`UniformMatroid`] and [`PartitionMatroid`] plus the [`Matroid`] trait
//! with an incremental oracle used by the greedy loops.

pub mod fairness;
pub mod partition;
pub mod uniform;

pub use fairness::{
    balanced_bounds, proportional_bounds, FairnessError, FairnessMatroid, PreparedBounds,
};
pub use partition::PartitionMatroid;
pub use uniform::UniformMatroid;

/// A matroid over the ground set `0..ground_size()`.
///
/// Implementations must satisfy the matroid axioms: `∅` independent,
/// downward closure, and the exchange property (verified by property tests
/// for each implementation in this crate).
pub trait Matroid {
    /// Number of ground-set elements.
    fn ground_size(&self) -> usize;

    /// Whether `items` (distinct indices into the ground set) is
    /// independent.
    fn is_independent(&self, items: &[usize]) -> bool;

    /// Whether `items ∪ {new_item}` is independent, assuming `items`
    /// already is and does not contain `new_item`. Implementations
    /// typically answer in `O(1)` from group counts.
    fn can_extend(&self, items: &[usize], new_item: usize) -> bool {
        let mut extended = items.to_vec();
        extended.push(new_item);
        self.is_independent(&extended)
    }

    /// An upper bound on the rank (maximum independent-set size).
    fn rank_upper_bound(&self) -> usize;
}

/// Brute-force checks the matroid axioms on every subset of a small ground
/// set. Intended for tests (exponential in `ground_size`).
pub fn verify_axioms<M: Matroid>(m: &M) -> Result<(), String> {
    let n = m.ground_size();
    assert!(
        n <= 16,
        "verify_axioms is exponential; keep the ground set small"
    );
    let subsets = 1u32 << n;
    let members = |mask: u32| -> Vec<usize> { (0..n).filter(|&i| mask >> i & 1 == 1).collect() };
    let indep: Vec<bool> = (0..subsets)
        .map(|s| m.is_independent(&members(s)))
        .collect();

    if !indep[0] {
        return Err("empty set is not independent".into());
    }
    for s in 0..subsets {
        if !indep[s as usize] {
            continue;
        }
        // downward closure: removing any element stays independent
        for i in 0..n {
            if s >> i & 1 == 1 && !indep[(s & !(1 << i)) as usize] {
                return Err(format!("downward closure fails at {s:#b} minus {i}"));
            }
        }
        // exchange with every larger independent set
        for t in 0..subsets {
            if !indep[t as usize] || (t.count_ones() <= s.count_ones()) {
                continue;
            }
            let found = (0..n)
                .any(|i| t >> i & 1 == 1 && s >> i & 1 == 0 && indep[(s | (1 << i)) as usize]);
            if !found {
                return Err(format!("exchange fails between {s:#b} and {t:#b}"));
            }
        }
        // incremental oracle consistency
        let sv = members(s);
        for i in 0..n {
            if s >> i & 1 == 0 {
                let fast = m.can_extend(&sv, i);
                let slow = indep[(s | (1 << i)) as usize];
                if fast != slow {
                    return Err(format!("can_extend disagrees at {s:#b} + {i}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FreeMatroid(usize);
    impl Matroid for FreeMatroid {
        fn ground_size(&self) -> usize {
            self.0
        }
        fn is_independent(&self, _items: &[usize]) -> bool {
            true
        }
        fn rank_upper_bound(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn free_matroid_passes_axioms() {
        verify_axioms(&FreeMatroid(5)).unwrap();
    }
}
