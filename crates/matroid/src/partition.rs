//! The partition matroid: at most `cap_c` elements from each group `c`.

use crate::Matroid;

/// Partition matroid over a labelled ground set.
#[derive(Debug, Clone)]
pub struct PartitionMatroid {
    groups: Vec<usize>,
    capacities: Vec<usize>,
}

impl PartitionMatroid {
    /// Creates a partition matroid; `groups[i]` is the part of element `i`
    /// and `capacities[c]` the budget of part `c`.
    ///
    /// # Panics
    /// Panics if a label is out of range.
    pub fn new(groups: Vec<usize>, capacities: Vec<usize>) -> Self {
        assert!(
            groups.iter().all(|&g| g < capacities.len()),
            "group label out of range"
        );
        Self { groups, capacities }
    }

    fn counts(&self, items: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.capacities.len()];
        for &i in items {
            counts[self.groups[i]] += 1;
        }
        counts
    }
}

impl Matroid for PartitionMatroid {
    fn ground_size(&self) -> usize {
        self.groups.len()
    }

    fn is_independent(&self, items: &[usize]) -> bool {
        if items.iter().any(|&i| i >= self.groups.len()) {
            return false;
        }
        self.counts(items)
            .iter()
            .zip(&self.capacities)
            .all(|(n, cap)| n <= cap)
    }

    fn can_extend(&self, items: &[usize], new_item: usize) -> bool {
        if new_item >= self.groups.len() {
            return false;
        }
        let g = self.groups[new_item];
        let in_group = items.iter().filter(|&&i| self.groups[i] == g).count();
        in_group < self.capacities[g]
    }

    fn rank_upper_bound(&self) -> usize {
        // per-part rank is min(cap, part size)
        let mut sizes = vec![0usize; self.capacities.len()];
        for &g in &self.groups {
            sizes[g] += 1;
        }
        sizes
            .iter()
            .zip(&self.capacities)
            .map(|(s, c)| s.min(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_axioms;

    #[test]
    fn axioms_hold() {
        let m = PartitionMatroid::new(vec![0, 0, 1, 1, 2], vec![1, 2, 1]);
        verify_axioms(&m).unwrap();
        let zero_cap = PartitionMatroid::new(vec![0, 0, 1], vec![0, 1]);
        verify_axioms(&zero_cap).unwrap();
    }

    #[test]
    fn membership() {
        let m = PartitionMatroid::new(vec![0, 0, 1], vec![1, 1]);
        assert!(m.is_independent(&[0, 2]));
        assert!(!m.is_independent(&[0, 1]));
        assert!(m.can_extend(&[0], 2));
        assert!(!m.can_extend(&[0], 1));
        assert_eq!(m.rank_upper_bound(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_rejected() {
        PartitionMatroid::new(vec![0, 3], vec![1, 1]);
    }
}
