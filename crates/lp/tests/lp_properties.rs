//! Property tests for the simplex solver and the regret LPs.

use proptest::prelude::*;

use fairhms_lp::hms::{point_regret, point_regret_with_witness};
use fairhms_lp::{solve, Constraint, LpProblem, Objective, Relation};

/// Random 2D point sets in (0.05, 1]².
fn points_2d() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(((0.05f64..=1.0), (0.05f64..=1.0)), 1..8)
}

/// Dense scan of `regret(S, p)` over the 2D utility parameter λ.
fn brute_regret_2d(sel: &[(f64, f64)], p: (f64, f64)) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 0..=4000 {
        let l = i as f64 / 4000.0;
        let u = (l, 1.0 - l);
        let fp = u.0 * p.0 + u.1 * p.1;
        if fp <= 1e-12 {
            continue;
        }
        let fs = sel
            .iter()
            .map(|q| u.0 * q.0 + u.1 * q.1)
            .fold(0.0_f64, f64::max);
        worst = worst.max(1.0 - (fs / fp).min(1.0));
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn regret_lp_matches_dense_scan(sel in points_2d(), p in ((0.05f64..=1.0), (0.05f64..=1.0))) {
        let flat: Vec<f64> = sel.iter().flat_map(|&(x, y)| [x, y]).collect();
        let lp = point_regret(2, &flat, &[p.0, p.1]);
        let brute = brute_regret_2d(&sel, p);
        // LP is exact; the scan is a lower bound with grid error
        prop_assert!(lp >= brute - 1e-9, "lp {} < brute {}", lp, brute);
        prop_assert!(lp - brute < 5e-3, "lp {} far above brute {}", lp, brute);
    }

    #[test]
    fn witness_certifies_regret(sel in points_2d(), p in ((0.05f64..=1.0), (0.05f64..=1.0))) {
        let flat: Vec<f64> = sel.iter().flat_map(|&(x, y)| [x, y]).collect();
        let w = point_regret_with_witness(2, &flat, &[p.0, p.1]);
        // utility is scaled so ⟨u,p⟩ = 1 and certifies the regret exactly
        let up = w.utility[0] * p.0 + w.utility[1] * p.1;
        prop_assert!((up - 1.0).abs() < 1e-7, "⟨u,p⟩ = {}", up);
        let best = sel
            .iter()
            .map(|q| w.utility[0] * q.0 + w.utility[1] * q.1)
            .fold(0.0_f64, f64::max);
        prop_assert!(((1.0 - best).clamp(0.0, 1.0) - w.regret).abs() < 1e-7);
        prop_assert!(w.utility.iter().all(|&x| x >= -1e-9), "negative utility");
    }

    #[test]
    fn regret_monotone_in_selection(sel in points_2d(), extra in ((0.05f64..=1.0), (0.05f64..=1.0)), p in ((0.05f64..=1.0), (0.05f64..=1.0))) {
        // adding a point can only reduce the regret
        let flat: Vec<f64> = sel.iter().flat_map(|&(x, y)| [x, y]).collect();
        let mut bigger = flat.clone();
        bigger.extend_from_slice(&[extra.0, extra.1]);
        let before = point_regret(2, &flat, &[p.0, p.1]);
        let after = point_regret(2, &bigger, &[p.0, p.1]);
        prop_assert!(after <= before + 1e-9, "regret grew: {} -> {}", before, after);
    }

    #[test]
    fn lp_solutions_are_feasible(
        c in prop::collection::vec(-3.0f64..3.0, 2),
        rows in prop::collection::vec((prop::collection::vec(-2.0f64..2.0, 2), 0.1f64..4.0), 1..5),
    ) {
        // maximize cᵀx over {Ax ≤ b, x ≥ 0} — always feasible (0 works);
        // check the reported optimum satisfies every constraint.
        let problem = LpProblem {
            n_vars: 2,
            objective: Objective::Maximize(c.clone()),
            constraints: rows
                .iter()
                .map(|(a, b)| Constraint::new(a.clone(), Relation::Le, *b))
                .collect(),
        };
        match solve(&problem) {
            Ok(sol) => {
                for (a, b) in &rows {
                    let lhs: f64 = a.iter().zip(&sol.x).map(|(ai, xi)| ai * xi).sum();
                    prop_assert!(lhs <= b + 1e-6, "violated: {} > {}", lhs, b);
                }
                prop_assert!(sol.x.iter().all(|&x| x >= -1e-9));
                let val: f64 = c.iter().zip(&sol.x).map(|(ci, xi)| ci * xi).sum();
                prop_assert!((val - sol.objective).abs() < 1e-6);
                // optimality spot-check: no axis-aligned improving step of 1e-3
                // (cheap necessary condition)
                prop_assert!(sol.objective >= -1e-9 || c.iter().all(|&ci| ci <= 0.0));
            }
            Err(fairhms_lp::LpError::Unbounded) => {
                // plausible when c has a positive direction unconstrained
            }
            Err(e) => prop_assert!(false, "unexpected LP error: {e}"),
        }
    }
}
