//! HMS-specific LP helpers.
//!
//! The classical reduction (Nanongkai et al., VLDB 2010): for a selected
//! set `S` and a database point `p`, the worst-case *regret* that `p`
//! inflicts on `S` is
//!
//! ```text
//! regret(S, p) = max_{u ≥ 0} (⟨u,p⟩ − max_{q∈S} ⟨u,q⟩) / ⟨u,p⟩
//! ```
//!
//! By scale-invariance we may fix `⟨u, p⟩ = 1`, turning the inner problem
//! into the LP `min t  s.t. ⟨u,q⟩ ≤ t ∀q∈S, ⟨u,p⟩ = 1, u ≥ 0`, whose optimum
//! `t*` gives `regret(S, p) = max(0, 1 − t*)`. The maximum regret ratio of
//! `S` over the whole database is the max over `p`, and the minimum
//! happiness ratio is its complement:
//! `mhr(S) = 1 − max_p regret(S, p) = min_p min(1, t*(p))`.

use crate::simplex::{solve, Constraint, LpError, LpProblem, Objective, Relation};

/// Result of one regret LP: the regret value and the witness utility
/// (normalized so `⟨u, p⟩ = 1`).
#[derive(Debug, Clone)]
pub struct RegretWitness {
    /// `max(0, 1 − t*)`, the worst-case regret of `S` against `p`.
    pub regret: f64,
    /// A utility vector attaining it (scaled so `⟨u, p⟩ = 1`).
    pub utility: Vec<f64>,
}

/// Computes `regret(S, p)` together with the maximizing utility.
///
/// `sel` holds the selected points row-major with `dim` columns. An empty
/// selection has regret 1 for any nonzero `p` (witnessed by the utility
/// concentrated on `p`'s largest coordinate); an all-zero `p` has regret 0.
pub fn point_regret_with_witness(dim: usize, sel: &[f64], p: &[f64]) -> RegretWitness {
    assert_eq!(p.len(), dim);
    assert_eq!(sel.len() % dim.max(1), 0);
    let pmax = p.iter().cloned().fold(0.0_f64, f64::max);
    if pmax <= 0.0 {
        return RegretWitness {
            regret: 0.0,
            utility: vec![0.0; dim],
        };
    }
    if sel.is_empty() {
        let mut u = vec![0.0; dim];
        let arg = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        u[arg] = 1.0 / p[arg];
        return RegretWitness {
            regret: 1.0,
            utility: u,
        };
    }

    // Variables: u[0..dim], t (index dim). Minimize t.
    let mut constraints: Vec<Constraint> = Vec::with_capacity(sel.len() / dim + 1);
    for q in sel.chunks_exact(dim) {
        let mut row = Vec::with_capacity(dim + 1);
        row.extend_from_slice(q);
        row.push(-1.0);
        constraints.push(Constraint::new(row, Relation::Le, 0.0));
    }
    let mut fix = Vec::with_capacity(dim + 1);
    fix.extend_from_slice(p);
    fix.push(0.0);
    constraints.push(Constraint::new(fix, Relation::Eq, 1.0));

    let mut c = vec![0.0; dim + 1];
    c[dim] = 1.0;
    let problem = LpProblem {
        n_vars: dim + 1,
        objective: Objective::Minimize(c),
        constraints,
    };
    match solve(&problem) {
        Ok(sol) => {
            let t = sol.objective;
            RegretWitness {
                regret: (1.0 - t).clamp(0.0, 1.0),
                utility: sol.x[..dim].to_vec(),
            }
        }
        Err(LpError::Infeasible) => {
            // ⟨u,p⟩ = 1 infeasible only for p = 0, handled above; defensive.
            RegretWitness {
                regret: 0.0,
                utility: vec![0.0; dim],
            }
        }
        Err(e) => unreachable!("regret LP cannot be unbounded/malformed: {e}"),
    }
}

/// `regret(S, p)` without the witness.
pub fn point_regret(dim: usize, sel: &[f64], p: &[f64]) -> f64 {
    point_regret_with_witness(dim, sel, p).regret
}

/// Maximum regret ratio of the selection over the database:
/// `mrr(S, D) = max_{p∈D} regret(S, p)`.
pub fn max_regret_ratio(dim: usize, sel: &[f64], db: &[f64]) -> f64 {
    db.chunks_exact(dim)
        .map(|p| point_regret(dim, sel, p))
        .fold(0.0, f64::max)
}

/// Exact minimum happiness ratio `mhr(S, D) = 1 − mrr(S, D)`.
pub fn min_happiness_ratio(dim: usize, sel: &[f64], db: &[f64]) -> f64 {
    1.0 - max_regret_ratio(dim, sel, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regret_zero_when_selection_contains_db() {
        let db = [1.0, 0.0, 0.0, 1.0, 0.6, 0.6];
        assert!(max_regret_ratio(2, &db, &db) < 1e-9);
        assert!((min_happiness_ratio(2, &db, &db) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regret_of_empty_selection_is_one() {
        let p = [0.3, 0.8];
        let w = point_regret_with_witness(2, &[], &p);
        assert_eq!(w.regret, 1.0);
        // witness is scaled so ⟨u, p⟩ = 1
        let up: f64 = w.utility.iter().zip(&p).map(|(u, x)| u * x).sum();
        assert!((up - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_point_never_regretted() {
        let sel = [0.5, 0.5];
        assert_eq!(point_regret(2, &sel, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn known_2d_regret() {
        // S = {(1,0)}, p = (0,1): at u = (0,1), S scores 0, regret 1.
        let sel = [1.0, 0.0];
        assert!((point_regret(2, &sel, &[0.0, 1.0]) - 1.0).abs() < 1e-9);
        // S = {(1,0),(0,1)}, p = (0.8,0.8): worst u is the diagonal;
        // fix ⟨u,p⟩=1 ⇒ u = (0.625, 0.625), t = 0.625, regret 0.375.
        let sel2 = [1.0, 0.0, 0.0, 1.0];
        assert!((point_regret(2, &sel2, &[0.8, 0.8]) - 0.375).abs() < 1e-9);
    }

    #[test]
    fn dominated_point_has_no_regret() {
        let sel = [0.9, 0.9];
        assert!(point_regret(2, &sel, &[0.5, 0.5]) < 1e-9);
        assert!(point_regret(2, &sel, &[0.9, 0.2]) < 1e-9);
    }

    #[test]
    fn mhr_matches_grid_search_3d() {
        // brute-force check in 3D on a tiny instance
        let db: Vec<f64> = vec![
            1.0, 0.1, 0.2, //
            0.1, 1.0, 0.3, //
            0.2, 0.3, 1.0, //
            0.7, 0.7, 0.1, //
        ];
        let sel: Vec<f64> = vec![
            1.0, 0.1, 0.2, //
            0.1, 1.0, 0.3, //
        ];
        let lp_mhr = min_happiness_ratio(3, &sel, &db);
        // dense grid over the simplex
        let mut grid_mhr = f64::INFINITY;
        let steps = 60;
        for i in 0..=steps {
            for j in 0..=(steps - i) {
                let k = steps - i - j;
                let u = [i as f64, j as f64, k as f64];
                let best_db = db
                    .chunks_exact(3)
                    .map(|p| u[0] * p[0] + u[1] * p[1] + u[2] * p[2])
                    .fold(0.0_f64, f64::max);
                if best_db <= 0.0 {
                    continue;
                }
                let best_sel = sel
                    .chunks_exact(3)
                    .map(|p| u[0] * p[0] + u[1] * p[1] + u[2] * p[2])
                    .fold(0.0_f64, f64::max);
                grid_mhr = grid_mhr.min(best_sel / best_db);
            }
        }
        assert!(
            lp_mhr <= grid_mhr + 1e-9,
            "LP mhr {lp_mhr} should lower-bound grid {grid_mhr}"
        );
        assert!(
            grid_mhr - lp_mhr < 0.02,
            "LP mhr {lp_mhr} too far below grid {grid_mhr}"
        );
    }

    #[test]
    fn witness_utility_certifies_regret() {
        let sel = [1.0, 0.0, 0.0, 1.0];
        let p = [0.9, 0.6];
        let w = point_regret_with_witness(2, &sel, &p);
        let up: f64 = w.utility.iter().zip(&p).map(|(u, x)| u * x).sum();
        let best_sel = sel
            .chunks_exact(2)
            .map(|q| w.utility[0] * q[0] + w.utility[1] * q[1])
            .fold(0.0_f64, f64::max);
        assert!((up - 1.0).abs() < 1e-8);
        assert!(((1.0 - best_sel) - w.regret).abs() < 1e-8);
    }
}
