//! Dense two-phase primal simplex.
//!
//! All decision variables are nonnegative; constraints may be `≤`, `≥`, or
//! `=`. Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible point (reporting infeasibility if that sum is positive); phase 2
//! optimizes the user objective. Pivoting uses Bland's rule, which is slower
//! per iteration than Dantzig pricing but cannot cycle — exactness matters
//! more than speed for the tiny FairHMS subproblems, and the experiment
//! harness solves millions of them, so robustness is the priority.

/// Numeric tolerance for pivoting and feasibility checks.
const EPS: f64 = 1e-9;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `⟨a, x⟩ ≤ b`
    Le,
    /// `⟨a, x⟩ ≥ b`
    Ge,
    /// `⟨a, x⟩ = b`
    Eq,
}

/// A single linear constraint `⟨coeffs, x⟩ REL rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// One coefficient per decision variable.
    pub coeffs: Vec<f64>,
    /// Constraint sense.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<f64>, rel: Relation, rhs: f64) -> Self {
        Self { coeffs, rel, rhs }
    }
}

/// Optimization direction with objective coefficients.
#[derive(Debug, Clone)]
pub enum Objective {
    /// Minimize `⟨c, x⟩`.
    Minimize(Vec<f64>),
    /// Maximize `⟨c, x⟩`.
    Maximize(Vec<f64>),
}

/// A linear program over nonnegative variables.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of decision variables (all constrained to `x ≥ 0`).
    pub n_vars: usize,
    /// Objective to optimize.
    pub objective: Objective,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal values of the decision variables.
    pub x: Vec<f64>,
    /// Optimal objective value (in the direction the caller asked for).
    pub objective: f64,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A constraint row has the wrong number of coefficients.
    DimensionMismatch {
        /// Index of the offending constraint.
        row: usize,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch { row } => {
                write!(f, "constraint {row} has wrong coefficient count")
            }
        }
    }
}

impl std::error::Error for LpError {}

struct Tableau {
    /// `(m + 1) × (n + 1)` row-major; last row is the reduced-cost row,
    /// last column the right-hand side.
    a: Vec<f64>,
    m: usize,
    n: usize,
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.n + 1) + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * (self.n + 1) + c]
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let w = self.n + 1;
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > EPS, "pivot too small");
        let inv = 1.0 / pivot;
        for c in 0..w {
            self.a[pr * w + c] *= inv;
        }
        for r in 0..=self.m {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                continue;
            }
            for c in 0..w {
                self.a[r * w + c] -= factor * self.a[pr * w + c];
            }
            // kill accumulated round-off in the pivot column
            self.a[r * w + pc] = 0.0;
        }
        self.basis[pr] = pc;
    }

    /// Runs simplex iterations with Bland's rule until optimal or unbounded.
    /// `allowed` limits entering variables (used in phase 1 → 2 transition).
    fn optimize(&mut self, n_allowed: usize) -> Result<(), LpError> {
        loop {
            // Bland: entering = smallest index with negative reduced cost.
            let mut enter = None;
            for j in 0..n_allowed {
                if self.at(self.m, j) < -EPS {
                    enter = Some(j);
                    break;
                }
            }
            let Some(pc) = enter else { return Ok(()) };
            // Ratio test; Bland tie-break on smallest basis variable index.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.m {
                let a = self.at(r, pc);
                if a > EPS {
                    let ratio = self.at(r, self.n) / a;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((br, brat)) => {
                            if ratio < brat - EPS
                                || (ratio < brat + EPS && self.basis[r] < self.basis[br])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((pr, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(pr, pc);
        }
    }
}

/// Solves `problem`, returning the optimal solution or the failure mode.
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let n = problem.n_vars;
    for (row, c) in problem.constraints.iter().enumerate() {
        if c.coeffs.len() != n {
            return Err(LpError::DimensionMismatch { row });
        }
    }
    let m = problem.constraints.len();

    // Normalize rows to nonnegative rhs, flipping the sense when negating.
    let rows: Vec<(Vec<f64>, Relation, f64)> = problem
        .constraints
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                let coeffs = c.coeffs.iter().map(|&v| -v).collect();
                let rel = match c.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (coeffs, rel, -c.rhs)
            } else {
                (c.coeffs.clone(), c.rel, c.rhs)
            }
        })
        .collect();

    let n_slack = rows
        .iter()
        .filter(|(_, rel, _)| *rel != Relation::Eq)
        .count();
    let n_art = rows
        .iter()
        .filter(|(_, rel, _)| *rel != Relation::Le)
        .count();
    let total = n + n_slack + n_art;
    let w = total + 1;

    let mut t = Tableau {
        a: vec![0.0; (m + 1) * w],
        m,
        n: total,
        basis: vec![usize::MAX; m],
    };

    let mut slack_at = n;
    let mut art_at = n + n_slack;
    let mut art_cols: Vec<usize> = Vec::with_capacity(n_art);
    for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
        for (j, &v) in coeffs.iter().enumerate() {
            *t.at_mut(r, j) = v;
        }
        *t.at_mut(r, total) = *rhs;
        match rel {
            Relation::Le => {
                *t.at_mut(r, slack_at) = 1.0;
                t.basis[r] = slack_at;
                slack_at += 1;
            }
            Relation::Ge => {
                *t.at_mut(r, slack_at) = -1.0;
                slack_at += 1;
                *t.at_mut(r, art_at) = 1.0;
                t.basis[r] = art_at;
                art_cols.push(art_at);
                art_at += 1;
            }
            Relation::Eq => {
                *t.at_mut(r, art_at) = 1.0;
                t.basis[r] = art_at;
                art_cols.push(art_at);
                art_at += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificials. The reduced-cost row is the
    // phase-1 costs priced out over the initial (artificial/slack) basis,
    // i.e. minus the sum of rows with an artificial basic variable.
    if !art_cols.is_empty() {
        for &c in &art_cols {
            *t.at_mut(m, c) = 1.0;
        }
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                for c in 0..w {
                    t.a[m * w + c] -= t.a[r * w + c];
                }
            }
        }
        t.optimize(total)?;
        let phase1 = -t.at(m, total);
        if phase1 > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Pivot any artificial variables that remained basic (degenerately,
        // at value 0) out of the basis so phase 2 cannot re-activate them.
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                let mut pivoted = false;
                for j in 0..n + n_slack {
                    if t.at(r, j).abs() > EPS {
                        t.pivot(r, j);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: harmless, leave the artificial basic at
                    // zero; it can never enter the objective again because
                    // phase 2 restricts entering columns below.
                }
            }
        }
    }

    // Phase 2: install the user objective (in minimize form) and re-optimize
    // over the original + slack columns only.
    let (c_min, negate): (Vec<f64>, bool) = match &problem.objective {
        Objective::Minimize(c) => (c.clone(), false),
        Objective::Maximize(c) => (c.iter().map(|&v| -v).collect(), true),
    };
    assert_eq!(c_min.len(), n, "objective length must equal n_vars");
    for c in 0..w {
        *t.at_mut(m, c) = 0.0;
    }
    for (j, &v) in c_min.iter().enumerate() {
        *t.at_mut(m, j) = v;
    }
    for r in 0..m {
        let b = t.basis[r];
        if b < n && c_min[b].abs() > 0.0 {
            let factor = t.at(m, b);
            if factor.abs() > 0.0 {
                for c in 0..w {
                    t.a[m * w + c] -= factor * t.a[r * w + c];
                }
            }
        }
    }
    t.optimize(n + n_slack)?;

    let mut x = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = t.at(r, total).max(0.0);
        }
    }
    let mut obj: f64 = c_min.iter().zip(&x).map(|(c, v)| c * v).sum();
    if negate {
        obj = -obj;
    }
    Ok(LpSolution { x, objective: obj })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint::new(coeffs, Relation::Le, rhs)
    }
    fn ge(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint::new(coeffs, Relation::Ge, rhs)
    }
    fn eq(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint::new(coeffs, Relation::Eq, rhs)
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let p = LpProblem {
            n_vars: 2,
            objective: Objective::Maximize(vec![3.0, 5.0]),
            constraints: vec![
                le(vec![1.0, 0.0], 4.0),
                le(vec![0.0, 2.0], 12.0),
                le(vec![3.0, 2.0], 18.0),
            ],
        };
        let s = solve(&p).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-8);
        assert!((s.x[0] - 2.0).abs() < 1e-8);
        assert!((s.x[1] - 6.0).abs() < 1e-8);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4, 0)? check: c_x=2 < c_y=3,
        // so push x: x=4, y=0, obj 8.
        let p = LpProblem {
            n_vars: 2,
            objective: Objective::Minimize(vec![2.0, 3.0]),
            constraints: vec![ge(vec![1.0, 1.0], 4.0), ge(vec![1.0, 0.0], 1.0)],
        };
        let s = solve(&p).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-8);
        assert!((s.x[0] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 3, x − y = 0 → x = y = 1, obj 2.
        let p = LpProblem {
            n_vars: 2,
            objective: Objective::Minimize(vec![1.0, 1.0]),
            constraints: vec![eq(vec![1.0, 2.0], 3.0), eq(vec![1.0, -1.0], 0.0)],
        };
        let s = solve(&p).unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-8);
        assert!((s.x[1] - 1.0).abs() < 1e-8);
        assert!((s.objective - 2.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_detected() {
        let p = LpProblem {
            n_vars: 1,
            objective: Objective::Minimize(vec![1.0]),
            constraints: vec![le(vec![1.0], 1.0), ge(vec![1.0], 2.0)],
        };
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let p = LpProblem {
            n_vars: 2,
            objective: Objective::Maximize(vec![1.0, 1.0]),
            constraints: vec![ge(vec![1.0, 0.0], 1.0)],
        };
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x ≤ −1 with x ≥ 0 is infeasible; −x ≤ −1 means x ≥ 1.
        let p = LpProblem {
            n_vars: 1,
            objective: Objective::Minimize(vec![1.0]),
            constraints: vec![le(vec![-1.0], -1.0)],
        };
        let s = solve(&p).unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-8);
        let q = LpProblem {
            n_vars: 1,
            objective: Objective::Minimize(vec![1.0]),
            constraints: vec![le(vec![1.0], -1.0)],
        };
        assert_eq!(solve(&q).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let p = LpProblem {
            n_vars: 2,
            objective: Objective::Maximize(vec![1.0, 1.0]),
            constraints: vec![
                le(vec![1.0, 0.0], 1.0),
                le(vec![0.0, 1.0], 1.0),
                le(vec![1.0, 1.0], 2.0),
                le(vec![2.0, 1.0], 3.0),
            ],
        };
        let s = solve(&p).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-8);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 twice: redundant but consistent.
        let p = LpProblem {
            n_vars: 2,
            objective: Objective::Maximize(vec![1.0, 0.0]),
            constraints: vec![eq(vec![1.0, 1.0], 2.0), eq(vec![1.0, 1.0], 2.0)],
        };
        let s = solve(&p).unwrap();
        assert!((s.x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn dimension_mismatch_reported() {
        let p = LpProblem {
            n_vars: 2,
            objective: Objective::Minimize(vec![1.0, 1.0]),
            constraints: vec![le(vec![1.0], 1.0)],
        };
        assert_eq!(
            solve(&p).unwrap_err(),
            LpError::DimensionMismatch { row: 0 }
        );
    }

    #[test]
    fn hms_shaped_lp() {
        // The canonical FairHMS subproblem: minimize t subject to
        // ⟨u,q⟩ ≤ t for q ∈ S, ⟨u,p⟩ = 1, u ≥ 0 — with S = {(1,0),(0,1)} and
        // p = (0.8, 0.8). Optimal picks u proportional to (0.625, 0.625):
        // t = 0.625.
        let p = LpProblem {
            n_vars: 3, // u1 u2 t
            objective: Objective::Minimize(vec![0.0, 0.0, 1.0]),
            constraints: vec![
                le(vec![1.0, 0.0, -1.0], 0.0),
                le(vec![0.0, 1.0, -1.0], 0.0),
                eq(vec![0.8, 0.8, 0.0], 1.0),
            ],
        };
        let s = solve(&p).unwrap();
        assert!((s.objective - 0.625).abs() < 1e-8, "t = {}", s.objective);
    }
}
