//! Linear programming substrate for FairHMS.
//!
//! The exact evaluation of minimum happiness ratios in `d ≥ 2` dimensions,
//! as well as the `RDP-Greedy` and `F-Greedy` baselines, require solving
//! many small linear programs of the form
//!
//! ```text
//! minimize  t
//! subject to  ⟨u, q⟩ − t ≤ 0      for every q in the selected set S
//!             ⟨u, p⟩ = 1          (scale-fix for the reference point p)
//!             u ≥ 0, t ≥ 0
//! ```
//!
//! (one per database point `p`; see [`hms`]). The Rust LP ecosystem is thin
//! and this reproduction must build offline, so the solver is implemented
//! in-tree: a dense two-phase primal simplex with Bland's anti-cycling rule
//! ([`simplex`]). The FairHMS LPs have `d + 1` variables and `|S| + 1`
//! rows, so a dense tableau is both simple and fast.

pub mod hms;
pub mod simplex;

pub use simplex::{solve, Constraint, LpError, LpProblem, LpSolution, Objective, Relation};
