//! Experiment harness for the FairHMS reproduction.
//!
//! One binary per paper table/figure lives in `src/bin/`; this library
//! holds the shared plumbing:
//!
//! * [`workloads`] — constructs every dataset variant the evaluation uses
//!   (simulated real datasets × group attributes, anti-correlated sweeps),
//!   normalized and restricted to the union of per-group skylines;
//! * [`harness`] — timed algorithm runs, exact/estimated MHR evaluation,
//!   aligned-table printing, and CSV persistence under `results/`.

pub mod harness;
pub mod workloads;
