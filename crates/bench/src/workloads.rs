//! Dataset variants used across the paper's figures.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::types::FairHmsInstance;
use fairhms_data::gen::anti_correlated_dataset;
use fairhms_data::realsim;
use fairhms_data::skyline::group_skyline_indices;
use fairhms_data::Dataset;
use fairhms_matroid::proportional_bounds;

/// Default seed shared by every harness binary for reproducibility.
pub const SEED: u64 = 1;

/// A named, normalized, skyline-restricted dataset ready for instances.
pub struct Workload {
    /// Label as used in the paper's figure captions.
    pub name: String,
    /// Skyline-union input (what the algorithms actually consume), shared
    /// so every instance built over a workload reuses one allocation.
    pub input: Arc<Dataset>,
    /// Size of the original dataset before skyline restriction.
    pub full_n: usize,
}

fn prepare(name: &str, mut data: Dataset) -> Workload {
    data.normalize();
    let full_n = data.len();
    let sky = group_skyline_indices(&data);
    Workload {
        name: name.to_string(),
        input: Arc::new(data.subset(&sky)),
        full_n,
    }
}

/// Lawschs grouped by one attribute (`"gender"` or `"race"`).
pub fn lawschs(attr: &str) -> Workload {
    let t = realsim::lawschs(SEED);
    prepare(
        &format!("Lawschs ({attr})"),
        t.dataset(&[attr]).expect("known attribute"),
    )
}

/// Adult grouped by the given attributes (e.g. `["gender", "race"]`).
pub fn adult(attrs: &[&str]) -> Workload {
    let t = realsim::adult(SEED);
    prepare(
        &format!("Adult ({})", attrs.join("+")),
        t.dataset(attrs).expect("known attributes"),
    )
}

/// Compas grouped by the given attributes.
pub fn compas(attrs: &[&str]) -> Workload {
    let t = realsim::compas(SEED);
    prepare(
        &format!("Compas ({})", attrs.join("+")),
        t.dataset(attrs).expect("known attributes"),
    )
}

/// Credit grouped by one attribute.
pub fn credit(attr: &str) -> Workload {
    let t = realsim::credit(SEED);
    prepare(
        &format!("Credit ({attr})"),
        t.dataset(&[attr]).expect("known attribute"),
    )
}

/// Anti-correlated synthetic data (Börzsönyi generator + sum-quantile
/// groups), the paper's scalability workload.
pub fn anticor(n: usize, d: usize, c: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = anti_correlated_dataset(n, d, c, &mut rng);
    prepare(&format!("AntiCor_{d}D (n={n}, C={c})"), data)
}

/// The paper's proportional-representation instance (α = 0.1, Section 5.1)
/// on a workload.
pub fn proportional_instance(w: &Workload, k: usize, alpha: f64) -> FairHmsInstance {
    let (lower, upper) = proportional_bounds(&w.input.group_sizes(), k, alpha);
    FairHmsInstance::new(Arc::clone(&w.input), k, lower, upper)
        .expect("proportional bounds are repaired to feasibility")
}

/// The ten multi-dimensional dataset variants of Figures 5, 6, 8–11.
pub fn md_suite(anticor_n: usize) -> Vec<Workload> {
    vec![
        adult(&["gender"]),
        adult(&["race"]),
        adult(&["gender", "race"]),
        anticor(anticor_n, 6, 3),
        compas(&["gender"]),
        compas(&["isRecid"]),
        compas(&["gender", "isRecid"]),
        credit("job"),
        credit("housing"),
        credit("working_years"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_normalized_and_restricted() {
        let w = credit("job");
        assert!(w.input.len() < w.full_n, "skyline restriction applied");
        for j in 0..w.input.dim() {
            let maxj = (0..w.input.len())
                .map(|i| w.input.point(i)[j])
                .fold(0.0_f64, f64::max);
            assert!(maxj <= 1.0 + 1e-12, "attribute {j} exceeds 1");
        }
    }

    #[test]
    fn proportional_instances_are_valid() {
        for w in [credit("housing"), compas(&["gender"]), anticor(500, 4, 3)] {
            let inst = proportional_instance(&w, 10, 0.1);
            assert_eq!(inst.k(), 10);
            // a feasible completion must exist from scratch
            let sel = inst.complete_to_feasible(&[]).unwrap();
            assert!(inst.matroid().is_feasible(&sel));
        }
    }

    #[test]
    fn md_suite_covers_all_ten_panels() {
        let suite = md_suite(500);
        assert_eq!(suite.len(), 10);
        let names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("Adult (gender+race)")));
        assert!(names.iter().any(|n| n.contains("AntiCor_6D")));
        assert!(names.iter().any(|n| n.contains("Compas (gender+isRecid)")));
        assert!(names.iter().any(|n| n.contains("Credit (working_years)")));
    }

    #[test]
    fn workloads_deterministic() {
        let a = lawschs("gender");
        let b = lawschs("gender");
        assert_eq!(a.input.len(), b.input.len());
        assert_eq!(a.input.points_flat(), b.input.points_flat());
    }
}
