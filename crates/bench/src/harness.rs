//! Timed runs, MHR evaluation, table printing, CSV persistence.

#![allow(clippy::disallowed_methods)] // the bench harness measures wall time by design (R5 governs the serving stack)
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::eval::{mhr_exact_2d, mhr_exact_lp, NetEvaluator};
use fairhms_core::registry::Algorithm;
use fairhms_core::types::{CoreError, FairHmsInstance};
use fairhms_data::Dataset;
use fairhms_geometry::sphere::random_net;

/// Above this input size the exact LP evaluation is replaced by a large
/// fixed utility sample (4,000 vectors, fixed seed) — the difference is
/// below plotting resolution and keeps the harness interactive.
const LP_EVAL_LIMIT: usize = 1_500;

/// Outcome of one timed algorithm run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm display name.
    pub alg: String,
    /// Evaluated MHR (exact in 2D or for small inputs; dense-sample
    /// estimate otherwise). `None` when the run failed.
    pub mhr: Option<f64>,
    /// Fairness violations `err(S)` of the produced solution.
    pub err: Option<usize>,
    /// Wall-clock milliseconds.
    pub millis: f64,
    /// Failure note (empty on success).
    pub note: String,
}

impl RunResult {
    /// `"-"`-padded MHR cell.
    pub fn mhr_cell(&self) -> String {
        match self.mhr {
            Some(v) => format!("{v:.4}"),
            None => "-".into(),
        }
    }

    /// `"-"`-padded err cell.
    pub fn err_cell(&self) -> String {
        match self.err {
            Some(v) => v.to_string(),
            None => "-".into(),
        }
    }
}

/// Evaluates a solution's MHR: envelope-exact in 2D, LP-exact for small
/// inputs, dense-sample estimate otherwise.
pub fn evaluate_mhr(data: &Dataset, sel: &[usize]) -> f64 {
    if sel.is_empty() {
        return 0.0;
    }
    if data.dim() == 2 {
        mhr_exact_2d(data, sel)
    } else if data.len() <= LP_EVAL_LIMIT {
        mhr_exact_lp(data, sel)
    } else {
        let mut rng = StdRng::seed_from_u64(9_999);
        let ev = NetEvaluator::new(data, random_net(data.dim(), 4_000, &mut rng));
        ev.mhr(data, sel)
    }
}

/// Runs `alg` on `inst`, timing it and evaluating the result.
pub fn run(alg: &dyn Algorithm, inst: &FairHmsInstance) -> RunResult {
    let t = Instant::now();
    let out = alg.solve(inst);
    let millis = t.elapsed().as_secs_f64() * 1e3;
    match out {
        Ok(sol) => RunResult {
            alg: alg.name().to_string(),
            mhr: Some(evaluate_mhr(inst.data(), &sol.indices)),
            err: Some(inst.matroid().violations(&sol.indices)),
            millis,
            note: String::new(),
        },
        Err(CoreError::ResourceLimit { what }) => RunResult {
            alg: alg.name().to_string(),
            mhr: None,
            err: None,
            millis,
            note: what.to_string(),
        },
        Err(e) => RunResult {
            alg: alg.name().to_string(),
            mhr: None,
            err: None,
            millis,
            note: e.to_string(),
        },
    }
}

/// Prints an aligned table.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// `results/` at the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(d) => PathBuf::from(d).join("../../results"),
        Err(_) => PathBuf::from("results"),
    };
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV into `results/` and reports the path.
pub fn save_csv(file: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(file);
    fairhms_data::csv::write_series(&path, header, rows).expect("write csv");
    println!("[saved {}]", path.display());
}

/// `--full` flag check for extended sweeps.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}
