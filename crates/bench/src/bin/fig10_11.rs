//! Figures 10 and 11: MHR (Fig. 10) and running time (Fig. 11) of
//! BiGreedy+ over the (ε, λ) parameter grid {0.00125, 0.01, 0.08, 0.64}².
//!
//! `cargo run --release -p fairhms-bench --bin fig10_11 [--full]`

#![allow(clippy::disallowed_methods)] // figure reproduction measures wall time by design
use std::time::Instant;

use fairhms_bench::harness::{evaluate_mhr, full_mode, print_table, save_csv};
use fairhms_bench::workloads::{self, proportional_instance};
use fairhms_core::adaptive::{bigreedy_plus, BiGreedyPlusConfig};

fn main() {
    let full = full_mode();
    let k = 10;
    let grid = [0.00125_f64, 0.01, 0.08, 0.64];
    let suite = workloads::md_suite(if full { 10_000 } else { 2_000 });
    let mut csv: Vec<Vec<String>> = Vec::new();

    for w in &suite {
        if k > w.input.len() || k < w.input.num_groups() {
            continue;
        }
        let d = w.input.dim();
        let inst = proportional_instance(w, k, 0.1);
        let m = 10 * k * d;

        let header: Vec<String> = std::iter::once("λ \\ ε".to_string())
            .chain(grid.iter().map(|e| format!("{e}")))
            .collect();
        let mut mhr_rows = Vec::new();
        let mut ms_rows = Vec::new();
        for &lambda in grid.iter().rev() {
            let mut mhr_row = vec![lambda.to_string()];
            let mut ms_row = vec![lambda.to_string()];
            for &epsilon in &grid {
                let cfg = BiGreedyPlusConfig {
                    epsilon,
                    lambda,
                    m0: Some(((m as f64) * 0.05).ceil() as usize),
                    max_m: Some(m),
                    seed: workloads::SEED,
                    ..BiGreedyPlusConfig::default()
                };
                let t = Instant::now();
                let sol = bigreedy_plus(&inst, &cfg).expect("bigreedy+");
                let ms = t.elapsed().as_secs_f64() * 1e3;
                let mhr = evaluate_mhr(&w.input, &sol.indices);
                mhr_row.push(format!("{mhr:.4}"));
                ms_row.push(format!("{ms:.1}"));
                csv.push(vec![
                    w.name.clone(),
                    epsilon.to_string(),
                    lambda.to_string(),
                    format!("{mhr:.4}"),
                    format!("{ms:.2}"),
                ]);
            }
            mhr_rows.push(mhr_row);
            ms_rows.push(ms_row);
        }
        print_table(
            &format!("Figure 10 — {} (MHR over ε, λ)", w.name),
            &header,
            &mhr_rows,
        );
        print_table(
            &format!("Figure 11 — {} (ms over ε, λ)", w.name),
            &header,
            &ms_rows,
        );
    }
    save_csv(
        "fig10_fig11.csv",
        &["dataset", "epsilon", "lambda", "mhr", "millis"],
        &csv,
    );
    println!("\nExpected shape (paper): MHR rises sharply as ε, λ shrink from 0.64 to 0.08, then plateaus; smaller values only add runtime — validating ε = 0.02, λ = 0.04 as the default trade-off.");
}
