//! Figure 7: scalability on anti-correlated data — varying dimensionality
//! `d`, number of groups `C`, and dataset size `n`, at `k = 20`.
//!
//! `cargo run --release -p fairhms-bench --bin fig7 [--full]`

use fairhms_bench::harness::{full_mode, print_table, run, save_csv, RunResult};
use fairhms_bench::workloads::{self, proportional_instance, Workload};
use fairhms_core::registry::{fair_algorithms, Algorithm};

fn main() {
    let full = full_mode();
    let k = 20;
    let base_n = if full { 10_000 } else { 2_000 };
    let mut csv: Vec<Vec<String>> = Vec::new();

    // (a) vary d (paper: 2..16; default stops at 8 — see DESIGN.md).
    let dims: Vec<usize> = if full {
        vec![2, 4, 6, 8, 10, 12, 16]
    } else {
        vec![2, 4, 6, 8]
    };
    let d_points: Vec<(String, Workload)> = dims
        .into_iter()
        .map(|d| (format!("d={d}"), workloads::anticor(base_n, d, 3)))
        .collect();
    sweep("Figure 7a — AntiCor (vary d, k=20)", k, d_points, &mut csv);

    // (b) vary C at d = 6.
    let c_points: Vec<(String, Workload)> = (2..=10)
        .step_by(2)
        .map(|c| (format!("C={c}"), workloads::anticor(base_n, 6, c)))
        .collect();
    sweep(
        "Figure 7b — AntiCor_6D (vary C, k=20)",
        k,
        c_points,
        &mut csv,
    );

    // (c) vary n at d = 6.
    let mut ns = vec![100usize, 1_000, 10_000];
    if full {
        ns.extend([100_000, 1_000_000]);
    }
    let n_points: Vec<(String, Workload)> = ns
        .into_iter()
        .map(|n| (format!("n={n}"), workloads::anticor(n, 6, 3)))
        .collect();
    sweep(
        "Figure 7c — AntiCor_6D (vary n, k=20)",
        k,
        n_points,
        &mut csv,
    );

    save_csv("fig7.csv", &["panel", "x", "alg", "mhr", "millis"], &csv);
    println!("\nExpected shape (paper): MHR falls and time rises with d and C; time roughly linear in n; BiGreedy/BiGreedy+ advantage over baselines grows with C and n.");
}

fn sweep(title: &str, k: usize, points: Vec<(String, Workload)>, csv: &mut Vec<Vec<String>>) {
    let algs: Vec<Box<dyn Algorithm>> = fair_algorithms();
    let mut header: Vec<String> = vec!["x".into()];
    header.extend(algs.iter().map(|a| format!("{} mhr", a.name())));
    header.extend(algs.iter().map(|a| format!("{} ms", a.name())));
    let mut rows = Vec::new();
    for (label, w) in &points {
        if k > w.input.len() || k < w.input.num_groups() {
            continue;
        }
        let inst = proportional_instance(w, k, 0.1);
        let results: Vec<RunResult> = algs.iter().map(|a| run(a.as_ref(), &inst)).collect();
        let mut row = vec![label.clone()];
        for r in &results {
            row.push(r.mhr_cell());
        }
        for r in &results {
            row.push(format!("{:.1}", r.millis));
        }
        for r in &results {
            csv.push(vec![
                title.to_string(),
                label.clone(),
                r.alg.clone(),
                r.mhr_cell(),
                format!("{:.2}", r.millis),
            ]);
        }
        rows.push(row);
    }
    print_table(title, &header, &rows);
}
