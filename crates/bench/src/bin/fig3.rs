//! Figure 3: fairness violations `err(S)` of the original (unfair)
//! algorithms vs our fair algorithms, varying the solution size `k`, under
//! proportional representation with α = 0.1.
//!
//! `cargo run --release -p fairhms-bench --bin fig3 [--full]`

use fairhms_bench::harness::{full_mode, print_table, run, save_csv};
use fairhms_bench::workloads::{self, proportional_instance, Workload};
use fairhms_core::registry::fig3_algorithms;

fn main() {
    let full = full_mode();
    let panels: Vec<(Workload, Vec<usize>)> = vec![
        (workloads::adult(&["gender"]), ks(10, 20, 2)),
        (workloads::adult(&["race"]), ks(10, 20, 2)),
        (
            workloads::anticor(if full { 10_000 } else { 2_000 }, 6, 3),
            ks(10, 50, 10),
        ),
        (workloads::compas(&["gender"]), ks(10, 50, 10)),
        (workloads::credit("job"), ks(10, 50, 10)),
    ];
    let algs = fig3_algorithms();
    let mut csv: Vec<Vec<String>> = Vec::new();

    for (w, k_values) in &panels {
        let header: Vec<String> = std::iter::once("k".to_string())
            .chain(algs.iter().map(|a| a.name().to_string()))
            .collect();
        let mut rows = Vec::new();
        for &k in k_values {
            if k > w.input.len() {
                continue;
            }
            let inst = proportional_instance(w, k, 0.1);
            let mut row = vec![k.to_string()];
            for alg in &algs {
                let r = run(alg.as_ref(), &inst);
                csv.push(vec![
                    w.name.clone(),
                    k.to_string(),
                    r.alg.clone(),
                    r.err_cell(),
                    format!("{:.2}", r.millis),
                ]);
                row.push(r.err_cell());
            }
            rows.push(row);
        }
        print_table(&format!("Figure 3 — err(S) on {}", w.name), &header, &rows);
    }
    save_csv("fig3.csv", &["dataset", "k", "alg", "err", "millis"], &csv);
    println!("\nExpected shape (paper): unfair Greedy/DMM/HS/Sphere violate in almost all cases, growing with k; BiGreedy/BiGreedy+ always 0.");
}

fn ks(from: usize, to: usize, step: usize) -> Vec<usize> {
    (from..=to).step_by(step).collect()
}
