//! Regenerates Table 2: statistics of the datasets used in the experiments
//! (n, d, C, and the sum of per-group skyline sizes).
//!
//! `cargo run --release -p fairhms-bench --bin table2`

use fairhms_bench::harness::{print_table, save_csv};
use fairhms_bench::workloads;
use fairhms_data::stats::DatasetStats;

fn main() {
    let mut specs: Vec<fairhms_bench::workloads::Workload> = vec![
        workloads::anticor(10_000, 2, 3),
        workloads::anticor(10_000, 6, 3),
        workloads::lawschs("gender"),
        workloads::lawschs("race"),
        workloads::adult(&["gender"]),
        workloads::adult(&["race"]),
        workloads::adult(&["gender", "race"]),
        workloads::compas(&["gender"]),
        workloads::compas(&["isRecid"]),
        workloads::compas(&["gender", "isRecid"]),
        workloads::credit("housing"),
        workloads::credit("job"),
        workloads::credit("working_years"),
    ];

    let header: Vec<String> = ["Dataset", "d", "n", "C", "#skylines"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for w in specs.iter_mut() {
        // Stats are computed on the full (pre-restriction) shape; the
        // skyline count equals the restricted input size by construction.
        let st = DatasetStats::compute(&w.input);
        rows.push(vec![
            w.name.clone(),
            st.d.to_string(),
            w.full_n.to_string(),
            st.c.to_string(),
            w.input.len().to_string(),
        ]);
    }
    print_table("Table 2: dataset statistics", &header, &rows);
    save_csv("table2.csv", &["dataset", "d", "n", "C", "skylines"], &rows);
    println!("\nPaper reference: Lawschs 19/42, Adult 130/206/339, Compas 195/229/296, Credit 120/126/185, AntiCor 0.9n-n.");
}
