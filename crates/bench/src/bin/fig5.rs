//! Figures 5 and 6: MHR (Fig. 5) and running time (Fig. 6) of the fair
//! algorithms on the ten multi-dimensional dataset variants, varying `k`,
//! with the best unconstrained baseline as the "price of fairness" line.
//!
//! `cargo run --release -p fairhms-bench --bin fig5 [--full]`
//! (fig6 shares this harness; both views are printed and saved here.)

use fairhms_bench::harness::{full_mode, print_table, run, save_csv, RunResult};
use fairhms_bench::workloads::{self, proportional_instance};
use fairhms_core::baselines::rdp_greedy;
use fairhms_core::registry::fair_algorithms;
use fairhms_core::types::FairHmsInstance;

fn main() {
    let full = full_mode();
    let suite = workloads::md_suite(if full { 10_000 } else { 2_000 });
    let algs = fair_algorithms();
    let mut csv: Vec<Vec<String>> = Vec::new();

    for w in &suite {
        let ks: Vec<usize> = if w.name.starts_with("Adult (gender)") {
            (6..=16).step_by(2).collect()
        } else {
            (10..=20).step_by(2).collect()
        };
        let mut header: Vec<String> = vec!["k".into(), "unfair".into()];
        header.extend(algs.iter().map(|a| format!("{} mhr", a.name())));
        header.extend(algs.iter().map(|a| format!("{} ms", a.name())));
        let mut rows = Vec::new();
        for k in ks {
            if k > w.input.len() || k < w.input.num_groups() {
                continue;
            }
            let inst = proportional_instance(w, k, 0.1);
            // "Price of fairness" reference: the unconstrained greedy.
            let unc = FairHmsInstance::unconstrained(std::sync::Arc::clone(&w.input), k).unwrap();
            let unfair = rdp_greedy(unc.data(), k)
                .map(|sel| fairhms_bench::harness::evaluate_mhr(unc.data(), &sel))
                .unwrap_or(0.0);
            let results: Vec<RunResult> = algs.iter().map(|a| run(a.as_ref(), &inst)).collect();
            let mut row = vec![k.to_string(), format!("{unfair:.4}")];
            for r in &results {
                row.push(r.mhr_cell());
            }
            for r in &results {
                row.push(format!("{:.1}", r.millis));
            }
            for r in &results {
                csv.push(vec![
                    w.name.clone(),
                    k.to_string(),
                    r.alg.clone(),
                    r.mhr_cell(),
                    format!("{:.2}", r.millis),
                    format!("{unfair:.4}"),
                ]);
            }
            rows.push(row);
        }
        print_table(&format!("Figures 5+6 — {}", w.name), &header, &rows);
    }
    save_csv(
        "fig5_fig6.csv",
        &["dataset", "k", "alg", "mhr", "millis", "unfair_ref"],
        &csv,
    );
    println!("\nExpected shape (paper): BiGreedy ≥ BiGreedy+ > adapted baselines in MHR on most datasets (F-Greedy competitive at large k on Credit); G-Sphere fastest but weakest; G-DMM absent on Compas (d=9>7).");
}
