//! Figure 6: running time of the fair algorithms on the multi-dimensional
//! datasets, varying `k`.
//!
//! Figure 6 plots the *time* view of exactly the runs behind Figure 5; this
//! binary reuses the shared CSV when present (produced by `--bin fig5`) and
//! otherwise tells the user to generate it — re-running hours of identical
//! work by default would be wasteful.
//!
//! `cargo run --release -p fairhms-bench --bin fig6`

use std::collections::BTreeMap;

use fairhms_bench::harness::{print_table, results_dir};

fn main() {
    let path = results_dir().join("fig5_fig6.csv");
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(_) => {
            eprintln!(
                "{} not found — run `cargo run --release -p fairhms-bench --bin fig5` first;\nFigure 6 is the time view of the same experiment.",
                path.display()
            );
            std::process::exit(1);
        }
    };

    // dataset -> k -> alg -> millis
    let mut panels: BTreeMap<String, BTreeMap<usize, BTreeMap<String, String>>> = BTreeMap::new();
    let mut algs: Vec<String> = Vec::new();
    for line in content.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 5 {
            continue;
        }
        let (dataset, k, alg, millis) = (cells[0], cells[1], cells[2], cells[4]);
        let k: usize = match k.parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        if !algs.iter().any(|a| a == alg) {
            algs.push(alg.to_string());
        }
        panels
            .entry(dataset.to_string())
            .or_default()
            .entry(k)
            .or_default()
            .insert(alg.to_string(), millis.to_string());
    }

    for (dataset, by_k) in &panels {
        let mut header: Vec<String> = vec!["k".into()];
        header.extend(algs.iter().map(|a| format!("{a} ms")));
        let rows: Vec<Vec<String>> = by_k
            .iter()
            .map(|(k, by_alg)| {
                let mut row = vec![k.to_string()];
                for a in &algs {
                    row.push(by_alg.get(a).cloned().unwrap_or_else(|| "-".into()));
                }
                row
            })
            .collect();
        print_table(&format!("Figure 6 — {dataset} (time, ms)"), &header, &rows);
    }
    println!("\nExpected shape (paper): G-Sphere fastest; BiGreedy+ up to ~5x faster than BiGreedy; F-Greedy slowest of the greedy family (one LP per skyline item per iteration).");
}
