//! Figures 8 and 9: MHR (Fig. 8) and running time (Fig. 9) of BiGreedy and
//! BiGreedy+ as the sample size `m` (resp. maximum sample size `M`) varies
//! over {1.25, 2.5, 5, 10, 20, 40} × k·d.
//!
//! `cargo run --release -p fairhms-bench --bin fig8_9 [--full]`

#![allow(clippy::disallowed_methods)] // figure reproduction measures wall time by design
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_bench::harness::{evaluate_mhr, full_mode, print_table, save_csv};
use fairhms_bench::workloads::{self, proportional_instance};
use fairhms_core::adaptive::{bigreedy_plus, BiGreedyPlusConfig};
use fairhms_core::bigreedy::{bigreedy_on_net, BiGreedyConfig};
use fairhms_geometry::sphere::random_net;

fn main() {
    let full = full_mode();
    let k = 10;
    let suite = workloads::md_suite(if full { 10_000 } else { 2_000 });
    let multipliers = [1.25_f64, 2.5, 5.0, 10.0, 20.0, 40.0];
    let mut csv: Vec<Vec<String>> = Vec::new();

    for w in &suite {
        if k > w.input.len() || k < w.input.num_groups() {
            continue;
        }
        let d = w.input.dim();
        let inst = proportional_instance(w, k, 0.1);
        let header: Vec<String> = vec![
            "m (=mult·k·d)".into(),
            "BiGreedy mhr".into(),
            "BiGreedy ms".into(),
            "BiGreedy+ mhr".into(),
            "BiGreedy+ ms".into(),
        ];
        let mut rows = Vec::new();
        for &mult in &multipliers {
            let m = ((mult * k as f64 * d as f64).round() as usize).max(4);

            let cfg = BiGreedyConfig::default();
            let mut rng = StdRng::seed_from_u64(workloads::SEED);
            let net = random_net(d, m, &mut rng);
            let t = Instant::now();
            let (sol_bg, _) = bigreedy_on_net(&inst, &net, &cfg).expect("bigreedy");
            let t_bg = t.elapsed().as_secs_f64() * 1e3;
            let mhr_bg = evaluate_mhr(&w.input, &sol_bg.indices);

            let plus_cfg = BiGreedyPlusConfig {
                m0: Some(((m as f64) * 0.05).ceil() as usize),
                max_m: Some(m),
                // Paper note (Appendix B): this experiment forces BiGreedy+
                // to exhaust M, so λ = 0 disables early stabilization.
                lambda: 0.0,
                seed: workloads::SEED,
                ..BiGreedyPlusConfig::default()
            };
            let t = Instant::now();
            let sol_plus = bigreedy_plus(&inst, &plus_cfg).expect("bigreedy+");
            let t_plus = t.elapsed().as_secs_f64() * 1e3;
            let mhr_plus = evaluate_mhr(&w.input, &sol_plus.indices);

            rows.push(vec![
                m.to_string(),
                format!("{mhr_bg:.4}"),
                format!("{t_bg:.1}"),
                format!("{mhr_plus:.4}"),
                format!("{t_plus:.1}"),
            ]);
            csv.push(vec![
                w.name.clone(),
                m.to_string(),
                format!("{mhr_bg:.4}"),
                format!("{t_bg:.2}"),
                format!("{mhr_plus:.4}"),
                format!("{t_plus:.2}"),
            ]);
        }
        print_table(
            &format!("Figures 8+9 — {} (vary m, k={k})", w.name),
            &header,
            &rows,
        );
    }
    save_csv(
        "fig8_fig9.csv",
        &[
            "dataset",
            "m",
            "bigreedy_mhr",
            "bigreedy_ms",
            "plus_mhr",
            "plus_ms",
        ],
        &csv,
    );
    println!("\nExpected shape (paper): MHR mostly increases then flattens beyond m = 10·k·d; time grows roughly linearly with m.");
}
