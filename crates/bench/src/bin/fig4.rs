//! Figure 4: two-dimensional results — MHR and running time vs `k`, number
//! of groups `C`, and dataset size `n`, with the unconstrained optimum (the
//! paper's black "price of fairness" line).
//!
//! `cargo run --release -p fairhms-bench --bin fig4 [--full]`

use fairhms_bench::harness::{full_mode, print_table, run, save_csv, RunResult};
use fairhms_bench::workloads::{self, proportional_instance, Workload};
use fairhms_core::intcov::intcov;
use fairhms_core::registry::{fair_algorithms, Algorithm, IntCovAlg};
use fairhms_core::types::FairHmsInstance;

fn main() {
    let full = full_mode();
    let mut csv: Vec<Vec<String>> = Vec::new();

    // Panels (a)-(c) + (f)-(h): vary k.
    let panels: Vec<(Workload, Vec<usize>)> = vec![
        (workloads::lawschs("gender"), (2..=6).collect()),
        (workloads::lawschs("race"), (5..=10).collect()),
        (workloads::anticor(10_000, 2, 3), (5..=10).collect()),
    ];
    for (w, k_values) in &panels {
        sweep(
            &format!("Figure 4 — {} (vary k)", w.name),
            w,
            k_values.iter().map(|&k| (k.to_string(), k, None)).collect(),
            &mut csv,
        );
    }

    // Panels (d) + (i): vary C on AntiCor_2D, k = 5.
    let c_runs: Vec<(String, usize, Option<Workload>)> = (2..=5)
        .map(|c| (c.to_string(), 5, Some(workloads::anticor(10_000, 2, c))))
        .collect();
    sweep_with_workloads("Figure 4 — AntiCor_2D (vary C, k=5)", c_runs, &mut csv);

    // Panels (e) + (j): vary n on AntiCor_2D, k = 5.
    let mut ns = vec![100usize, 1_000, 10_000, 100_000];
    if full {
        ns.push(1_000_000);
    }
    let n_runs: Vec<(String, usize, Option<Workload>)> = ns
        .into_iter()
        .map(|n| (n.to_string(), 5, Some(workloads::anticor(n, 2, 3))))
        .collect();
    sweep_with_workloads("Figure 4 — AntiCor_2D (vary n, k=5)", n_runs, &mut csv);

    save_csv("fig4.csv", &["panel", "x", "alg", "mhr", "millis"], &csv);
    println!("\nExpected shape (paper): IntCov always the highest MHR (exact) but the slowest; BiGreedy/BiGreedy+ above the adapted baselines; price of fairness mostly < 0.02.");
}

/// Runs all algorithms on one workload for a series of (label, k).
fn sweep(
    title: &str,
    w: &Workload,
    points: Vec<(String, usize, Option<Workload>)>,
    csv: &mut Vec<Vec<String>>,
) {
    let owned: Vec<(String, usize, Option<Workload>)> = points;
    run_points(title, Some(w), owned, csv);
}

fn sweep_with_workloads(
    title: &str,
    points: Vec<(String, usize, Option<Workload>)>,
    csv: &mut Vec<Vec<String>>,
) {
    run_points(title, None, points, csv);
}

fn run_points(
    title: &str,
    shared: Option<&Workload>,
    points: Vec<(String, usize, Option<Workload>)>,
    csv: &mut Vec<Vec<String>>,
) {
    let algs: Vec<Box<dyn Algorithm>> = {
        let mut v: Vec<Box<dyn Algorithm>> = vec![Box::new(IntCovAlg)];
        v.extend(fair_algorithms());
        v
    };
    let mut header: Vec<String> = vec!["x".into(), "OPT(unfair)".into()];
    header.extend(algs.iter().map(|a| format!("{} mhr", a.name())));
    header.extend(algs.iter().map(|a| format!("{} ms", a.name())));
    let mut rows = Vec::new();
    for (label, k, wl) in &points {
        let w = wl.as_ref().or(shared).expect("workload available");
        if *k > w.input.len() || *k < w.input.num_groups() {
            continue;
        }
        let inst = proportional_instance(w, *k, 0.1);
        // Black line: unconstrained exact optimum.
        let unc = FairHmsInstance::unconstrained(std::sync::Arc::clone(&w.input), *k).unwrap();
        let opt = intcov(&unc).map(|s| s.mhr.unwrap_or(0.0)).unwrap_or(0.0);
        let results: Vec<RunResult> = algs.iter().map(|a| run(a.as_ref(), &inst)).collect();
        let mut row = vec![label.clone(), format!("{opt:.4}")];
        for r in &results {
            row.push(r.mhr_cell());
        }
        for r in &results {
            row.push(format!("{:.1}", r.millis));
        }
        for r in &results {
            csv.push(vec![
                title.to_string(),
                label.clone(),
                r.alg.clone(),
                r.mhr_cell(),
                format!("{:.2}", r.millis),
            ]);
        }
        rows.push(row);
    }
    print_table(title, &header, &rows);
}
