//! Warm-start benchmarks: what the second cache tier actually saves.
//!
//! Three layers, at n = 20 000 / 100 000:
//!
//! * **component level** — the `O(n)` `PreparedBounds` label scan vs. the
//!   `O(C)` warm rebuild from a prepared scan, and δ-net sampling vs.
//!   reuse (an `Arc` clone);
//! * **end-to-end** — cold-solving a *near-miss* query stream (same
//!   `(dataset, k)`, fresh α per iteration, so the solution cache always
//!   misses) on a warm-start engine vs. a disabled one.
//!
//! Numbers feed the "Warm-start tier" table in docs/ARCHITECTURE.md.

use std::cell::Cell;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::SampledNet;
use fairhms_data::{gen, Dataset};
use fairhms_matroid::{proportional_bounds, PreparedBounds};
use fairhms_service::{Catalog, Query, QueryEngine, WarmConfig};

fn bench_dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(29);
    let d = 3;
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, 3);
    Dataset::new("warmbench", d, points, groups, vec![]).unwrap()
}

fn engine(n: usize, warm: WarmConfig) -> QueryEngine {
    let catalog = Arc::new(Catalog::new());
    catalog.insert_dataset(bench_dataset(n)).unwrap();
    QueryEngine::with_warm_config(catalog, 4096, warm)
}

fn bench_warmstart(c: &mut Criterion) {
    // Component level: the O(n) scan the tier amortizes, vs. the O(C)
    // per-query rebuild it leaves behind.
    for n in [20_000usize, 100_000] {
        let data = Arc::new(bench_dataset(n));
        let k = 10;
        let (lower, upper) = proportional_bounds(&data.group_sizes(), k, 0.1);
        let mut group = c.benchmark_group(format!("warm_components_n{n}"));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function("bounds_scan_cold", |b| {
            b.iter(|| {
                PreparedBounds::new(
                    std::hint::black_box(data.shared_groups()),
                    data.num_groups(),
                )
                .unwrap()
            })
        });
        let prepared = PreparedBounds::new(data.shared_groups(), data.num_groups()).unwrap();
        group.bench_function("bounds_rebuild_warm", |b| {
            b.iter(|| {
                std::hint::black_box(&prepared)
                    .matroid(lower.clone(), upper.clone(), k)
                    .unwrap()
            })
        });
        group.finish();
    }

    // δ-net sampling at the paper's m = 10·k·d (k = 10, d = 3): the cost
    // a warm hit skips entirely (reuse is an Arc clone).
    let mut nets = c.benchmark_group("warm_net");
    let (d, m) = (3usize, 10 * 10 * 3);
    nets.bench_function(BenchmarkId::new("sample_cold", m), |b| {
        let seed = Cell::new(0u64);
        b.iter(|| SampledNet::generate(d, m, seed.replace(seed.get() + 1)))
    });
    let cached = Arc::new(SampledNet::generate(d, m, 42));
    nets.bench_function(BenchmarkId::new("reuse_warm", m), |b| {
        b.iter(|| Arc::clone(std::hint::black_box(&cached)))
    });
    nets.finish();

    // The engine's full per-query setup (everything `solve_cold` does
    // before the solver runs): bounds scan + instance build + δ-net,
    // cold vs. reusing warm state. This is the per-query cost the tier
    // eliminates — the successor of PR 2's prepared-data hand-off
    // measurement (whose remaining O(n) was exactly this scan).
    for n in [20_000usize, 100_000] {
        let data = Arc::new(bench_dataset(n));
        let k = 10;
        let (lower, upper) = proportional_bounds(&data.group_sizes(), k, 0.1);
        let (d, m) = (data.dim(), 10 * k * data.dim());
        let mut group = c.benchmark_group(format!("warm_query_setup_n{n}"));
        group.throughput(Throughput::Elements(1));
        group.bench_function("cold", |b| {
            b.iter(|| {
                let pb = PreparedBounds::new(data.shared_groups(), data.num_groups()).unwrap();
                let inst = fairhms_core::types::FairHmsInstance::with_bounds(
                    Arc::clone(std::hint::black_box(&data)),
                    k,
                    lower.clone(),
                    upper.clone(),
                    &pb,
                )
                .unwrap();
                (inst, SampledNet::generate(d, m, 42))
            })
        });
        let warm_pb =
            Arc::new(PreparedBounds::new(data.shared_groups(), data.num_groups()).unwrap());
        let warm_net = Arc::new(SampledNet::generate(d, m, 42));
        group.bench_function("warm", |b| {
            b.iter(|| {
                let inst = fairhms_core::types::FairHmsInstance::with_bounds(
                    Arc::clone(std::hint::black_box(&data)),
                    k,
                    lower.clone(),
                    upper.clone(),
                    &warm_pb,
                )
                .unwrap();
                (inst, Arc::clone(&warm_net))
            })
        });
        group.finish();
    }

    // End-to-end: a near-miss query stream (fresh α each iteration →
    // solution-cache miss, warm-key hit) with the tier on vs. off.
    for n in [20_000usize, 100_000] {
        let mut group = c.benchmark_group(format!("warm_near_miss_solve_n{n}"));
        group.sample_size(10);
        for (label, cfg) in [
            (
                "warmstart_on",
                WarmConfig {
                    enabled: true,
                    capacity: 512,
                },
            ),
            (
                "warmstart_off",
                WarmConfig {
                    enabled: false,
                    capacity: 0,
                },
            ),
        ] {
            let eng = engine(n, cfg);
            // Populate the warm entry once so the measured iterations are
            // steady-state near-misses, not the first-touch scan.
            eng.execute(&Query::new("warmbench", 10)).unwrap();
            let tick = Cell::new(0u64);
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut q = Query::new("warmbench", 10);
                    // A fresh, never-repeating α: always a cold solve.
                    q.alpha = 0.1 + 1e-9 * tick.replace(tick.get() + 1) as f64;
                    eng.execute(std::hint::black_box(&q)).unwrap()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_warmstart);
criterion_main!(benches);
