//! Smoke benchmarks for the serving engine: cache-hit latency, cold-solve
//! dispatch, batch fan-out, and wire-protocol codec. Sizes are tiny — the
//! point is CI-checkable relative numbers, not paper-scale measurements.

use std::cell::Cell;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::types::FairHmsInstance;
use fairhms_data::{gen, Dataset};
use fairhms_matroid::proportional_bounds;
use fairhms_service::{protocol, BatchExecutor, Catalog, PreparedDataset, Query, QueryEngine};

fn bench_dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(17);
    let d = 3;
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, 3);
    Dataset::new("bench", d, points, groups, vec![]).unwrap()
}

fn engine(n: usize) -> Arc<QueryEngine> {
    let catalog = Arc::new(Catalog::new());
    catalog.insert_dataset(bench_dataset(n)).unwrap();
    Arc::new(QueryEngine::new(catalog, 4096))
}

fn bench_service(c: &mut Criterion) {
    let eng = engine(200);
    let mut group = c.benchmark_group("service");

    // Hot path: the answer is cached; measures fingerprint + shard lookup.
    let hot = Query::new("bench", 5);
    eng.execute(&hot).unwrap();
    group.throughput(Throughput::Elements(1));
    group.bench_function("cache_hit", |b| {
        b.iter(|| eng.execute(std::hint::black_box(&hot)).unwrap())
    });

    // Cold path: a fresh seed per iteration defeats the cache, measuring
    // catalog access + instance build + a small BiGreedy solve.
    let seed = Cell::new(0u64);
    group.sample_size(10).bench_function("cold_solve", |b| {
        b.iter(|| {
            let mut q = Query::new("bench", 5);
            q.seed = seed.replace(seed.get() + 1);
            eng.execute(std::hint::black_box(&q)).unwrap()
        })
    });

    // Per-query instance construction exactly as the engine's cold path
    // performs it: hand the prepared (skyline or full) dataset to
    // `FairHmsInstance::new`. This isolates the data-handoff cost the
    // zero-copy refactor targets — before it, `.clone()` deep-copied the
    // whole point matrix per query; with `Arc<Dataset>` it is a refcount
    // bump — from the solve itself.
    for n in [2_000usize, 20_000] {
        let prep = PreparedDataset::prepare("cold", bench_dataset(n)).unwrap();
        let k = 10;
        let (lower, upper) = proportional_bounds(&prep.group_sizes, k, 0.1);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::new("cold_instance_build_full", n),
            &prep,
            |b, prep| {
                b.iter(|| {
                    FairHmsInstance::new(
                        std::hint::black_box(prep.dataset.clone()),
                        k,
                        lower.clone(),
                        upper.clone(),
                    )
                    .unwrap()
                })
            },
        );
    }

    // End-to-end cold solve on the *full* (unrestricted) matrix of a
    // larger dataset: the per-query copy the refactor removes is biggest
    // here. Fresh seeds defeat the cache.
    let big = engine(20_000);
    let cold_seed = Cell::new(1_000_000u64);
    group
        .sample_size(10)
        .bench_function("cold_solve_full_n20000", |b| {
            b.iter(|| {
                let mut q = Query::new("bench", 10);
                q.skyline = false;
                q.seed = cold_seed.replace(cold_seed.get() + 1);
                big.execute(std::hint::black_box(&q)).unwrap()
            })
        });

    // Batch dispatch overhead at several worker counts (warm cache).
    let queries: Vec<Query> = (0..32)
        .map(|i| {
            let mut q = Query::new("bench", 4 + (i % 4));
            q.alg = ["bigreedy", "f-greedy"][i % 2].to_string();
            q
        })
        .collect();
    for workers in [1usize, 4] {
        let executor = BatchExecutor::new(workers);
        executor.execute_all(&eng, &queries); // warm the cache
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("warm_batch32", workers),
            &executor,
            |b, ex| b.iter(|| ex.execute_all(&eng, std::hint::black_box(&queries))),
        );
    }
    group.finish();

    // Wire codec round trip.
    let mut codec = c.benchmark_group("protocol");
    let q = Query::new("bench", 8);
    let resp = eng.execute(&q).unwrap();
    codec.bench_function("format+parse", |b| {
        b.iter(|| {
            let s = protocol::format_response(std::hint::black_box(&resp)).unwrap();
            protocol::parse_response(&s).unwrap()
        })
    });
    codec.bench_function("parse_request", |b| {
        let wire = protocol::query_to_wire(&q).unwrap();
        b.iter(|| protocol::parse_request(std::hint::black_box(&wire)).unwrap())
    });
    codec.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
