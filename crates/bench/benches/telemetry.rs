//! Telemetry overhead measurement + service throughput snapshot.
//!
//! Not a criterion bench: a plain harness that
//!
//! 1. measures the **warm-hit** path (the hottest request path — a
//!    solution-cache hit) with telemetry enabled vs. disabled and
//!    asserts the per-query overhead stays under 1 µs (the budget
//!    docs/ARCHITECTURE.md promises);
//! 2. runs a mixed workload on a telemetry-on engine and writes
//!    `BENCH_service.json` — queries/sec, points/sec, and the per-stage
//!    latency quantiles from the engine's own [`MetricsSnapshot`] — so
//!    CI archives a machine-readable service profile per commit.
//!
//! Output path: `BENCH_service.json` in the working directory, or
//! `$FAIRHMS_BENCH_JSON` when set. `cargo bench -p fairhms-bench
//! --bench telemetry` runs it; CI treats a failed overhead assertion as
//! a regression.

#![allow(clippy::disallowed_methods)] // benchmarks measure wall time by design (R5 governs the serving stack, not the harness)
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::bigreedy::{bigreedy, db_max_of, BiGreedyConfig};
use fairhms_core::types::FairHmsInstance;
use fairhms_core::SampledNet;
use fairhms_data::{gen, Dataset};
use fairhms_geometry::soa::{set_kernel_backend, KernelBackend};
use fairhms_matroid::proportional_bounds;
use fairhms_obs::json;
use fairhms_service::{
    Catalog, FrontendKind, Query, QueryEngine, ServeOptions, Server, ServerConfig, TelemetryConfig,
    WarmConfig, WireClient,
};

const DATASET_N: usize = 2_000;

fn bench_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(41);
    let d = 3;
    let points = gen::anti_correlated(DATASET_N, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, 3);
    Dataset::new("telbench", d, points, groups, vec![]).unwrap()
}

fn engine(telemetry: bool) -> Arc<QueryEngine> {
    let catalog = Arc::new(Catalog::new());
    let eng = Arc::new(QueryEngine::with_config(
        Arc::clone(&catalog),
        4096,
        WarmConfig {
            enabled: true,
            capacity: 256,
        },
        TelemetryConfig { enabled: telemetry },
    ));
    catalog.insert_dataset(bench_dataset()).unwrap();
    eng
}

/// Mean nanoseconds per warm-hit execute over `iters` iterations.
fn warm_hit_ns(eng: &QueryEngine, iters: u64) -> f64 {
    let q = Query::new("telbench", 5);
    eng.execute(&q).unwrap(); // populate the cache
    let t = Instant::now();
    for _ in 0..iters {
        let r = eng.execute(std::hint::black_box(&q)).unwrap();
        assert!(r.cached);
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// Warm-hit telemetry overhead: median-of-5 interleaved (on, off)
/// rounds, so slow-machine noise and frequency scaling hit both sides.
fn measure_overhead() -> (f64, f64, f64) {
    const ITERS: u64 = 50_000;
    let on = engine(true);
    let off = engine(false);
    // Warm-up round for both engines (page in code, settle the cache).
    warm_hit_ns(&on, 5_000);
    warm_hit_ns(&off, 5_000);
    let mut on_ns = Vec::new();
    let mut off_ns = Vec::new();
    for _ in 0..5 {
        on_ns.push(warm_hit_ns(&on, ITERS));
        off_ns.push(warm_hit_ns(&off, ITERS));
    }
    on_ns.sort_by(f64::total_cmp);
    off_ns.sort_by(f64::total_cmp);
    let (on_med, off_med) = (on_ns[2], off_ns[2]);
    (on_med, off_med, (on_med - off_med).max(0.0))
}

/// Mixed workload (cold solves, cache hits, two algorithm families) on a
/// telemetry-on engine; returns (queries, elapsed_secs, engine).
fn run_workload() -> (u64, f64, Arc<QueryEngine>) {
    let eng = engine(true);
    let mut queries = 0u64;
    let t = Instant::now();
    for round in 0..3u64 {
        for k in [3usize, 4, 5, 6] {
            for alg in ["bigreedy", "f-greedy"] {
                let mut q = Query::new("telbench", k);
                q.alg = alg.to_string();
                q.seed = round; // rounds repeat a seed → cache hits
                eng.execute(&q).unwrap();
                queries += 1;
            }
        }
    }
    (queries, t.elapsed().as_secs_f64(), eng)
}

const SOLVER_N: usize = 20_000;
const SOLVER_D: usize = 4;
const SOLVER_K: usize = 8;

/// Solver-side kernel measurement: the cold `m × n` db_max pass and a
/// cold BiGreedy solve at n = 20k under each kernel backend, asserting
/// bit-identical answers along the way. Emitted as the `solver` section
/// of `BENCH_service.json` — `points_per_sec` there means utility
/// evaluations (row dot products) per second through the db_max pass.
#[allow(clippy::type_complexity)]
fn solver_kernels() -> ((f64, f64), (f64, f64), (f64, f64), u64) {
    let mut rng = StdRng::seed_from_u64(63);
    let data = gen::anti_correlated_dataset(SOLVER_N, SOLVER_D, 3, &mut rng);
    let cfg = BiGreedyConfig::paper_default(SOLVER_K, SOLVER_D);
    let m = cfg.resolve_m(SOLVER_D);
    let net = SampledNet::generate(SOLVER_D, m, cfg.seed);
    let (l, h) = proportional_bounds(&data.group_sizes(), SOLVER_K, 0.1);
    let inst = FairHmsInstance::new(data, SOLVER_K, l, h).unwrap();

    let mut db_ms = [0.0f64; 2];
    let mut evals_per_sec = [0.0f64; 2];
    let mut solve_ms = [0.0f64; 2];
    let mut answers = Vec::new();
    for (slot, backend) in [KernelBackend::Scalar, KernelBackend::Blocked]
        .into_iter()
        .enumerate()
    {
        set_kernel_backend(backend);
        // Build the SoA view outside the clock: it is constructed once
        // per prepared dataset, not per query — the pass being measured
        // is the per-(net, dataset) extreme-value scan.
        inst.data().soa();
        let t = Instant::now();
        let db = db_max_of(inst.data(), &net.vectors);
        let secs = t.elapsed().as_secs_f64();
        db_ms[slot] = secs * 1e3;
        evals_per_sec[slot] = (m * SOLVER_N) as f64 / secs;
        let t = Instant::now();
        let sol = bigreedy(&inst, &cfg).unwrap();
        solve_ms[slot] = t.elapsed().as_secs_f64() * 1e3;
        answers.push((sol.indices, sol.mhr.map(f64::to_bits)));
        std::hint::black_box(db);
    }
    set_kernel_backend(KernelBackend::from_env());
    assert_eq!(
        answers[0], answers[1],
        "scalar and blocked BiGreedy answers diverged"
    );
    (
        (db_ms[0], db_ms[1]),
        (evals_per_sec[0], evals_per_sec[1]),
        (solve_ms[0], solve_ms[1]),
        m as u64,
    )
}

/// Mutation-path measurement for the `mutation` section of
/// `BENCH_service.json`: incremental APPEND/DELETE latency, the
/// delta-invalidation fan-out over a populated solution cache (entries
/// dropped by a dominated append vs. a skyline-changing one), and the
/// from-scratch re-preparation cost the incremental path avoids.
struct MutationProfile {
    append_us: f64,
    delete_us: f64,
    cached_before: u64,
    dropped_dominated: u64,
    dropped_sky_change: u64,
    full_reprep_ms: f64,
}

fn mutation_profile() -> MutationProfile {
    let eng = engine(true);

    // Populate the solution cache across both query forms (skyline and
    // full-table) and two algorithm families, so the invalidation sweep
    // has a realistic mixed population to walk.
    let populate = |eng: &QueryEngine| -> u64 {
        let mut cached = 0u64;
        for k in [3usize, 4, 5] {
            for alg in ["bigreedy", "f-greedy"] {
                for skyline in [true, false] {
                    let mut q = Query::new("telbench", k);
                    q.alg = alg.to_string();
                    q.skyline = skyline;
                    if eng.execute(&q).is_ok() {
                        cached += 1;
                    }
                }
            }
        }
        cached
    };
    let cached_before = populate(&eng);

    // Dominated append: every per-group skyline is provably unchanged,
    // so only full-table entries for the touched group's digest drop.
    let rep = eng.append_row("telbench", &[0.0, 0.0, 0.0], 0).unwrap();
    assert!(!rep.sky_changed && !rep.rebuilt);
    let dropped_dominated = rep.cache_dropped;

    // Skyline-changing append: (1,1,1) dominates the whole dataset, so
    // both query forms drop.
    populate(&eng);
    let rep = eng.append_row("telbench", &[1.0, 1.0, 1.0], 0).unwrap();
    assert!(rep.sky_changed);
    let dropped_sky_change = rep.cache_dropped;
    let mut rows = rep.rows;

    // Incremental latency: dominated appends and tail deletes exercise
    // the cheapest repair path (skyline test + derived-state rebuild).
    const REPS: usize = 32;
    let t = Instant::now();
    for _ in 0..REPS {
        rows = eng
            .append_row("telbench", &[0.0, 0.0, 0.0], 1)
            .unwrap()
            .rows;
    }
    let append_us = t.elapsed().as_micros() as f64 / REPS as f64;
    let t = Instant::now();
    for _ in 0..REPS {
        rows = eng.delete_row("telbench", rows - 1).unwrap().rows;
    }
    let delete_us = t.elapsed().as_micros() as f64 / REPS as f64;

    // The alternative the incremental path replaces: a from-scratch
    // re-preparation of the mutated dataset (normalize + group partition
    // + group-skyline index).
    let live = eng.catalog().get("telbench").unwrap();
    let data = Dataset::new(
        "reprep",
        live.dataset.dim(),
        live.dataset.points_flat().to_vec(),
        live.dataset.groups().to_vec(),
        live.dataset.group_names().to_vec(),
    )
    .unwrap();
    let t = Instant::now();
    let fresh = fairhms_service::PreparedDataset::prepare("reprep", data).unwrap();
    let full_reprep_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fresh.skyline_rows.len(), live.skyline_rows.len());

    MutationProfile {
        append_us,
        delete_us,
        cached_before,
        dropped_dominated,
        dropped_sky_change,
        full_reprep_ms,
    }
}

/// OS threads in this process (`/proc/self/status`; 0 where unavailable).
fn thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:")?.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Idle-connection fan-out on the event front end: opens `connections`
/// pinged-idle clients against a live server and reports
/// `(threads_grown, ping_us_under_fanout)` — how many OS threads the
/// fan-out cost (the loop + worker pool only; idle sockets are poll-set
/// entries) and the PING round-trip latency through the loaded poll set.
fn idle_fanout(connections: usize) -> (u64, f64) {
    let before = thread_count();
    let server = Server::spawn_with(
        Arc::new(QueryEngine::new(Arc::new(Catalog::new()), 16)),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
        },
        ServeOptions {
            frontend: FrontendKind::Event,
            ..ServeOptions::default()
        },
    )
    .expect("spawn event server");
    let mut idle = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut c = WireClient::connect(server.addr()).expect("connect");
        c.send_line("PING").unwrap();
        c.recv().unwrap();
        idle.push(c);
    }
    let grown = thread_count().saturating_sub(before);

    const ITERS: u32 = 2_000;
    let mut probe = WireClient::connect(server.addr()).unwrap();
    for _ in 0..200 {
        probe.send_line("PING").unwrap();
        probe.recv().unwrap();
    }
    let t = Instant::now();
    for _ in 0..ITERS {
        probe.send_line("PING").unwrap();
        probe.recv().unwrap();
    }
    let ping_us = t.elapsed().as_micros() as f64 / ITERS as f64;
    drop(idle);
    server.shutdown();
    (grown, ping_us)
}

fn main() {
    let (on_ns, off_ns, overhead_ns) = measure_overhead();
    println!(
        "warm-hit: telemetry on {on_ns:.0} ns/op, off {off_ns:.0} ns/op, \
         overhead {overhead_ns:.0} ns/op"
    );
    assert!(
        overhead_ns < 1_000.0,
        "warm-hit telemetry overhead {overhead_ns:.0} ns exceeds the 1 µs budget"
    );

    let (queries, secs, eng) = run_workload();
    let qps = queries as f64 / secs;
    let pps = qps * DATASET_N as f64;
    println!("workload: {queries} queries in {secs:.3}s ({qps:.0} q/s)");

    const FANOUT_CONNS: usize = 500;
    let (threads_grown, ping_us) = idle_fanout(FANOUT_CONNS);
    println!(
        "idle fan-out: {FANOUT_CONNS} idle connections cost {threads_grown} threads, \
         ping {ping_us:.1} µs under load"
    );

    let ((db_scalar_ms, db_blocked_ms), (evals_scalar, evals_blocked), (bg_scalar, bg_blocked), m) =
        solver_kernels();
    println!(
        "solver kernels (n={SOLVER_N}, d={SOLVER_D}, m={m}): db_max {db_scalar_ms:.2} ms scalar \
         vs {db_blocked_ms:.2} ms blocked; bigreedy {bg_scalar:.0} ms scalar vs {bg_blocked:.0} \
         ms blocked"
    );

    let mp = mutation_profile();
    println!(
        "mutation: append {:.1} µs, delete {:.1} µs; invalidation fan-out \
         {}/{} entries (dominated) vs {}/{} (sky change); full re-prep {:.2} ms",
        mp.append_us,
        mp.delete_us,
        mp.dropped_dominated,
        mp.cached_before,
        mp.dropped_sky_change,
        mp.cached_before,
        mp.full_reprep_ms
    );

    let snapshot = eng.metrics().snapshot();
    let out = json::Obj::new()
        .str("bench", "service")
        .u64("dataset_points", DATASET_N as u64)
        .u64("queries", queries)
        .f64("elapsed_secs", secs)
        .f64("queries_per_sec", qps)
        .f64("points_per_sec", pps)
        .f64("warm_hit_ns_telemetry_on", on_ns)
        .f64("warm_hit_ns_telemetry_off", off_ns)
        .f64("warm_hit_overhead_ns", overhead_ns)
        .raw(
            "idle_fanout",
            &json::Obj::new()
                .u64("connections", FANOUT_CONNS as u64)
                .u64("threads_grown", threads_grown)
                .f64("ping_us_under_fanout", ping_us)
                .build(),
        )
        .raw(
            "solver",
            &json::Obj::new()
                .u64("dataset_points", SOLVER_N as u64)
                .u64("dim", SOLVER_D as u64)
                .u64("net_size", m)
                .f64("db_max_ms_scalar", db_scalar_ms)
                .f64("db_max_ms_blocked", db_blocked_ms)
                .f64("points_per_sec_scalar", evals_scalar)
                .f64("points_per_sec", evals_blocked)
                .f64("bigreedy_cold_ms_scalar", bg_scalar)
                .f64("bigreedy_cold_ms", bg_blocked)
                .build(),
        )
        .raw(
            "mutation",
            &json::Obj::new()
                .u64("dataset_points", DATASET_N as u64)
                .f64("append_us", mp.append_us)
                .f64("delete_us", mp.delete_us)
                .u64("cached_entries_before", mp.cached_before)
                .u64("dropped_by_dominated_append", mp.dropped_dominated)
                .u64("dropped_by_skyline_append", mp.dropped_sky_change)
                .f64("full_reprep_ms", mp.full_reprep_ms)
                .build(),
        )
        .raw("metrics", &snapshot.to_json())
        .build();

    let path = std::env::var("FAIRHMS_BENCH_JSON").unwrap_or_else(|_| "BENCH_service.json".into());
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
