//! End-to-end `IntCov` — the exact 2D solver behind Figure 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::intcov::intcov;
use fairhms_core::types::FairHmsInstance;
use fairhms_data::gen::anti_correlated_dataset;
use fairhms_data::skyline::group_skyline_indices;
use fairhms_matroid::proportional_bounds;

fn bench_intcov(c: &mut Criterion) {
    let mut group = c.benchmark_group("intcov");
    group.sample_size(10);
    for n in [200usize, 500, 1_000] {
        let mut rng = StdRng::seed_from_u64(5);
        let data = anti_correlated_dataset(n, 2, 3, &mut rng);
        let input = data.subset(&group_skyline_indices(&data));
        let (l, h) = proportional_bounds(&input.group_sizes(), 5, 0.1);
        let inst = FairHmsInstance::new(input, 5, l, h).unwrap();
        group.bench_with_input(BenchmarkId::new("k5_c3", n), &inst, |b, inst| {
            b.iter(|| intcov(std::hint::black_box(inst)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intcov);
criterion_main!(benches);
