//! End-to-end `BiGreedy` / `BiGreedy+` — the multi-dimensional solvers
//! behind Figures 5–9 — plus the lazy-vs-eager greedy ablation called out
//! in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::adaptive::{bigreedy_plus, BiGreedyPlusConfig};
use fairhms_core::bigreedy::{bigreedy, BiGreedyConfig};
use fairhms_core::types::FairHmsInstance;
use fairhms_data::gen::anti_correlated_dataset;
use fairhms_data::skyline::group_skyline_indices;
use fairhms_matroid::proportional_bounds;

fn instance(n: usize, d: usize, k: usize) -> FairHmsInstance {
    let mut rng = StdRng::seed_from_u64(6);
    let data = anti_correlated_dataset(n, d, 3, &mut rng);
    let input = data.subset(&group_skyline_indices(&data));
    let (l, h) = proportional_bounds(&input.group_sizes(), k, 0.1);
    FairHmsInstance::new(input, k, l, h).unwrap()
}

fn bench_bigreedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigreedy");
    group.sample_size(10);
    let k = 10;
    for (n, d) in [(500usize, 4usize), (1_000, 6)] {
        let inst = instance(n, d, k);
        group.bench_with_input(
            BenchmarkId::new("bigreedy", format!("n{n}_d{d}")),
            &inst,
            |b, inst| b.iter(|| bigreedy(inst, &BiGreedyConfig::paper_default(k, d)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("bigreedy_plus", format!("n{n}_d{d}")),
            &inst,
            |b, inst| {
                b.iter(|| bigreedy_plus(inst, &BiGreedyPlusConfig::paper_default(k, d)).unwrap())
            },
        );
        // Ablation: lazy vs eager greedy inside BiGreedy.
        group.bench_with_input(
            BenchmarkId::new("bigreedy_eager", format!("n{n}_d{d}")),
            &inst,
            |b, inst| {
                let cfg = BiGreedyConfig {
                    use_lazy: false,
                    ..BiGreedyConfig::paper_default(k, d)
                };
                b.iter(|| bigreedy(inst, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bigreedy);
criterion_main!(benches);
