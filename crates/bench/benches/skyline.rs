//! Skyline computation — the preprocessing step of every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_data::gen::{anti_correlated, uniform};
use fairhms_data::skyline::skyline_of;

fn bench_skyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyline");
    for (name, d, n) in [
        ("anticor_2d", 2usize, 10_000usize),
        ("anticor_6d", 6, 5_000),
        ("uniform_4d", 4, 10_000),
    ] {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = if name.starts_with("anticor") {
            anti_correlated(n, d, &mut rng)
        } else {
            uniform(n, d, &mut rng)
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &pts, |b, pts| {
            b.iter(|| skyline_of(std::hint::black_box(pts), d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skyline);
criterion_main!(benches);
