//! Wire-codec benchmarks: encode/decode throughput of [`TextCodec`] vs
//! [`BinaryCodec`] on answer frames, dominated by large `indices` lists —
//! the payload shape `BATCH` responses actually ship. Throughput is
//! reported in bytes of *encoded frame* per second, so the two codecs'
//! numbers are comparable end-to-end (binary frames are smaller AND
//! cheaper to decode; text decoding pays decimal parsing per index).
//!
//! CI runs this as a smoke test (`FAIRHMS_BENCH_MS` caps sampling);
//! locally it quantifies the codec choice for docs/PROTOCOL.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fairhms_service::codec::{BinaryCodec, Codec, TextCodec};
use fairhms_service::protocol::{Response, WireAnswer};

/// A deterministic answer with `n` spread-out indices — the hot frame
/// shape (an `mhr` with messy trailing digits exercises float handling
/// in both codecs: shortest-round-trip decimal vs raw bits).
fn answer_frame(n: usize, seq: Option<u64>) -> Response {
    Response::Answer {
        seq,
        answer: WireAnswer {
            alg: "BiGreedy".into(),
            cached: false,
            micros: 8_123_456,
            violations: 0,
            mhr: Some(0.1 + 0.2),
            indices: (0..n).map(|i| i * 17 + (i % 13)).collect(),
        },
    }
}

fn bench_codecs(c: &mut Criterion) {
    let codecs: [(&str, &dyn Codec); 2] = [("text", &TextCodec), ("binary", &BinaryCodec)];

    for n in [100usize, 10_000, 100_000] {
        let resp = answer_frame(n, Some(42));
        let mut group = c.benchmark_group(format!("codec_answer_n{n}"));
        group.sample_size(10);

        for (name, codec) in codecs {
            // Frame size drives the throughput denominator.
            let mut frame = Vec::new();
            codec.encode_frame(&resp, &mut frame).unwrap();
            group.throughput(Throughput::Bytes(frame.len() as u64));

            group.bench_with_input(BenchmarkId::new("encode", name), &resp, |b, resp| {
                let mut out = Vec::with_capacity(frame.len());
                b.iter(|| {
                    out.clear();
                    codec
                        .encode_frame(std::hint::black_box(resp), &mut out)
                        .unwrap();
                    out.len()
                })
            });

            group.bench_with_input(BenchmarkId::new("decode", name), &frame, |b, frame| {
                b.iter(|| {
                    let mut cursor = std::io::Cursor::new(std::hint::black_box(frame.as_slice()));
                    codec.read_frame(&mut cursor).unwrap().unwrap()
                })
            });

            group.bench_with_input(BenchmarkId::new("round_trip", name), &resp, |b, resp| {
                let mut out = Vec::with_capacity(frame.len());
                b.iter(|| {
                    out.clear();
                    codec
                        .encode_frame(std::hint::black_box(resp), &mut out)
                        .unwrap();
                    let mut cursor = std::io::Cursor::new(out.as_slice());
                    codec.read_frame(&mut cursor).unwrap().unwrap()
                })
            });
        }
        group.finish();
    }

    // Small control-plane frames: framing overhead, not payload, rules.
    let mut group = c.benchmark_group("codec_small_frames");
    let small = [
        Response::Pong,
        Response::Stats {
            hits: 1_000_000,
            misses: 250_000,
            entries: 4096,
            evictions: 17,
            hit_rate: 0.8,
            warm_hits: 300_000,
            warm_misses: 9_000,
            warm_entries: 128,
            uptime_secs: 86_400,
            total_queries: 1_250_000,
            queue_depth: 3,
            shed_total: 42,
            conns_open: 512,
            mutations_total: 9,
        },
        answer_frame(5, None),
    ];
    for (name, codec) in codecs {
        group.throughput(Throughput::Elements(small.len() as u64));
        group.bench_with_input(BenchmarkId::new("round_trip3", name), &small, |b, small| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut decoded = 0usize;
                for resp in std::hint::black_box(small) {
                    out.clear();
                    codec.encode_frame(resp, &mut out).unwrap();
                    let mut cursor = std::io::Cursor::new(out.as_slice());
                    codec.read_frame(&mut cursor).unwrap().unwrap();
                    decoded += 1;
                }
                decoded
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
