//! Sharded-preparation benchmarks: full catalog prep (normalize +
//! group-skyline + merge) at 1/2/4/8 shards for n = 20 000 / 100 000,
//! plus a cold-solve check showing solve latency is shard-count-
//! independent (sharding only moves *preparation* work onto threads; the
//! merged candidate set is bit-identical).
//!
//! Numbers feed the "Sharded preparation & merge" table in
//! docs/ARCHITECTURE.md. Speedups require real cores: on a 1-CPU
//! container the shard passes serialize and the bench degenerates to a
//! (useful) overhead measurement.

use std::cell::Cell;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_data::{gen, Dataset};
use fairhms_service::{Catalog, CatalogConfig, PreparedDataset, Query, QueryEngine};

fn bench_dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(23);
    let d = 3;
    let points = gen::uniform(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, 4);
    Dataset::new("shardbench", d, points, groups, vec![]).unwrap()
}

fn bench_shard_prep(c: &mut Criterion) {
    for n in [20_000usize, 100_000] {
        let data = bench_dataset(n);
        let mut group = c.benchmark_group(format!("shard_prep_n{n}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        for shards in [1usize, 2, 4, 8] {
            let cfg = CatalogConfig::with_shards(shards);
            group.bench_with_input(BenchmarkId::from_parameter(shards), &cfg, |b, cfg| {
                // `prepare_with` consumes its dataset; the per-iteration
                // clone is an O(nd) memcpy charged identically to every
                // shard count, so relative numbers stay comparable.
                b.iter(|| {
                    PreparedDataset::prepare_with("p", std::hint::black_box(&data).clone(), cfg)
                        .unwrap()
                })
            });
        }
        group.finish();
    }

    // Cold solves against a 1-shard and an 8-shard catalog: latencies
    // must match (same merged candidate set) — this is the "sharding is
    // invisible to queries" half of the story.
    let mut group = c.benchmark_group("shard_cold_solve_n20000");
    group.sample_size(10);
    for shards in [1usize, 8] {
        let catalog = Arc::new(Catalog::with_config(CatalogConfig::with_shards(shards)));
        catalog.insert_dataset(bench_dataset(20_000)).unwrap();
        let eng = QueryEngine::new(catalog, 4096);
        let seed = Cell::new(0u64);
        group.bench_with_input(BenchmarkId::from_parameter(shards), &eng, |b, eng| {
            b.iter(|| {
                let mut q = Query::new("shardbench", 8);
                q.seed = seed.replace(seed.get() + 1);
                eng.execute(std::hint::black_box(&q)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_prep);
criterion_main!(benches);
