//! Regret-LP solve times — the unit cost of exact evaluation, RDP-Greedy,
//! and F-Greedy (the paper attributes F-Greedy's slowness to exactly this).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_data::gen::anti_correlated;
use fairhms_lp::hms::point_regret;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("regret_lp");
    for (d, s) in [(2usize, 5usize), (4, 10), (6, 20), (8, 40)] {
        let mut rng = StdRng::seed_from_u64(2);
        let sel = anti_correlated(s, d, &mut rng);
        let p = anti_correlated(1, d, &mut rng);
        group.bench_with_input(
            BenchmarkId::new(format!("d{d}"), format!("S{s}")),
            &(sel, p),
            |b, (sel, p)| {
                b.iter(|| point_regret(d, std::hint::black_box(sel), std::hint::black_box(p)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
