//! Ablation benches for the design choices DESIGN.md calls out:
//! binary vs linear τ search, lazy vs eager greedy (see `bigreedy.rs`),
//! streaming vs offline selection, and net-size effects on IntCov-free
//! multi-dimensional solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::bigreedy::{bigreedy, BiGreedyConfig, TauSearch};
use fairhms_core::streaming::{streaming_fairhms, StreamingFairHmsConfig};
use fairhms_core::types::FairHmsInstance;
use fairhms_data::gen::anti_correlated_dataset;
use fairhms_data::skyline::group_skyline_indices;
use fairhms_matroid::proportional_bounds;

fn instance(n: usize, d: usize, k: usize) -> FairHmsInstance {
    let mut rng = StdRng::seed_from_u64(17);
    let data = anti_correlated_dataset(n, d, 3, &mut rng);
    let input = data.subset(&group_skyline_indices(&data));
    let (l, h) = proportional_bounds(&input.group_sizes(), k, 0.1);
    FairHmsInstance::new(input, k, l, h).unwrap()
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let k = 10;
    let inst = instance(800, 4, k);

    // Deviation #1: τ binary search vs the paper's literal linear sweep.
    for (name, search) in [
        ("tau_binary", TauSearch::Binary),
        ("tau_linear", TauSearch::Linear),
    ] {
        let cfg = BiGreedyConfig {
            tau_search: search,
            ..BiGreedyConfig::paper_default(k, 4)
        };
        group.bench_with_input(BenchmarkId::new(name, "n800_d4"), &inst, |b, inst| {
            b.iter(|| bigreedy(inst, &cfg).unwrap())
        });
    }

    // Streaming (one pass + aggregates) vs offline BiGreedy.
    group.bench_with_input(
        BenchmarkId::new("streaming", "n800_d4"),
        &inst,
        |b, inst| b.iter(|| streaming_fairhms(inst, &StreamingFairHmsConfig::default()).unwrap()),
    );
    group.bench_with_input(BenchmarkId::new("offline", "n800_d4"), &inst, |b, inst| {
        b.iter(|| bigreedy(inst, &BiGreedyConfig::paper_default(k, 4)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
