//! Upper-envelope construction and τ-interval queries — the inner loops of
//! `IntCov` (Figure 4's runtime driver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_data::gen::anti_correlated;
use fairhms_geometry::envelope::Envelope;
use fairhms_geometry::line::Line;

fn bench_envelope(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope");
    for n in [100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = anti_correlated(n, 2, &mut rng);
        let lines: Vec<Line> = pts.chunks_exact(2).map(Line::from_point).collect();
        group.bench_with_input(BenchmarkId::new("upper", n), &lines, |b, lines| {
            b.iter(|| Envelope::upper(std::hint::black_box(lines)))
        });
        let env = Envelope::upper(&lines);
        group.bench_with_input(BenchmarkId::new("tau_intervals", n), &lines, |b, lines| {
            b.iter(|| {
                lines
                    .iter()
                    .filter_map(|l| env.tau_interval(std::hint::black_box(l), 0.95))
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_envelope);
criterion_main!(benches);
