//! MHR evaluation: envelope-exact (2D) vs LP-exact vs δ-net sampling — the
//! trade-off behind Lemma 4.1.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::eval::{mhr_exact_2d, mhr_exact_lp, NetEvaluator};
use fairhms_data::gen::anti_correlated_dataset;
use fairhms_geometry::sphere::random_net;

fn bench_eval(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let ds2 = anti_correlated_dataset(2_000, 2, 3, &mut rng);
    let ds6 = anti_correlated_dataset(500, 6, 3, &mut rng);
    let sel2: Vec<usize> = (0..10).map(|i| i * 37 % ds2.len()).collect();
    let sel6: Vec<usize> = (0..10).map(|i| i * 17 % ds6.len()).collect();

    let mut group = c.benchmark_group("mhr_eval");
    group.bench_function("exact_2d_envelope", |b| {
        b.iter(|| mhr_exact_2d(std::hint::black_box(&ds2), std::hint::black_box(&sel2)))
    });
    group.bench_function("exact_6d_lp", |b| {
        b.iter(|| mhr_exact_lp(std::hint::black_box(&ds6), std::hint::black_box(&sel6)))
    });
    let net = random_net(6, 600, &mut rng);
    let ev = NetEvaluator::new(&ds6, net);
    group.bench_function("net_6d_m600", |b| {
        b.iter(|| ev.mhr(std::hint::black_box(&ds6), std::hint::black_box(&sel6)))
    });
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
