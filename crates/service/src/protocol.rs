//! Line-delimited wire protocol for the TCP front end.
//!
//! One request per line, one response line per request (plus `n` extra
//! lines after a `BATCH n` header). Everything is UTF-8 text,
//! space-separated `key=value` pairs, no quoting — values never contain
//! spaces. Numeric floats use Rust's shortest round-trip `Display`
//! formatting, so a parsed `mhr` is bit-identical to the serialized one.
//!
//! ```text
//! >> PING                                   << OK pong
//! >> LIST                                   << OK datasets=name:n:d:c:sky,...
//! >> ALGS                                   << OK algorithms=intcov,bigreedy,...
//! >> STATS                                  << OK hits=… misses=… entries=… evictions=… hit_rate=…
//! >> INFO                                   << OK shards=… strategy=… workers=… datasets=… cache_entries=…
//! >> SHARDS                                 << OK shards=1
//! >> SHARDS 4                               << OK shards=4   (future registrations prep with 4 shards)
//! >> QUERY dataset=adult k=8 alg=bigreedy   << OK alg=BiGreedy cached=false micros=812 err=0 mhr=0.97 indices=3,17,40
//! >> BATCH 2                                << OK batch=2
//! >> QUERY …                                << (response line for query 1)
//! >> QUERY …                                << (response line for query 2)
//! >> SHUTDOWN                               << OK bye
//! ```
//!
//! Malformed input yields a single `ERR <message>` line; the connection
//! stays open.

use crate::engine::QueryResponse;
use crate::query::Query;
use crate::ServiceError;

/// A parsed client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List cataloged datasets.
    List,
    /// List registered algorithm names.
    Algorithms,
    /// Report cache counters.
    Stats,
    /// Report server configuration (shards, strategy, workers, catalog
    /// and cache sizes).
    Info,
    /// `SHARDS` reports the catalog's preparation shard count; `SHARDS n`
    /// sets it for future dataset registrations (already-prepared
    /// datasets are untouched — answers are shard-count-independent).
    Shards(Option<usize>),
    /// `BATCH n`: the next `n` lines are queries executed as one batch.
    Batch(usize),
    /// A single query.
    Query(Box<Query>),
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

fn parse_kv(tokens: &[&str]) -> Result<Vec<(String, String)>, ServiceError> {
    tokens
        .iter()
        .map(|t| {
            t.split_once('=')
                .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
                .ok_or_else(|| ServiceError::Protocol(format!("expected key=value, got {t:?}")))
        })
        .collect()
}

fn parse_bool(key: &str, v: &str) -> Result<bool, ServiceError> {
    match v {
        "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        _ => Err(ServiceError::Protocol(format!("{key}: bad bool {v:?}"))),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, ServiceError> {
    v.parse()
        .map_err(|_| ServiceError::Protocol(format!("{key}: cannot parse {v:?}")))
}

/// Parses a `QUERY`-line body (`key=value` tokens after the verb).
pub fn parse_query(tokens: &[&str]) -> Result<Query, ServiceError> {
    let mut dataset: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut q = Query::new("", 0);
    for (key, v) in parse_kv(tokens)? {
        match key.as_str() {
            "dataset" => dataset = Some(v),
            "k" => k = Some(parse_num("k", &v)?),
            "alg" => q.alg = v,
            "alpha" => q.alpha = parse_num("alpha", &v)?,
            "balanced" => q.balanced = parse_bool("balanced", &v)?,
            "seed" => q.seed = parse_num("seed", &v)?,
            "skyline" => q.skyline = parse_bool("skyline", &v)?,
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    q.dataset = dataset.ok_or_else(|| ServiceError::Protocol("missing dataset=".into()))?;
    q.k = k.ok_or_else(|| ServiceError::Protocol("missing k=".into()))?;
    Ok(q)
}

/// Parses one request line (verbs are case-insensitive).
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((verb, rest)) = tokens.split_first() else {
        return Err(ServiceError::Protocol("empty request".into()));
    };
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Ok(Request::Ping),
        "LIST" => Ok(Request::List),
        "ALGS" => Ok(Request::Algorithms),
        "STATS" => Ok(Request::Stats),
        "INFO" => Ok(Request::Info),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "SHARDS" => match rest {
            [] => Ok(Request::Shards(None)),
            [n] => {
                let v: usize = parse_num("shards", n)?;
                if (1..=crate::catalog::MAX_SHARDS).contains(&v) {
                    Ok(Request::Shards(Some(v)))
                } else {
                    Err(ServiceError::Protocol(format!(
                        "shards must be in 1..={}, got {v}",
                        crate::catalog::MAX_SHARDS
                    )))
                }
            }
            _ => Err(ServiceError::Protocol("usage: SHARDS [n]".into())),
        },
        "BATCH" => match rest {
            [n] => Ok(Request::Batch(parse_num("batch size", n)?)),
            _ => Err(ServiceError::Protocol("usage: BATCH <n>".into())),
        },
        "QUERY" => Ok(Request::Query(Box::new(parse_query(rest)?))),
        other => Err(ServiceError::Protocol(format!("unknown verb {other:?}"))),
    }
}

/// Serializes a query as a full `QUERY …` request line (the inverse of
/// [`parse_request`]).
pub fn query_to_wire(q: &Query) -> String {
    format!(
        "QUERY dataset={} k={} alg={} alpha={} balanced={} seed={} skyline={}",
        q.dataset, q.k, q.alg, q.alpha, q.balanced, q.seed, q.skyline
    )
}

/// An `OK …` query response as decoded by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnswer {
    /// Display name of the algorithm that solved the query.
    pub alg: String,
    /// Whether the server answered from its solution cache.
    pub cached: bool,
    /// Server-side execution time, microseconds.
    pub micros: u64,
    /// Fairness violation count.
    pub violations: usize,
    /// Minimum happiness ratio (bit-exact across the wire), if evaluated.
    pub mhr: Option<f64>,
    /// Selected rows of the full dataset, sorted.
    pub indices: Vec<usize>,
}

/// Formats a successful query response line.
pub fn format_response(resp: &QueryResponse) -> String {
    let a = &resp.answer;
    let mhr = match a.mhr {
        Some(v) => format!("{v}"),
        None => "none".to_string(),
    };
    let indices: Vec<String> = a.indices.iter().map(|i| i.to_string()).collect();
    format!(
        "OK alg={} cached={} micros={} err={} mhr={} indices={}",
        a.alg,
        resp.cached,
        resp.micros,
        a.violations,
        mhr,
        indices.join(",")
    )
}

/// Formats any service error as an `ERR` line.
pub fn format_error(e: &ServiceError) -> String {
    format!("ERR {e}")
}

/// Decodes a query response line produced by [`format_response`] (an
/// `ERR …` line decodes to [`ServiceError::Protocol`] carrying the
/// message).
pub fn parse_response(line: &str) -> Result<WireAnswer, ServiceError> {
    if let Some(msg) = line.strip_prefix("ERR ") {
        return Err(ServiceError::Protocol(msg.to_string()));
    }
    let Some(body) = line.strip_prefix("OK ") else {
        return Err(ServiceError::Protocol(format!(
            "expected OK/ERR line, got {line:?}"
        )));
    };
    let tokens: Vec<&str> = body.split_whitespace().collect();
    let mut ans = WireAnswer {
        alg: String::new(),
        cached: false,
        micros: 0,
        violations: 0,
        mhr: None,
        indices: Vec::new(),
    };
    for (key, v) in parse_kv(&tokens)? {
        match key.as_str() {
            "alg" => ans.alg = v,
            "cached" => ans.cached = parse_bool("cached", &v)?,
            "micros" => ans.micros = parse_num("micros", &v)?,
            "err" => ans.violations = parse_num("err", &v)?,
            "mhr" => {
                ans.mhr = match v.as_str() {
                    "none" => None,
                    s => Some(parse_num("mhr", s)?),
                }
            }
            "indices" => {
                ans.indices = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_num("indices", s))
                    .collect::<Result<_, _>>()?;
            }
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(ans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Answer;
    use std::sync::Arc;

    #[test]
    fn request_round_trip() {
        let mut q = Query::new("adult", 8);
        q.alg = "bigreedy+".into();
        q.alpha = 0.25;
        q.balanced = true;
        q.seed = 7;
        q.skyline = false;
        let wire = query_to_wire(&q);
        match parse_request(&wire).unwrap() {
            Request::Query(parsed) => assert_eq!(*parsed, q),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn request_defaults_and_verbs() {
        match parse_request("query dataset=d k=3").unwrap() {
            Request::Query(q) => {
                assert_eq!(*q, Query::new("d", 3));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("batch 12").unwrap(), Request::Batch(12));
        assert_eq!(parse_request("ShUtDoWn").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("INFO").unwrap(), Request::Info);
        assert_eq!(parse_request("shards").unwrap(), Request::Shards(None));
        assert_eq!(parse_request("SHARDS 4").unwrap(), Request::Shards(Some(4)));
        assert_eq!(
            parse_request("SHARDS 64").unwrap(),
            Request::Shards(Some(64))
        );
        for bad in [
            "",
            "FROB",
            "QUERY k=3",
            "QUERY dataset=d",
            "QUERY dataset=d k=x",
            "QUERY dataset=d k=3 zz=1",
            "BATCH",
            "BATCH x y",
            "SHARDS 0",
            "SHARDS -2",
            "SHARDS x",
            "SHARDS 65",
            "SHARDS 4 8",
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServiceError::Protocol(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn response_round_trip_preserves_mhr_bits() {
        let resp = QueryResponse {
            answer: Arc::new(Answer {
                indices: vec![3, 17, 40],
                mhr: Some(0.1 + 0.2), // a value with messy trailing digits
                violations: 0,
                alg: "BiGreedy".into(),
                solve_micros: 812,
            }),
            cached: false,
            micros: 812,
        };
        let line = format_response(&resp);
        let parsed = parse_response(&line).unwrap();
        assert_eq!(parsed.indices, vec![3, 17, 40]);
        assert_eq!(parsed.mhr.map(f64::to_bits), Some((0.1f64 + 0.2).to_bits()));
        assert_eq!(parsed.alg, "BiGreedy");
        assert!(!parsed.cached);

        // empty selection and missing mhr also survive
        let resp2 = QueryResponse {
            answer: Arc::new(Answer {
                indices: vec![],
                mhr: None,
                violations: 2,
                alg: "Greedy".into(),
                solve_micros: 1,
            }),
            cached: true,
            micros: 3,
        };
        let parsed2 = parse_response(&format_response(&resp2)).unwrap();
        assert!(parsed2.indices.is_empty());
        assert_eq!(parsed2.mhr, None);
        assert_eq!(parsed2.violations, 2);
        assert!(parsed2.cached);
    }

    #[test]
    fn err_lines_decode_to_protocol_errors() {
        let e = ServiceError::UnknownDataset { name: "x".into() };
        let line = format_error(&e);
        assert!(line.starts_with("ERR "));
        assert!(matches!(
            parse_response(&line),
            Err(ServiceError::Protocol(m)) if m.contains("unknown dataset")
        ));
    }
}
