//! Typed wire protocol: requests, the [`Response`] model, and the v1 text
//! rendering.
//!
//! Since protocol **v2** the service speaks a *typed* request/response
//! model: every server reply is a [`Response`] value, and a
//! [`crate::codec::Codec`] renders it on the wire. Two codecs exist —
//! [`crate::codec::TextCodec`] (the v1 lines below, bit-for-bit) and
//! [`crate::codec::BinaryCodec`] (length-prefixed frames) — negotiated by
//! the `HELLO` handshake. A connection that never sends `HELLO` is a v1
//! text session and observes exactly the v1 protocol.
//!
//! Requests are *always* newline-delimited UTF-8 text, space-separated
//! `key=value` pairs, no quoting — values never contain spaces. The
//! negotiated codec governs the **response** channel only (responses
//! carry the bulk: index lists). Numeric floats use Rust's shortest
//! round-trip `Display` formatting, so a parsed `mhr` is bit-identical to
//! the serialized one.
//!
//! ```text
//! >> PING                                   << OK pong
//! >> HELLO version=2 codec=binary           << OK version=2 codec=binary
//! >> LIST                                   << OK datasets=name:n:d:c:sky,...
//! >> ALGS                                   << OK algorithms=intcov,bigreedy,...
//! >> STATS                                  << OK hits=… misses=… entries=… evictions=… hit_rate=… warm_hits=… warm_misses=… warm_entries=…
//! >> INFO                                   << OK shards=… strategy=… workers=… datasets=… cache_entries=… warmstart=…
//! >> SHARDS                                 << OK shards=1
//! >> SHARDS 4                               << OK shards=4   (future registrations prep with 4 shards)
//! >> QUERY dataset=adult k=8 alg=bigreedy   << OK alg=BiGreedy cached=false micros=812 err=0 mhr=0.97 indices=3,17,40
//! >> BATCH 2                                << OK batch=2
//! >> QUERY …                                << (response line for query 1)
//! >> QUERY …                                << (response line for query 2)
//! >> BATCH 2 stream=true                    << OK batch=2 stream=true
//! >> QUERY …                                << OK seq=1 alg=…   (completion order,
//! >> QUERY …                                << OK seq=0 alg=…    seq = request index)
//! >> LOAD name=extra path=extra.csv         << OK loaded name=extra n=2000 d=3 groups=3 skyline=940
//! >> APPEND name=extra row=0.5,0.9,0.1 group=2
//!                                           << OK mutated name=extra op=append n=2001 skyline=940 sky_changed=false cache_dropped=1 warm_dropped=0
//! >> DELETE name=extra row=17               << OK mutated name=extra op=delete n=2000 skyline=939 sky_changed=true cache_dropped=4 warm_dropped=2
//! >> SHUTDOWN                               << OK bye
//! ```
//!
//! Malformed input yields a single `ERR <message>` reply; the connection
//! stays open.

use crate::engine::QueryResponse;
use crate::query::Query;
use crate::ServiceError;

/// Protocol version spoken after a successful `HELLO`; v1 is the
/// implicit version of connections that never send one.
pub const PROTOCOL_VERSION: u32 = 2;

/// A parsed client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// `HELLO version=2 codec=<text|binary>`: negotiate the response
    /// codec for the rest of the connection (v2 handshake).
    Hello {
        /// Requested protocol version (only [`PROTOCOL_VERSION`] is
        /// accepted; v1 clients simply never send `HELLO`).
        version: u32,
        /// Requested response codec.
        codec: crate::codec::CodecKind,
    },
    /// List cataloged datasets.
    List,
    /// List registered algorithm names.
    Algorithms,
    /// Report cache counters.
    Stats,
    /// Report server configuration (shards, strategy, workers, catalog
    /// and cache sizes).
    Info,
    /// `SHARDS` reports the catalog's preparation shard count; `SHARDS n`
    /// sets it for future dataset registrations (already-prepared
    /// datasets are untouched — answers are shard-count-independent).
    Shards(Option<usize>),
    /// `BATCH n [stream=true]`: the next `n` lines are queries executed
    /// as one batch. With `stream=true` each answer is delivered as it
    /// completes, tagged with its request index (`seq=`), instead of
    /// buffering all `n` in request order.
    Batch {
        /// Number of `QUERY` lines that follow the header.
        n: usize,
        /// Stream per-completion (`seq`-tagged) instead of buffering.
        stream: bool,
    },
    /// A single query.
    Query(Box<Query>),
    /// `LOAD name=<name> path=<path>`: register a CSV from the server's
    /// `--load-root` allowlist directory into the catalog.
    Load {
        /// Catalog key to register under.
        name: String,
        /// Path relative to the server's `--load-root`.
        path: String,
    },
    /// `APPEND name=<name> row=<c1,...,cd> group=<idx>`: append one row
    /// to a cataloged dataset in place, with incremental group-skyline
    /// maintenance and delta cache invalidation (no re-prep, no full
    /// cache flush).
    Append {
        /// Catalog key of the dataset to mutate.
        name: String,
        /// The new row's coordinates (must match the dataset's
        /// dimensionality; finite, non-negative).
        row: Vec<f64>,
        /// 0-based group index of the new row (must be an existing
        /// group).
        group: usize,
    },
    /// `DELETE name=<name> row=<id>`: delete one row by its current
    /// 0-based id. Ids above the deleted row shift down by one, exactly
    /// as re-loading the edited CSV would renumber them.
    Delete {
        /// Catalog key of the dataset to mutate.
        name: String,
        /// Current 0-based row id to remove.
        row: usize,
    },
    /// Report the telemetry snapshot (stage histograms, counters,
    /// gauges). Added after v2 shipped; old clients simply never send it.
    Metrics,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// One typed server reply — the seam every codec encodes from and every
/// client decodes into.
///
/// One variant per verb (plus [`Response::Error`]); the legacy v1 lines
/// are exactly [`crate::codec::TextCodec`]'s rendering of these values,
/// so the typed model is observably identical to the historical ad-hoc
/// `format!` strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `PING` reply.
    Pong,
    /// `HELLO` acknowledgment: the version and codec now in force.
    Hello {
        /// Accepted protocol version.
        version: u32,
        /// Response codec for every frame after this acknowledgment.
        codec: crate::codec::CodecKind,
    },
    /// `LIST` reply: one `name:n:d:groups:skyline` summary per dataset.
    Datasets(Vec<String>),
    /// `ALGS` reply: registered algorithm names.
    Algorithms(Vec<String>),
    /// `STATS` reply: solution-cache counters plus warm-start tier
    /// counters (the `warm_*` fields; all zero when the tier is
    /// disabled). Decoding tolerates their absence — pre-warm-start v1
    /// transcripts still parse, with the warm counters defaulting to 0.
    Stats {
        /// Lookups answered from the cache.
        hits: u64,
        /// Lookups that fell through to a cold solve.
        misses: u64,
        /// Entries currently resident.
        entries: usize,
        /// Entries evicted to make room.
        evictions: u64,
        /// `hits / (hits + misses)` (0 when nothing was looked up).
        hit_rate: f64,
        /// Warm-start components (δ-nets, bounds scans) reused.
        warm_hits: u64,
        /// Warm-start components computed fresh.
        warm_misses: u64,
        /// Resident warm-start entries.
        warm_entries: usize,
        /// Seconds since the server started (0 for engine-only
        /// contexts). Decoding tolerates absence — pre-telemetry
        /// transcripts parse with 0.
        uptime_secs: u64,
        /// Queries executed by the engine since start (decoding
        /// tolerates absence, defaulting to 0).
        total_queries: u64,
        /// Solves waiting in the bounded admission queue right now
        /// (0 on the threaded front end, which has no global queue).
        /// Decoding tolerates absence — pre-admission-control
        /// transcripts parse with 0, like the tiers before it.
        queue_depth: u64,
        /// Requests refused by admission control since start
        /// (absence-tolerant, defaulting to 0).
        shed_total: u64,
        /// Connections currently open (absence-tolerant, defaulting
        /// to 0).
        conns_open: u64,
        /// Catalog mutations (`APPEND`/`DELETE`) applied since start
        /// (absence-tolerant, defaulting to 0 — pre-mutation transcripts
        /// still decode).
        mutations_total: u64,
    },
    /// `INFO` reply: server configuration.
    Info {
        /// Catalog preparation shard count.
        shards: usize,
        /// Partition strategy name.
        strategy: String,
        /// Batch worker threads.
        workers: usize,
        /// Registered datasets.
        datasets: usize,
        /// Resident cache entries.
        cache_entries: usize,
        /// Whether the warm-start tier is enabled (decoding tolerates the
        /// field's absence in pre-warm-start transcripts, defaulting to
        /// `true` — the tier's default state).
        warmstart: bool,
        /// Seconds since the server started (absence-tolerant, like
        /// [`Response::Stats`]'s field).
        uptime_secs: u64,
        /// Queries executed by the engine since start (absence-tolerant).
        total_queries: u64,
    },
    /// `SHARDS` reply: the (possibly just set) preparation shard count.
    Shards(usize),
    /// A query answer — one per `QUERY`, `n` per `BATCH n`.
    Answer {
        /// Request index within a streamed batch (`BATCH n stream=true`);
        /// `None` for single queries and buffered batches, whose wire
        /// form is then byte-identical to protocol v1.
        seq: Option<u64>,
        /// The payload.
        answer: WireAnswer,
    },
    /// `BATCH` acknowledgment, written before the `n` answers.
    BatchHeader {
        /// Batch size.
        n: usize,
        /// Whether answers follow in completion order with `seq` tags.
        stream: bool,
    },
    /// `LOAD` reply: the freshly registered dataset's shape.
    Loaded {
        /// Catalog key.
        name: String,
        /// Row count.
        rows: usize,
        /// Dimensionality.
        dim: usize,
        /// Group count.
        groups: usize,
        /// Group-skyline size.
        skyline: usize,
    },
    /// `APPEND`/`DELETE` reply: the post-mutation dataset shape plus the
    /// delta-invalidation fan-out.
    Mutated {
        /// Catalog key.
        name: String,
        /// Which mutation ran: `append` or `delete`.
        op: String,
        /// Row count after the mutation.
        rows: usize,
        /// Group-skyline size after the mutation.
        skyline: usize,
        /// Whether the group skyline changed (membership or row ids).
        sky_changed: bool,
        /// Answer-cache entries dropped by the delta sweep (entries for
        /// untouched forms and other datasets survive).
        cache_dropped: u64,
        /// Warm-start entries dropped by the delta sweep.
        warm_dropped: u64,
    },
    /// `METRICS` reply: the telemetry snapshot. `histograms` holds only
    /// non-empty stage histograms (durations in nanoseconds), so the
    /// line stays proportional to actual activity; `enabled=false` with
    /// empty histograms is the whole reply when telemetry is off.
    Metrics {
        /// Whether span recording is enabled server-side.
        enabled: bool,
        /// Counter and gauge levels, `(name, value)` in export order.
        counters: Vec<(String, u64)>,
        /// Summaries of the non-empty stage histograms.
        histograms: Vec<WireHistogram>,
    },
    /// `SHUTDOWN` acknowledgment.
    Bye,
    /// Admission control refused the request (`ERR busy …` on the text
    /// wire). A distinguished error shape so the server's back-off
    /// advice travels typed; v1 text clients that don't know it still
    /// see a regular `ERR` line.
    Busy {
        /// Request index within a streamed batch, if any.
        seq: Option<u64>,
        /// Suggested client back-off in milliseconds (≥ 1).
        retry_after_ms: u64,
        /// Which bound shed the request (newline-free).
        message: String,
    },
    /// Any failure; `seq` is set only for per-query failures inside a
    /// streamed batch.
    Error {
        /// Request index within a streamed batch, if any.
        seq: Option<u64>,
        /// Human-readable message (newline-free).
        message: String,
    },
}

impl Response {
    /// An [`Response::Error`] (no `seq`) carrying `e`'s display form,
    /// sanitized for the wire (newlines would split text frames, so they
    /// are replaced by spaces — no current error message contains any).
    pub fn error(e: &ServiceError) -> Response {
        Response::error_at(None, e)
    }

    /// Like [`Response::error`], tagged with a streamed-batch sequence
    /// number. [`ServiceError::Busy`] maps to the distinguished
    /// [`Response::Busy`] shape so the retry advice travels typed.
    pub fn error_at(seq: Option<u64>, e: &ServiceError) -> Response {
        match e {
            ServiceError::Busy {
                reason,
                retry_after_ms,
            } => Response::Busy {
                seq,
                retry_after_ms: *retry_after_ms,
                message: reason.replace(['\n', '\r'], " "),
            },
            _ => Response::Error {
                seq,
                message: e.to_string().replace(['\n', '\r'], " "),
            },
        }
    }

    /// Converts a per-query engine result into its response, tagging
    /// `seq` for streamed delivery.
    pub fn from_result(seq: Option<u64>, r: &Result<QueryResponse, ServiceError>) -> Response {
        match r {
            Ok(resp) => Response::Answer {
                seq,
                answer: WireAnswer::from_response(resp),
            },
            Err(e) => Response::error_at(seq, e),
        }
    }
}

fn parse_kv(tokens: &[&str]) -> Result<Vec<(String, String)>, ServiceError> {
    tokens
        .iter()
        .map(|t| {
            t.split_once('=')
                .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
                .ok_or_else(|| ServiceError::Protocol(format!("expected key=value, got {t:?}")))
        })
        .collect()
}

fn parse_bool(key: &str, v: &str) -> Result<bool, ServiceError> {
    match v {
        "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        _ => Err(ServiceError::Protocol(format!("{key}: bad bool {v:?}"))),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, ServiceError> {
    v.parse()
        .map_err(|_| ServiceError::Protocol(format!("{key}: cannot parse {v:?}")))
}

/// Rejects a value that would desynchronize the space/newline-delimited
/// text framing if embedded in a request or response line.
///
/// The seam the wire-safety guarantee hangs on: [`query_to_wire`] and
/// [`encode_response_line`] route every free-form string (dataset and
/// algorithm names, list entries) through here, so a crafted value (e.g.
/// `alg="x ERR injected"`) yields a typed error instead of silently
/// producing two frames.
fn check_wire_safe(field: &str, v: &str) -> Result<(), ServiceError> {
    if v.chars().any(char::is_whitespace) {
        return Err(ServiceError::Protocol(format!(
            "{field}: value {v:?} is not wire-safe (contains whitespace)"
        )));
    }
    Ok(())
}

/// Like [`check_wire_safe`], plus the `,`/`:` delimiters the `METRICS`
/// line uses inside its comma-joined lists.
fn check_metric_name(name: &str) -> Result<(), ServiceError> {
    check_wire_safe("metric", name)?;
    if name.is_empty() || name.contains([',', ':']) {
        return Err(ServiceError::Protocol(format!(
            "metric: name {name:?} would corrupt the METRICS list encoding"
        )));
    }
    Ok(())
}

/// Parses a `QUERY`-line body (`key=value` tokens after the verb).
pub fn parse_query(tokens: &[&str]) -> Result<Query, ServiceError> {
    let mut dataset: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut q = Query::new("", 0);
    for (key, v) in parse_kv(tokens)? {
        match key.as_str() {
            "dataset" => dataset = Some(v),
            "k" => k = Some(parse_num("k", &v)?),
            "alg" => q.alg = v,
            "alpha" => q.alpha = parse_num("alpha", &v)?,
            "balanced" => q.balanced = parse_bool("balanced", &v)?,
            "seed" => q.seed = parse_num("seed", &v)?,
            "skyline" => q.skyline = parse_bool("skyline", &v)?,
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    q.dataset = dataset.ok_or_else(|| ServiceError::Protocol("missing dataset=".into()))?;
    q.k = k.ok_or_else(|| ServiceError::Protocol("missing k=".into()))?;
    Ok(q)
}

fn parse_hello(tokens: &[&str]) -> Result<Request, ServiceError> {
    let mut version: Option<u32> = None;
    let mut codec = crate::codec::CodecKind::Text;
    for (key, v) in parse_kv(tokens)? {
        match key.as_str() {
            "version" => version = Some(parse_num("version", &v)?),
            "codec" => {
                codec = crate::codec::CodecKind::parse(&v).ok_or_else(|| {
                    ServiceError::Protocol(format!("codec: expected text|binary, got {v:?}"))
                })?
            }
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    match version {
        Some(PROTOCOL_VERSION) => Ok(Request::Hello {
            version: PROTOCOL_VERSION,
            codec,
        }),
        Some(v) => Err(ServiceError::Protocol(format!(
            "unsupported protocol version {v} (this server speaks {PROTOCOL_VERSION}; \
             v1 clients simply omit HELLO)"
        ))),
        None => Err(ServiceError::Protocol("missing version=".into())),
    }
}

fn parse_batch(rest: &[&str]) -> Result<Request, ServiceError> {
    let Some((n, tail)) = rest.split_first() else {
        return Err(ServiceError::Protocol(
            "usage: BATCH <n> [stream=true]".into(),
        ));
    };
    let n: usize = parse_num("batch size", n)?;
    let mut stream = false;
    for (key, v) in parse_kv(tail)? {
        match key.as_str() {
            "stream" => stream = parse_bool("stream", &v)?,
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(Request::Batch { n, stream })
}

fn parse_load(tokens: &[&str]) -> Result<Request, ServiceError> {
    let mut name: Option<String> = None;
    let mut path: Option<String> = None;
    for (key, v) in parse_kv(tokens)? {
        match key.as_str() {
            "name" => name = Some(v),
            "path" => path = Some(v),
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(Request::Load {
        name: name.ok_or_else(|| ServiceError::Protocol("missing name=".into()))?,
        path: path.ok_or_else(|| ServiceError::Protocol("missing path=".into()))?,
    })
}

fn parse_append(tokens: &[&str]) -> Result<Request, ServiceError> {
    let mut name: Option<String> = None;
    let mut row: Option<Vec<f64>> = None;
    let mut group: Option<usize> = None;
    for (key, v) in parse_kv(tokens)? {
        match key.as_str() {
            "name" => name = Some(v),
            "row" => {
                let coords = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_num("row", s))
                    .collect::<Result<Vec<f64>, _>>()?;
                if coords.is_empty() {
                    return Err(ServiceError::Protocol("row: empty coordinate list".into()));
                }
                row = Some(coords);
            }
            "group" => group = Some(parse_num("group", &v)?),
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(Request::Append {
        name: name.ok_or_else(|| ServiceError::Protocol("missing name=".into()))?,
        row: row.ok_or_else(|| ServiceError::Protocol("missing row=".into()))?,
        group: group.ok_or_else(|| ServiceError::Protocol("missing group=".into()))?,
    })
}

fn parse_delete(tokens: &[&str]) -> Result<Request, ServiceError> {
    let mut name: Option<String> = None;
    let mut row: Option<usize> = None;
    for (key, v) in parse_kv(tokens)? {
        match key.as_str() {
            "name" => name = Some(v),
            "row" => row = Some(parse_num("row", &v)?),
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(Request::Delete {
        name: name.ok_or_else(|| ServiceError::Protocol("missing name=".into()))?,
        row: row.ok_or_else(|| ServiceError::Protocol("missing row=".into()))?,
    })
}

/// Parses one request line (verbs are case-insensitive).
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((verb, rest)) = tokens.split_first() else {
        return Err(ServiceError::Protocol("empty request".into()));
    };
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Ok(Request::Ping),
        "HELLO" => parse_hello(rest),
        "LIST" => Ok(Request::List),
        "ALGS" => Ok(Request::Algorithms),
        "STATS" => Ok(Request::Stats),
        "INFO" => Ok(Request::Info),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "SHARDS" => match rest {
            [] => Ok(Request::Shards(None)),
            [n] => {
                let v: usize = parse_num("shards", n)?;
                if (1..=crate::catalog::MAX_SHARDS).contains(&v) {
                    Ok(Request::Shards(Some(v)))
                } else {
                    Err(ServiceError::Protocol(format!(
                        "shards must be in 1..={}, got {v}",
                        crate::catalog::MAX_SHARDS
                    )))
                }
            }
            _ => Err(ServiceError::Protocol("usage: SHARDS [n]".into())),
        },
        "BATCH" => parse_batch(rest),
        "QUERY" => Ok(Request::Query(Box::new(parse_query(rest)?))),
        "LOAD" => parse_load(rest),
        "APPEND" => parse_append(rest),
        "DELETE" => parse_delete(rest),
        "METRICS" => Ok(Request::Metrics),
        other => Err(ServiceError::Protocol(format!("unknown verb {other:?}"))),
    }
}

/// Serializes a query as a full `QUERY …` request line (the inverse of
/// [`parse_request`]).
///
/// Errors on wire-unsafe field values (whitespace, including newlines, in
/// `dataset` or `alg`): such a value would tokenize into extra fields or
/// extra request lines on the server — a silent desync — so the client
/// seam refuses to produce it.
pub fn query_to_wire(q: &Query) -> Result<String, ServiceError> {
    check_wire_safe("dataset", &q.dataset)?;
    check_wire_safe("alg", &q.alg)?;
    Ok(format!(
        "QUERY dataset={} k={} alg={} alpha={} balanced={} seed={} skyline={}",
        q.dataset, q.k, q.alg, q.alpha, q.balanced, q.seed, q.skyline
    ))
}

/// One stage histogram's summary as carried by the `METRICS` reply.
///
/// All durations are nanoseconds; quantiles carry the bucket-midpoint
/// error bound documented in `fairhms_obs` (≤ 1/64 relative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHistogram {
    /// Export name (e.g. `engine.solve.bigreedy`); never contains
    /// whitespace, `,`, or `:`.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations, ns.
    pub sum: u64,
    /// Median estimate, ns.
    pub p50: u64,
    /// 90th-percentile estimate, ns.
    pub p90: u64,
    /// 99th-percentile estimate, ns.
    pub p99: u64,
    /// Exact maximum, ns.
    pub max: u64,
}

impl WireHistogram {
    /// The wire form of a named histogram snapshot.
    pub fn from_snapshot(name: &str, s: &fairhms_obs::HistogramSnapshot) -> WireHistogram {
        WireHistogram {
            name: name.to_string(),
            count: s.count(),
            sum: s.sum(),
            p50: s.p50(),
            p90: s.p90(),
            p99: s.p99(),
            max: s.max(),
        }
    }
}

impl Response {
    /// The `METRICS` reply for a telemetry snapshot.
    pub fn from_metrics(snap: &crate::metrics::MetricsSnapshot) -> Response {
        Response::Metrics {
            enabled: snap.enabled,
            counters: snap.counters.clone(),
            histograms: snap
                .histograms
                .iter()
                .map(|(name, s)| WireHistogram::from_snapshot(name, s))
                .collect(),
        }
    }
}

/// An `OK …` query response as decoded by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnswer {
    /// Display name of the algorithm that solved the query.
    pub alg: String,
    /// Whether the server answered from its solution cache.
    pub cached: bool,
    /// Server-side execution time, microseconds.
    pub micros: u64,
    /// Fairness violation count.
    pub violations: usize,
    /// Minimum happiness ratio (bit-exact across the wire), if evaluated.
    pub mhr: Option<f64>,
    /// Selected rows of the full dataset, sorted.
    pub indices: Vec<usize>,
}

impl WireAnswer {
    /// The wire form of an engine response.
    pub fn from_response(resp: &QueryResponse) -> WireAnswer {
        let a = &resp.answer;
        WireAnswer {
            alg: a.alg.clone(),
            cached: resp.cached,
            micros: resp.micros,
            violations: a.violations,
            mhr: a.mhr,
            indices: a.indices.clone(),
        }
    }
}

/// Renders the v1 body of an answer (everything after `OK `, without any
/// `seq` tag).
fn answer_body(a: &WireAnswer) -> Result<String, ServiceError> {
    check_wire_safe("alg", &a.alg)?;
    let mhr = match a.mhr {
        Some(v) => format!("{v}"),
        None => "none".to_string(),
    };
    let indices: Vec<String> = a.indices.iter().map(|i| i.to_string()).collect();
    Ok(format!(
        "alg={} cached={} micros={} err={} mhr={} indices={}",
        a.alg,
        a.cached,
        a.micros,
        a.violations,
        mhr,
        indices.join(",")
    ))
}

/// Formats a successful query response line (protocol v1: no `seq`).
///
/// Errors on a wire-unsafe `alg` value instead of silently emitting a
/// line that would parse as several fields (see [`query_to_wire`]).
pub fn format_response(resp: &QueryResponse) -> Result<String, ServiceError> {
    encode_response_line(&Response::Answer {
        seq: None,
        answer: WireAnswer::from_response(resp),
    })
}

/// Formats any service error as an `ERR` line.
pub fn format_error(e: &ServiceError) -> String {
    format!("ERR {e}")
}

/// Encodes a typed [`Response`] as one v1-compatible text line (no
/// trailing newline).
///
/// This *is* the v1 wire format: for every response shape that existed in
/// protocol v1 the output is byte-identical to the historical `format!`
/// strings (pinned by the codec-equivalence suite). Free-form strings are
/// wire-safety-checked; a value that would split into extra tokens or
/// lines yields an `Err` instead of a desynchronized connection.
pub fn encode_response_line(resp: &Response) -> Result<String, ServiceError> {
    let line = match resp {
        Response::Pong => "OK pong".to_string(),
        Response::Hello { version, codec } => format!("OK version={version} codec={codec}"),
        Response::Datasets(summaries) => {
            for s in summaries {
                check_wire_safe("datasets", s)?;
                if s.contains(',') || s.is_empty() {
                    return Err(ServiceError::Protocol(format!(
                        "datasets: summary {s:?} would corrupt the comma-joined list"
                    )));
                }
            }
            format!("OK datasets={}", summaries.join(","))
        }
        Response::Algorithms(names) => {
            for s in names {
                check_wire_safe("algorithms", s)?;
                if s.contains(',') || s.is_empty() {
                    return Err(ServiceError::Protocol(format!(
                        "algorithms: name {s:?} would corrupt the comma-joined list"
                    )));
                }
            }
            format!("OK algorithms={}", names.join(","))
        }
        Response::Stats {
            hits,
            misses,
            entries,
            evictions,
            hit_rate,
            warm_hits,
            warm_misses,
            warm_entries,
            uptime_secs,
            total_queries,
            queue_depth,
            shed_total,
            conns_open,
            mutations_total,
        } => format!(
            "OK hits={hits} misses={misses} entries={entries} evictions={evictions} \
             hit_rate={hit_rate} warm_hits={warm_hits} warm_misses={warm_misses} \
             warm_entries={warm_entries} uptime_secs={uptime_secs} total_queries={total_queries} \
             queue_depth={queue_depth} shed_total={shed_total} conns_open={conns_open} \
             mutations_total={mutations_total}"
        ),
        Response::Info {
            shards,
            strategy,
            workers,
            datasets,
            cache_entries,
            warmstart,
            uptime_secs,
            total_queries,
        } => {
            check_wire_safe("strategy", strategy)?;
            format!(
                "OK shards={shards} strategy={strategy} workers={workers} datasets={datasets} \
                 cache_entries={cache_entries} warmstart={warmstart} uptime_secs={uptime_secs} \
                 total_queries={total_queries}"
            )
        }
        Response::Metrics {
            enabled,
            counters,
            histograms,
        } => {
            let mut cs = Vec::with_capacity(counters.len());
            for (name, v) in counters {
                check_metric_name(name)?;
                cs.push(format!("{name}:{v}"));
            }
            let mut hs = Vec::with_capacity(histograms.len());
            for h in histograms {
                check_metric_name(&h.name)?;
                hs.push(format!(
                    "{}:{}:{}:{}:{}:{}:{}",
                    h.name, h.count, h.sum, h.p50, h.p90, h.p99, h.max
                ));
            }
            format!(
                "OK metrics enabled={enabled} counters={} histos={}",
                cs.join(","),
                hs.join(",")
            )
        }
        Response::Shards(n) => format!("OK shards={n}"),
        Response::Answer { seq, answer } => match seq {
            None => format!("OK {}", answer_body(answer)?),
            Some(s) => format!("OK seq={s} {}", answer_body(answer)?),
        },
        Response::BatchHeader { n, stream } => {
            if *stream {
                format!("OK batch={n} stream=true")
            } else {
                format!("OK batch={n}")
            }
        }
        Response::Loaded {
            name,
            rows,
            dim,
            groups,
            skyline,
        } => {
            check_wire_safe("name", name)?;
            format!("OK loaded name={name} n={rows} d={dim} groups={groups} skyline={skyline}")
        }
        Response::Mutated {
            name,
            op,
            rows,
            skyline,
            sky_changed,
            cache_dropped,
            warm_dropped,
        } => {
            check_wire_safe("name", name)?;
            check_wire_safe("op", op)?;
            format!(
                "OK mutated name={name} op={op} n={rows} skyline={skyline} \
                 sky_changed={sky_changed} cache_dropped={cache_dropped} \
                 warm_dropped={warm_dropped}"
            )
        }
        Response::Bye => "OK bye".to_string(),
        Response::Busy {
            seq,
            retry_after_ms,
            message,
        } => {
            if message.contains(['\n', '\r']) {
                return Err(ServiceError::Protocol(
                    "busy message contains a newline (not wire-safe)".into(),
                ));
            }
            // Old clients parse this as a regular ERR line; new ones
            // recognize the `busy retry_after_ms=` marker.
            match seq {
                None => format!("ERR busy retry_after_ms={retry_after_ms} {message}"),
                Some(s) => format!("ERR seq={s} busy retry_after_ms={retry_after_ms} {message}"),
            }
        }
        Response::Error { seq, message } => {
            if message.contains(['\n', '\r']) {
                return Err(ServiceError::Protocol(
                    "error message contains a newline (not wire-safe)".into(),
                ));
            }
            match seq {
                None => format!("ERR {message}"),
                Some(s) => format!("ERR seq={s} {message}"),
            }
        }
    };
    Ok(line)
}

fn decode_answer_tokens(seq: Option<u64>, tokens: &[&str]) -> Result<Response, ServiceError> {
    let mut ans = WireAnswer {
        alg: String::new(),
        cached: false,
        micros: 0,
        violations: 0,
        mhr: None,
        indices: Vec::new(),
    };
    for (key, v) in parse_kv(tokens)? {
        match key.as_str() {
            "alg" => ans.alg = v,
            "cached" => ans.cached = parse_bool("cached", &v)?,
            "micros" => ans.micros = parse_num("micros", &v)?,
            "err" => ans.violations = parse_num("err", &v)?,
            "mhr" => {
                ans.mhr = match v.as_str() {
                    "none" => None,
                    s => Some(parse_num("mhr", s)?),
                }
            }
            "indices" => {
                ans.indices = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_num("indices", s))
                    .collect::<Result<_, _>>()?;
            }
            other => {
                return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(Response::Answer { seq, answer: ans })
}

fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn kv_map(tokens: &[&str]) -> Result<std::collections::HashMap<String, String>, ServiceError> {
    Ok(parse_kv(tokens)?.into_iter().collect())
}

fn field<T: std::str::FromStr>(
    m: &std::collections::HashMap<String, String>,
    key: &str,
) -> Result<T, ServiceError> {
    let v = m
        .get(key)
        .ok_or_else(|| ServiceError::Protocol(format!("missing field {key}=")))?;
    parse_num(key, v)
}

/// Like [`field`] but tolerating absence — for fields added to a response
/// after v1 shipped, so pre-extension transcripts still decode.
fn field_or<T: std::str::FromStr>(
    m: &std::collections::HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, ServiceError> {
    match m.get(key) {
        None => Ok(default),
        Some(v) => parse_num(key, v),
    }
}

/// [`field_or`] for booleans (which parse via [`parse_bool`], not
/// `FromStr`).
fn flag_or(
    m: &std::collections::HashMap<String, String>,
    key: &str,
    default: bool,
) -> Result<bool, ServiceError> {
    match m.get(key) {
        None => Ok(default),
        Some(v) => parse_bool(key, v),
    }
}

/// Decodes one response line into the typed [`Response`] model — the
/// exact inverse of [`encode_response_line`] (round-trip pinned by the
/// codec-equivalence suite, `mhr` to the bit).
pub fn decode_response_line(line: &str) -> Result<Response, ServiceError> {
    if let Some(body) = line.strip_prefix("ERR ") {
        // An optional leading seq=N token tags streamed per-query errors.
        // A seq= prefix that does not parse falls back to being part of
        // the message — exactly the historical behavior.
        let (seq, rest) = match body.strip_prefix("seq=") {
            Some(tail) => match tail.split_once(' ') {
                Some((s, msg)) => match s.parse::<u64>() {
                    Ok(s) => (Some(s), msg),
                    Err(_) => (None, body),
                },
                None => (None, body),
            },
            None => (None, body),
        };
        // The admission-control shed marker; anything else (including a
        // malformed retry value) stays a plain error, so pre-admission
        // transcripts decode unchanged.
        if let Some(tail) = rest.strip_prefix("busy retry_after_ms=") {
            if let Some((ms, msg)) = tail.split_once(' ') {
                if let Ok(retry_after_ms) = ms.parse::<u64>() {
                    return Ok(Response::Busy {
                        seq,
                        retry_after_ms,
                        message: msg.to_string(),
                    });
                }
            }
        }
        return Ok(Response::Error {
            seq,
            message: rest.to_string(),
        });
    }
    let Some(body) = line.strip_prefix("OK ") else {
        return Err(ServiceError::Protocol(format!(
            "expected OK/ERR line, got {line:?}"
        )));
    };
    let tokens: Vec<&str> = body.split_whitespace().collect();
    let Some(first) = tokens.first() else {
        return Err(ServiceError::Protocol("empty OK response".into()));
    };
    match *first {
        "pong" => Ok(Response::Pong),
        "bye" => Ok(Response::Bye),
        "metrics" => {
            let m = kv_map(&tokens[1..])?;
            let enabled = flag_or(&m, "enabled", true)?;
            let mut counters = Vec::new();
            for item in split_list(m.get("counters").map(String::as_str).unwrap_or("")) {
                let (name, v) = item.split_once(':').ok_or_else(|| {
                    ServiceError::Protocol(format!("counters: expected name:value, got {item:?}"))
                })?;
                counters.push((name.to_string(), parse_num("counters", v)?));
            }
            let mut histograms = Vec::new();
            for item in split_list(m.get("histos").map(String::as_str).unwrap_or("")) {
                let parts: Vec<&str> = item.split(':').collect();
                let [name, count, sum, p50, p90, p99, max] = parts.as_slice() else {
                    return Err(ServiceError::Protocol(format!(
                        "histos: expected name:count:sum:p50:p90:p99:max, got {item:?}"
                    )));
                };
                histograms.push(WireHistogram {
                    name: name.to_string(),
                    count: parse_num("histos", count)?,
                    sum: parse_num("histos", sum)?,
                    p50: parse_num("histos", p50)?,
                    p90: parse_num("histos", p90)?,
                    p99: parse_num("histos", p99)?,
                    max: parse_num("histos", max)?,
                });
            }
            Ok(Response::Metrics {
                enabled,
                counters,
                histograms,
            })
        }
        "mutated" => {
            let m = kv_map(&tokens[1..])?;
            Ok(Response::Mutated {
                name: m
                    .get("name")
                    .cloned()
                    .ok_or_else(|| ServiceError::Protocol("missing field name=".into()))?,
                op: m
                    .get("op")
                    .cloned()
                    .ok_or_else(|| ServiceError::Protocol("missing field op=".into()))?,
                rows: field(&m, "n")?,
                skyline: field(&m, "skyline")?,
                sky_changed: flag_or(&m, "sky_changed", false)?,
                cache_dropped: field_or(&m, "cache_dropped", 0)?,
                warm_dropped: field_or(&m, "warm_dropped", 0)?,
            })
        }
        "loaded" => {
            let m = kv_map(&tokens[1..])?;
            Ok(Response::Loaded {
                name: m
                    .get("name")
                    .cloned()
                    .ok_or_else(|| ServiceError::Protocol("missing field name=".into()))?,
                rows: field(&m, "n")?,
                dim: field(&m, "d")?,
                groups: field(&m, "groups")?,
                skyline: field(&m, "skyline")?,
            })
        }
        t => match t.split_once('=') {
            Some(("version", _)) => {
                let m = kv_map(&tokens)?;
                Ok(Response::Hello {
                    version: field(&m, "version")?,
                    codec: {
                        let v = m
                            .get("codec")
                            .cloned()
                            .ok_or_else(|| ServiceError::Protocol("missing field codec=".into()))?;
                        crate::codec::CodecKind::parse(&v).ok_or_else(|| {
                            ServiceError::Protocol(format!("codec: unknown kind {v:?}"))
                        })?
                    },
                })
            }
            Some(("datasets", v)) => Ok(Response::Datasets(split_list(v))),
            Some(("algorithms", v)) => Ok(Response::Algorithms(split_list(v))),
            Some(("hits", _)) => {
                let m = kv_map(&tokens)?;
                Ok(Response::Stats {
                    hits: field(&m, "hits")?,
                    misses: field(&m, "misses")?,
                    entries: field(&m, "entries")?,
                    evictions: field(&m, "evictions")?,
                    hit_rate: field(&m, "hit_rate")?,
                    warm_hits: field_or(&m, "warm_hits", 0)?,
                    warm_misses: field_or(&m, "warm_misses", 0)?,
                    warm_entries: field_or(&m, "warm_entries", 0)?,
                    uptime_secs: field_or(&m, "uptime_secs", 0)?,
                    total_queries: field_or(&m, "total_queries", 0)?,
                    queue_depth: field_or(&m, "queue_depth", 0)?,
                    shed_total: field_or(&m, "shed_total", 0)?,
                    conns_open: field_or(&m, "conns_open", 0)?,
                    mutations_total: field_or(&m, "mutations_total", 0)?,
                })
            }
            Some(("shards", v)) if tokens.len() == 1 => {
                Ok(Response::Shards(parse_num("shards", v)?))
            }
            Some(("shards", _)) => {
                let m = kv_map(&tokens)?;
                Ok(Response::Info {
                    shards: field(&m, "shards")?,
                    strategy: m
                        .get("strategy")
                        .cloned()
                        .ok_or_else(|| ServiceError::Protocol("missing field strategy=".into()))?,
                    workers: field(&m, "workers")?,
                    datasets: field(&m, "datasets")?,
                    cache_entries: field(&m, "cache_entries")?,
                    warmstart: flag_or(&m, "warmstart", true)?,
                    uptime_secs: field_or(&m, "uptime_secs", 0)?,
                    total_queries: field_or(&m, "total_queries", 0)?,
                })
            }
            Some(("batch", v)) => {
                let n = parse_num("batch", v)?;
                let mut stream = false;
                for (key, v) in parse_kv(&tokens[1..])? {
                    match key.as_str() {
                        "stream" => stream = parse_bool("stream", &v)?,
                        other => {
                            return Err(ServiceError::Protocol(format!("unknown field {other:?}")));
                        }
                    }
                }
                Ok(Response::BatchHeader { n, stream })
            }
            Some(("seq", v)) => decode_answer_tokens(Some(parse_num("seq", v)?), &tokens[1..]),
            Some(("alg", _)) => decode_answer_tokens(None, &tokens),
            _ => Err(ServiceError::Protocol(format!(
                "unrecognized response line {line:?}"
            ))),
        },
    }
}

/// Decodes a query response line produced by [`format_response`] (an
/// `ERR …` line decodes to [`ServiceError::Protocol`] carrying the
/// message). The v1 client entry point — streamed (`seq`-tagged) frames
/// decode too, via [`decode_response_line`].
pub fn parse_response(line: &str) -> Result<WireAnswer, ServiceError> {
    match decode_response_line(line)? {
        Response::Answer { answer, .. } => Ok(answer),
        Response::Busy {
            retry_after_ms,
            message,
            ..
        } => Err(ServiceError::Busy {
            reason: message,
            retry_after_ms,
        }),
        Response::Error { message, .. } => Err(ServiceError::Protocol(message)),
        other => Err(ServiceError::Protocol(format!(
            "expected a query answer, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Answer;
    use std::sync::Arc;

    #[test]
    fn request_round_trip() {
        let mut q = Query::new("adult", 8);
        q.alg = "bigreedy+".into();
        q.alpha = 0.25;
        q.balanced = true;
        q.seed = 7;
        q.skyline = false;
        let wire = query_to_wire(&q).unwrap();
        match parse_request(&wire).unwrap() {
            Request::Query(parsed) => assert_eq!(*parsed, q),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn request_defaults_and_verbs() {
        match parse_request("query dataset=d k=3").unwrap() {
            Request::Query(q) => {
                assert_eq!(*q, Query::new("d", 3));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("batch 12").unwrap(),
            Request::Batch {
                n: 12,
                stream: false
            }
        );
        assert_eq!(
            parse_request("BATCH 3 stream=true").unwrap(),
            Request::Batch { n: 3, stream: true }
        );
        assert_eq!(
            parse_request("BATCH 3 stream=0").unwrap(),
            Request::Batch {
                n: 3,
                stream: false
            }
        );
        assert_eq!(parse_request("ShUtDoWn").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("INFO").unwrap(), Request::Info);
        assert_eq!(parse_request("metrics").unwrap(), Request::Metrics);
        assert_eq!(parse_request("shards").unwrap(), Request::Shards(None));
        assert_eq!(parse_request("SHARDS 4").unwrap(), Request::Shards(Some(4)));
        assert_eq!(
            parse_request("SHARDS 64").unwrap(),
            Request::Shards(Some(64))
        );
        for bad in [
            "",
            "FROB",
            "QUERY k=3",
            "QUERY dataset=d",
            "QUERY dataset=d k=x",
            "QUERY dataset=d k=3 zz=1",
            "BATCH",
            "BATCH x y",
            "BATCH 3 stream=maybe",
            "BATCH 3 zz=1",
            "SHARDS 0",
            "SHARDS -2",
            "SHARDS x",
            "SHARDS 65",
            "SHARDS 4 8",
            "HELLO",
            "HELLO version=3",
            "HELLO version=2 codec=carrier-pigeon",
            "LOAD",
            "LOAD name=x",
            "LOAD path=y",
            "LOAD name=x path=a b",
            "APPEND",
            "APPEND name=x",
            "APPEND name=x row=0.5,0.9",
            "APPEND name=x group=0",
            "APPEND name=x row= group=0",
            "APPEND name=x row=0.5,nope group=0",
            "APPEND name=x row=0.5 group=z",
            "APPEND name=x row=0.5 group=0 zz=1",
            "DELETE",
            "DELETE name=x",
            "DELETE row=3",
            "DELETE name=x row=-1",
            "DELETE name=x row=3 zz=1",
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServiceError::Protocol(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn hello_and_load_parse() {
        assert_eq!(
            parse_request("HELLO version=2 codec=binary").unwrap(),
            Request::Hello {
                version: 2,
                codec: crate::codec::CodecKind::Binary
            }
        );
        assert_eq!(
            parse_request("hello version=2").unwrap(),
            Request::Hello {
                version: 2,
                codec: crate::codec::CodecKind::Text
            }
        );
        assert_eq!(
            parse_request("LOAD name=extra path=sub/extra.csv").unwrap(),
            Request::Load {
                name: "extra".into(),
                path: "sub/extra.csv".into()
            }
        );
    }

    #[test]
    fn response_round_trip_preserves_mhr_bits() {
        let resp = QueryResponse {
            answer: Arc::new(Answer {
                indices: vec![3, 17, 40],
                mhr: Some(0.1 + 0.2), // a value with messy trailing digits
                violations: 0,
                alg: "BiGreedy".into(),
                solve_micros: 812,
            }),
            cached: false,
            micros: 812,
            stages: None,
        };
        let line = format_response(&resp).unwrap();
        let parsed = parse_response(&line).unwrap();
        assert_eq!(parsed.indices, vec![3, 17, 40]);
        assert_eq!(parsed.mhr.map(f64::to_bits), Some((0.1f64 + 0.2).to_bits()));
        assert_eq!(parsed.alg, "BiGreedy");
        assert!(!parsed.cached);

        // empty selection and missing mhr also survive
        let resp2 = QueryResponse {
            answer: Arc::new(Answer {
                indices: vec![],
                mhr: None,
                violations: 2,
                alg: "Greedy".into(),
                solve_micros: 1,
            }),
            cached: true,
            micros: 3,
            stages: None,
        };
        let parsed2 = parse_response(&format_response(&resp2).unwrap()).unwrap();
        assert!(parsed2.indices.is_empty());
        assert_eq!(parsed2.mhr, None);
        assert_eq!(parsed2.violations, 2);
        assert!(parsed2.cached);
    }

    #[test]
    fn err_lines_decode_to_protocol_errors() {
        let e = ServiceError::UnknownDataset { name: "x".into() };
        let line = format_error(&e);
        assert!(line.starts_with("ERR "));
        assert!(matches!(
            parse_response(&line),
            Err(ServiceError::Protocol(m)) if m.contains("unknown dataset")
        ));
    }

    #[test]
    fn pre_warmstart_stats_and_info_lines_still_decode() {
        // Transcripts captured before the warm-start tier existed lack
        // the warm_* / warmstart fields; they must decode with defaults
        // (0 counters, tier assumed on), not error.
        match decode_response_line("OK hits=2 misses=1 entries=1 evictions=0 hit_rate=0.5").unwrap()
        {
            Response::Stats {
                hits,
                warm_hits,
                warm_misses,
                warm_entries,
                ..
            } => {
                assert_eq!((hits, warm_hits, warm_misses, warm_entries), (2, 0, 0, 0));
            }
            other => panic!("{other:?}"),
        }
        // Pre-telemetry transcripts (no uptime_secs/total_queries) also
        // decode, with zero defaults.
        match decode_response_line(
            "OK hits=2 misses=1 entries=1 evictions=0 hit_rate=0.5 \
             warm_hits=3 warm_misses=2 warm_entries=1",
        )
        .unwrap()
        {
            Response::Stats {
                uptime_secs,
                total_queries,
                ..
            } => assert_eq!((uptime_secs, total_queries), (0, 0)),
            other => panic!("{other:?}"),
        }
        match decode_response_line(
            "OK shards=4 strategy=stratified workers=2 datasets=1 cache_entries=0",
        )
        .unwrap()
        {
            Response::Info {
                warmstart,
                uptime_secs,
                total_queries,
                ..
            } => {
                assert!(warmstart);
                assert_eq!((uptime_secs, total_queries), (0, 0));
            }
            other => panic!("{other:?}"),
        }
        // Malformed values in the new fields are still typed errors.
        assert!(decode_response_line(
            "OK hits=1 misses=0 entries=0 evictions=0 hit_rate=1 warm_hits=x"
        )
        .is_err());
    }

    #[test]
    fn pre_admission_stats_lines_and_busy_markers_decode_compatibly() {
        // Transcripts captured before admission control lack the
        // queue_depth/shed_total/conns_open fields: they decode with
        // zero defaults, exactly like the warm-start and telemetry
        // tiers before them.
        match decode_response_line(
            "OK hits=2 misses=1 entries=1 evictions=0 hit_rate=0.5 \
             warm_hits=3 warm_misses=2 warm_entries=1 uptime_secs=12 total_queries=3",
        )
        .unwrap()
        {
            Response::Stats {
                queue_depth,
                shed_total,
                conns_open,
                ..
            } => assert_eq!((queue_depth, shed_total, conns_open), (0, 0, 0)),
            other => panic!("{other:?}"),
        }
        // A message that merely *starts* like the busy marker but has a
        // malformed retry value stays a plain error (pre-admission
        // transcripts decode unchanged).
        match decode_response_line("ERR busy retry_after_ms=soon overloaded").unwrap() {
            Response::Error { seq: None, message } => {
                assert_eq!(message, "busy retry_after_ms=soon overloaded");
            }
            other => panic!("{other:?}"),
        }
        // The historical v1 busy rendering (no marker) is a plain error.
        match decode_response_line("ERR busy: 8 streamed batches in flight (limit 8)").unwrap() {
            Response::Error { seq: None, message } => {
                assert!(message.starts_with("busy: "));
            }
            other => panic!("{other:?}"),
        }
        // parse_response surfaces a typed ServiceError::Busy to v1-style
        // clients of the line decoder.
        assert!(matches!(
            parse_response("ERR busy retry_after_ms=24 solve queue full"),
            Err(ServiceError::Busy {
                retry_after_ms: 24,
                ..
            })
        ));
    }

    #[test]
    fn append_and_delete_requests_parse() {
        assert_eq!(
            parse_request("APPEND name=extra row=0.5,0.9,0.1 group=2").unwrap(),
            Request::Append {
                name: "extra".into(),
                row: vec![0.5, 0.9, 0.1],
                group: 2
            }
        );
        assert_eq!(
            parse_request("delete name=extra row=17").unwrap(),
            Request::Delete {
                name: "extra".into(),
                row: 17
            }
        );
    }

    #[test]
    fn pre_mutation_stats_lines_still_decode() {
        // Transcripts captured before the mutable catalog lack the
        // mutations_total field: the appended-field compatibility
        // pattern means they decode with a zero default, exactly like
        // every tier extension before it.
        match decode_response_line(
            "OK hits=2 misses=1 entries=1 evictions=0 hit_rate=0.5 \
             warm_hits=3 warm_misses=2 warm_entries=1 uptime_secs=12 total_queries=3 \
             queue_depth=2 shed_total=5 conns_open=7",
        )
        .unwrap()
        {
            Response::Stats {
                conns_open,
                mutations_total,
                ..
            } => assert_eq!((conns_open, mutations_total), (7, 0)),
            other => panic!("{other:?}"),
        }
        // Malformed values in the new field are still typed errors.
        assert!(decode_response_line(
            "OK hits=1 misses=0 entries=0 evictions=0 hit_rate=1 mutations_total=x"
        )
        .is_err());
        // A mutated line missing the optional tail fields also decodes
        // (future-proofing the same pattern for this verb's own fields).
        match decode_response_line("OK mutated name=t op=delete n=9 skyline=4").unwrap() {
            Response::Mutated {
                sky_changed,
                cache_dropped,
                warm_dropped,
                ..
            } => assert_eq!((sky_changed, cache_dropped, warm_dropped), (false, 0, 0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wire_unsafe_query_fields_error_instead_of_desync() {
        let mut q = Query::new("toy", 2);
        q.alg = "bigreedy cached=true".into(); // crafted: would inject a field
        assert!(matches!(
            query_to_wire(&q),
            Err(ServiceError::Protocol(m)) if m.contains("wire-safe")
        ));
        let mut q = Query::new("toy\nPING", 2); // crafted: would inject a request
        q.alg = "bigreedy".into();
        assert!(query_to_wire(&q).is_err());

        let resp = QueryResponse {
            answer: Arc::new(Answer {
                indices: vec![1],
                mhr: None,
                violations: 0,
                alg: "Bi Greedy".into(), // crafted display name
                solve_micros: 1,
            }),
            cached: false,
            micros: 1,
            stages: None,
        };
        assert!(matches!(
            format_response(&resp),
            Err(ServiceError::Protocol(m)) if m.contains("wire-safe")
        ));
    }

    #[test]
    fn metric_names_that_collide_with_delimiters_are_rejected() {
        for bad in ["has space", "has:colon", "has,comma", ""] {
            let resp = Response::Metrics {
                enabled: true,
                counters: vec![(bad.to_string(), 1)],
                histograms: vec![],
            };
            assert!(
                encode_response_line(&resp).is_err(),
                "counter name {bad:?} should be rejected"
            );
            let resp = Response::Metrics {
                enabled: true,
                counters: vec![],
                histograms: vec![WireHistogram {
                    name: bad.to_string(),
                    count: 1,
                    sum: 1,
                    p50: 1,
                    p90: 1,
                    p99: 1,
                    max: 1,
                }],
            };
            assert!(
                encode_response_line(&resp).is_err(),
                "histogram name {bad:?} should be rejected"
            );
        }
        // Malformed METRICS bodies are typed errors, not panics.
        assert!(decode_response_line("OK metrics enabled=true counters=noval histos=").is_err());
        assert!(decode_response_line("OK metrics enabled=true counters= histos=a:1:2").is_err());
    }

    #[test]
    fn streamed_answer_lines_carry_seq() {
        let ans = WireAnswer {
            alg: "IntCov".into(),
            cached: false,
            micros: 12,
            violations: 0,
            mhr: Some(0.75),
            indices: vec![4, 9],
        };
        let line = encode_response_line(&Response::Answer {
            seq: Some(3),
            answer: ans.clone(),
        })
        .unwrap();
        assert_eq!(
            line,
            "OK seq=3 alg=IntCov cached=false micros=12 err=0 mhr=0.75 indices=4,9"
        );
        match decode_response_line(&line).unwrap() {
            Response::Answer { seq, answer } => {
                assert_eq!(seq, Some(3));
                assert_eq!(answer, ans);
            }
            other => panic!("{other:?}"),
        }
        // and the v1 client decoder still accepts the payload
        assert_eq!(parse_response(&line).unwrap(), ans);
    }

    #[test]
    fn typed_decode_covers_every_v1_line_shape() {
        for (line, expect) in [
            ("OK pong", Response::Pong),
            ("OK bye", Response::Bye),
            (
                "OK datasets=a:1:2:3:4,b:5:6:7:8",
                Response::Datasets(vec!["a:1:2:3:4".into(), "b:5:6:7:8".into()]),
            ),
            ("OK datasets=", Response::Datasets(vec![])),
            (
                "OK algorithms=intcov,bigreedy",
                Response::Algorithms(vec!["intcov".into(), "bigreedy".into()]),
            ),
            (
                "OK hits=2 misses=1 entries=1 evictions=0 hit_rate=0.6666666666666666 \
                 warm_hits=3 warm_misses=2 warm_entries=1 uptime_secs=12 total_queries=3 \
                 queue_depth=2 shed_total=5 conns_open=7 mutations_total=4",
                Response::Stats {
                    hits: 2,
                    misses: 1,
                    entries: 1,
                    evictions: 0,
                    hit_rate: 2.0 / 3.0,
                    warm_hits: 3,
                    warm_misses: 2,
                    warm_entries: 1,
                    uptime_secs: 12,
                    total_queries: 3,
                    queue_depth: 2,
                    shed_total: 5,
                    conns_open: 7,
                    mutations_total: 4,
                },
            ),
            (
                "OK mutated name=extra op=append n=2001 skyline=940 sky_changed=false \
                 cache_dropped=1 warm_dropped=0",
                Response::Mutated {
                    name: "extra".into(),
                    op: "append".into(),
                    rows: 2001,
                    skyline: 940,
                    sky_changed: false,
                    cache_dropped: 1,
                    warm_dropped: 0,
                },
            ),
            (
                "OK shards=4 strategy=stratified workers=2 datasets=1 cache_entries=0 \
                 warmstart=false uptime_secs=0 total_queries=0",
                Response::Info {
                    shards: 4,
                    strategy: "stratified".into(),
                    workers: 2,
                    datasets: 1,
                    cache_entries: 0,
                    warmstart: false,
                    uptime_secs: 0,
                    total_queries: 0,
                },
            ),
            (
                "OK metrics enabled=true counters=conn.active:1,queries.total:9 \
                 histos=engine.cache_lookup:9:8100:800:950:990:1024,server.read:9:90000:9000:9900:9990:12000",
                Response::Metrics {
                    enabled: true,
                    counters: vec![("conn.active".into(), 1), ("queries.total".into(), 9)],
                    histograms: vec![
                        WireHistogram {
                            name: "engine.cache_lookup".into(),
                            count: 9,
                            sum: 8100,
                            p50: 800,
                            p90: 950,
                            p99: 990,
                            max: 1024,
                        },
                        WireHistogram {
                            name: "server.read".into(),
                            count: 9,
                            sum: 90000,
                            p50: 9000,
                            p90: 9900,
                            p99: 9990,
                            max: 12000,
                        },
                    ],
                },
            ),
            (
                "OK metrics enabled=false counters= histos=",
                Response::Metrics {
                    enabled: false,
                    counters: vec![],
                    histograms: vec![],
                },
            ),
            ("OK shards=4", Response::Shards(4)),
            (
                "OK batch=7",
                Response::BatchHeader {
                    n: 7,
                    stream: false,
                },
            ),
            (
                "OK batch=7 stream=true",
                Response::BatchHeader { n: 7, stream: true },
            ),
            (
                "OK loaded name=extra n=2000 d=3 groups=3 skyline=940",
                Response::Loaded {
                    name: "extra".into(),
                    rows: 2000,
                    dim: 3,
                    groups: 3,
                    skyline: 940,
                },
            ),
            (
                "OK version=2 codec=binary",
                Response::Hello {
                    version: 2,
                    codec: crate::codec::CodecKind::Binary,
                },
            ),
            (
                "ERR unknown dataset \"x\" (not in catalog)",
                Response::Error {
                    seq: None,
                    message: "unknown dataset \"x\" (not in catalog)".into(),
                },
            ),
            (
                "ERR seq=2 solver error: k must be positive",
                Response::Error {
                    seq: Some(2),
                    message: "solver error: k must be positive".into(),
                },
            ),
            (
                "ERR busy retry_after_ms=24 solve queue full (depth 256)",
                Response::Busy {
                    seq: None,
                    retry_after_ms: 24,
                    message: "solve queue full (depth 256)".into(),
                },
            ),
            (
                "ERR seq=3 busy retry_after_ms=1 queue deadline exceeded",
                Response::Busy {
                    seq: Some(3),
                    retry_after_ms: 1,
                    message: "queue deadline exceeded".into(),
                },
            ),
        ] {
            let decoded = decode_response_line(line).unwrap();
            assert_eq!(decoded, expect, "decode of {line:?}");
            // and every decoded value re-encodes to the identical line
            assert_eq!(encode_response_line(&decoded).unwrap(), line);
        }
    }
}
