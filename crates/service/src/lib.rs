//! FairHMS query-serving engine.
//!
//! The algorithm crates solve one instance per call and re-read their input
//! every time; this crate is the *resident* layer that serves many FairHMS
//! queries against the same datasets — the interactive, repeated-query
//! setting the paper (Zheng et al., VLDB 2022) targets:
//!
//! * [`catalog`] — a [`Catalog`] of named datasets, loaded once, with
//!   memoized preprocessing (normalization, group partitions, and the
//!   group-skyline index every algorithm consumes);
//! * [`query`] — the canonical [`Query`] type (`dataset`, `k`, bounds
//!   policy, algorithm, params) and its fingerprint;
//! * [`cache`] — a sharded LRU [`SolutionCache`] keyed by query
//!   fingerprint, so repeated queries return bit-identical answers without
//!   re-solving;
//! * [`warmstart`] — the second cache tier: a [`WarmStartCache`] of
//!   *intermediate* solver state (BiGreedy δ-nets, prepared bounds
//!   scans) keyed by `(dataset epoch, k, algorithm family)`, so
//!   near-miss queries reuse per-query setup work without affecting
//!   answers;
//! * [`engine`] — the [`QueryEngine`] tying catalog + cache + the
//!   [`fairhms_core::registry::by_name`] algorithm factory together;
//! * [`executor`] — a [`BatchExecutor`] fan-out over std threads and
//!   channels (no async runtime) whose output is independent of worker
//!   count and scheduling;
//! * [`metrics`] — the [`ServiceMetrics`] telemetry surface: per-stage
//!   latency histograms, request-lifecycle spans, and gauges, exported
//!   over the `METRICS` wire verb and the bench JSON snapshot (built on
//!   the lock-free primitives in `fairhms-obs`);
//! * [`protocol`] — typed [`Request`]/[`Response`] wire model and the v1
//!   text rendering;
//! * [`codec`] — the pluggable [`Codec`] seam: v1 text lines and the v2
//!   length-prefixed binary framing, negotiated per connection by
//!   `HELLO`;
//! * [`client`] — [`WireClient`], the typed client the CLI and test
//!   suites share;
//! * [`reactor`] — a thin std-only wrapper over `poll(2)` plus a
//!   self-pipe [`reactor::Waker`], the readiness layer under the event
//!   front end;
//! * [`server`] — the TCP front ends (`fairhms serve`): the classic
//!   thread-per-connection loop and the event-driven multiplexer
//!   (selected by [`FrontendKind`]), with streamed batch delivery,
//!   admission control (bounded solve queue, per-connection quotas,
//!   deadline shedding with `retry_after_ms`), the `LOAD` admin verb,
//!   and the `APPEND`/`DELETE` mutation verbs (incremental skyline
//!   maintenance with per-group generation digests and delta cache
//!   invalidation — see `docs/ARCHITECTURE.md`).
//!
//! ```
//! use fairhms_service::{Catalog, Query, QueryEngine};
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(Catalog::new());
//! // A 6-point, 2-group toy dataset.
//! let points = vec![1.0, 0.1, 0.8, 0.6, 0.2, 0.9, 0.9, 0.3, 0.4, 0.8, 0.7, 0.7];
//! let data = fairhms_data::Dataset::new("toy", 2, points, vec![0, 1, 0, 1, 0, 1], vec![]).unwrap();
//! catalog.insert_dataset(data).unwrap();
//!
//! let engine = QueryEngine::new(catalog, 64);
//! let q = Query::new("toy", 2);
//! let cold = engine.execute(&q).unwrap();
//! let warm = engine.execute(&q).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(cold.answer.indices, warm.answer.indices);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod client;
pub mod codec;
pub mod engine;
mod event;
pub mod executor;
pub mod metrics;
pub mod protocol;
pub mod query;
pub mod reactor;
pub mod server;
pub mod warmstart;

pub use cache::{CacheStats, SolutionCache};
pub use catalog::{
    Catalog, CatalogConfig, GroupGenerations, MutationOutcome, PreparedDataset, ShardPrep,
    MAX_SHARDS,
};
pub use client::WireClient;
pub use codec::{BinaryCodec, Codec, CodecKind, TextCodec};
pub use engine::{Answer, MutationReport, QueryEngine, QueryResponse, StageTimings};
pub use executor::BatchExecutor;
pub use metrics::{MetricsSnapshot, ServiceMetrics, TelemetryConfig};
pub use protocol::{Request, Response, WireAnswer, WireHistogram};
pub use query::Query;
pub use server::{FrontendKind, ServeOptions, Server, ServerConfig};
pub use warmstart::{WarmConfig, WarmEntry, WarmKey, WarmStartCache, WarmStats};

use fairhms_core::types::CoreError;
use fairhms_data::DatasetError;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The query referenced a dataset the catalog does not hold.
    UnknownDataset {
        /// The missing catalog key.
        name: String,
    },
    /// A dataset failed to load or validate.
    Dataset(String),
    /// The solver rejected the instance or failed (typed core error).
    Core(CoreError),
    /// A wire request could not be parsed.
    Protocol(String),
    /// The server is shedding load: an admission-control bound was hit
    /// (stream gate, solve queue, per-connection quota, or queue
    /// deadline — see [`server::ServeOptions`]). Carries the server's
    /// retry advice so well-behaved clients can back off precisely.
    Busy {
        /// Which bound shed the request, e.g.
        /// `"8 streamed batches in flight (limit 8)"`.
        reason: String,
        /// Suggested client back-off in milliseconds (≥ 1).
        retry_after_ms: u64,
    },
    /// Socket / filesystem failure (message-only; `io::Error` is not
    /// `Clone`).
    Io(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownDataset { name } => {
                write!(f, "unknown dataset {name:?} (not in catalog)")
            }
            ServiceError::Dataset(m) => write!(f, "dataset error: {m}"),
            ServiceError::Core(e) => write!(f, "solver error: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Busy {
                reason,
                retry_after_ms,
            } => write!(f, "busy: {reason} (retry after {retry_after_ms} ms)"),
            ServiceError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<DatasetError> for ServiceError {
    fn from(e: DatasetError) -> Self {
        ServiceError::Dataset(e.to_string())
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e.to_string())
    }
}
