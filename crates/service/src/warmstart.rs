//! The warm-start tier: an LRU cache of *intermediate* solver state,
//! separate from the full-answer [`SolutionCache`](crate::SolutionCache).
//!
//! The solution cache only helps when a query repeats **exactly**. A
//! near-miss query — same dataset and `k`, different `alpha`, bounds
//! policy, or skyline flag — misses it and used to redo all per-query
//! setup from scratch: sampling the BiGreedy δ-net (`m = 10·k·d` utility
//! vectors) and the matroid's `O(n)` group-label validation scan. Both
//! artifacts are *deterministic in a preimage that near-miss queries
//! share*, so this tier caches them keyed by
//! `(dataset epoch, k, algorithm family)`:
//!
//! * the [`SampledNet`] δ-net basis — deterministic in `(dim, m, seed)`,
//!   so reuse is bit-identical to regeneration (verified via
//!   [`SampledNet::matches`] before every reuse);
//! * one [`PreparedBounds`] label scan per candidate form (full matrix /
//!   skyline restriction) — reduces per-query matroid construction from
//!   `O(n)` to `O(C)`;
//! * one [`CachedDbMax`] vector per candidate form — the `m × n`
//!   per-utility database-maximum pass of BiGreedy setup, deterministic
//!   in `(dim, m, seed, n)` and verified against that preimage before
//!   every reuse (see [`fairhms_core::CachedDbMax::matches`]).
//!
//! **Invalidation contract:** the key folds in the dataset's registration
//! epoch (like the solution cache), so replacing a dataset under the same
//! name makes every stale entry unreachable; unreachable entries age out
//! through the per-cache LRU. Entries hold `Arc` handles into the
//! prepared dataset, never copies, so a resident entry costs `O(C)` plus
//! the shared net.
//!
//! Correctness does not depend on this tier at all: the engine treats
//! every lookup as advisory, verifies preimages before reuse, and the
//! equivalence suite (`tests/warmstart_equivalence.rs`) pins every
//! registry algorithm bit-identical with the tier enabled vs. disabled.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fairhms_obs::sync::lock_or_recover;

use fairhms_core::{CachedDbMax, SampledNet};
use fairhms_matroid::PreparedBounds;

/// Configuration of the warm-start tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmConfig {
    /// Whether the tier is consulted at all (`false` = every solve is
    /// fully cold; answers are contractually identical either way).
    pub enabled: bool,
    /// Maximum resident `(epoch, k, family)` entries.
    pub capacity: usize,
}

impl Default for WarmConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            capacity: 512,
        }
    }
}

impl WarmConfig {
    /// The default config, overridden by the `FAIRHMS_TEST_WARMSTART`
    /// environment variable (`0`/`false`/`off` disables the tier).
    ///
    /// This is the CI hook mirroring `FAIRHMS_TEST_SHARDS` /
    /// `FAIRHMS_TEST_CODEC`: `scripts/ci.sh` re-runs the whole service
    /// test suite once with the tier disabled, so every test exercises
    /// both the warm and the fully cold solve path.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("FAIRHMS_TEST_WARMSTART") {
            if matches!(v.to_ascii_lowercase().as_str(), "0" | "false" | "off") {
                cfg.enabled = false;
            }
        }
        cfg
    }
}

/// Key of one warm-start entry.
///
/// `family` is the *canonical* algorithm name (see
/// [`fairhms_core::registry::canonical_name`]) — spellings of one
/// algorithm share an entry. The epoch makes entries for replaced
/// datasets unreachable (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WarmKey {
    /// Dataset registration epoch.
    pub epoch: u64,
    /// Group-generation digest of the candidate form the query solves on
    /// (`PreparedDataset::digest_for(skyline)`). Folding the per-form
    /// digest — rather than one whole-dataset value — is what makes
    /// mutation invalidation a *delta*: a mutation that leaves a form's
    /// digest alone (e.g. a dominated append never moves `sky_digest`)
    /// leaves that form's warm state reachable and verifiably current.
    pub digest: u64,
    /// Solution size.
    pub k: usize,
    /// Canonical algorithm name.
    pub family: String,
}

/// The cached intermediate state of one `(epoch, k, family)`.
///
/// All fields are optional: an entry is created by whichever solve
/// computed *something* reusable first and enriched by later solves
/// (e.g. the skyline-form bounds by a default query, the full-form
/// bounds by a `skyline=false` one).
#[derive(Debug, Default, Clone)]
pub struct WarmEntry {
    /// BiGreedy δ-net, tagged with its generation preimage.
    pub net: Option<Arc<SampledNet>>,
    /// Prepared label scan of the full dataset.
    pub bounds_full: Option<Arc<PreparedBounds>>,
    /// Prepared label scan of the skyline restriction.
    pub bounds_skyline: Option<Arc<PreparedBounds>>,
    /// Per-utility database maxima over the full dataset, tagged with the
    /// `(dim, m, seed, n)` preimage of the net and matrix that produced
    /// them. The `m × n` extreme-value pass is the costliest piece of
    /// BiGreedy setup, so near-miss queries reuse it like the net itself.
    pub db_max_full: Option<Arc<CachedDbMax>>,
    /// Per-utility database maxima over the skyline restriction (the two
    /// candidate forms have different `n`, hence different values).
    pub db_max_skyline: Option<Arc<CachedDbMax>>,
}

impl WarmEntry {
    /// The prepared bounds for the requested candidate form.
    pub fn bounds(&self, skyline: bool) -> Option<&Arc<PreparedBounds>> {
        if skyline {
            self.bounds_skyline.as_ref()
        } else {
            self.bounds_full.as_ref()
        }
    }

    /// Sets the prepared bounds for the requested candidate form.
    pub fn set_bounds(&mut self, skyline: bool, bounds: Arc<PreparedBounds>) {
        if skyline {
            self.bounds_skyline = Some(bounds);
        } else {
            self.bounds_full = Some(bounds);
        }
    }

    /// The cached `db_max` vector for the requested candidate form.
    pub fn db_max(&self, skyline: bool) -> Option<&Arc<CachedDbMax>> {
        if skyline {
            self.db_max_skyline.as_ref()
        } else {
            self.db_max_full.as_ref()
        }
    }

    /// Sets the cached `db_max` vector for the requested candidate form.
    pub fn set_db_max(&mut self, skyline: bool, db_max: Arc<CachedDbMax>) {
        if skyline {
            self.db_max_skyline = Some(db_max);
        } else {
            self.db_max_full = Some(db_max);
        }
    }
}

/// Effectiveness counters of the warm-start tier (reported by the wire
/// `STATS` verb as `warm_hits=… warm_misses=… warm_entries=…`).
///
/// Counting is per *component* consulted on a cold solve — one hit or
/// miss each for the δ-net and the `db_max` vector (BiGreedy-family
/// queries only) and one for the prepared bounds — so the ratio
/// reflects setup work actually saved, not just entry presence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStats {
    /// Components reused from the tier.
    pub hits: u64,
    /// Components computed fresh (and deposited).
    pub misses: u64,
    /// Resident `(epoch, k, family)` entries.
    pub entries: usize,
}

struct Inner {
    /// key → (entry, recency tick). Entries are immutable snapshots
    /// behind `Arc`; updates replace the whole entry (last writer wins —
    /// racing writers deposit interchangeable state, see module docs).
    map: HashMap<WarmKey, (Arc<WarmEntry>, u64)>,
    /// recency tick → key, oldest first.
    lru: BTreeMap<u64, WarmKey>,
    tick: u64,
}

/// The warm-start cache: a bounded LRU of [`WarmEntry`] snapshots.
///
/// A single mutex suffices (unlike the sharded solution cache): the lock
/// is held only to clone/insert an `Arc`, never while any state is
/// computed.
pub struct WarmStartCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WarmStartCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The entry under `key`, refreshing its recency. Does not touch the
    /// hit/miss counters: presence of an entry is not a hit — the engine
    /// records per-component accounting via [`WarmStartCache::note_hit`]
    /// / [`WarmStartCache::note_miss`] after verifying each component's
    /// preimage.
    pub fn get(&self, key: &WarmKey) -> Option<Arc<WarmEntry>> {
        let mut inner = lock_or_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let Inner { map, lru, .. } = &mut *inner;
        let (entry, old) = map.get_mut(key)?;
        lru.remove(old);
        *old = tick;
        lru.insert(tick, key.clone());
        Some(Arc::clone(entry))
    }

    /// Inserts (or replaces) the entry under `key`, evicting the least
    /// recently used entry when full.
    pub fn insert(&self, key: WarmKey, entry: WarmEntry) {
        let mut inner = lock_or_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let Inner { map, lru, .. } = &mut *inner;
        if let Some((e, old)) = map.get_mut(&key) {
            *e = Arc::new(entry);
            lru.remove(old);
            *old = tick;
            lru.insert(tick, key);
            return;
        }
        if map.len() >= self.capacity {
            if let Some((&oldest_tick, _)) = lru.iter().next() {
                let oldest_key = lru.remove(&oldest_tick).expect("tick present");
                map.remove(&oldest_key);
            }
        }
        map.insert(key.clone(), (Arc::new(entry), tick));
        lru.insert(tick, key);
    }

    /// Delta invalidation after a mutation of the dataset registered at
    /// `epoch`: drops exactly the entries keyed to that epoch whose form
    /// digest the mutation moved — i.e. those matching neither the live
    /// `sky_digest` nor the live `full_digest`. Entries for other
    /// datasets (other epochs) and entries whose form survived the
    /// mutation untouched are kept. Returns the number dropped.
    ///
    /// (Re-*registration* under the same name bumps the epoch instead;
    /// those entries become unreachable and age out through the LRU, as
    /// before — this sweep is the mutation path only.)
    pub fn invalidate_stale(&self, epoch: u64, sky_digest: u64, full_digest: u64) -> u64 {
        let mut inner = lock_or_recover(&self.inner);
        let Inner { map, lru, .. } = &mut *inner;
        let dead: Vec<(WarmKey, u64)> = map
            .iter()
            .filter(|(k, _)| k.epoch == epoch && k.digest != sky_digest && k.digest != full_digest)
            .map(|(k, &(_, tick))| (k.clone(), tick))
            .collect();
        let dropped = dead.len() as u64;
        for (k, tick) in dead {
            map.remove(&k);
            lru.remove(&tick);
        }
        dropped
    }

    /// Records one component reused from the tier.
    pub fn note_hit(&self) {
        // ordering: independent stat counter, no cross-variable sync.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one component computed fresh.
    pub fn note_miss(&self) {
        // ordering: independent stat counter, no cross-variable sync.
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        lock_or_recover(&self.inner).map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> WarmStats {
        WarmStats {
            // ordering: stat reads; a snapshot tolerates torn counters.
            hits: self.hits.load(Ordering::Relaxed),
            // ordering: stat reads; a snapshot tolerates torn counters.
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, k: usize) -> WarmKey {
        WarmKey {
            epoch,
            digest: 0,
            k,
            family: "bigreedy".into(),
        }
    }

    fn entry_with_net(seed: u64) -> WarmEntry {
        WarmEntry {
            net: Some(Arc::new(SampledNet::generate(2, 4, seed))),
            ..WarmEntry::default()
        }
    }

    #[test]
    fn get_after_insert_and_replacement() {
        let cache = WarmStartCache::new(8);
        assert!(cache.get(&key(1, 3)).is_none());
        cache.insert(key(1, 3), entry_with_net(42));
        let got = cache.get(&key(1, 3)).expect("entry");
        assert_eq!(got.net.as_ref().unwrap().seed, 42);
        // Same key, richer entry: replaced in place, no growth.
        cache.insert(key(1, 3), entry_with_net(7));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1, 3)).unwrap().net.as_ref().unwrap().seed, 7);
        // A bumped epoch is a distinct key: stale state is unreachable.
        assert!(cache.get(&key(2, 3)).is_none());
    }

    #[test]
    fn lru_eviction_and_recency_refresh() {
        let cache = WarmStartCache::new(2);
        cache.insert(key(1, 1), WarmEntry::default());
        cache.insert(key(1, 2), WarmEntry::default());
        // Touch the older entry, then insert a third: the untouched one
        // is the eviction victim.
        assert!(cache.get(&key(1, 1)).is_some());
        cache.insert(key(1, 3), WarmEntry::default());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, 1)).is_some(), "recently used evicted");
        assert!(cache.get(&key(1, 2)).is_none(), "LRU entry survived");
    }

    #[test]
    fn stats_count_components_not_entries() {
        let cache = WarmStartCache::new(4);
        cache.note_miss();
        cache.note_miss();
        cache.note_hit();
        cache.insert(key(1, 1), WarmEntry::default());
        assert_eq!(
            cache.stats(),
            WarmStats {
                hits: 1,
                misses: 2,
                entries: 1
            }
        );
        assert!(!cache.is_empty());
    }

    #[test]
    fn entry_bounds_form_selector() {
        let mut e = WarmEntry::default();
        assert!(e.bounds(true).is_none() && e.bounds(false).is_none());
        let pb = Arc::new(fairhms_matroid::PreparedBounds::new(vec![0usize, 1], 2).unwrap());
        e.set_bounds(true, Arc::clone(&pb));
        assert!(e.bounds(true).is_some());
        assert!(e.bounds(false).is_none());
        e.set_bounds(false, pb);
        assert!(e.bounds(false).is_some());
    }

    #[test]
    fn invalidate_stale_drops_only_moved_digests() {
        let cache = WarmStartCache::new(8);
        let k_at = |epoch: u64, digest: u64| WarmKey {
            epoch,
            digest,
            k: 3,
            family: "bigreedy".into(),
        };
        // Epoch 5: skyline-form state at digest 10, full-form at 20.
        // Epoch 9: a different dataset, untouched by the mutation.
        cache.insert(k_at(5, 10), WarmEntry::default());
        cache.insert(k_at(5, 20), WarmEntry::default());
        cache.insert(k_at(9, 77), WarmEntry::default());
        // Mutation moved only the full digest (20 → 21): the skyline
        // entry and the other dataset survive.
        assert_eq!(cache.invalidate_stale(5, 10, 21), 1);
        assert!(cache.get(&k_at(5, 10)).is_some());
        assert!(cache.get(&k_at(5, 20)).is_none());
        assert!(cache.get(&k_at(9, 77)).is_some());
        // Everything-current sweep is a no-op.
        assert_eq!(cache.invalidate_stale(5, 10, 21), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn env_hook_parses_disable_values() {
        // from_env reads the live environment; only the default (unset)
        // case is asserted here — ci.sh exercises the disabled pass.
        let def = WarmConfig::default();
        assert!(def.enabled);
        assert!(def.capacity > 0);
    }
}
