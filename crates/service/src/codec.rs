//! Pluggable response codecs: v1 text lines and v2 length-prefixed
//! binary frames.
//!
//! A [`Codec`] turns typed [`Response`] values into wire frames and back.
//! The server holds one boxed codec per connection — [`TextCodec`] until
//! a `HELLO version=2 codec=binary` handshake swaps in [`BinaryCodec`] —
//! and clients mirror the choice. Both codecs carry the *same* typed
//! model, so answers are bit-identical regardless of framing (pinned by
//! the codec-equivalence suite): `mhr` travels as shortest round-trip
//! decimal in text and as raw IEEE-754 bits in binary, and both decode to
//! the same `f64::to_bits`.
//!
//! ## Binary frame layout
//!
//! ```text
//! ┌────────────┬─────┬──────────────────────────────┐
//! │ u32 LE len │ tag │ payload (len-1 bytes)        │
//! └────────────┴─────┴──────────────────────────────┘
//! ```
//!
//! `len` counts tag + payload and is capped at [`MAX_FRAME_BYTES`].
//! Integers are LEB128 varints, strings are varint-length-prefixed UTF-8,
//! floats are 8 raw little-endian IEEE-754 bytes, `Option`s are a 0/1
//! presence byte. Decoding a malformed payload (unknown tag, truncated
//! field, trailing bytes) yields a typed [`ServiceError::Protocol`] *for
//! that frame only* — the length prefix has already been consumed, so the
//! stream stays frame-aligned and the next frame decodes normally.

use std::io::BufRead;

use crate::protocol::{decode_response_line, encode_response_line, Response, WireAnswer};
use crate::ServiceError;

/// Hard cap on one binary frame (tag + payload), matching the text
/// protocol's batch buffer cap: a hostile or corrupt length prefix must
/// not make the peer allocate without bound.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Which codec a connection speaks on its response channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// v1 newline-delimited text (the default; no handshake required).
    Text,
    /// v2 length-prefixed binary frames (requires the `HELLO` handshake).
    Binary,
}

impl CodecKind {
    /// Parses a codec name as it appears in `HELLO codec=<name>`.
    pub fn parse(s: &str) -> Option<CodecKind> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(CodecKind::Text),
            "binary" => Some(CodecKind::Binary),
            _ => None,
        }
    }

    /// A fresh boxed codec of this kind.
    pub fn new_codec(self) -> Box<dyn Codec> {
        match self {
            CodecKind::Text => Box::new(TextCodec),
            CodecKind::Binary => Box::new(BinaryCodec),
        }
    }

    /// The codec test hooks select via the `FAIRHMS_TEST_CODEC`
    /// environment variable (`text`/`binary`), defaulting to text.
    ///
    /// Mirrors `FAIRHMS_TEST_SHARDS`: `scripts/ci.sh` re-runs the whole
    /// service test suite once per codec, so every TCP test built on
    /// [`crate::client::WireClient::connect_env`] exercises both wire
    /// formats without duplicating test bodies.
    pub fn from_env() -> CodecKind {
        std::env::var("FAIRHMS_TEST_CODEC")
            .ok()
            .and_then(|v| CodecKind::parse(&v))
            .unwrap_or(CodecKind::Text)
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CodecKind::Text => "text",
            CodecKind::Binary => "binary",
        })
    }
}

/// A response-channel codec: encodes typed [`Response`]s into complete
/// wire frames and reads them back.
///
/// Object-safe: the server stores `Box<dyn Codec>` per connection and
/// swaps it at the `HELLO` handshake.
pub trait Codec: Send + Sync {
    /// Which kind this codec is.
    fn kind(&self) -> CodecKind;

    /// Appends one complete frame (including framing: trailing newline
    /// for text, length prefix for binary) encoding `resp` to `out`.
    ///
    /// Errors instead of emitting a malformed frame — e.g. a wire-unsafe
    /// string under [`TextCodec`] or an over-[`MAX_FRAME_BYTES`] payload
    /// under [`BinaryCodec`].
    fn encode_frame(&self, resp: &Response, out: &mut Vec<u8>) -> Result<(), ServiceError>;

    /// Reads and decodes one frame. `Ok(None)` means the peer closed the
    /// stream cleanly *at a frame boundary*; EOF mid-frame is an error.
    fn read_frame(&self, reader: &mut dyn BufRead) -> Result<Option<Response>, ServiceError>;
}

/// Protocol v1: one `\n`-terminated text line per response, byte-for-byte
/// the historical format (see [`encode_response_line`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct TextCodec;

impl Codec for TextCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Text
    }

    fn encode_frame(&self, resp: &Response, out: &mut Vec<u8>) -> Result<(), ServiceError> {
        let line = encode_response_line(resp)?;
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
        Ok(())
    }

    fn read_frame(&self, reader: &mut dyn BufRead) -> Result<Option<Response>, ServiceError> {
        let mut buf = Vec::new();
        let n = reader
            .read_until(b'\n', &mut buf)
            .map_err(|e| ServiceError::Io(format!("read response line: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        let line = String::from_utf8_lossy(&buf);
        Ok(Some(decode_response_line(
            line.trim_end_matches(['\n', '\r']),
        )?))
    }
}

/// Binary frame tags, one per [`Response`] variant.
mod tag {
    pub const PONG: u8 = 1;
    pub const HELLO: u8 = 2;
    pub const DATASETS: u8 = 3;
    pub const ALGORITHMS: u8 = 4;
    pub const STATS: u8 = 5;
    pub const INFO: u8 = 6;
    pub const SHARDS: u8 = 7;
    pub const ANSWER: u8 = 8;
    pub const BATCH_HEADER: u8 = 9;
    pub const LOADED: u8 = 10;
    pub const BYE: u8 = 11;
    pub const ERROR: u8 = 12;
    pub const METRICS: u8 = 13;
    pub const BUSY: u8 = 14;
    pub const MUTATED: u8 = 15;
}

/// Protocol v2: length-prefixed binary frames (see the module docs for
/// the layout). Negotiated by `HELLO version=2 codec=binary`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_list(out: &mut Vec<u8>, items: &[String]) {
    put_varint(out, items.len() as u64);
    for s in items {
        put_str(out, s);
    }
}

fn put_opt_varint(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_varint(out, v);
        }
    }
}

/// Typed cursor over one frame payload; every read error names the field
/// so truncation diagnostics point at the exact spot.
struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn truncated(&self, field: &str) -> ServiceError {
        ServiceError::Protocol(format!(
            "truncated binary frame: {field} cut off at byte {} of {}",
            self.pos,
            self.buf.len()
        ))
    }

    fn u8(&mut self, field: &str) -> Result<u8, ServiceError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.truncated(field))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self, field: &str) -> Result<u64, ServiceError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(field)?;
            // The 10th byte holds only bit 63: a continuation flag or any
            // higher payload bit would overflow u64 — reject it instead
            // of silently discarding bits.
            if shift == 63 && byte > 1 {
                return Err(ServiceError::Protocol(format!(
                    "malformed binary frame: varint {field} overflows u64"
                )));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(ServiceError::Protocol(format!(
            "malformed binary frame: varint {field} longer than 10 bytes"
        )))
    }

    fn usize(&mut self, field: &str) -> Result<usize, ServiceError> {
        usize::try_from(self.varint(field)?)
            .map_err(|_| ServiceError::Protocol(format!("{field}: value exceeds usize")))
    }

    fn f64_bits(&mut self, field: &str) -> Result<f64, ServiceError> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated(field))?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("8-byte slice"),
        )))
    }

    fn str(&mut self, field: &str) -> Result<String, ServiceError> {
        let len = self.usize(field)?;
        if len > self.buf.len().saturating_sub(self.pos) {
            return Err(self.truncated(field));
        }
        let end = self.pos + len;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| ServiceError::Protocol(format!("{field}: invalid UTF-8")))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn list(&mut self, field: &str) -> Result<Vec<String>, ServiceError> {
        let n = self.usize(field)?;
        // Each entry costs ≥ 1 byte; a count beyond the remaining payload
        // is corruption, caught before any proportional allocation.
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(self.truncated(field));
        }
        (0..n).map(|_| self.str(field)).collect()
    }

    fn opt_varint(&mut self, field: &str) -> Result<Option<u64>, ServiceError> {
        match self.u8(field)? {
            0 => Ok(None),
            1 => Ok(Some(self.varint(field)?)),
            b => Err(ServiceError::Protocol(format!(
                "malformed binary frame: {field} presence byte {b} (want 0/1)"
            ))),
        }
    }

    /// True when the payload is fully consumed — used to default fields
    /// appended to a frame after v2 shipped (a pre-extension peer's
    /// frame simply ends earlier).
    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn finish(&self) -> Result<(), ServiceError> {
        if self.pos != self.buf.len() {
            return Err(ServiceError::Protocol(format!(
                "malformed binary frame: {} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn encode_binary_payload(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Pong => out.push(tag::PONG),
        Response::Hello { version, codec } => {
            out.push(tag::HELLO);
            put_varint(out, u64::from(*version));
            put_str(out, &codec.to_string());
        }
        Response::Datasets(summaries) => {
            out.push(tag::DATASETS);
            put_list(out, summaries);
        }
        Response::Algorithms(names) => {
            out.push(tag::ALGORITHMS);
            put_list(out, names);
        }
        Response::Stats {
            hits,
            misses,
            entries,
            evictions,
            hit_rate,
            warm_hits,
            warm_misses,
            warm_entries,
            uptime_secs,
            total_queries,
            queue_depth,
            shed_total,
            conns_open,
            mutations_total,
        } => {
            out.push(tag::STATS);
            put_varint(out, *hits);
            put_varint(out, *misses);
            put_varint(out, *entries as u64);
            put_varint(out, *evictions);
            out.extend_from_slice(&hit_rate.to_bits().to_le_bytes());
            put_varint(out, *warm_hits);
            put_varint(out, *warm_misses);
            put_varint(out, *warm_entries as u64);
            put_varint(out, *uptime_secs);
            put_varint(out, *total_queries);
            put_varint(out, *queue_depth);
            put_varint(out, *shed_total);
            put_varint(out, *conns_open);
            put_varint(out, *mutations_total);
        }
        Response::Info {
            shards,
            strategy,
            workers,
            datasets,
            cache_entries,
            warmstart,
            uptime_secs,
            total_queries,
        } => {
            out.push(tag::INFO);
            put_varint(out, *shards as u64);
            put_str(out, strategy);
            put_varint(out, *workers as u64);
            put_varint(out, *datasets as u64);
            put_varint(out, *cache_entries as u64);
            out.push(u8::from(*warmstart));
            put_varint(out, *uptime_secs);
            put_varint(out, *total_queries);
        }
        Response::Metrics {
            enabled,
            counters,
            histograms,
        } => {
            out.push(tag::METRICS);
            out.push(u8::from(*enabled));
            put_varint(out, counters.len() as u64);
            for (name, v) in counters {
                put_str(out, name);
                put_varint(out, *v);
            }
            put_varint(out, histograms.len() as u64);
            for h in histograms {
                put_str(out, &h.name);
                put_varint(out, h.count);
                put_varint(out, h.sum);
                put_varint(out, h.p50);
                put_varint(out, h.p90);
                put_varint(out, h.p99);
                put_varint(out, h.max);
            }
        }
        Response::Shards(n) => {
            out.push(tag::SHARDS);
            put_varint(out, *n as u64);
        }
        Response::Answer { seq, answer } => {
            out.push(tag::ANSWER);
            put_opt_varint(out, *seq);
            put_str(out, &answer.alg);
            out.push(u8::from(answer.cached));
            put_varint(out, answer.micros);
            put_varint(out, answer.violations as u64);
            match answer.mhr {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            put_varint(out, answer.indices.len() as u64);
            for &i in &answer.indices {
                put_varint(out, i as u64);
            }
        }
        Response::BatchHeader { n, stream } => {
            out.push(tag::BATCH_HEADER);
            put_varint(out, *n as u64);
            out.push(u8::from(*stream));
        }
        Response::Loaded {
            name,
            rows,
            dim,
            groups,
            skyline,
        } => {
            out.push(tag::LOADED);
            put_str(out, name);
            put_varint(out, *rows as u64);
            put_varint(out, *dim as u64);
            put_varint(out, *groups as u64);
            put_varint(out, *skyline as u64);
        }
        Response::Mutated {
            name,
            op,
            rows,
            skyline,
            sky_changed,
            cache_dropped,
            warm_dropped,
        } => {
            out.push(tag::MUTATED);
            put_str(out, name);
            put_str(out, op);
            put_varint(out, *rows as u64);
            put_varint(out, *skyline as u64);
            out.push(u8::from(*sky_changed));
            put_varint(out, *cache_dropped);
            put_varint(out, *warm_dropped);
        }
        Response::Bye => out.push(tag::BYE),
        Response::Busy {
            seq,
            retry_after_ms,
            message,
        } => {
            out.push(tag::BUSY);
            put_opt_varint(out, *seq);
            put_varint(out, *retry_after_ms);
            put_str(out, message);
        }
        Response::Error { seq, message } => {
            out.push(tag::ERROR);
            put_opt_varint(out, *seq);
            put_str(out, message);
        }
    }
}

/// Decodes one binary frame payload (tag + fields, no length prefix) —
/// exposed for fuzz-style tests; [`BinaryCodec::read_frame`] is the
/// stream entry point.
pub fn decode_binary_payload(payload: &[u8]) -> Result<Response, ServiceError> {
    let mut r = PayloadReader::new(payload);
    let resp = match r.u8("tag")? {
        tag::PONG => Response::Pong,
        tag::HELLO => Response::Hello {
            version: u32::try_from(r.varint("version")?)
                .map_err(|_| ServiceError::Protocol("version exceeds u32".into()))?,
            codec: {
                let s = r.str("codec")?;
                CodecKind::parse(&s)
                    .ok_or_else(|| ServiceError::Protocol(format!("codec: unknown kind {s:?}")))?
            },
        },
        tag::DATASETS => Response::Datasets(r.list("datasets")?),
        tag::ALGORITHMS => Response::Algorithms(r.list("algorithms")?),
        tag::STATS => {
            let hits = r.varint("hits")?;
            let misses = r.varint("misses")?;
            let entries = r.usize("entries")?;
            let evictions = r.varint("evictions")?;
            let hit_rate = r.f64_bits("hit_rate")?;
            // The warm_* fields were appended after v2 shipped: a frame
            // from a pre-warm-start peer ends here, and the counters
            // default to 0 — mirroring the text decoder's tolerance.
            let (warm_hits, warm_misses, warm_entries) = if r.at_end() {
                (0, 0, 0)
            } else {
                (
                    r.varint("warm_hits")?,
                    r.varint("warm_misses")?,
                    r.usize("warm_entries")?,
                )
            };
            // A second appended tier (telemetry PR): uptime/total default
            // to 0 when the peer predates them.
            let (uptime_secs, total_queries) = if r.at_end() {
                (0, 0)
            } else {
                (r.varint("uptime_secs")?, r.varint("total_queries")?)
            };
            // Third appended tier (admission control): gauges default to
            // 0 when the peer predates them.
            let (queue_depth, shed_total, conns_open) = if r.at_end() {
                (0, 0, 0)
            } else {
                (
                    r.varint("queue_depth")?,
                    r.varint("shed_total")?,
                    r.varint("conns_open")?,
                )
            };
            // Fourth appended tier (mutable catalog): the mutation counter
            // defaults to 0 when the peer predates APPEND/DELETE.
            let mutations_total = if r.at_end() {
                0
            } else {
                r.varint("mutations_total")?
            };
            Response::Stats {
                hits,
                misses,
                entries,
                evictions,
                hit_rate,
                warm_hits,
                warm_misses,
                warm_entries,
                uptime_secs,
                total_queries,
                queue_depth,
                shed_total,
                conns_open,
                mutations_total,
            }
        }
        tag::INFO => {
            let shards = r.usize("shards")?;
            let strategy = r.str("strategy")?;
            let workers = r.usize("workers")?;
            let datasets = r.usize("datasets")?;
            let cache_entries = r.usize("cache_entries")?;
            // Appended after v2 shipped (see STATS above): absent means a
            // pre-warm-start peer, whose tier default was "on".
            let warmstart = if r.at_end() {
                true
            } else {
                r.u8("warmstart")? != 0
            };
            // Telemetry-PR tier; defaults to 0 for older peers.
            let (uptime_secs, total_queries) = if r.at_end() {
                (0, 0)
            } else {
                (r.varint("uptime_secs")?, r.varint("total_queries")?)
            };
            Response::Info {
                shards,
                strategy,
                workers,
                datasets,
                cache_entries,
                warmstart,
                uptime_secs,
                total_queries,
            }
        }
        tag::SHARDS => Response::Shards(r.usize("shards")?),
        tag::ANSWER => {
            let seq = r.opt_varint("seq")?;
            let alg = r.str("alg")?;
            let cached = r.u8("cached")? != 0;
            let micros = r.varint("micros")?;
            let violations = r.usize("violations")?;
            let mhr = match r.u8("mhr presence")? {
                0 => None,
                1 => Some(r.f64_bits("mhr")?),
                b => {
                    return Err(ServiceError::Protocol(format!(
                        "malformed binary frame: mhr presence byte {b} (want 0/1)"
                    )))
                }
            };
            let n = r.usize("indices count")?;
            if n > payload.len() {
                // ≥ 1 byte per index: a count beyond the payload is corrupt.
                return Err(r.truncated("indices count"));
            }
            let indices = (0..n)
                .map(|_| r.usize("indices"))
                .collect::<Result<Vec<_>, _>>()?;
            Response::Answer {
                seq,
                answer: WireAnswer {
                    alg,
                    cached,
                    micros,
                    violations,
                    mhr,
                    indices,
                },
            }
        }
        tag::BATCH_HEADER => Response::BatchHeader {
            n: r.usize("batch size")?,
            stream: r.u8("stream flag")? != 0,
        },
        tag::LOADED => Response::Loaded {
            name: r.str("name")?,
            rows: r.usize("rows")?,
            dim: r.usize("dim")?,
            groups: r.usize("groups")?,
            skyline: r.usize("skyline")?,
        },
        tag::MUTATED => Response::Mutated {
            name: r.str("name")?,
            op: r.str("op")?,
            rows: r.usize("rows")?,
            skyline: r.usize("skyline")?,
            sky_changed: r.u8("sky_changed")? != 0,
            cache_dropped: r.varint("cache_dropped")?,
            warm_dropped: r.varint("warm_dropped")?,
        },
        tag::BYE => Response::Bye,
        tag::BUSY => Response::Busy {
            seq: r.opt_varint("seq")?,
            retry_after_ms: r.varint("retry_after_ms")?,
            message: r.str("message")?,
        },
        tag::ERROR => Response::Error {
            seq: r.opt_varint("seq")?,
            message: r.str("message")?,
        },
        tag::METRICS => {
            let enabled = r.u8("metrics enabled")? != 0;
            let nc = r.usize("counter count")?;
            if nc > payload.len() {
                return Err(r.truncated("counter count"));
            }
            let counters = (0..nc)
                .map(|_| Ok((r.str("counter name")?, r.varint("counter value")?)))
                .collect::<Result<Vec<_>, ServiceError>>()?;
            let nh = r.usize("histogram count")?;
            if nh > payload.len() {
                return Err(r.truncated("histogram count"));
            }
            let histograms = (0..nh)
                .map(|_| {
                    Ok(crate::protocol::WireHistogram {
                        name: r.str("histogram name")?,
                        count: r.varint("histogram count field")?,
                        sum: r.varint("histogram sum")?,
                        p50: r.varint("histogram p50")?,
                        p90: r.varint("histogram p90")?,
                        p99: r.varint("histogram p99")?,
                        max: r.varint("histogram max")?,
                    })
                })
                .collect::<Result<Vec<_>, ServiceError>>()?;
            Response::Metrics {
                enabled,
                counters,
                histograms,
            }
        }
        t => {
            return Err(ServiceError::Protocol(format!(
                "malformed binary frame: unknown tag {t}"
            )))
        }
    };
    r.finish()?;
    Ok(resp)
}

impl Codec for BinaryCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Binary
    }

    fn encode_frame(&self, resp: &Response, out: &mut Vec<u8>) -> Result<(), ServiceError> {
        let start = out.len();
        out.extend_from_slice(&[0; 4]); // length placeholder
        encode_binary_payload(resp, out);
        let len = out.len() - start - 4;
        if len > MAX_FRAME_BYTES {
            out.truncate(start);
            return Err(ServiceError::Protocol(format!(
                "response frame of {len} bytes exceeds {MAX_FRAME_BYTES}"
            )));
        }
        out[start..start + 4].copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    }

    fn read_frame(&self, reader: &mut dyn BufRead) -> Result<Option<Response>, ServiceError> {
        // Length prefix, tolerating clean EOF only before its first byte.
        let mut header = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            let n = reader
                .read(&mut header[got..])
                .map_err(|e| ServiceError::Io(format!("read frame header: {e}")))?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                return Err(ServiceError::Protocol(format!(
                    "truncated binary frame: EOF after {got} header bytes"
                )));
            }
            got += n;
        }
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(ServiceError::Protocol(format!(
                "malformed binary frame: length {len} outside 1..={MAX_FRAME_BYTES}"
            )));
        }
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload).map_err(|e| {
            ServiceError::Protocol(format!("truncated binary frame: {len}-byte payload: {e}"))
        })?;
        decode_binary_payload(&payload).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Bye,
            Response::Hello {
                version: 2,
                codec: CodecKind::Binary,
            },
            Response::Datasets(vec!["a:1:2:3:4".into(), "b:5:6:7:8".into()]),
            Response::Datasets(vec![]),
            Response::Algorithms(vec!["intcov".into(), "bigreedy".into()]),
            Response::Stats {
                hits: 2,
                misses: 1,
                entries: 1,
                evictions: 0,
                hit_rate: 2.0 / 3.0,
                warm_hits: 5,
                warm_misses: 3,
                warm_entries: 2,
                uptime_secs: 3600,
                total_queries: 42,
                queue_depth: 6,
                shed_total: 11,
                conns_open: 3,
                mutations_total: 4,
            },
            Response::Info {
                shards: 4,
                strategy: "stratified".into(),
                workers: 8,
                datasets: 2,
                cache_entries: 17,
                warmstart: false,
                uptime_secs: 12,
                total_queries: 9,
            },
            Response::Metrics {
                enabled: true,
                counters: vec![("conn.active".into(), 3), ("queries.total".into(), 128)],
                histograms: vec![
                    crate::protocol::WireHistogram {
                        name: "engine.cache_lookup".into(),
                        count: 128,
                        sum: 51_200,
                        p50: 300,
                        p90: 700,
                        p99: 1_500,
                        max: 2_000,
                    },
                    crate::protocol::WireHistogram {
                        name: "server.read".into(),
                        count: 1,
                        sum: 9,
                        p50: 9,
                        p90: 9,
                        p99: 9,
                        max: 9,
                    },
                ],
            },
            Response::Metrics {
                enabled: false,
                counters: vec![],
                histograms: vec![],
            },
            Response::Shards(64),
            Response::Answer {
                seq: Some(3),
                answer: WireAnswer {
                    alg: "BiGreedy".into(),
                    cached: true,
                    micros: 812,
                    violations: 0,
                    mhr: Some(0.1 + 0.2),
                    indices: vec![0, 3, 17, 40, 100_000],
                },
            },
            Response::Answer {
                seq: None,
                answer: WireAnswer {
                    alg: "Greedy".into(),
                    cached: false,
                    micros: 0,
                    violations: 2,
                    mhr: None,
                    indices: vec![],
                },
            },
            Response::BatchHeader { n: 7, stream: true },
            Response::BatchHeader {
                n: 100_000,
                stream: false,
            },
            Response::Loaded {
                name: "extra".into(),
                rows: 2000,
                dim: 3,
                groups: 3,
                skyline: 940,
            },
            Response::Mutated {
                name: "extra".into(),
                op: "append".into(),
                rows: 2001,
                skyline: 941,
                sky_changed: true,
                cache_dropped: 3,
                warm_dropped: 1,
            },
            Response::Mutated {
                name: "toy".into(),
                op: "delete".into(),
                rows: 7,
                skyline: 4,
                sky_changed: false,
                cache_dropped: 0,
                warm_dropped: 0,
            },
            Response::Error {
                seq: Some(2),
                message: "solver error: k must be positive".into(),
            },
            Response::Error {
                seq: None,
                message: "unknown verb \"FROB\"".into(),
            },
            Response::Busy {
                seq: None,
                retry_after_ms: 24,
                message: "solve queue full (depth 256)".into(),
            },
            Response::Busy {
                seq: Some(5),
                retry_after_ms: 1,
                message: "queue deadline exceeded".into(),
            },
        ]
    }

    #[test]
    fn binary_round_trips_every_variant() {
        for resp in sample_responses() {
            let mut frame = Vec::new();
            BinaryCodec.encode_frame(&resp, &mut frame).unwrap();
            let mut reader = std::io::Cursor::new(frame);
            let back = BinaryCodec.read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(back, resp);
            assert!(BinaryCodec.read_frame(&mut reader).unwrap().is_none());
        }
    }

    #[test]
    fn text_round_trips_every_variant() {
        for resp in sample_responses() {
            let mut frame = Vec::new();
            TextCodec.encode_frame(&resp, &mut frame).unwrap();
            let mut reader = std::io::Cursor::new(frame);
            let back = TextCodec.read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(back, resp);
            assert!(TextCodec.read_frame(&mut reader).unwrap().is_none());
        }
    }

    #[test]
    fn varint_round_trips_at_width_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = PayloadReader::new(&buf);
            assert_eq!(r.varint("v").unwrap(), v);
            r.finish().unwrap();
        }

        // Overflowing encodings are rejected, not silently truncated:
        // 9 continuation bytes followed by a 10th byte carrying more than
        // bit 63 (payload bits 1..7 or another continuation flag).
        for last in [0x7fu8, 0x02, 0x81] {
            let mut buf = vec![0x80u8; 9];
            buf.push(last);
            let mut r = PayloadReader::new(&buf);
            assert!(
                matches!(
                    r.varint("v"),
                    Err(ServiceError::Protocol(m)) if m.contains("overflows")
                ),
                "10th byte {last:#x} must be rejected"
            );
        }
    }

    #[test]
    fn malformed_frames_yield_typed_errors_without_desync() {
        // A valid frame to append after each malformed one.
        let mut good = Vec::new();
        BinaryCodec
            .encode_frame(&Response::Pong, &mut good)
            .unwrap();

        // Unknown tag.
        let mut stream = vec![1, 0, 0, 0, 99];
        stream.extend_from_slice(&good);
        let mut reader = std::io::Cursor::new(stream);
        assert!(matches!(
            BinaryCodec.read_frame(&mut reader),
            Err(ServiceError::Protocol(m)) if m.contains("unknown tag")
        ));
        // The length prefix framed the bad payload: the next frame is fine.
        assert_eq!(
            BinaryCodec.read_frame(&mut reader).unwrap(),
            Some(Response::Pong)
        );

        // Truncated payload: ANSWER tag with nothing after it.
        let mut stream = vec![1, 0, 0, 0, tag::ANSWER];
        stream.extend_from_slice(&good);
        let mut reader = std::io::Cursor::new(stream);
        assert!(matches!(
            BinaryCodec.read_frame(&mut reader),
            Err(ServiceError::Protocol(m)) if m.contains("truncated")
        ));
        assert_eq!(
            BinaryCodec.read_frame(&mut reader).unwrap(),
            Some(Response::Pong)
        );

        // Trailing bytes after a complete payload.
        let mut stream = vec![2, 0, 0, 0, tag::PONG, 0xab];
        stream.extend_from_slice(&good);
        let mut reader = std::io::Cursor::new(stream);
        assert!(matches!(
            BinaryCodec.read_frame(&mut reader),
            Err(ServiceError::Protocol(m)) if m.contains("trailing")
        ));
        assert_eq!(
            BinaryCodec.read_frame(&mut reader).unwrap(),
            Some(Response::Pong)
        );

        // Oversized / zero length prefixes are rejected before allocating.
        for len in [0u32, (MAX_FRAME_BYTES as u32) + 1] {
            let mut reader = std::io::Cursor::new(len.to_le_bytes().to_vec());
            assert!(matches!(
                BinaryCodec.read_frame(&mut reader),
                Err(ServiceError::Protocol(m)) if m.contains("length")
            ));
        }

        // EOF mid-header and mid-payload are truncation errors, not None.
        let mut reader = std::io::Cursor::new(vec![5, 0]);
        assert!(matches!(
            BinaryCodec.read_frame(&mut reader),
            Err(ServiceError::Protocol(m)) if m.contains("EOF after 2 header bytes")
        ));
        let mut reader = std::io::Cursor::new(vec![5, 0, 0, 0, tag::PONG]);
        assert!(matches!(
            BinaryCodec.read_frame(&mut reader),
            Err(ServiceError::Protocol(m)) if m.contains("payload")
        ));
    }

    #[test]
    fn pre_warmstart_binary_frames_still_decode() {
        // Frames from a peer built before the warm-start fields were
        // appended end right after the original payload; the decoder
        // must default the new fields (0 counters / tier-on), mirroring
        // the text decoder — not error on a truncated read.
        let mut payload = vec![tag::STATS];
        put_varint(&mut payload, 2); // hits
        put_varint(&mut payload, 1); // misses
        put_varint(&mut payload, 1); // entries
        put_varint(&mut payload, 0); // evictions
        payload.extend_from_slice(&(2.0f64 / 3.0).to_bits().to_le_bytes());
        match decode_binary_payload(&payload).unwrap() {
            Response::Stats {
                hits,
                warm_hits,
                warm_misses,
                warm_entries,
                ..
            } => assert_eq!((hits, warm_hits, warm_misses, warm_entries), (2, 0, 0, 0)),
            other => panic!("{other:?}"),
        }

        let mut payload = vec![tag::INFO];
        put_varint(&mut payload, 4); // shards
        put_str(&mut payload, "stratified");
        put_varint(&mut payload, 2); // workers
        put_varint(&mut payload, 1); // datasets
        put_varint(&mut payload, 0); // cache_entries
        match decode_binary_payload(&payload).unwrap() {
            Response::Info { warmstart, .. } => assert!(warmstart),
            other => panic!("{other:?}"),
        }

        // A *partially* appended tail is still corruption, not tolerance.
        let mut bad = vec![tag::STATS];
        for _ in 0..4 {
            put_varint(&mut bad, 1);
        }
        bad.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        put_varint(&mut bad, 7); // warm_hits present but the rest missing
        assert!(decode_binary_payload(&bad).is_err());
    }

    #[test]
    fn pre_telemetry_binary_frames_still_decode() {
        // Peers from the warm-start era emit the warm_* tier but end
        // before uptime/total_queries; both default to 0.
        let mut payload = vec![tag::STATS];
        put_varint(&mut payload, 2); // hits
        put_varint(&mut payload, 1); // misses
        put_varint(&mut payload, 1); // entries
        put_varint(&mut payload, 0); // evictions
        payload.extend_from_slice(&(2.0f64 / 3.0).to_bits().to_le_bytes());
        put_varint(&mut payload, 7); // warm_hits
        put_varint(&mut payload, 3); // warm_misses
        put_varint(&mut payload, 2); // warm_entries
        match decode_binary_payload(&payload).unwrap() {
            Response::Stats {
                warm_hits,
                uptime_secs,
                total_queries,
                ..
            } => assert_eq!((warm_hits, uptime_secs, total_queries), (7, 0, 0)),
            other => panic!("{other:?}"),
        }

        let mut payload = vec![tag::INFO];
        put_varint(&mut payload, 4); // shards
        put_str(&mut payload, "stratified");
        put_varint(&mut payload, 2); // workers
        put_varint(&mut payload, 1); // datasets
        put_varint(&mut payload, 0); // cache_entries
        payload.push(0); // warmstart off
        match decode_binary_payload(&payload).unwrap() {
            Response::Info {
                warmstart,
                uptime_secs,
                total_queries,
                ..
            } => assert_eq!((warmstart, uptime_secs, total_queries), (false, 0, 0)),
            other => panic!("{other:?}"),
        }

        // Half the telemetry tier is corruption, same as the warm tier.
        let mut bad = vec![tag::INFO];
        put_varint(&mut bad, 4);
        put_str(&mut bad, "stratified");
        put_varint(&mut bad, 2);
        put_varint(&mut bad, 1);
        put_varint(&mut bad, 0);
        bad.push(1);
        put_varint(&mut bad, 100); // uptime_secs present, total_queries missing
        assert!(decode_binary_payload(&bad).is_err());
    }

    #[test]
    fn pre_admission_binary_frames_still_decode() {
        // Peers from the telemetry era emit the uptime/total tier but
        // end before the admission gauges; all three default to 0.
        let mut payload = vec![tag::STATS];
        put_varint(&mut payload, 2); // hits
        put_varint(&mut payload, 1); // misses
        put_varint(&mut payload, 1); // entries
        put_varint(&mut payload, 0); // evictions
        payload.extend_from_slice(&(2.0f64 / 3.0).to_bits().to_le_bytes());
        put_varint(&mut payload, 7); // warm_hits
        put_varint(&mut payload, 3); // warm_misses
        put_varint(&mut payload, 2); // warm_entries
        put_varint(&mut payload, 60); // uptime_secs
        put_varint(&mut payload, 9); // total_queries
        match decode_binary_payload(&payload).unwrap() {
            Response::Stats {
                total_queries,
                queue_depth,
                shed_total,
                conns_open,
                ..
            } => assert_eq!(
                (total_queries, queue_depth, shed_total, conns_open),
                (9, 0, 0, 0)
            ),
            other => panic!("{other:?}"),
        }

        // A partially appended admission tier is corruption, same as the
        // warm-start and telemetry tiers before it.
        put_varint(&mut payload, 4); // queue_depth present…
        put_varint(&mut payload, 2); // …shed_total present, conns_open missing
        assert!(decode_binary_payload(&payload).is_err());
    }

    #[test]
    fn pre_mutation_binary_frames_still_decode() {
        // Peers from the admission era emit every tier through conns_open
        // but end before the mutation counter; it defaults to 0.
        let mut payload = vec![tag::STATS];
        put_varint(&mut payload, 2); // hits
        put_varint(&mut payload, 1); // misses
        put_varint(&mut payload, 1); // entries
        put_varint(&mut payload, 0); // evictions
        payload.extend_from_slice(&(2.0f64 / 3.0).to_bits().to_le_bytes());
        put_varint(&mut payload, 7); // warm_hits
        put_varint(&mut payload, 3); // warm_misses
        put_varint(&mut payload, 2); // warm_entries
        put_varint(&mut payload, 60); // uptime_secs
        put_varint(&mut payload, 9); // total_queries
        put_varint(&mut payload, 4); // queue_depth
        put_varint(&mut payload, 2); // shed_total
        put_varint(&mut payload, 1); // conns_open
        match decode_binary_payload(&payload).unwrap() {
            Response::Stats {
                conns_open,
                mutations_total,
                ..
            } => assert_eq!((conns_open, mutations_total), (1, 0)),
            other => panic!("{other:?}"),
        }

        // With the counter appended the same frame round-trips it.
        put_varint(&mut payload, 13); // mutations_total
        match decode_binary_payload(&payload).unwrap() {
            Response::Stats {
                mutations_total, ..
            } => assert_eq!(mutations_total, 13),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_encode_is_a_typed_error_not_a_truncated_header() {
        // Regression (encode-side cap): the frame length is written as
        // `len as u32` after the payload; without the MAX_FRAME_BYTES
        // check an oversized payload would silently truncate the length
        // header and desynchronize every later frame. The encoder must
        // return a typed error and roll the buffer back instead.
        let huge = Response::Error {
            seq: None,
            message: "x".repeat(MAX_FRAME_BYTES + 16),
        };
        let mut out = Vec::new();
        BinaryCodec.encode_frame(&Response::Pong, &mut out).unwrap();
        let after_pong = out.len();
        match BinaryCodec.encode_frame(&huge, &mut out) {
            Err(ServiceError::Protocol(m)) => {
                assert!(m.contains("exceeds"), "unexpected message: {m}")
            }
            other => panic!("expected typed encode error, got {other:?}"),
        }
        // Buffer rolled back to the frame boundary: nothing of the failed
        // frame leaks, and the stream stays decodable.
        assert_eq!(out.len(), after_pong);
        BinaryCodec.encode_frame(&Response::Bye, &mut out).unwrap();
        let mut reader = std::io::Cursor::new(out);
        assert_eq!(
            BinaryCodec.read_frame(&mut reader).unwrap(),
            Some(Response::Pong)
        );
        assert_eq!(
            BinaryCodec.read_frame(&mut reader).unwrap(),
            Some(Response::Bye)
        );
        assert!(BinaryCodec.read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn env_hook_selects_codec() {
        // Not set in the normal test environment → text. (The binary pass
        // is exercised by ci.sh exporting FAIRHMS_TEST_CODEC=binary.)
        assert_eq!(CodecKind::parse("TEXT"), Some(CodecKind::Text));
        assert_eq!(CodecKind::parse("binary"), Some(CodecKind::Binary));
        assert_eq!(CodecKind::parse("morse"), None);
        assert_eq!(CodecKind::Text.to_string(), "text");
        assert_eq!(CodecKind::Binary.to_string(), "binary");
    }
}
