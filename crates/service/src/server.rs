//! Std-only TCP front ends.
//!
//! Two selectable serving strategies ([`FrontendKind`]) share one
//! protocol implementation and are contractually bit-identical on the
//! wire (pinned by `tests/frontend_equivalence.rs`):
//!
//! * **Threaded** — one thread per connection (the historical default),
//!   reading newline-delimited requests and answering with typed
//!   [`Response`] frames through the connection's negotiated [`Codec`].
//!   `BATCH n` requests fan out over the server's [`BatchExecutor`];
//!   idle connections cost a blocked thread each, woken every 200 ms to
//!   check the stop flag.
//! * **Event** — a readiness-driven multiplexer (`crate::event`, built
//!   on [`crate::reactor`]): one loop thread owns every socket via
//!   `poll(2)`, per-connection state machines pump the codec
//!   incrementally, and solves run on a resident
//!   `executor::WorkerPool` behind a **bounded**
//!   `executor::SolveQueue`. Idle connections cost a poll-set
//!   entry, not a thread, and shutdown is immediate (self-pipe wake, no
//!   timeout spin).
//!
//! Admission control spans both: the [`ServeOptions::max_stream_batches`]
//! gate bounds concurrently streaming batches everywhere, and the event
//! front end adds per-connection quotas
//! ([`ServeOptions::max_inflight_queries`],
//! [`ServeOptions::max_conn_batches`]), a connection cap
//! ([`ServeOptions::max_conns`]), and queue bounds
//! ([`ServeOptions::queue_depth`], [`ServeOptions::queue_deadline_ms`]).
//! Every shed answers `ERR busy` carrying `retry_after_ms` back-off
//! advice. No async runtime, no external protocol dependencies.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fairhms_core::registry::ALGORITHM_NAMES;

use crate::codec::{Codec, CodecKind};
use crate::engine::{QueryEngine, QueryResponse};
use crate::executor::BatchExecutor;
use crate::metrics::ServiceMetrics;
use crate::protocol::{self, Request, Response};
use crate::query::Query;
use crate::reactor::Waker;
use crate::ServiceError;

/// Which serving strategy `fairhms serve` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontendKind {
    /// One OS thread per connection (the historical default).
    #[default]
    Threaded,
    /// One `poll(2)` event loop plus a resident solve worker pool.
    Event,
}

impl FrontendKind {
    /// Parses a front-end name as given to `serve --frontend <name>`.
    pub fn parse(s: &str) -> Option<FrontendKind> {
        match s.to_ascii_lowercase().as_str() {
            "threaded" | "thread" => Some(FrontendKind::Threaded),
            "event" => Some(FrontendKind::Event),
            _ => None,
        }
    }

    /// The front end test hooks select via `FAIRHMS_TEST_FRONTEND`
    /// (`threaded`/`event`), defaulting to threaded.
    ///
    /// Mirrors `FAIRHMS_TEST_SHARDS`/`FAIRHMS_TEST_CODEC`: `scripts/
    /// ci.sh` re-runs the whole service suite once per front end, so
    /// every TCP test exercises both serving strategies without
    /// duplicating test bodies.
    pub fn from_env() -> FrontendKind {
        std::env::var("FAIRHMS_TEST_FRONTEND")
            .ok()
            .and_then(|v| FrontendKind::parse(&v))
            .unwrap_or(FrontendKind::Threaded)
    }
}

impl std::fmt::Display for FrontendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FrontendKind::Threaded => "threaded",
            FrontendKind::Event => "event",
        })
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4077` (`:0` for an OS-chosen port).
    pub addr: String,
    /// Worker threads per `BATCH` request.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4077".to_string(),
            workers: BatchExecutor::default().workers(),
        }
    }
}

/// Protocol-v2 serving options, separate from [`ServerConfig`] so v1
/// callers (and the pinned v1 regression tests) construct servers
/// unchanged; [`Server::spawn`] applies the defaults.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Allowlist directory for the `LOAD` admin verb. `None` (the
    /// default) disables `LOAD` entirely; when set, requested paths must
    /// resolve (symlinks and `..` included) to files under this
    /// directory — see [`crate::catalog::resolve_under_root`].
    pub load_root: Option<PathBuf>,
    /// Server-wide cap on concurrently *streaming* batches
    /// (`BATCH n stream=true`). The connection loop is sequential, so
    /// each connection holds at most one stream; this gate bounds the
    /// total across connections and answers `ERR busy: …` beyond it —
    /// the first concrete admission-control/backpressure knob. `0`
    /// disables streaming outright.
    pub max_stream_batches: usize,
    /// Slow-query log threshold in milliseconds. `None` (the default)
    /// disables the log; `Some(n)` prints one structured line on stderr
    /// for every query whose total execution time exceeds `n` ms — see
    /// docs/ARCHITECTURE.md ("Observability") for the line format.
    pub slow_query_ms: Option<u64>,
    /// Telemetry switch the `fairhms serve` front end applies when
    /// constructing the engine (`--no-telemetry` clears it). The
    /// authoritative switch lives on the engine's
    /// [`crate::metrics::ServiceMetrics`]; this field exists so one
    /// options struct carries the whole serve configuration. Defaults to
    /// [`crate::metrics::TelemetryConfig::from_env`], honouring
    /// `FAIRHMS_TEST_TELEMETRY`.
    pub telemetry: crate::metrics::TelemetryConfig,
    /// Which serving strategy to run. Defaults to
    /// [`FrontendKind::from_env`], honouring `FAIRHMS_TEST_FRONTEND` so
    /// CI runs the whole suite over both front ends.
    pub frontend: FrontendKind,
    /// Maximum simultaneously open connections (event front end). An
    /// accept beyond the cap is answered with a best-effort `ERR busy`
    /// line and closed immediately.
    pub max_conns: usize,
    /// Bound on the global solve queue between the event loop and its
    /// workers. A `QUERY` (or batch slot) arriving while the queue is
    /// full is shed with `ERR busy` + retry advice. `0` sheds every
    /// solve — the deterministic-overload test hook.
    pub queue_depth: usize,
    /// Queue-time budget in milliseconds (event front end): a solve
    /// dequeued after waiting longer is shed instead of executed — the
    /// client has likely timed out, so finishing the solve only wastes a
    /// worker. `None` disables deadline shedding.
    pub queue_deadline_ms: Option<u64>,
    /// Per-connection cap on in-flight single `QUERY`s (event front
    /// end): a pipelining client beyond it is shed with `ERR busy`.
    pub max_inflight_queries: usize,
    /// Per-connection cap on concurrently executing batches (event
    /// front end), on top of the server-wide stream gate.
    pub max_conn_batches: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            load_root: None,
            max_stream_batches: 8,
            slow_query_ms: None,
            telemetry: crate::metrics::TelemetryConfig::from_env(),
            frontend: FrontendKind::from_env(),
            max_conns: 1024,
            queue_depth: 256,
            queue_deadline_ms: Some(5_000),
            max_inflight_queries: 64,
            max_conn_batches: 4,
        }
    }
}

/// Counts concurrently executing batches server-wide; acquisition beyond
/// the cap is refused with the `(active, limit)` pair so the caller can
/// build a typed busy error carrying retry advice.
#[derive(Debug, Clone)]
pub(crate) struct StreamGate {
    active: Arc<AtomicUsize>,
    max: usize,
}

/// Releases its [`StreamGate`] slot on drop — including when a streaming
/// write fails mid-batch or the connection dies with a batch in flight,
/// so a dying client can never leak a permit. Owned (no borrow of the
/// gate): the event front end stores permits inside per-connection state
/// that outlives any single call frame. Carries the metrics handle so
/// the `streams.active` gauge (telemetry-gated) tracks the permit's
/// lifetime on both front ends.
#[derive(Debug)]
pub(crate) struct StreamPermit {
    active: Arc<AtomicUsize>,
    metrics: Option<Arc<ServiceMetrics>>,
}

impl StreamGate {
    pub(crate) fn new(max: usize) -> Self {
        Self {
            active: Arc::new(AtomicUsize::new(0)),
            max,
        }
    }

    /// Acquires a slot, or reports `(active, limit)` when the gate is
    /// full. Incrementing the `streams.active` gauge rides on the permit
    /// when telemetry is enabled.
    pub(crate) fn try_acquire(
        &self,
        metrics: &Arc<ServiceMetrics>,
    ) -> Result<StreamPermit, (usize, usize)> {
        // ordering: permit count is cold control-plane state; SeqCst keeps
        // the acquire/release reasoning trivial at no measurable cost.
        let mut cur = self.active.load(Ordering::SeqCst);
        loop {
            if cur >= self.max {
                return Err((cur, self.max));
            }
            match self
                .active
                // ordering: see the load above — SeqCst for simplicity.
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    let metrics = metrics.enabled().then(|| {
                        metrics.streams_active.inc();
                        Arc::clone(metrics)
                    });
                    return Ok(StreamPermit {
                        active: Arc::clone(&self.active),
                        metrics,
                    });
                }
                Err(now) => cur = now,
            }
        }
    }
}

impl Drop for StreamPermit {
    fn drop(&mut self) {
        // ordering: permit release; SeqCst pairs with the acquire CAS.
        self.active.fetch_sub(1, Ordering::SeqCst);
        if let Some(m) = &self.metrics {
            m.streams_active.dec();
        }
    }
}

/// Builds the typed busy error for a stream-gate shed and counts it in
/// `shed.total`; `queued`/`workers` feed the retry advice.
pub(crate) fn gate_busy(
    m: &ServiceMetrics,
    active: usize,
    limit: usize,
    queued: usize,
    workers: usize,
) -> ServiceError {
    m.shed_total.inc();
    ServiceError::Busy {
        reason: format!("{active} streamed batches in flight (limit {limit})"),
        retry_after_ms: m.retry_after_ms(queued, workers),
    }
}

/// A running server: background accept loop + shutdown handle.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
    /// Present on the event front end: wakes the `poll(2)` loop so
    /// shutdown is immediate instead of waiting out a timeout.
    waker: Option<Waker>,
}

impl Server {
    /// Binds `cfg.addr` and starts the accept loop on a background
    /// thread with default [`ServeOptions`] (`LOAD` disabled). The
    /// returned handle reports the bound address (useful with port 0)
    /// and can stop the server.
    pub fn spawn(engine: Arc<QueryEngine>, cfg: ServerConfig) -> Result<Server, ServiceError> {
        Server::spawn_with(engine, cfg, ServeOptions::default())
    }

    /// [`Server::spawn`] with explicit protocol-v2 [`ServeOptions`].
    #[allow(clippy::disallowed_methods)] // uptime birth stamp; see R5 waiver inside
    pub fn spawn_with(
        engine: Arc<QueryEngine>,
        cfg: ServerConfig,
        opts: ServeOptions,
    ) -> Result<Server, ServiceError> {
        let listener = bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking on both front ends: the threaded accept loop polls
        // with a short sleep so it notices `stop`; the event loop waits
        // for listener readiness via `poll(2)`.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let opts = Arc::new(opts);
        // fairhms-lint: allow(R5) server birth stamp: feeds the STATS
        // uptime_secs wire field, read once per STATS — not a hot path.
        let started = Instant::now();
        match opts.frontend {
            FrontendKind::Threaded => {
                let executor = BatchExecutor::new(cfg.workers);
                let handle = std::thread::spawn(move || {
                    accept_loop(listener, engine, executor, loop_stop, opts, started);
                });
                Ok(Server {
                    addr,
                    stop,
                    handle,
                    waker: None,
                })
            }
            FrontendKind::Event => {
                let (pipe, waker) = crate::reactor::wake_pair()?;
                let loop_waker = waker.clone();
                let workers = cfg.workers;
                let handle = std::thread::spawn(move || {
                    crate::event::run(
                        listener, engine, workers, loop_stop, opts, started, pipe, loop_waker,
                    );
                });
                Ok(Server {
                    addr,
                    stop,
                    handle,
                    waker: Some(waker),
                })
            }
        }
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to stop and waits for it to exit.
    /// Connections already being served finish their current request.
    /// On the event front end the stop is observed immediately (self-pipe
    /// wake); the threaded front end notices within its poll interval.
    pub fn shutdown(self) {
        // ordering: stop flag is a rare, correctness-critical edge; SeqCst
        // keeps shutdown visible to every loop without case analysis.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(w) = &self.waker {
            w.wake();
        }
        let _ = self.handle.join();
    }

    /// Blocks until the accept loop exits (i.e. until a client sends
    /// `SHUTDOWN`). Used by the foreground `fairhms serve` command.
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

fn bind(addr: &str) -> Result<TcpListener, ServiceError> {
    let mut last: Option<std::io::Error> = None;
    for resolved in addr
        .to_socket_addrs()
        .map_err(|e| ServiceError::Io(format!("resolve {addr}: {e}")))?
    {
        match TcpListener::bind(resolved) {
            Ok(l) => return Ok(l),
            Err(e) => last = Some(e),
        }
    }
    Err(ServiceError::Io(format!(
        "bind {addr}: {}",
        last.map_or("no addresses".to_string(), |e| e.to_string())
    )))
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    executor: BatchExecutor,
    stop: Arc<AtomicBool>,
    opts: Arc<ServeOptions>,
    started: Instant,
) {
    let gate = StreamGate::new(opts.max_stream_batches);
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    // ordering: stop flag; SeqCst mirrors the store in shutdown().
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let opts = Arc::clone(&opts);
                let gate = gate.clone();
                conns.push(std::thread::spawn(move || {
                    let _ =
                        serve_connection(stream, &engine, executor, &stop, &opts, &gate, started);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            // Transient accept failures (ECONNABORTED from a client that
            // reset mid-handshake, EMFILE under load, EINTR…) must not
            // take the whole service down; back off briefly and keep
            // accepting. Only the stop flag ends the loop.
            Err(e) => {
                eprintln!("fairhms-service: accept error (continuing): {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Longest accepted request line, bytes. Oversized lines drop the
/// connection, so a newline-free stream cannot grow server memory without
/// limit. Shared with the event front end — the limit is a protocol
/// property, not a front-end one.
pub(crate) const MAX_LINE_BYTES: usize = 1 << 20;

/// Largest total byte size of the lines following a `BATCH` header.
/// `read_batch` buffers the whole batch before parsing (to keep bad
/// batches from desynchronizing the connection), so the buffer itself
/// needs a cap independent of the per-line one.
pub(crate) const MAX_BATCH_BYTES: usize = 16 << 20;

/// Largest accepted `BATCH n` count; a larger header is answered with a
/// protocol error before any lines are read.
pub(crate) const MAX_BATCH: usize = 100_000;

/// Reads one `\n`-terminated line of raw bytes, noticing `stop` and
/// bounding length: the stream carries a short read timeout, and every
/// timeout re-checks the flag. Returns `Ok(0)` when the client closed or
/// the server is shutting down, and `InvalidData` for a line longer than
/// [`MAX_LINE_BYTES`] (the connection is then dropped). Reads via
/// `fill_buf`/`consume`, so a line split by a timeout is completed by
/// subsequent calls.
///
/// Bytes, not `String`: the caller decodes the *completed* line exactly
/// once, so a multi-byte UTF-8 character straddling a buffer boundary is
/// not corrupted by piecewise lossy decoding.
fn read_line_or_stop(
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    stop: &AtomicBool,
) -> std::io::Result<usize> {
    let start = line.len();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // ordering: stop flag; SeqCst mirrors the store in shutdown().
                if stop.load(Ordering::SeqCst) {
                    return Ok(0);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(line.len() - start); // EOF (0 if nothing was read)
        }
        let (taken, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        line.extend_from_slice(&chunk[..taken]);
        reader.consume(taken);
        if line.len() - start > MAX_LINE_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
        if done {
            return Ok(line.len() - start);
        }
    }
}

/// Encodes `resp` through the connection's codec and writes the frame.
///
/// If encoding fails (a wire-unsafe value reached the response path), the
/// connection answers a typed `ERR` frame instead of either silently
/// emitting a desynchronizing byte sequence or dropping the write — the
/// response-side half of the wire-safety contract.
fn send(
    writer: &mut impl Write,
    codec: &dyn Codec,
    frame: &mut Vec<u8>,
    resp: &Response,
    metrics: &ServiceMetrics,
) -> std::io::Result<()> {
    encode_into(codec, frame, resp, metrics)?;
    writer.write_all(frame)
}

/// Serializes `resp` into `frame` (replacing its contents), falling back
/// to a typed `ERR` frame when the value is not encodable. Shared with
/// the event front end, which appends the frame to a per-connection
/// output buffer instead of writing it straight to a socket.
pub(crate) fn encode_into(
    codec: &dyn Codec,
    frame: &mut Vec<u8>,
    resp: &Response,
    metrics: &ServiceMetrics,
) -> std::io::Result<()> {
    // The encode span covers serialization only, never socket writes.
    let _encode = metrics.recorder().span(&metrics.encode);
    frame.clear();
    if let Err(e) = codec.encode_frame(resp, frame) {
        frame.clear();
        let fallback = Response::Error {
            seq: None,
            message: format!("response not encodable: {e}").replace(['\n', '\r'], " "),
        };
        codec
            .encode_frame(&fallback, frame)
            .map_err(|e2| std::io::Error::new(std::io::ErrorKind::InvalidData, e2.to_string()))?;
    }
    Ok(())
}

/// Answers the control-plane verbs (everything except `HELLO`, `QUERY`,
/// `BATCH`, and `SHUTDOWN`, which need connection or executor state).
/// One implementation shared by both front ends keeps the wire contract
/// bit-identical between them.
pub(crate) fn control_response(
    engine: &QueryEngine,
    workers: usize,
    opts: &ServeOptions,
    started: Instant,
    req: &Request,
) -> Option<Response> {
    let m = engine.metrics();
    Some(match req {
        Request::Ping => Response::Pong,
        Request::List => {
            let summaries: Vec<String> = engine
                .catalog()
                .names()
                .iter()
                .filter_map(|n| engine.catalog().get(n))
                .map(|p| p.summary())
                .collect();
            Response::Datasets(summaries)
        }
        Request::Algorithms => {
            Response::Algorithms(ALGORITHM_NAMES.iter().map(|s| s.to_string()).collect())
        }
        Request::Stats => {
            let st = engine.cache_stats();
            let warm = engine.warm_stats();
            Response::Stats {
                hits: st.hits,
                misses: st.misses,
                entries: st.entries,
                evictions: st.evictions,
                hit_rate: st.hit_rate(),
                warm_hits: warm.hits,
                warm_misses: warm.misses,
                warm_entries: warm.entries,
                uptime_secs: started.elapsed().as_secs(),
                total_queries: m.total_queries.get(),
                queue_depth: m.queue_depth.get().max(0) as u64,
                shed_total: m.shed_total.get(),
                conns_open: m.conn_active.get().max(0) as u64,
                mutations_total: m.mutations_total.get(),
            }
        }
        Request::Info => {
            let cfg = engine.catalog().config();
            Response::Info {
                shards: cfg.shards,
                strategy: cfg.strategy.to_string(),
                workers,
                datasets: engine.catalog().len(),
                cache_entries: engine.cache_stats().entries,
                warmstart: engine.warmstart_enabled(),
                uptime_secs: started.elapsed().as_secs(),
                total_queries: m.total_queries.get(),
            }
        }
        Request::Metrics => Response::from_metrics(&m.snapshot()),
        Request::Shards(set) => {
            let shards = match set {
                Some(n) => engine.catalog().set_shards(*n),
                None => engine.catalog().config().shards,
            };
            Response::Shards(shards)
        }
        Request::Load { name, path } => handle_load(engine, opts, name, path),
        Request::Append { name, row, group } => handle_append(engine, name, row, *group),
        Request::Delete { name, row } => handle_delete(engine, name, *row),
        Request::Hello { .. } | Request::Query(_) | Request::Batch { .. } | Request::Shutdown => {
            return None
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    engine: &QueryEngine,
    executor: BatchExecutor,
    stop: &AtomicBool,
    opts: &ServeOptions,
    gate: &StreamGate,
    started: Instant,
) -> std::io::Result<()> {
    let metrics = Arc::clone(engine.metrics());
    let m = metrics.as_ref();
    // Always-on (not telemetry-gated): this gauge backs the STATS
    // `conns_open` field, which must be accurate with telemetry off.
    let _conn = m.conn_active.guard();
    stream.set_nodelay(true).ok();
    // On BSD/macOS/Windows accepted sockets inherit the listener's
    // non-blocking mode (Linux does not); force blocking so the read
    // timeout below governs instead of a WouldBlock busy-spin.
    stream.set_nonblocking(false)?;
    // Idle connections must not block shutdown: reads wake up periodically
    // to check the stop flag (see read_line_or_stop).
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = Vec::new();
    // Connection codec state: v1 text until a HELLO handshake swaps it.
    let mut codec: Box<dyn Codec> = CodecKind::Text.new_codec();
    let mut frame = Vec::new();
    loop {
        line.clear();
        {
            // The read span includes client think-time between requests
            // (the histogram measures "time to obtain the next request
            // line", not just kernel copy time) — interpret its upper
            // quantiles accordingly.
            let _read = m.recorder().span(&m.read);
            if read_line_or_stop(&mut reader, &mut line, stop)? == 0 {
                return Ok(()); // client closed or server stopping
            }
        }
        // Decode the complete line once (see read_line_or_stop).
        let decode_span = m.recorder().span(&m.decode);
        let decoded = String::from_utf8_lossy(&line);
        let trimmed = decoded.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parsed = protocol::parse_request(trimmed);
        drop(decode_span);
        match parsed {
            Err(e) => send(
                &mut writer,
                codec.as_ref(),
                &mut frame,
                &Response::error(&e),
                m,
            )?,
            Ok(Request::Hello {
                version,
                codec: kind,
            }) => {
                // Acknowledge through the *previous* codec (the client
                // reads the ack before switching), then swap.
                let ack = Response::Hello {
                    version,
                    codec: kind,
                };
                send(&mut writer, codec.as_ref(), &mut frame, &ack, m)?;
                codec = kind.new_codec();
            }
            Ok(Request::Shutdown) => {
                send(&mut writer, codec.as_ref(), &mut frame, &Response::Bye, m)?;
                writer.flush()?;
                // ordering: stop flag is a rare, correctness-critical edge;
                // SeqCst keeps the SHUTDOWN handshake trivially ordered.
                stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
            Ok(Request::Query(q)) => {
                let res = engine.execute(&q);
                log_if_slow(opts.slow_query_ms, &q, &res);
                send(
                    &mut writer,
                    codec.as_ref(),
                    &mut frame,
                    &Response::from_result(None, &res),
                    m,
                )?;
            }
            Ok(Request::Batch { n, stream }) => match read_batch(&mut reader, n, stop)? {
                Err(e) => send(
                    &mut writer,
                    codec.as_ref(),
                    &mut frame,
                    &Response::error(&e),
                    m,
                )?,
                Ok(queries) => {
                    if stream {
                        serve_streamed_batch(
                            &mut writer,
                            codec.as_ref(),
                            &mut frame,
                            engine,
                            executor,
                            gate,
                            opts,
                            &queries,
                        )?;
                    } else {
                        let results = executor.execute_all(engine, &queries);
                        send(
                            &mut writer,
                            codec.as_ref(),
                            &mut frame,
                            &Response::BatchHeader { n, stream: false },
                            m,
                        )?;
                        for (q, r) in queries.iter().zip(&results) {
                            log_if_slow(opts.slow_query_ms, q, r);
                            send(
                                &mut writer,
                                codec.as_ref(),
                                &mut frame,
                                &Response::from_result(None, r),
                                m,
                            )?;
                        }
                    }
                }
            },
            // Everything else is a control-plane verb shared verbatim
            // with the event front end.
            Ok(req) => {
                let resp = control_response(engine, executor.workers(), opts, started, &req)
                    .expect("non-control verbs are matched above");
                send(&mut writer, codec.as_ref(), &mut frame, &resp, m)?;
            }
        }
        let _flush = m.recorder().span(&m.flush);
        writer.flush()?;
    }
}

/// Renders the slow-query log line for a query that took longer than
/// `threshold_ms`, or `None` when the log is off, the query failed, or
/// the query was fast enough. One line per slow query:
///
/// ```text
/// SLOW query dataset=airline alg=bigreedy k=8 total_ms=412.7 cached=false \
///   cache_lookup_us=1 flight_wait_us=0 warm_probe_us=33 solve_us=412608
/// ```
///
/// The stage breakdown is present only when telemetry is enabled (stage
/// timings ride on [`QueryResponse::stages`]).
fn format_slow_query(
    threshold_ms: Option<u64>,
    q: &Query,
    res: &Result<QueryResponse, ServiceError>,
) -> Option<String> {
    let threshold = threshold_ms?;
    let resp = res.as_ref().ok()?;
    if resp.micros <= threshold.saturating_mul(1000) {
        return None;
    }
    let mut out = format!(
        "SLOW query dataset={} alg={} k={} total_ms={:.1} cached={}",
        q.dataset,
        q.alg,
        q.k,
        resp.micros as f64 / 1000.0,
        resp.cached,
    );
    if let Some(st) = &resp.stages {
        out.push_str(&format!(
            " cache_lookup_us={} flight_wait_us={} warm_probe_us={} solve_us={}",
            st.cache_lookup_ns / 1000,
            st.flight_wait_ns / 1000,
            st.warm_probe_ns / 1000,
            st.solve_ns / 1000,
        ));
    }
    Some(out)
}

/// Prints [`format_slow_query`]'s line to stderr when it applies.
/// Shared with the event front end, which logs on completion delivery.
pub(crate) fn log_if_slow(
    threshold_ms: Option<u64>,
    q: &Query,
    res: &Result<QueryResponse, ServiceError>,
) {
    if let Some(line) = format_slow_query(threshold_ms, q, res) {
        eprintln!("{line}");
    }
}

/// Runs one `BATCH n stream=true`: acquires a [`StreamGate`] slot (or
/// answers `ERR busy` — the batch lines are already consumed, so load
/// shedding never desynchronizes the connection), writes the header, then
/// flushes one `seq`-tagged frame per query **as the executor completes
/// it** — first answers reach the client while later queries are still
/// solving.
#[allow(clippy::too_many_arguments)]
fn serve_streamed_batch(
    writer: &mut impl Write,
    codec: &dyn Codec,
    frame: &mut Vec<u8>,
    engine: &QueryEngine,
    executor: BatchExecutor,
    gate: &StreamGate,
    opts: &ServeOptions,
    queries: &[Query],
) -> std::io::Result<()> {
    let metrics = Arc::clone(engine.metrics());
    let m = metrics.as_ref();
    let _permit = match gate.try_acquire(&metrics) {
        Err((active, limit)) => {
            // The threaded front end has no solve queue; retry advice is
            // one execute-EWMA round.
            let busy = gate_busy(m, active, limit, 0, executor.workers());
            return send(writer, codec, frame, &Response::error(&busy), m);
        }
        Ok(p) => p,
    };
    send(
        writer,
        codec,
        frame,
        &Response::BatchHeader {
            n: queries.len(),
            stream: true,
        },
        m,
    )?;
    writer.flush()?;
    // The executor keeps delivering after a write failure (workers are
    // mid-solve); remember the first error, skip the remaining writes,
    // and surface it after the batch so the connection closes.
    let mut write_err: Option<std::io::Error> = None;
    executor.execute_streaming(engine, queries, |i, r| {
        log_if_slow(opts.slow_query_ms, &queries[i], &r);
        if write_err.is_some() {
            return;
        }
        let resp = Response::from_result(Some(i as u64), &r);
        let attempt = send(&mut *writer, codec, frame, &resp, m).and_then(|()| writer.flush());
        if let Err(e) = attempt {
            write_err = Some(e);
        }
    });
    match write_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Handles the `LOAD` admin verb: allowlist gate, path confinement,
/// catalog registration.
pub(crate) fn handle_load(
    engine: &QueryEngine,
    opts: &ServeOptions,
    name: &str,
    path: &str,
) -> Response {
    let Some(root) = &opts.load_root else {
        return Response::error(&ServiceError::Protocol(
            "LOAD disabled: server started without --load-root".into(),
        ));
    };
    let full = match crate::catalog::resolve_under_root(root, path) {
        Ok(p) => p,
        Err(e) => return Response::error(&e),
    };
    match engine.load_csv(name, &full) {
        Ok(prep) => Response::Loaded {
            name: prep.name.clone(),
            rows: prep.dataset.len(),
            dim: prep.dataset.dim(),
            groups: prep.dataset.num_groups(),
            skyline: prep.skyline_rows.len(),
        },
        Err(e) => Response::error(&e),
    }
}

/// Handles the `APPEND` mutation verb: catalog append + delta cache
/// invalidation, reported through one [`Response::Mutated`] frame.
/// Mutations take no `--load-root` gate — they touch only datasets
/// already registered, never the filesystem.
pub(crate) fn handle_append(
    engine: &QueryEngine,
    name: &str,
    row: &[f64],
    group: usize,
) -> Response {
    match engine.append_row(name, row, group) {
        Ok(rep) => Response::Mutated {
            name: name.to_string(),
            op: "append".to_string(),
            rows: rep.rows,
            skyline: rep.skyline,
            sky_changed: rep.sky_changed,
            cache_dropped: rep.cache_dropped,
            warm_dropped: rep.warm_dropped,
        },
        Err(e) => Response::error(&e),
    }
}

/// Handles the `DELETE` mutation verb; see [`handle_append`].
pub(crate) fn handle_delete(engine: &QueryEngine, name: &str, row: usize) -> Response {
    match engine.delete_row(name, row) {
        Ok(rep) => Response::Mutated {
            name: name.to_string(),
            op: "delete".to_string(),
            rows: rep.rows,
            skyline: rep.skyline,
            sky_changed: rep.sky_changed,
            cache_dropped: rep.cache_dropped,
            warm_dropped: rep.warm_dropped,
        },
        Err(e) => Response::error(&e),
    }
}

/// Reads the `n` query lines following a `BATCH n` header.
///
/// Always consumes all `n` lines (unless the connection closes) *before*
/// reporting the first parse failure — otherwise the unread tail of a bad
/// batch would be reinterpreted as top-level requests and desynchronize
/// every later response on the connection.
///
/// Two-level result: the outer `Err` is an I/O/abuse condition that drops
/// the connection (total batch bytes over [`MAX_BATCH_BYTES`], socket
/// failure); the inner `Err` is a well-formed protocol error answered
/// with a single `ERR` line on a connection that stays usable.
#[allow(clippy::type_complexity)]
fn read_batch(
    reader: &mut impl BufRead,
    n: usize,
    stop: &AtomicBool,
) -> std::io::Result<Result<Vec<Query>, ServiceError>> {
    if n > MAX_BATCH {
        return Ok(Err(ServiceError::Protocol(format!(
            "batch size {n} exceeds limit {MAX_BATCH}"
        ))));
    }
    let mut lines = Vec::with_capacity(n);
    let mut line = Vec::new();
    let mut total_bytes = 0usize;
    for i in 0..n {
        line.clear();
        if read_line_or_stop(reader, &mut line, stop)? == 0 {
            return Ok(Err(ServiceError::Protocol(format!(
                "connection closed after {i} of {n} batch lines"
            ))));
        }
        total_bytes += line.len();
        if total_bytes > MAX_BATCH_BYTES {
            // Dropping mid-batch desynchronizes the connection, so this
            // is a connection-fatal error, like an oversized line.
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("batch exceeds {MAX_BATCH_BYTES} bytes"),
            ));
        }
        lines.push(String::from_utf8_lossy(&line).trim().to_string());
    }
    Ok(parse_batch_lines(&lines))
}

/// Parses the decoded lines of a `BATCH` body into queries; any non-query
/// line is a protocol error naming its 1-based position. Shared with the
/// event front end (which collects the lines incrementally but must
/// report identical errors).
pub(crate) fn parse_batch_lines(lines: &[String]) -> Result<Vec<Query>, ServiceError> {
    let mut queries = Vec::with_capacity(lines.len());
    for (i, l) in lines.iter().enumerate() {
        match protocol::parse_request(l) {
            Ok(Request::Query(q)) => queries.push(*q),
            Ok(other) => {
                return Err(ServiceError::Protocol(format!(
                    "batch line {} must be a QUERY, got {other:?}",
                    i + 1
                )))
            }
            Err(e) => return Err(e),
        }
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use fairhms_data::Dataset;
    use std::io::Cursor;

    #[test]
    fn read_batch_validates_lines() {
        let stop = AtomicBool::new(false);
        let mut ok = Cursor::new("QUERY dataset=d k=2\nQUERY dataset=d k=3\n");
        let qs = read_batch(&mut ok, 2, &stop).unwrap().unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1].k, 3);

        let mut short = Cursor::new("QUERY dataset=d k=2\n");
        assert!(matches!(
            read_batch(&mut short, 2, &stop),
            Ok(Err(ServiceError::Protocol(_)))
        ));

        let mut wrong = Cursor::new("PING\n");
        assert!(matches!(
            read_batch(&mut wrong, 1, &stop),
            Ok(Err(ServiceError::Protocol(_)))
        ));
    }

    #[test]
    fn bad_batch_line_does_not_desync_the_connection() {
        // A batch whose middle line is not a QUERY must consume all n
        // lines: the valid line after the bad one is NOT executed as a
        // top-level request.
        let stop = AtomicBool::new(false);
        let mut cur = Cursor::new("PING\nQUERY dataset=d k=2\nSTATS\n");
        assert!(matches!(
            read_batch(&mut cur, 2, &stop),
            Ok(Err(ServiceError::Protocol(_)))
        ));
        // Exactly the two batch lines were consumed; the connection's
        // next request is the STATS line.
        let mut rest = String::new();
        cur.read_line(&mut rest).unwrap();
        assert_eq!(rest.trim(), "STATS");
    }

    #[test]
    fn slow_query_log_formats_only_over_threshold() {
        use crate::engine::{Answer, StageTimings};

        let mut q = Query::new("airline", 8);
        q.alg = "bigreedy".into();
        let resp = |micros: u64, stages: Option<StageTimings>| {
            Ok(QueryResponse {
                answer: Arc::new(Answer {
                    indices: vec![1, 2],
                    mhr: None,
                    violations: 0,
                    alg: "BiGreedy".into(),
                    solve_micros: micros,
                }),
                cached: false,
                micros,
                stages,
            })
        };

        // Off by default: no threshold, no line.
        assert!(format_slow_query(None, &q, &resp(10_000_000, None)).is_none());
        // Under threshold: no line.
        assert!(format_slow_query(Some(100), &q, &resp(99_000, None)).is_none());
        // Errors never log (there is no timing to report).
        assert!(format_slow_query(
            Some(0),
            &q,
            &Err(ServiceError::UnknownDataset {
                name: "airline".into()
            })
        )
        .is_none());

        // Over threshold without telemetry: identity fields only.
        let line = format_slow_query(Some(100), &q, &resp(412_700, None)).unwrap();
        assert_eq!(
            line,
            "SLOW query dataset=airline alg=bigreedy k=8 total_ms=412.7 cached=false"
        );

        // With telemetry the per-stage breakdown rides along.
        let stages = StageTimings {
            cache_lookup_ns: 1_500,
            flight_wait_ns: 0,
            warm_probe_ns: 33_000,
            solve_ns: 412_608_000,
        };
        let line = format_slow_query(Some(100), &q, &resp(412_700, Some(stages))).unwrap();
        assert!(line.contains("cache_lookup_us=1"), "{line}");
        assert!(line.contains("flight_wait_us=0"), "{line}");
        assert!(line.contains("warm_probe_us=33"), "{line}");
        assert!(line.contains("solve_us=412608"), "{line}");
    }

    #[test]
    fn stream_gate_sheds_load_beyond_the_cap_and_releases_on_drop() {
        let m = Arc::new(ServiceMetrics::new(false));
        let gate = StreamGate::new(2);
        let a = gate.try_acquire(&m).unwrap();
        let b = gate.try_acquire(&m).unwrap();
        // Third stream: refused with the (active, limit) pair, which the
        // caller turns into a typed busy error carrying retry advice.
        let (active, limit) = gate.try_acquire(&m).unwrap_err();
        assert_eq!((active, limit), (2, 2));
        let busy = gate_busy(&m, active, limit, 0, 4);
        match busy {
            ServiceError::Busy {
                reason,
                retry_after_ms,
            } => {
                assert_eq!(reason, "2 streamed batches in flight (limit 2)");
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected busy, got {other:?}"),
        }
        assert_eq!(m.shed_total.get(), 1);
        drop(a);
        // A released slot is immediately reusable.
        let c = gate.try_acquire(&m).unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.active.load(Ordering::SeqCst), 0);

        // max_stream_batches = 0 disables streaming outright.
        let closed = StreamGate::new(0);
        assert!(closed.try_acquire(&m).is_err());
    }

    #[test]
    fn stream_permit_tracks_the_streams_gauge_when_telemetry_is_on() {
        let m = Arc::new(ServiceMetrics::new(true));
        let gate = StreamGate::new(4);
        let a = gate.try_acquire(&m).unwrap();
        let b = gate.try_acquire(&m).unwrap();
        assert_eq!(m.streams_active.get(), 2);
        drop(a);
        assert_eq!(m.streams_active.get(), 1);
        drop(b);
        assert_eq!(m.streams_active.get(), 0);
    }

    #[test]
    fn shutdown_completes_with_idle_client_connected() {
        let catalog = Arc::new(Catalog::new());
        let data = Dataset::new(
            "toy",
            2,
            vec![1.0, 0.1, 0.2, 0.9, 0.7, 0.7, 0.9, 0.3],
            vec![0, 1, 0, 1],
            vec![],
        )
        .unwrap();
        catalog.insert_dataset(data).unwrap();
        let engine = Arc::new(QueryEngine::new(catalog, 16));
        let server = Server::spawn(
            engine,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
            },
        )
        .unwrap();
        // An idle client that never sends anything and never disconnects.
        let _idle = TcpStream::connect(server.addr()).unwrap();

        // Shutdown must still complete promptly (reads time out and
        // observe the stop flag) instead of blocking on the idle reader.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            server.shutdown();
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(5))
            .expect("shutdown hung on an idle connection");
    }

    #[test]
    fn spawn_serve_shutdown() {
        let catalog = Arc::new(Catalog::new());
        let data = Dataset::new(
            "toy",
            2,
            vec![1.0, 0.1, 0.2, 0.9, 0.7, 0.7, 0.9, 0.3],
            vec![0, 1, 0, 1],
            vec![],
        )
        .unwrap();
        catalog.insert_dataset(data).unwrap();
        let engine = Arc::new(QueryEngine::new(catalog, 16));
        let server = Server::spawn(
            engine,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
            },
        )
        .unwrap();
        let addr = server.addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();

        writeln!(writer, "PING").unwrap();
        writer.flush().unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK pong");

        line.clear();
        writeln!(writer, "QUERY dataset=toy k=2 alg=intcov").unwrap();
        writer.flush().unwrap();
        reader.read_line(&mut line).unwrap();
        let ans = protocol::parse_response(line.trim()).unwrap();
        assert_eq!(ans.alg, "IntCov");
        assert_eq!(ans.indices.len(), 2);

        line.clear();
        writeln!(writer, "SHUTDOWN").unwrap();
        writer.flush().unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK bye");
        server.shutdown();
    }
}
