//! Sharded LRU cache of solved queries.
//!
//! Keys are [`Query::fingerprint`](crate::Query::fingerprint) values;
//! values are shared [`Answer`]s. The map is split into
//! shards, each behind its own mutex, so concurrent workers hitting
//! different fingerprints do not serialize on one lock; recency is tracked
//! per shard with an ordered tick index, making eviction `O(log n)`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fairhms_obs::sync::lock_or_recover;

use crate::engine::Answer;
use crate::query::Query;

/// Snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a cold solve.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    /// fingerprint → (entry, recency tick). The full key preimage
    /// (dataset epoch + canonical query) is kept so hits verify true
    /// equality: the 64-bit FNV fingerprint routes, it does not prove
    /// identity.
    map: HashMap<u64, (Entry, u64)>,
    /// recency tick → fingerprint, oldest first.
    lru: BTreeMap<u64, u64>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old)) = self.map.get_mut(&key) {
            self.lru.remove(old);
            *old = tick;
            self.lru.insert(tick, key);
        }
    }
}

struct Entry {
    /// Dataset registration epoch the answer was computed against.
    epoch: u64,
    /// Group-generation digest of the dataset form the answer was solved
    /// on (`sky_digest`/`full_digest` per `query.skyline`) at solve time.
    digest: u64,
    /// The canonical query (fingerprint preimage, with `epoch` + `digest`).
    query: Query,
    value: Arc<Answer>,
}

/// A sharded, fingerprint-keyed LRU of solved answers.
pub struct SolutionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SolutionCache {
    /// Number of shards; fingerprints are distributed by their low bits.
    pub const SHARDS: usize = 16;

    /// A cache holding at most `capacity` answers (rounded up to a
    /// multiple of [`Self::SHARDS`]; minimum one answer per shard).
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = capacity.div_ceil(Self::SHARDS).max(1);
        let shards = (0..Self::SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    lru: BTreeMap::new(),
                    tick: 0,
                })
            })
            .collect();
        Self {
            shards,
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) % Self::SHARDS]
    }

    /// Looks up `key`, refreshing its recency on a hit. `(epoch, digest,
    /// query)` must be the canonical key preimage; an entry whose stored
    /// preimage differs (a fingerprint collision, including across
    /// dataset replacement or mutation) is treated as a miss rather than
    /// served as a wrong answer.
    pub fn get(&self, key: u64, epoch: u64, digest: u64, query: &Query) -> Option<Arc<Answer>> {
        match self.peek(key, epoch, digest, query) {
            Some(v) => {
                // ordering: independent stat counter, no cross-variable sync.
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                // ordering: independent stat counter, no cross-variable sync.
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`SolutionCache::get`] but without touching the hit/miss
    /// counters — for callers that do their own per-query accounting
    /// (the engine looks up more than once per query around the
    /// single-flight claim, but must record exactly one hit or miss).
    pub fn peek(&self, key: u64, epoch: u64, digest: u64, query: &Query) -> Option<Arc<Answer>> {
        let mut shard = lock_or_recover(self.shard(key));
        let found = match shard.map.get(&key) {
            Some((e, _)) if e.epoch == epoch && e.digest == digest && e.query == *query => {
                Some(Arc::clone(&e.value))
            }
            _ => None,
        };
        if found.is_some() {
            shard.touch(key);
        }
        found
    }

    /// Records one served-from-cache query (see [`SolutionCache::peek`]).
    pub fn note_hit(&self) {
        // ordering: independent stat counter, no cross-variable sync.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cold-solved query (see [`SolutionCache::peek`]).
    pub fn note_miss(&self) {
        // ordering: independent stat counter, no cross-variable sync.
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least recently
    /// used entry if the shard is full. A colliding entry under the same
    /// key (different stored preimage) is overwritten — last writer wins.
    pub fn insert(&self, key: u64, epoch: u64, digest: u64, query: Query, value: Arc<Answer>) {
        let mut shard = lock_or_recover(self.shard(key));
        if let Some((e, _)) = shard.map.get_mut(&key) {
            *e = Entry {
                epoch,
                digest,
                query,
                value,
            };
            shard.touch(key);
            return;
        }
        if shard.map.len() >= self.per_shard_capacity {
            if let Some((&oldest_tick, &oldest_key)) = shard.lru.iter().next() {
                shard.lru.remove(&oldest_tick);
                shard.map.remove(&oldest_key);
                // ordering: independent stat counter, no cross-variable sync.
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(
            key,
            (
                Entry {
                    epoch,
                    digest,
                    query,
                    value,
                },
                tick,
            ),
        );
        shard.lru.insert(tick, key);
    }

    /// Delta invalidation after a mutation of `dataset`: drops exactly the
    /// entries for that dataset whose stored preimage no longer matches
    /// the live catalog — a different epoch (re-registration) or a
    /// form digest the mutation moved (`sky_digest` for skyline-restricted
    /// answers, `full_digest` for full-dataset answers). Entries for other
    /// datasets, and entries whose form digest the mutation left alone
    /// (e.g. every skyline answer after a dominated append), survive as
    /// future hits. Returns the number of entries dropped.
    pub fn invalidate_stale(
        &self,
        dataset: &str,
        epoch: u64,
        sky_digest: u64,
        full_digest: u64,
    ) -> u64 {
        let mut dropped = 0;
        for s in &self.shards {
            let mut s = lock_or_recover(s);
            let dead: Vec<(u64, u64)> = s
                .map
                .iter()
                .filter(|(_, (e, _))| {
                    let live = if e.query.skyline {
                        sky_digest
                    } else {
                        full_digest
                    };
                    e.query.dataset == dataset && (e.epoch != epoch || e.digest != live)
                })
                .map(|(&k, &(_, tick))| (k, tick))
                .collect();
            for (k, tick) in dead {
                s.map.remove(&k);
                s.lru.remove(&tick);
                dropped += 1;
            }
        }
        dropped
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_or_recover(s).map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = lock_or_recover(s);
            s.map.clear();
            s.lru.clear();
        }
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // ordering: stat reads; a snapshot tolerates torn counters.
            hits: self.hits.load(Ordering::Relaxed),
            // ordering: stat reads; a snapshot tolerates torn counters.
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            // ordering: stat reads; a snapshot tolerates torn counters.
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(tag: usize) -> Arc<Answer> {
        Arc::new(Answer {
            indices: vec![tag],
            mhr: Some(0.5),
            violations: 0,
            alg: "test".into(),
            solve_micros: 1,
        })
    }

    fn query(tag: u64) -> Query {
        let mut q = Query::new("t", 2);
        q.seed = tag;
        q
    }

    #[test]
    fn get_after_insert_and_stats() {
        let cache = SolutionCache::new(32);
        let q = query(7);
        assert!(cache.get(7, 0, 0, &q).is_none());
        cache.insert(7, 0, 0, q.clone(), answer(1));
        let got = cache.get(7, 0, 0, &q).expect("hit");
        assert_eq!(got.indices, vec![1]);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_collision_is_a_miss_not_a_wrong_answer() {
        // Two distinct queries forced onto the same key: the stored-query
        // equality check must refuse to serve the other query's answer.
        let cache = SolutionCache::new(32);
        let (qa, qb) = (query(1), query(2));
        cache.insert(99, 1, 5, qa.clone(), answer(1));
        assert!(
            cache.get(99, 1, 5, &qb).is_none(),
            "collision served wrong answer"
        );
        // same query, different dataset epoch: also a miss
        assert!(
            cache.get(99, 2, 5, &qa).is_none(),
            "stale-epoch answer served"
        );
        // same query and epoch, moved generation digest: also a miss
        assert!(
            cache.get(99, 1, 6, &qa).is_none(),
            "stale-digest answer served"
        );
        assert_eq!(cache.get(99, 1, 5, &qa).unwrap().indices, vec![1]);
        // last-writer-wins on overwrite
        cache.insert(99, 1, 5, qb.clone(), answer(2));
        assert!(cache.get(99, 1, 5, &qa).is_none());
        assert_eq!(cache.get(99, 1, 5, &qb).unwrap().indices, vec![2]);
    }

    #[test]
    fn evicts_least_recently_used_within_shard() {
        let cache = SolutionCache::new(1); // 1 entry per shard
                                           // Keys in the same shard: congruent mod SHARDS.
        let s = SolutionCache::SHARDS as u64;
        cache.insert(s, 0, 0, query(1), answer(1));
        cache.insert(2 * s, 0, 0, query(2), answer(2)); // evicts key `s`
        assert!(cache.get(s, 0, 0, &query(1)).is_none());
        assert!(cache.get(2 * s, 0, 0, &query(2)).is_some());
        assert_eq!(cache.stats().evictions, 1);

        // Recency refresh: touch `2s`, insert `3s`, so `2s` survives…
        cache.insert(3 * s, 0, 0, query(3), answer(3));
        assert!(cache.get(3 * s, 0, 0, &query(3)).is_some());
    }

    #[test]
    fn refresh_on_get_protects_entry() {
        let cache = SolutionCache::new(2 * SolutionCache::SHARDS);
        let s = SolutionCache::SHARDS as u64;
        cache.insert(s, 0, 0, query(1), answer(1));
        cache.insert(2 * s, 0, 0, query(2), answer(2));
        // shard full (2 per shard); touching the older key makes the
        // newer one the eviction victim.
        assert!(cache.get(s, 0, 0, &query(1)).is_some());
        cache.insert(3 * s, 0, 0, query(3), answer(3));
        assert!(
            cache.get(s, 0, 0, &query(1)).is_some(),
            "recently used entry evicted"
        );
        assert!(
            cache.get(2 * s, 0, 0, &query(2)).is_none(),
            "LRU entry survived"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Satellite pin: the `Ordering::Relaxed` hit/miss/eviction
        /// counters stay mutually consistent under concurrent
        /// get/insert/refresh from many threads — every lookup is counted
        /// exactly once, entries never exceed capacity, and the eviction
        /// count accounts exactly for the entries that went missing.
        #[test]
        fn concurrent_stats_stay_consistent(
            threads in 2usize..6,
            ops in 20usize..120,
            key_space in 1u64..40,
            capacity in 1usize..48,
        ) {
            let cache = SolutionCache::new(capacity);
            let per_thread: Vec<(u64, u64)> = std::thread::scope(|s| {
                let cache = &cache;
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        s.spawn(move || {
                            let (mut hits, mut misses) = (0u64, 0u64);
                            // Deterministic per-thread mix of lookups and
                            // inserts over a shared key space: plenty of
                            // contention on both shard locks and counters.
                            for i in 0..ops {
                                let key = ((t * 31 + i * 7) as u64) % key_space;
                                let q = query(key);
                                if i % 3 == 0 {
                                    cache.insert(key, 0, 0, q, answer(key as usize));
                                } else if cache.get(key, 0, 0, &q).is_some() {
                                    hits += 1;
                                } else {
                                    misses += 1;
                                }
                            }
                            (hits, misses)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            let st = cache.stats();
            let (local_hits, local_misses) = per_thread
                .iter()
                .fold((0u64, 0u64), |(h, m), &(th, tm)| (h + th, m + tm));
            // Counted-exactly-once: the global counters equal the sum of
            // what each thread observed — no lost or double increments.
            proptest::prop_assert_eq!(st.hits, local_hits);
            proptest::prop_assert_eq!(st.misses, local_misses);
            // Structural consistency after all threads quiesce.
            proptest::prop_assert_eq!(st.entries, cache.len());
            let max_entries = SolutionCache::SHARDS
                * capacity.div_ceil(SolutionCache::SHARDS).max(1);
            proptest::prop_assert!(st.entries <= max_entries);
            // Every resident or evicted entry came from some insert; an
            // insert that overwrote in place produced neither.
            let inserts = threads * ops.div_ceil(3);
            proptest::prop_assert!(st.entries + st.evictions as usize <= inserts);
            let rate = st.hit_rate();
            proptest::prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = SolutionCache::new(8);
        cache.insert(1, 0, 0, query(1), answer(1));
        let _ = cache.get(1, 0, 0, &query(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidate_stale_drops_only_disturbed_forms() {
        let cache = SolutionCache::new(64);
        // Dataset "t": a skyline answer at sky digest 10 and a full-form
        // answer at full digest 20. Dataset "other": untouched bystander.
        let mut q_sky = query(1);
        q_sky.skyline = true;
        let mut q_full = query(2);
        q_full.skyline = false;
        let mut q_other = query(3);
        q_other.dataset = "other".into();
        cache.insert(1, 4, 10, q_sky.clone(), answer(1));
        cache.insert(2, 4, 20, q_full.clone(), answer(2));
        cache.insert(3, 9, 77, q_other.clone(), answer(3));

        // A mutation that moved only the full digest (20 → 21): the
        // skyline answer and the other dataset's entry both survive.
        assert_eq!(cache.invalidate_stale("t", 4, 10, 21), 1);
        assert!(cache.get(1, 4, 10, &q_sky).is_some());
        assert!(cache.get(2, 4, 20, &q_full).is_none());
        assert!(cache.get(3, 9, 77, &q_other).is_some());

        // A mutation that also moved the sky digest drops the rest of
        // "t" but still never touches "other".
        assert_eq!(cache.invalidate_stale("t", 4, 11, 21), 1);
        assert!(cache.get(1, 4, 10, &q_sky).is_none());
        assert!(cache.get(3, 9, 77, &q_other).is_some());
        // Sweeping with everything current is a no-op.
        assert_eq!(cache.invalidate_stale("other", 9, 77, 77), 0);
        assert!(cache.get(3, 9, 77, &q_other).is_some());
    }
}
