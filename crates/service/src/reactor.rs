//! A thin, std-only readiness layer: `poll(2)` plus a self-pipe waker.
//!
//! The event front end ([`crate::server::FrontendKind::Event`]) needs two
//! primitives the standard library does not expose: waiting for readiness
//! on many sockets at once, and waking that wait from another thread.
//! Both are decades-old POSIX idioms, small enough to vendor here rather
//! than pull in a runtime:
//!
//! * [`poll`] wraps the libc `poll(2)` syscall through a one-function
//!   `extern "C"` declaration (no libc crate — the symbol is in every
//!   Unix C runtime the toolchain links anyway), retrying on `EINTR`;
//! * [`WakePipe`]/[`Waker`] implement the classic self-pipe trick over a
//!   `UnixStream` pair: the event loop polls the read end alongside its
//!   sockets, and any thread holding the cloneable [`Waker`] makes the
//!   loop return immediately by writing one byte. This is what removes
//!   the 200 ms `set_read_timeout` shutdown spin the threaded front end
//!   needs — shutdown and solve completions *wake* the loop instead of
//!   waiting out a timeout.
//!
//! Everything here is Unix-only in practice (the crate already is: the
//! serve loop relies on Unix socket semantics in its tests), but only the
//! `poll` symbol itself is platform-specific.

use std::io::{ErrorKind, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

/// `POLLIN`: readable (or a peer close, together with [`POLLHUP`]).
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR`: error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP`: peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// `POLLNVAL`: the fd was not open (revents only; a loop bug if seen).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set — layout-compatible with the C
/// `struct pollfd` on every Unix ABI the toolchain targets.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: i32,
    /// Requested readiness ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Readiness reported by the kernel (output field).
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `mask` (or an error/hang-up
    /// condition, which `poll` may deliver regardless of `events`).
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

mod sys {
    /// The C `nfds_t`: `unsigned long` on Linux/glibc/musl, but `u32`
    /// on macOS and the BSDs — an ABI detail the libc crate would hide.
    #[cfg(target_os = "linux")]
    pub type NfdsT = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = u32;

    extern "C" {
        pub fn poll(
            fds: *mut super::PollFd,
            nfds: NfdsT,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }
}

/// Blocks until at least one entry of `fds` is ready, `timeout_ms`
/// elapses (`-1` = forever), or a wake arrives; returns the number of
/// ready entries. `EINTR` is retried internally — callers never see it.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively borrowed slice for the whole
        // call, so the pointer is valid and unaliased; `PollFd` is
        // `#[repr(C)]` with the exact `pollfd` layout (fd: c_int, events/
        // revents: c_short), so the kernel writes `revents` in bounds; the
        // length is passed as the platform `nfds_t`, never exceeding the
        // slice; poll(2) has no other preconditions (it tolerates closed
        // and invalid fds by reporting POLLNVAL rather than faulting).
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::NfdsT, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() != ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// The read end of the self-pipe: lives in the event loop and is polled
/// for [`POLLIN`] alongside the listener and connection sockets.
#[derive(Debug)]
pub struct WakePipe {
    rx: UnixStream,
}

/// The write end of the self-pipe: cheap to clone, held by worker
/// threads and [`crate::server::Server::shutdown`]; one byte written
/// makes the event loop's [`poll`] return immediately.
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

/// Builds a connected wake pair; both ends are nonblocking, so a wake
/// can never stall its sender and draining can never stall the loop.
pub fn wake_pair() -> std::io::Result<(WakePipe, Waker)> {
    let (rx, tx) = UnixStream::pair()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    Ok((WakePipe { rx }, Waker { tx: Arc::new(tx) }))
}

impl WakePipe {
    /// The fd to include in the poll set (watch for [`POLLIN`]).
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wake byte. Many wakes coalesce into one
    /// drain; the loop re-checks all wake sources after each call.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => return, // sender closed; nothing more to drain
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }
}

impl Waker {
    /// Makes the event loop's current (or next) [`poll`] return. Best
    /// effort by design: `WouldBlock` means the pipe already holds an
    /// undrained wake byte, and any other failure means the loop is gone
    /// — in both cases there is nothing useful left to do.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_with_zero_timeout_reports_nothing_on_an_idle_pipe() {
        let (pipe, _waker) = wake_pair().unwrap();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let n = poll(&mut fds, 0).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].ready(POLLIN));
    }

    #[test]
    fn wake_makes_the_pipe_readable_and_drain_clears_it() {
        let (pipe, waker) = wake_pair().unwrap();
        waker.wake();
        waker.wake(); // coalesces; must not block or fail
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        // A generous timeout, but the wake is already pending so this
        // returns immediately.
        let n = poll(&mut fds, 5_000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
        pipe.drain();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0, "drain left bytes behind");
    }

    #[test]
    fn wake_from_another_thread_interrupts_a_blocking_poll() {
        let (pipe, waker) = wake_pair().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        // Without the wake this would sleep 30 s; the test finishing fast
        // is the assertion.
        let n = poll(&mut fds, 30_000).unwrap();
        assert_eq!(n, 1);
        t.join().unwrap();
    }

    #[test]
    fn waker_survives_after_the_pipe_is_dropped() {
        let (pipe, waker) = wake_pair().unwrap();
        drop(pipe);
        waker.wake(); // best-effort: must not panic
    }
}
