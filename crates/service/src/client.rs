//! A typed TCP client for the fairhms wire protocol.
//!
//! [`WireClient`] is the one client implementation shared by the
//! `fairhms query` CLI and the integration test suites: it sends text
//! request lines, performs the `HELLO` codec handshake, and decodes
//! response frames through whichever [`Codec`] the connection negotiated
//! — so every caller observes the same typed [`Response`] model whether
//! the wire carries v1 text or v2 binary frames.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::codec::{Codec, CodecKind};
use crate::protocol::{self, Response, WireAnswer};
use crate::query::Query;
use crate::ServiceError;

/// A connected protocol client with a negotiated response codec.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    codec: Box<dyn Codec>,
}

impl WireClient {
    /// Connects as a plain v1 text client (no handshake on the wire —
    /// exactly what a pre-v2 client does).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient, ServiceError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServiceError::Io(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(WireClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            codec: CodecKind::Text.new_codec(),
        })
    }

    /// Connects and negotiates `kind` via `HELLO version=2 codec=…`,
    /// verifying the server's acknowledgment before switching.
    pub fn negotiate(
        addr: impl ToSocketAddrs,
        kind: CodecKind,
    ) -> Result<WireClient, ServiceError> {
        let mut client = WireClient::connect(addr)?;
        client.send_line(&format!(
            "HELLO version={} codec={kind}",
            protocol::PROTOCOL_VERSION
        ))?;
        // The acknowledgment is still encoded by the *previous* codec
        // (text on a fresh connection); frames after it use `kind`.
        match client.recv()? {
            Response::Hello { version, codec }
                if version == protocol::PROTOCOL_VERSION && codec == kind => {}
            other => {
                return Err(ServiceError::Protocol(format!(
                    "handshake rejected: expected OK version=2 codec={kind}, got {other:?}"
                )))
            }
        }
        client.codec = kind.new_codec();
        Ok(client)
    }

    /// Connects with the codec the `FAIRHMS_TEST_CODEC` environment
    /// variable selects ([`CodecKind::from_env`]) — the hook `scripts/
    /// ci.sh` uses to run every TCP test over both codecs. Text skips the
    /// handshake entirely, so the default run is a true v1 client.
    pub fn connect_env(addr: impl ToSocketAddrs) -> Result<WireClient, ServiceError> {
        match CodecKind::from_env() {
            CodecKind::Text => WireClient::connect(addr),
            kind => WireClient::negotiate(addr, kind),
        }
    }

    /// The kind of the negotiated response codec.
    pub fn codec_kind(&self) -> CodecKind {
        self.codec.kind()
    }

    /// Sends one raw request line (the request channel is always text).
    pub fn send_line(&mut self, line: &str) -> Result<(), ServiceError> {
        writeln!(self.writer, "{line}").map_err(|e| ServiceError::Io(format!("send: {e}")))?;
        self.writer
            .flush()
            .map_err(|e| ServiceError::Io(format!("send: {e}")))
    }

    /// Reads the next typed response frame; `ERR` frames are returned as
    /// [`Response::Error`] values, not `Err` (they are protocol data).
    pub fn recv(&mut self) -> Result<Response, ServiceError> {
        match self.codec.read_frame(&mut self.reader)? {
            Some(resp) => Ok(resp),
            None => Err(ServiceError::Io("server closed the connection".into())),
        }
    }

    /// Reads the next frame and unwraps it into a query answer;
    /// [`Response::Error`] becomes a typed `Err`.
    pub fn recv_answer(&mut self) -> Result<WireAnswer, ServiceError> {
        match self.recv()? {
            Response::Answer { answer, .. } => Ok(answer),
            Response::Busy {
                retry_after_ms,
                message,
                ..
            } => Err(ServiceError::Busy {
                reason: message,
                retry_after_ms,
            }),
            Response::Error { message, .. } => Err(ServiceError::Protocol(message)),
            other => Err(ServiceError::Protocol(format!(
                "expected a query answer, got {other:?}"
            ))),
        }
    }

    /// Sends one query and returns its answer.
    pub fn query(&mut self, q: &Query) -> Result<WireAnswer, ServiceError> {
        self.send_line(&protocol::query_to_wire(q)?)?;
        self.recv_answer()
    }

    /// Sends `APPEND name=… row=… group=…` and returns the server's
    /// [`Response::Mutated`] frame; `ERR`/busy frames become typed `Err`s.
    pub fn append(
        &mut self,
        name: &str,
        row: &[f64],
        group: usize,
    ) -> Result<Response, ServiceError> {
        let row_csv = row
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.send_line(&format!("APPEND name={name} row={row_csv} group={group}"))?;
        self.recv_mutated()
    }

    /// Sends `DELETE name=… row=…` and returns the server's
    /// [`Response::Mutated`] frame; `ERR`/busy frames become typed `Err`s.
    pub fn delete(&mut self, name: &str, row: usize) -> Result<Response, ServiceError> {
        self.send_line(&format!("DELETE name={name} row={row}"))?;
        self.recv_mutated()
    }

    fn recv_mutated(&mut self) -> Result<Response, ServiceError> {
        match self.recv()? {
            m @ Response::Mutated { .. } => Ok(m),
            Response::Busy {
                retry_after_ms,
                message,
                ..
            } => Err(ServiceError::Busy {
                reason: message,
                retry_after_ms,
            }),
            Response::Error { message, .. } => Err(ServiceError::Protocol(message)),
            other => Err(ServiceError::Protocol(format!(
                "expected a MUTATED response, got {other:?}"
            ))),
        }
    }

    /// Sends `METRICS` and returns the decoded telemetry snapshot as
    /// `(enabled, counters, histograms)`.
    #[allow(clippy::type_complexity)]
    pub fn metrics(
        &mut self,
    ) -> Result<
        (
            bool,
            Vec<(String, u64)>,
            Vec<crate::protocol::WireHistogram>,
        ),
        ServiceError,
    > {
        self.send_line("METRICS")?;
        match self.recv()? {
            Response::Metrics {
                enabled,
                counters,
                histograms,
            } => Ok((enabled, counters, histograms)),
            Response::Error { message, .. } => Err(ServiceError::Protocol(message)),
            other => Err(ServiceError::Protocol(format!(
                "expected a METRICS response, got {other:?}"
            ))),
        }
    }

    /// Sends `BATCH n [stream=true]` plus the query lines and returns the
    /// decoded header; the caller then reads `n` frames via
    /// [`WireClient::recv`].
    pub fn send_batch(
        &mut self,
        queries: &[Query],
        stream: bool,
    ) -> Result<Response, ServiceError> {
        let header = if stream {
            format!("BATCH {} stream=true", queries.len())
        } else {
            format!("BATCH {}", queries.len())
        };
        // Validate and build every line before sending the header, so a
        // wire-unsafe query cannot leave a half-written batch behind.
        let lines = queries
            .iter()
            .map(protocol::query_to_wire)
            .collect::<Result<Vec<_>, _>>()?;
        let mut block = header;
        for l in &lines {
            block.push('\n');
            block.push_str(l);
        }
        self.send_line(&block)?;
        self.recv()
    }

    /// Runs a whole batch and reassembles the answers into request order,
    /// whether the server streamed them (`seq`-tagged, completion order)
    /// or buffered them (request order) — the two deliveries are
    /// contractually bit-identical once reassembled.
    pub fn batch(
        &mut self,
        queries: &[Query],
        stream: bool,
    ) -> Result<Vec<Result<WireAnswer, ServiceError>>, ServiceError> {
        match self.send_batch(queries, stream)? {
            Response::BatchHeader { n, .. } if n == queries.len() => {}
            Response::Busy {
                retry_after_ms,
                message,
                ..
            } => {
                return Err(ServiceError::Busy {
                    reason: message,
                    retry_after_ms,
                })
            }
            Response::Error { message, .. } => return Err(ServiceError::Protocol(message)),
            other => {
                return Err(ServiceError::Protocol(format!(
                    "unexpected batch header {other:?}"
                )))
            }
        }
        let mut out: Vec<Option<Result<WireAnswer, ServiceError>>> =
            (0..queries.len()).map(|_| None).collect();
        for i in 0..queries.len() {
            let (seq, res) = match self.recv()? {
                Response::Answer { seq, answer } => (seq, Ok(answer)),
                Response::Busy {
                    seq,
                    retry_after_ms,
                    message,
                } => (
                    seq,
                    Err(ServiceError::Busy {
                        reason: message,
                        retry_after_ms,
                    }),
                ),
                Response::Error { seq, message } => (seq, Err(ServiceError::Protocol(message))),
                other => {
                    return Err(ServiceError::Protocol(format!(
                        "expected answer {i}, got {other:?}"
                    )))
                }
            };
            // Buffered batches carry no seq: frame order is request order.
            let slot = seq.map_or(i, |s| s as usize);
            if slot >= queries.len() || out[slot].is_some() {
                return Err(ServiceError::Protocol(format!(
                    "bad stream sequence {slot} (frame {i})"
                )));
            }
            out[slot] = Some(res);
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }
}
