//! Deterministic fan-out of query batches across std threads.
//!
//! No async runtime: workers are scoped `std::thread`s pulling indices
//! from a shared atomic counter and reporting `(index, result)` pairs over
//! an `mpsc` channel. Results are reassembled **by input index**, so the
//! output vector is a pure function of `(engine state, queries)` — worker
//! count and OS scheduling affect only wall-clock time, never payloads
//! (each query's answer is solved from a per-query seed, not from shared
//! RNG state).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use crate::engine::{QueryEngine, QueryResponse};
use crate::query::Query;
use crate::ServiceError;

/// Executes `queries[i]`, recording `executor.queue_wait` (submission →
/// worker claim) and `executor.run` (the execution itself) when
/// telemetry is on. `batch_start` is `None` exactly when telemetry is
/// off, so the disabled path never reads the clock here.
fn execute_one(
    engine: &QueryEngine,
    batch_start: Option<Instant>,
    q: &Query,
) -> Result<QueryResponse, ServiceError> {
    let Some(start) = batch_start else {
        return engine.execute(q);
    };
    let m = engine.metrics();
    let waited = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    m.queue_wait.record(waited);
    let _run = m.recorder().span(&m.run);
    engine.execute(q)
}

/// A fixed-width thread-pool executor for query batches.
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    workers: usize,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

impl BatchExecutor {
    /// An executor running at most `workers` concurrent solves
    /// (minimum 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes every query, returning results in input order.
    ///
    /// Individual failures are per-slot `Err`s; one bad query never poisons
    /// the batch.
    pub fn execute_all(
        &self,
        engine: &QueryEngine,
        queries: &[Query],
    ) -> Vec<Result<QueryResponse, ServiceError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let batch_start = engine.metrics().enabled().then(Instant::now);
        let workers = self.workers.min(queries.len());
        if workers == 1 {
            return queries
                .iter()
                .map(|q| execute_one(engine, batch_start, q))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<QueryResponse, ServiceError>)>();
        let mut out: Vec<Option<Result<QueryResponse, ServiceError>>> =
            (0..queries.len()).map(|_| None).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    // A send can only fail if the receiver was dropped,
                    // which cannot happen while this scope is alive.
                    let _ = tx.send((i, execute_one(engine, batch_start, &queries[i])));
                });
            }
            drop(tx);
            for (i, res) in rx {
                out[i] = Some(res);
            }
        });

        out.into_iter()
            .map(|slot| slot.expect("every index is claimed exactly once"))
            .collect()
    }

    /// Executes every query, delivering each `(index, result)` to
    /// `deliver` **as it completes** instead of buffering the batch.
    ///
    /// This is the engine side of `BATCH n stream=true`: workers report
    /// over the same per-completion mpsc channel `execute_all` uses, but
    /// the channel drains straight into `deliver` (called on the
    /// caller's thread, so an `FnMut` writing to a socket needs no
    /// locking). Completion *order* depends on scheduling; the payload
    /// delivered for each index does not — reassembling by index yields
    /// exactly [`BatchExecutor::execute_all`]'s output (pinned by tests),
    /// which is why the wire protocol tags streamed frames with `seq`.
    pub fn execute_streaming<F>(&self, engine: &QueryEngine, queries: &[Query], mut deliver: F)
    where
        F: FnMut(usize, Result<QueryResponse, ServiceError>),
    {
        if queries.is_empty() {
            return;
        }
        let batch_start = engine.metrics().enabled().then(Instant::now);
        let workers = self.workers.min(queries.len());
        if workers == 1 {
            for (i, q) in queries.iter().enumerate() {
                deliver(i, execute_one(engine, batch_start, q));
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<QueryResponse, ServiceError>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let _ = tx.send((i, execute_one(engine, batch_start, &queries[i])));
                });
            }
            drop(tx);
            for (i, res) in rx {
                deliver(i, res);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use fairhms_data::Dataset;
    use std::sync::Arc;

    fn engine() -> QueryEngine {
        let catalog = Arc::new(Catalog::new());
        let points = vec![
            1.0, 0.1, 0.8, 0.6, 0.2, 0.9, 0.9, 0.3, 0.4, 0.8, 0.7, 0.7, 0.6, 0.75, 0.95, 0.2,
        ];
        let data = Dataset::new("toy", 2, points, vec![0, 1, 0, 1, 0, 1, 0, 1], vec![]).unwrap();
        catalog.insert_dataset(data).unwrap();
        QueryEngine::new(catalog, 256)
    }

    fn batch() -> Vec<Query> {
        let mut qs = Vec::new();
        for k in 2..=4 {
            for alg in ["intcov", "bigreedy", "f-greedy"] {
                let mut q = Query::new("toy", k);
                q.alg = alg.into();
                qs.push(q);
            }
        }
        // include a failing slot: unknown dataset
        qs.push(Query::new("absent", 2));
        qs
    }

    fn payloads(results: &[Result<QueryResponse, ServiceError>]) -> Vec<Option<Vec<usize>>> {
        results
            .iter()
            .map(|r| r.as_ref().ok().map(|resp| resp.answer.indices.clone()))
            .collect()
    }

    #[test]
    fn output_independent_of_worker_count() {
        let qs = batch();
        let reference = payloads(&BatchExecutor::new(1).execute_all(&engine(), &qs));
        for workers in [2, 3, 8, 32] {
            let got = payloads(&BatchExecutor::new(workers).execute_all(&engine(), &qs));
            assert_eq!(got, reference, "worker count {workers} changed payloads");
        }
    }

    #[test]
    fn per_slot_errors_do_not_poison_the_batch() {
        let qs = batch();
        let results = BatchExecutor::new(4).execute_all(&engine(), &qs);
        assert_eq!(results.len(), qs.len());
        assert!(results[..qs.len() - 1].iter().all(|r| r.is_ok()));
        assert!(matches!(
            results[qs.len() - 1],
            Err(ServiceError::UnknownDataset { .. })
        ));
    }

    #[test]
    fn streaming_delivery_reassembles_to_execute_all_output() {
        let eng = engine();
        let qs = batch();
        let reference = payloads(&BatchExecutor::new(1).execute_all(&eng, &qs));
        for workers in [1usize, 2, 3, 8] {
            let ex = BatchExecutor::new(workers);
            let mut slots: Vec<Option<Option<Vec<usize>>>> = vec![None; qs.len()];
            let mut arrivals = Vec::new();
            ex.execute_streaming(&eng, &qs, |i, r| {
                arrivals.push(i);
                assert!(slots[i].is_none(), "index {i} delivered twice");
                slots[i] = Some(r.ok().map(|resp| resp.answer.indices.clone()));
            });
            // every index delivered exactly once…
            let mut sorted = arrivals.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..qs.len()).collect::<Vec<_>>());
            // …and reassembly by index equals the buffered output.
            let got: Vec<Option<Vec<usize>>> = slots.into_iter().map(|s| s.unwrap()).collect();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn streaming_empty_batch_delivers_nothing() {
        BatchExecutor::default()
            .execute_streaming(&engine(), &[], |_, _| panic!("no deliveries expected"));
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(BatchExecutor::default()
            .execute_all(&engine(), &[])
            .is_empty());
    }

    #[test]
    fn duplicate_queries_solve_once() {
        let eng = engine();
        let qs: Vec<Query> = (0..24).map(|_| Query::new("toy", 3)).collect();
        let results = BatchExecutor::new(8).execute_all(&eng, &qs);
        assert!(results.iter().all(|r| r.is_ok()));
        // Single-flight: exactly one cold solve even under concurrency;
        // all 23 other executions were served from the cache.
        let cold = results
            .iter()
            .filter(|r| !r.as_ref().unwrap().cached)
            .count();
        assert_eq!(cold, 1);
        assert_eq!(eng.cache_stats().hits, 23);
    }
}
