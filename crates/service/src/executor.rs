//! Deterministic fan-out of query batches across std threads.
//!
//! No async runtime: workers are scoped `std::thread`s pulling indices
//! from a shared atomic counter and reporting `(index, result)` pairs over
//! an `mpsc` channel. Results are reassembled **by input index**, so the
//! output vector is a pure function of `(engine state, queries)` — worker
//! count and OS scheduling affect only wall-clock time, never payloads
//! (each query's answer is solved from a per-query seed, not from shared
//! RNG state).
//!
//! The event front end adds a second execution shape: a **bounded,
//! long-lived** `SolveQueue` drained by a resident `WorkerPool`,
//! instead of per-batch scoped threads. The bound is the admission-control
//! backstop — when the queue is full the server sheds with `ERR busy`
//! rather than buffering without limit — and workers apply the optional
//! queue *deadline*: a job that sat queued longer than the client would
//! plausibly wait is shed at dequeue time instead of wasting a solve.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use fairhms_obs::sync::{lock_or_recover, wait_or_recover};
use std::time::Instant;

use crate::engine::{QueryEngine, QueryResponse};
use crate::metrics::ServiceMetrics;
use crate::protocol::Response;
use crate::query::Query;
use crate::reactor::Waker;
use crate::server::{self, ServeOptions};
use crate::ServiceError;

/// Executes `queries[i]`, recording `executor.queue_wait` (submission →
/// worker claim) and `executor.run` (the execution itself) when
/// telemetry is on. `batch_start` is `None` exactly when telemetry is
/// off, so the disabled path never reads the clock here.
fn execute_one(
    engine: &QueryEngine,
    batch_start: Option<Instant>,
    q: &Query,
) -> Result<QueryResponse, ServiceError> {
    let Some(start) = batch_start else {
        return engine.execute(q);
    };
    let m = engine.metrics();
    let waited = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    m.queue_wait.record(waited);
    let _run = m.recorder().span(&m.run);
    engine.execute(q)
}

/// A fixed-width thread-pool executor for query batches.
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    workers: usize,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

impl BatchExecutor {
    /// An executor running at most `workers` concurrent solves
    /// (minimum 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes every query, returning results in input order.
    ///
    /// Individual failures are per-slot `Err`s; one bad query never poisons
    /// the batch.
    #[allow(clippy::disallowed_methods)] // Instant::now is recorder-gated here (R5)
    pub fn execute_all(
        &self,
        engine: &QueryEngine,
        queries: &[Query],
    ) -> Vec<Result<QueryResponse, ServiceError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let batch_start = engine.metrics().enabled().then(Instant::now);
        let workers = self.workers.min(queries.len());
        if workers == 1 {
            return queries
                .iter()
                .map(|q| execute_one(engine, batch_start, q))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<QueryResponse, ServiceError>)>();
        let mut out: Vec<Option<Result<QueryResponse, ServiceError>>> =
            (0..queries.len()).map(|_| None).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    // ordering: work-claim index; fetch_add uniqueness is all that is
                    // needed, results are written to disjoint slots.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    // A send can only fail if the receiver was dropped,
                    // which cannot happen while this scope is alive.
                    let _ = tx.send((i, execute_one(engine, batch_start, &queries[i])));
                });
            }
            drop(tx);
            for (i, res) in rx {
                out[i] = Some(res);
            }
        });

        out.into_iter()
            .map(|slot| slot.expect("every index is claimed exactly once"))
            .collect()
    }

    /// Executes every query, delivering each `(index, result)` to
    /// `deliver` **as it completes** instead of buffering the batch.
    ///
    /// This is the engine side of `BATCH n stream=true`: workers report
    /// over the same per-completion mpsc channel `execute_all` uses, but
    /// the channel drains straight into `deliver` (called on the
    /// caller's thread, so an `FnMut` writing to a socket needs no
    /// locking). Completion *order* depends on scheduling; the payload
    /// delivered for each index does not — reassembling by index yields
    /// exactly [`BatchExecutor::execute_all`]'s output (pinned by tests),
    /// which is why the wire protocol tags streamed frames with `seq`.
    #[allow(clippy::disallowed_methods)] // Instant::now is recorder-gated here (R5)
    pub fn execute_streaming<F>(&self, engine: &QueryEngine, queries: &[Query], mut deliver: F)
    where
        F: FnMut(usize, Result<QueryResponse, ServiceError>),
    {
        if queries.is_empty() {
            return;
        }
        let batch_start = engine.metrics().enabled().then(Instant::now);
        let workers = self.workers.min(queries.len());
        if workers == 1 {
            for (i, q) in queries.iter().enumerate() {
                deliver(i, execute_one(engine, batch_start, q));
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<QueryResponse, ServiceError>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    // ordering: work-claim index; fetch_add uniqueness is all that is
                    // needed, results are written to disjoint slots.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let _ = tx.send((i, execute_one(engine, batch_start, &queries[i])));
                });
            }
            drop(tx);
            for (i, res) in rx {
                deliver(i, res);
            }
        });
    }
}

/// What a queued job executes on a worker.
#[derive(Debug)]
pub(crate) enum WorkItem {
    /// A query solve (subject to deadline shedding).
    Solve(Box<Query>),
    /// The `LOAD` admin verb: disk read + dataset preparation — heavy
    /// enough that running it on the event loop would stall every
    /// connection. Operator-issued and rare, so it bypasses the queue
    /// bound ([`SolveQueue::push_control`]) and is never deadline-shed.
    Load { name: String, path: String },
    /// The `APPEND` mutation verb: incremental skyline maintenance plus
    /// delta cache invalidation — catalog work that must stay off the
    /// event loop, admitted exactly like `Load`.
    Append {
        name: String,
        row: Vec<f64>,
        group: usize,
    },
    /// The `DELETE` mutation verb; see `Append`.
    Delete { name: String, row: usize },
}

impl WorkItem {
    /// Executes a *control* work item inline, producing its response.
    /// Shared by the worker arm and the event loop's closed-queue
    /// fallback so the two paths cannot drift.
    ///
    /// # Panics
    /// On [`WorkItem::Solve`] — solves are not control verbs.
    pub(crate) fn run_control(self, engine: &QueryEngine, opts: &ServeOptions) -> Response {
        match self {
            WorkItem::Load { name, path } => server::handle_load(engine, opts, &name, &path),
            WorkItem::Append { name, row, group } => {
                server::handle_append(engine, &name, &row, group)
            }
            WorkItem::Delete { name, row } => server::handle_delete(engine, &name, row),
            WorkItem::Solve(_) => unreachable!("solves are not control verbs"),
        }
    }
}

/// One job admitted into the global queue, addressed back to its
/// connection by `(conn slot, generation, ticket)` — the generation
/// guards against a slot being reused by a new connection while an old
/// job is still in flight.
#[derive(Debug)]
pub(crate) struct SolveJob {
    /// Connection slab slot.
    pub conn: usize,
    /// Slot generation at enqueue time.
    pub generation: u64,
    /// Per-connection response-order ticket.
    pub ticket: u64,
    /// Index within the owning batch (`None` for single queries and
    /// control verbs).
    pub batch_index: Option<usize>,
    /// What to execute.
    pub work: WorkItem,
    /// When the job entered the queue (deadline shedding + queue_wait).
    pub enqueued: Instant,
}

/// The outcome a worker reports for one job.
#[derive(Debug)]
pub(crate) enum WorkDone {
    /// A solve (or its deadline shed); the query is carried through so
    /// the loop can log slow solves.
    Solve {
        query: Box<Query>,
        result: Result<QueryResponse, ServiceError>,
    },
    /// A control verb's ready-to-encode response.
    Control(Response),
}

/// A completed job, routed back to the event loop.
#[derive(Debug)]
pub(crate) struct SolveDone {
    /// Connection slab slot.
    pub conn: usize,
    /// Slot generation at enqueue time.
    pub generation: u64,
    /// Per-connection response-order ticket.
    pub ticket: u64,
    /// Index within the owning batch (`None` for single queries and
    /// control verbs).
    pub batch_index: Option<usize>,
    /// The outcome.
    pub done: WorkDone,
}

struct QueueState {
    jobs: VecDeque<SolveJob>,
    closed: bool,
}

/// The bounded global solve queue between the event loop and the
/// `WorkerPool`. `try_push` never blocks — a full (or closed) queue
/// hands the job back so the caller sheds it — and the queue maintains
/// the `queue.depth` gauge itself, so STATS and the shed tests see an
/// exact depth, not an approximation.
pub(crate) struct SolveQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
    metrics: Arc<ServiceMetrics>,
}

impl SolveQueue {
    /// A queue admitting at most `cap` waiting jobs (0 sheds everything —
    /// the deterministic-overload test hook).
    pub fn new(cap: usize, metrics: Arc<ServiceMetrics>) -> Arc<SolveQueue> {
        Arc::new(SolveQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
            metrics,
        })
    }

    /// Admits `job`, or hands it back when the queue is full or closed.
    pub fn try_push(&self, job: SolveJob) -> Result<(), SolveJob> {
        let mut st = lock_or_recover(&self.state);
        if st.closed || st.jobs.len() >= self.cap {
            return Err(job);
        }
        st.jobs.push_back(job);
        self.metrics.queue_depth.inc();
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Admits a control job past the capacity bound — operator verbs are
    /// never shed. Hands the job back only once the queue is closed
    /// (server teardown), when the caller must answer it itself.
    pub fn push_control(&self, job: SolveJob) -> Result<(), SolveJob> {
        let mut st = lock_or_recover(&self.state);
        if st.closed {
            return Err(job);
        }
        st.jobs.push_back(job);
        self.metrics.queue_depth.inc();
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed and
    /// drained (the worker's exit signal).
    pub fn pop(&self) -> Option<SolveJob> {
        let mut st = lock_or_recover(&self.state);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                self.metrics.queue_depth.dec();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = wait_or_recover(&self.ready, st);
        }
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        lock_or_recover(&self.state).jobs.len()
    }

    /// Stops admission and wakes every blocked worker; queued jobs still
    /// drain before workers exit.
    pub fn close(&self) {
        lock_or_recover(&self.state).closed = true;
        self.ready.notify_all();
    }
}

/// The resident worker threads draining a `SolveQueue`. Each completed
/// solve is sent over the `done` channel and followed by a [`Waker`]
/// kick, so the event loop learns about it immediately instead of on its
/// next timeout.
pub(crate) struct WorkerPool {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads. `deadline_ms` is the queue-time budget:
    /// a solve dequeued after sitting longer is shed (typed busy error
    /// carrying retry advice) instead of executed; control jobs are
    /// exempt. `opts` parameterizes control verbs (the `LOAD` root).
    pub fn spawn(
        workers: usize,
        engine: Arc<QueryEngine>,
        queue: Arc<SolveQueue>,
        done: mpsc::Sender<SolveDone>,
        waker: Waker,
        deadline_ms: Option<u64>,
        opts: Arc<ServeOptions>,
    ) -> WorkerPool {
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let queue = Arc::clone(&queue);
                let done = done.clone();
                let waker = waker.clone();
                let opts = Arc::clone(&opts);
                std::thread::Builder::new()
                    .name(format!("fairhms-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            let m = engine.metrics();
                            let waited = job.enqueued.elapsed();
                            if m.enabled() {
                                m.queue_wait
                                    .record(waited.as_nanos().min(u64::MAX as u128) as u64);
                            }
                            let done_item = match job.work {
                                WorkItem::Solve(query) => {
                                    let result = match deadline_ms {
                                        Some(d) if waited.as_millis() > u128::from(d) => {
                                            m.shed_total.inc();
                                            Err(ServiceError::Busy {
                                                reason: format!(
                                                    "queue deadline exceeded ({} ms queued, budget {d} ms)",
                                                    waited.as_millis()
                                                ),
                                                retry_after_ms: m
                                                    .retry_after_ms(queue.depth(), workers),
                                            })
                                        }
                                        _ => {
                                            let _run = m.recorder().span(&m.run);
                                            engine.execute(&query)
                                        }
                                    };
                                    WorkDone::Solve { query, result }
                                }
                                control => WorkDone::Control(control.run_control(&engine, &opts)),
                            };
                            let out = SolveDone {
                                conn: job.conn,
                                generation: job.generation,
                                ticket: job.ticket,
                                batch_index: job.batch_index,
                                done: done_item,
                            };
                            if done.send(out).is_err() {
                                break; // event loop gone; nothing to report to
                            }
                            waker.wake();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Waits for every worker to exit. Call [`SolveQueue::close`] first,
    /// or this blocks forever.
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests stamp queue deadlines directly
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use fairhms_data::Dataset;
    use std::sync::Arc;

    fn engine() -> QueryEngine {
        let catalog = Arc::new(Catalog::new());
        let points = vec![
            1.0, 0.1, 0.8, 0.6, 0.2, 0.9, 0.9, 0.3, 0.4, 0.8, 0.7, 0.7, 0.6, 0.75, 0.95, 0.2,
        ];
        let data = Dataset::new("toy", 2, points, vec![0, 1, 0, 1, 0, 1, 0, 1], vec![]).unwrap();
        catalog.insert_dataset(data).unwrap();
        QueryEngine::new(catalog, 256)
    }

    fn batch() -> Vec<Query> {
        let mut qs = Vec::new();
        for k in 2..=4 {
            for alg in ["intcov", "bigreedy", "f-greedy"] {
                let mut q = Query::new("toy", k);
                q.alg = alg.into();
                qs.push(q);
            }
        }
        // include a failing slot: unknown dataset
        qs.push(Query::new("absent", 2));
        qs
    }

    fn payloads(results: &[Result<QueryResponse, ServiceError>]) -> Vec<Option<Vec<usize>>> {
        results
            .iter()
            .map(|r| r.as_ref().ok().map(|resp| resp.answer.indices.clone()))
            .collect()
    }

    #[test]
    fn output_independent_of_worker_count() {
        let qs = batch();
        let reference = payloads(&BatchExecutor::new(1).execute_all(&engine(), &qs));
        for workers in [2, 3, 8, 32] {
            let got = payloads(&BatchExecutor::new(workers).execute_all(&engine(), &qs));
            assert_eq!(got, reference, "worker count {workers} changed payloads");
        }
    }

    #[test]
    fn per_slot_errors_do_not_poison_the_batch() {
        let qs = batch();
        let results = BatchExecutor::new(4).execute_all(&engine(), &qs);
        assert_eq!(results.len(), qs.len());
        assert!(results[..qs.len() - 1].iter().all(|r| r.is_ok()));
        assert!(matches!(
            results[qs.len() - 1],
            Err(ServiceError::UnknownDataset { .. })
        ));
    }

    #[test]
    fn streaming_delivery_reassembles_to_execute_all_output() {
        let eng = engine();
        let qs = batch();
        let reference = payloads(&BatchExecutor::new(1).execute_all(&eng, &qs));
        for workers in [1usize, 2, 3, 8] {
            let ex = BatchExecutor::new(workers);
            let mut slots: Vec<Option<Option<Vec<usize>>>> = vec![None; qs.len()];
            let mut arrivals = Vec::new();
            ex.execute_streaming(&eng, &qs, |i, r| {
                arrivals.push(i);
                assert!(slots[i].is_none(), "index {i} delivered twice");
                slots[i] = Some(r.ok().map(|resp| resp.answer.indices.clone()));
            });
            // every index delivered exactly once…
            let mut sorted = arrivals.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..qs.len()).collect::<Vec<_>>());
            // …and reassembly by index equals the buffered output.
            let got: Vec<Option<Vec<usize>>> = slots.into_iter().map(|s| s.unwrap()).collect();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn streaming_empty_batch_delivers_nothing() {
        BatchExecutor::default()
            .execute_streaming(&engine(), &[], |_, _| panic!("no deliveries expected"));
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(BatchExecutor::default()
            .execute_all(&engine(), &[])
            .is_empty());
    }

    fn job(ticket: u64) -> SolveJob {
        SolveJob {
            conn: 0,
            generation: 1,
            ticket,
            batch_index: None,
            work: WorkItem::Solve(Box::new(Query::new("toy", 2))),
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn solve_queue_bounds_admission_and_tracks_the_depth_gauge() {
        let m = Arc::new(ServiceMetrics::new(false));
        let q = SolveQueue::new(2, Arc::clone(&m));
        assert!(q.try_push(job(0)).is_ok());
        assert!(q.try_push(job(1)).is_ok());
        let bounced = q.try_push(job(2));
        assert!(bounced.is_err(), "third push must bounce off the bound");
        assert_eq!(bounced.unwrap_err().ticket, 2, "the job is handed back");
        assert_eq!(q.depth(), 2);
        assert_eq!(m.queue_depth.get(), 2);
        assert_eq!(q.pop().unwrap().ticket, 0);
        assert_eq!(m.queue_depth.get(), 1);
        // Closing stops admission but drains what is queued.
        q.close();
        assert!(q.try_push(job(3)).is_err());
        assert_eq!(q.pop().unwrap().ticket, 1);
        assert!(q.pop().is_none(), "closed + drained pops None");
        assert_eq!(m.queue_depth.get(), 0);
    }

    #[test]
    fn zero_capacity_queue_sheds_everything() {
        let m = Arc::new(ServiceMetrics::new(false));
        let q = SolveQueue::new(0, m);
        assert!(q.try_push(job(0)).is_err());
    }

    #[test]
    fn worker_pool_drains_the_queue_and_wakes_per_completion() {
        let eng = Arc::new(engine());
        let m = Arc::clone(eng.metrics());
        let queue = SolveQueue::new(64, m);
        let (pipe, waker) = crate::reactor::wake_pair().unwrap();
        let (tx, rx) = mpsc::channel();
        let pool = WorkerPool::spawn(
            3,
            Arc::clone(&eng),
            Arc::clone(&queue),
            tx,
            waker,
            None,
            Arc::new(ServeOptions::default()),
        );
        assert_eq!(pool.handles.len(), 3);
        for t in 0..8 {
            queue.try_push(job(t)).unwrap();
        }
        let mut done: Vec<SolveDone> = (0..8).map(|_| rx.recv().unwrap()).collect();
        done.sort_by_key(|d| d.ticket);
        for (t, d) in done.iter().enumerate() {
            assert_eq!(d.ticket, t as u64);
            let WorkDone::Solve { result, .. } = &d.done else {
                panic!("expected a solve outcome, got {:?}", d.done);
            };
            assert!(result.is_ok(), "{result:?}");
        }
        // Completions pinged the wake pipe (coalesced ≥ 1 byte pending).
        let mut fds = [crate::reactor::PollFd::new(
            pipe.fd(),
            crate::reactor::POLLIN,
        )];
        assert_eq!(crate::reactor::poll(&mut fds, 1_000).unwrap(), 1);
        queue.close();
        pool.join();
    }

    #[test]
    fn worker_pool_sheds_jobs_past_the_queue_deadline() {
        let eng = Arc::new(engine());
        let m = Arc::clone(eng.metrics());
        let queue = SolveQueue::new(64, Arc::clone(&m));
        // A job that already sat "queued" for 50 ms against a 1 ms budget.
        let mut stale = job(0);
        stale.enqueued = Instant::now() - std::time::Duration::from_millis(50);
        queue.try_push(stale).unwrap();
        let (_pipe, waker) = crate::reactor::wake_pair().unwrap();
        let (tx, rx) = mpsc::channel();
        let pool = WorkerPool::spawn(
            1,
            eng,
            Arc::clone(&queue),
            tx,
            waker,
            Some(1),
            Arc::new(ServeOptions::default()),
        );
        let d = rx.recv().unwrap();
        let WorkDone::Solve { result, .. } = &d.done else {
            panic!("expected a solve outcome, got {:?}", d.done);
        };
        match result {
            Err(ServiceError::Busy {
                reason,
                retry_after_ms,
            }) => {
                assert!(reason.contains("deadline"), "{reason}");
                assert!(*retry_after_ms >= 1);
            }
            other => panic!("expected a deadline shed, got {other:?}"),
        }
        assert_eq!(m.shed_total.get(), 1);
        queue.close();
        pool.join();
    }

    #[test]
    fn duplicate_queries_solve_once() {
        let eng = engine();
        let qs: Vec<Query> = (0..24).map(|_| Query::new("toy", 3)).collect();
        let results = BatchExecutor::new(8).execute_all(&eng, &qs);
        assert!(results.iter().all(|r| r.is_ok()));
        // Single-flight: exactly one cold solve even under concurrency;
        // all 23 other executions were served from the cache.
        let cold = results
            .iter()
            .filter(|r| !r.as_ref().unwrap().cached)
            .count();
        assert_eq!(cold, 1);
        assert_eq!(eng.cache_stats().hits, 23);
    }
}
