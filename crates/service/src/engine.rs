//! The query engine: canonicalize → cache → solve.

use std::sync::Arc;
use std::time::Instant;

use fairhms_core::registry::{self, AlgorithmParams, WarmStart};
use fairhms_core::types::{CandidateSet, CoreError, FairHmsInstance};
use fairhms_matroid::{balanced_bounds, proportional_bounds, PreparedBounds};
use fairhms_obs::sync::{lock_or_recover, wait_or_recover};

use crate::cache::{CacheStats, SolutionCache};
use crate::catalog::Catalog;
use crate::metrics::{ServiceMetrics, TelemetryConfig};
use crate::query::Query;
use crate::warmstart::{WarmConfig, WarmKey, WarmStartCache, WarmStats};
use crate::ServiceError;

/// The immutable result of solving one canonical query.
///
/// Cached and shared between identical queries, so it must be *independent
/// of how the query was executed* (worker, batch position, cache state):
/// indices are original row ids of the full dataset, and `mhr` is the
/// solving algorithm's own evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Selected rows, as 0-based indices into the *full* dataset (skyline
    /// restriction already mapped back), sorted.
    pub indices: Vec<usize>,
    /// Minimum happiness ratio as evaluated by the algorithm (exact for
    /// `IntCov`, net-estimated for `BiGreedy`; `None` if not evaluated).
    pub mhr: Option<f64>,
    /// Fairness violation count `err(S)` (0 for fair algorithms).
    pub violations: usize,
    /// Display name of the algorithm that produced the answer.
    pub alg: String,
    /// Wall-clock of the cold solve, microseconds.
    pub solve_micros: u64,
}

/// Per-stage wall-clock breakdown of one execution, nanoseconds.
///
/// Filled only when telemetry is enabled (the engine never reads the
/// clock for it otherwise); consumed by the server's slow-query log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Solution-cache consultations (summed across single-flight
    /// re-checks).
    pub cache_lookup_ns: u64,
    /// Blocked on another worker's identical in-flight solve.
    pub flight_wait_ns: u64,
    /// Warm-start tier lookup.
    pub warm_probe_ns: u64,
    /// The cold solve itself (0 for cache hits).
    pub solve_ns: u64,
}

/// One engine response: the (possibly shared) answer plus how this
/// particular execution obtained it.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The solution payload.
    pub answer: Arc<Answer>,
    /// Whether it came from the solution cache.
    pub cached: bool,
    /// Wall-clock of *this* execution, microseconds (cache hits are
    /// typically ~0; cold solves ≈ `answer.solve_micros`).
    pub micros: u64,
    /// Stage breakdown of this execution; `None` when telemetry is
    /// disabled. Purely informational — answers are bit-identical
    /// either way.
    pub stages: Option<StageTimings>,
}

/// What one catalog mutation did, as reported to the wire `MUTATED`
/// response: the post-mutation dataset shape plus the invalidation
/// fan-out (how many cached entries the delta sweep actually dropped —
/// the observable difference between delta and flat-epoch invalidation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReport {
    /// Rows in the dataset after the mutation.
    pub rows: usize,
    /// Rows on the group skyline after the mutation.
    pub skyline: usize,
    /// Whether the group skyline changed (membership or row ids).
    pub sky_changed: bool,
    /// Whether the mutation fell back to a full re-prep (a normalization
    /// invariant broke — e.g. an appended coordinate above the current
    /// column max); answers are identical either way.
    pub rebuilt: bool,
    /// Answer-cache entries dropped by the delta sweep.
    pub cache_dropped: u64,
    /// Warm-start entries dropped by the delta sweep.
    pub warm_dropped: u64,
}

/// Catalog + cache + algorithm registry, shared by all workers.
///
/// `&QueryEngine` is `Sync`: the catalog is behind a `RwLock`, the cache
/// behind sharded mutexes, and solves touch only shared immutable data —
/// so one engine serves every connection and batch worker concurrently.
pub struct QueryEngine {
    catalog: Arc<Catalog>,
    cache: SolutionCache,
    /// Second cache tier: reusable *intermediate* solver state (δ-nets,
    /// prepared bounds scans) shared by near-miss queries — `None` when
    /// the tier is disabled (see [`WarmConfig`]); answers are
    /// contractually identical either way.
    warm: Option<WarmStartCache>,
    /// Fingerprints currently being solved, for single-flight coalescing:
    /// concurrent identical queries wait for the first solver instead of
    /// stampeding the same cold solve on every worker.
    in_flight: std::sync::Mutex<std::collections::HashSet<u64>>,
    in_flight_done: std::sync::Condvar,
    /// The process-wide telemetry surface, shared with the catalog (for
    /// prep spans), the executor, and the server (see
    /// [`crate::metrics::ServiceMetrics`]).
    metrics: Arc<ServiceMetrics>,
}

/// Removes an in-flight claim even if the solve panics, so waiting
/// queries are never stranded.
struct FlightGuard<'a> {
    engine: &'a QueryEngine,
    key: u64,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        lock_or_recover(&self.engine.in_flight).remove(&self.key);
        self.engine.in_flight_done.notify_all();
    }
}

/// Feeds the wall-clock duration of one [`QueryEngine::execute`] call
/// into the always-on execute-time EWMA on drop — every outcome counts
/// (hits, cold solves, errors), because each occupies a worker for that
/// long and the EWMA exists to price `retry_after_ms` back-off advice.
struct ExecTimeNote<'a> {
    metrics: &'a ServiceMetrics,
    t: Instant,
}

impl Drop for ExecTimeNote<'_> {
    fn drop(&mut self) {
        self.metrics
            .note_execute_micros(self.t.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
}

impl QueryEngine {
    /// An engine over `catalog` with a solution cache of `cache_capacity`
    /// answers and the warm-start tier configured from the environment
    /// (enabled unless `FAIRHMS_TEST_WARMSTART=0` — see
    /// [`WarmConfig::from_env`]).
    pub fn new(catalog: Arc<Catalog>, cache_capacity: usize) -> Self {
        Self::with_warm_config(catalog, cache_capacity, WarmConfig::from_env())
    }

    /// [`QueryEngine::new`] with an explicit warm-start configuration
    /// (telemetry still from the environment).
    pub fn with_warm_config(
        catalog: Arc<Catalog>,
        cache_capacity: usize,
        warm: WarmConfig,
    ) -> Self {
        Self::with_config(catalog, cache_capacity, warm, TelemetryConfig::from_env())
    }

    /// [`QueryEngine::new`] with everything explicit.
    ///
    /// The engine owns the process's [`ServiceMetrics`] and shares it
    /// with the catalog, so dataset-preparation spans land in the same
    /// snapshot as query spans.
    pub fn with_config(
        catalog: Arc<Catalog>,
        cache_capacity: usize,
        warm: WarmConfig,
        telemetry: TelemetryConfig,
    ) -> Self {
        let metrics = Arc::new(ServiceMetrics::new(telemetry.enabled));
        catalog.set_metrics(Arc::clone(&metrics));
        Self {
            catalog,
            cache: SolutionCache::new(cache_capacity),
            warm: warm.enabled.then(|| WarmStartCache::new(warm.capacity)),
            in_flight: std::sync::Mutex::new(std::collections::HashSet::new()),
            in_flight_done: std::sync::Condvar::new(),
            metrics,
        }
    }

    /// The dataset catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The process-wide telemetry surface.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Warm-start tier counters (all zero when the tier is disabled).
    pub fn warm_stats(&self) -> WarmStats {
        self.warm
            .as_ref()
            .map(WarmStartCache::stats)
            .unwrap_or_default()
    }

    /// Whether the warm-start tier is enabled.
    pub fn warmstart_enabled(&self) -> bool {
        self.warm.is_some()
    }

    /// Registers a CSV into the catalog at runtime — the engine seam the
    /// wire `LOAD` admin verb lands on (path confinement to the server's
    /// `--load-root` has already happened by the time this runs; see
    /// [`crate::catalog::resolve_under_root`]).
    ///
    /// Replacing an existing name is safe mid-traffic: the fresh
    /// registration epoch orphans every answer cached against the old
    /// data (see [`QueryEngine::execute`]).
    pub fn load_csv(
        &self,
        name: &str,
        path: &std::path::Path,
    ) -> Result<Arc<crate::catalog::PreparedDataset>, ServiceError> {
        self.catalog.load_csv(name, path)
    }

    /// Appends one row to a cataloged dataset — the engine seam the wire
    /// `APPEND` verb lands on. The catalog applies incremental skyline
    /// maintenance and publishes the new prepared snapshot; this seam
    /// then runs the *delta* invalidation sweeps: only cached answers and
    /// warm-start state whose form digest the mutation moved are dropped
    /// (see [`SolutionCache::invalidate_stale`] /
    /// [`WarmStartCache::invalidate_stale`]); everything else keeps
    /// hitting.
    pub fn append_row(
        &self,
        name: &str,
        coords: &[f64],
        group: usize,
    ) -> Result<MutationReport, ServiceError> {
        let out = self.catalog.append_row(name, coords, group)?;
        Ok(self.finish_mutation(name, out))
    }

    /// Deletes one row (by current 0-based id) from a cataloged dataset —
    /// the engine seam for the wire `DELETE` verb. Same invalidation
    /// contract as [`QueryEngine::append_row`]; note row ids above the
    /// deleted one shift down by one, exactly as a re-load of the edited
    /// CSV would renumber them.
    pub fn delete_row(&self, name: &str, row: usize) -> Result<MutationReport, ServiceError> {
        let out = self.catalog.delete_row(name, row)?;
        Ok(self.finish_mutation(name, out))
    }

    /// Post-mutation bookkeeping shared by append/delete: count the
    /// mutation, sweep both cache tiers by digest delta, report.
    fn finish_mutation(&self, name: &str, out: crate::catalog::MutationOutcome) -> MutationReport {
        self.metrics.mutations_total.inc();
        let prep = &out.prep;
        let cache_dropped =
            self.cache
                .invalidate_stale(name, prep.epoch, prep.sky_digest, prep.full_digest);
        let warm_dropped = self.warm.as_ref().map_or(0, |w| {
            w.invalidate_stale(prep.epoch, prep.sky_digest, prep.full_digest)
        });
        self.metrics.cache_invalidated.add(cache_dropped);
        self.metrics.warm_invalidated.add(warm_dropped);
        MutationReport {
            rows: prep.dataset.len(),
            skyline: prep.skyline_rows.len(),
            sky_changed: out.sky_changed,
            rebuilt: out.rebuilt,
            cache_dropped,
            warm_dropped,
        }
    }

    /// Executes one query: canonicalize, consult the cache, otherwise
    /// dispatch through [`registry::by_name`] and cache the answer.
    ///
    /// Identical queries arriving while a solve is in flight block until
    /// it publishes (single flight) and then read the cached answer, so a
    /// burst of the same query costs one solve, not one per worker. Failed
    /// solves are not cached; each waiter retries and surfaces its own
    /// error.
    ///
    /// Stats accounting is per *query outcome*, not per lookup: one
    /// `note_hit` for every `cached=true` response, one `note_miss` per
    /// cold solve attempt — so `hit_rate` reflects solves saved even
    /// though the single-flight path may consult the cache several times.
    #[allow(clippy::disallowed_methods)] // see the R5 waivers below
    pub fn execute(&self, query: &Query) -> Result<QueryResponse, ServiceError> {
        // fairhms-lint: allow(R5) always-on execute EWMA: retry_after_ms
        // back-off advice must price worker time with telemetry off too.
        let t = Instant::now();
        self.metrics.total_queries.inc();
        let _exec_note = ExecTimeNote {
            metrics: &self.metrics,
            t,
        };
        let rec = self.metrics.recorder();
        let mut stages = StageTimings::default();
        let q = query.canonicalized();
        // Resolve the dataset first: the cache key folds in its
        // registration epoch, so answers cached against a replaced
        // dataset of the same name can never be served.
        let prep = self.catalog.get_required(&q.dataset)?;
        // The key folds the registration epoch *and* the group-generation
        // digest of the form this query solves on, so mutations re-key
        // exactly the answers they could have changed.
        let digest = prep.digest_for(q.skyline);
        let key = q.fingerprint_keyed(prep.epoch, digest);
        let hit = |answer, stages: StageTimings| {
            self.cache.note_hit();
            Ok(QueryResponse {
                answer,
                cached: true,
                micros: t.elapsed().as_micros() as u64,
                stages: rec.is_enabled().then_some(stages),
            })
        };
        // Each cache consultation and each single-flight wait records a
        // span; re-check iterations accumulate into the same stages.
        loop {
            let lookup = rec.span(&self.metrics.cache_lookup);
            let peeked = self.cache.peek(key, prep.epoch, digest, &q);
            stages.cache_lookup_ns += lookup.stop().unwrap_or(0);
            if let Some(answer) = peeked {
                return hit(answer, stages);
            }
            // Claim the solve or wait for whoever holds the claim.
            let mut in_flight = lock_or_recover(&self.in_flight);
            if in_flight.insert(key) {
                break;
            }
            let waited = rec.span(&self.metrics.flight_wait);
            while in_flight.contains(&key) {
                in_flight = wait_or_recover(&self.in_flight_done, in_flight);
            }
            stages.flight_wait_ns += waited.stop().unwrap_or(0);
            // Re-check the cache: the claim holder either published an
            // answer or failed (in which case we claim and retry).
        }
        let _guard = FlightGuard { engine: self, key };
        // The previous claim holder may have published between our cache
        // miss and our claim; without this re-check we would re-solve an
        // already-cached query cold.
        let lookup = rec.span(&self.metrics.cache_lookup);
        let peeked = self.cache.peek(key, prep.epoch, digest, &q);
        stages.cache_lookup_ns += lookup.stop().unwrap_or(0);
        if let Some(answer) = peeked {
            return hit(answer, stages);
        }
        self.cache.note_miss();
        let answer = Arc::new(self.solve_cold(&q, &prep, &mut stages)?);
        self.cache
            .insert(key, prep.epoch, digest, q, Arc::clone(&answer));
        Ok(QueryResponse {
            answer,
            cached: false,
            micros: t.elapsed().as_micros() as u64,
            stages: rec.is_enabled().then_some(stages),
        })
    }

    /// Solves `q` from scratch against the prepared dataset, consulting
    /// the warm-start tier for reusable intermediate state.
    ///
    /// Mirrors the CLI `solve` pipeline: optional skyline restriction,
    /// bounds derivation, instance validation, then the shared name→
    /// algorithm factory — so the CLI and every service front end return
    /// identical answers for identical parameters. The warm-start tier is
    /// purely advisory: every reused component's preimage is verified
    /// (the δ-net inside [`WarmStart::net_for`], the bounds scan against
    /// the candidate shape below), so a warm solve is bit-identical to a
    /// cold one — pinned by `tests/warmstart_equivalence.rs`.
    #[allow(clippy::disallowed_methods)] // see the R5 waiver inside
    fn solve_cold(
        &self,
        q: &Query,
        prep: &crate::catalog::PreparedDataset,
        stages: &mut StageTimings,
    ) -> Result<Answer, ServiceError> {
        let rec = self.metrics.recorder();
        // The candidate-set seam: the prepared (merged, shard-count-
        // independent) reduction plus the map back to original row ids —
        // both shared by refcount, never copied per query.
        let (cand, group_sizes): (CandidateSet, &[usize]) = if q.skyline {
            (
                CandidateSet::reduced(
                    Arc::clone(&prep.skyline_data),
                    Arc::clone(&prep.skyline_rows),
                ),
                &prep.skyline_group_sizes,
            )
        } else {
            (
                CandidateSet::full(Arc::clone(&prep.dataset)),
                &prep.group_sizes,
            )
        };
        let (lower, upper) = if q.balanced {
            balanced_bounds(group_sizes, q.k, q.alpha)
        } else {
            proportional_bounds(group_sizes, q.k, q.alpha)
        };

        // Warm-start lookup. `q` is canonicalized by `execute`, so
        // `q.alg` is the canonical family name; the key folds the dataset
        // epoch (state for replaced datasets is unreachable) and the
        // per-form generation digest (state for a mutated form is
        // unreachable the instant the mutation publishes, while the
        // other form's state keeps hitting).
        let warm_key = WarmKey {
            epoch: prep.epoch,
            digest: prep.digest_for(q.skyline),
            k: q.k,
            family: q.alg.clone(),
        };
        let probe = rec.span(&self.metrics.warm_probe);
        let warm_entry = self.warm.as_ref().and_then(|w| w.get(&warm_key));
        stages.warm_probe_ns = probe.stop().unwrap_or(0);

        // Prepared bounds: reuse the cached O(n) label scan when it
        // matches this candidate form's shape, else scan fresh.
        let data = cand.data();
        let mut fresh_bounds = false;
        let bounds: Arc<PreparedBounds> = match warm_entry
            .as_ref()
            .and_then(|e| e.bounds(q.skyline))
            .filter(|pb| pb.len() == data.len() && pb.num_groups() == data.num_groups())
        {
            Some(pb) => {
                if let Some(w) = &self.warm {
                    w.note_hit();
                }
                Arc::clone(pb)
            }
            None => {
                if let Some(w) = &self.warm {
                    w.note_miss();
                }
                fresh_bounds = true;
                Arc::new(
                    PreparedBounds::new(data.shared_groups(), data.num_groups())
                        .map_err(CoreError::Bounds)?,
                )
            }
        };

        // Zero-copy hand-off: the instance shares the catalog's prepared
        // allocation; concurrent solves against one dataset all read it.
        let inst = FairHmsInstance::with_bounds(Arc::clone(data), q.k, lower, upper, &bounds)?;
        let params = AlgorithmParams {
            seed: q.seed,
            ..AlgorithmParams::default()
        };
        let alg = registry::by_name(&q.alg, &params)?;

        // Thread the cached δ-net and db_max vector (if any) through the
        // solver; the context verifies the (dim, m, seed) preimage of the
        // net and the (dim, m, seed, n) preimage of the db_max values
        // before reuse, and deposits freshly computed state otherwise.
        let seeded_net = warm_entry.as_ref().and_then(|e| e.net.clone());
        let seeded_db_max = warm_entry
            .as_ref()
            .and_then(|e| e.db_max(q.skyline).cloned());
        let warm_ctx = WarmStart::with_components(seeded_net.clone(), seeded_db_max.clone());
        // fairhms-lint: allow(R5) solve_micros is a pre-telemetry wire
        // response field; this read serves it plus the gated span below.
        let t = Instant::now();
        let sol = alg.solve_with(&inst, &warm_ctx)?;
        // One clock read serves the (pre-existing) micros field, the
        // per-family histogram, and the slow-query stage breakdown.
        let solve_dur = t.elapsed();
        let solve_micros = solve_dur.as_micros() as u64;
        if rec.is_enabled() {
            let ns = solve_dur.as_nanos().min(u64::MAX as u128) as u64;
            stages.solve_ns = ns;
            // `q.alg` is canonical (execute canonicalizes), so this
            // always resolves to a registry family.
            if let Some(h) = self.metrics.solve_hist(&q.alg) {
                h.record(ns);
            }
        }

        // Per-component accounting + deposit of freshly computed state.
        if let Some(w) = &self.warm {
            let deposited_net = warm_ctx.net();
            let net_generated = match (&seeded_net, &deposited_net) {
                (_, None) => false, // algorithm never consulted the net
                (Some(old), Some(new)) => !Arc::ptr_eq(old, new),
                (None, Some(_)) => true,
            };
            if warm_ctx.net_was_reused() {
                w.note_hit();
            } else if net_generated {
                w.note_miss();
            }
            let deposited_db_max = warm_ctx.db_max();
            let db_max_generated = match (&seeded_db_max, &deposited_db_max) {
                (_, None) => false, // algorithm never consulted db_max
                (Some(old), Some(new)) => !Arc::ptr_eq(old, new),
                (None, Some(_)) => true,
            };
            if warm_ctx.db_max_was_reused() {
                w.note_hit();
            } else if db_max_generated {
                w.note_miss();
            }
            if fresh_bounds || net_generated || db_max_generated {
                let mut entry = warm_entry.as_deref().cloned().unwrap_or_default();
                entry.set_bounds(q.skyline, Arc::clone(&bounds));
                if let Some(net) = deposited_net {
                    entry.net = Some(net);
                }
                if let Some(d) = deposited_db_max {
                    entry.set_db_max(q.skyline, d);
                }
                w.insert(warm_key, entry);
            }
        }

        let violations = inst.matroid().violations(&sol.indices);
        let indices = cand.to_original(&sol.indices);
        Ok(Answer {
            indices,
            mhr: sol.mhr,
            violations,
            alg: alg.name().to_string(),
            solve_micros,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairhms_data::Dataset;

    fn engine() -> QueryEngine {
        let catalog = Arc::new(Catalog::new());
        let points = vec![
            1.0, 0.1, 0.8, 0.6, 0.2, 0.9, 0.9, 0.3, 0.4, 0.8, 0.7, 0.7, 0.6, 0.75, 0.95, 0.2,
        ];
        let data = Dataset::new("toy", 2, points, vec![0, 1, 0, 1, 0, 1, 0, 1], vec![]).unwrap();
        catalog.insert_dataset(data).unwrap();
        QueryEngine::new(catalog, 64)
    }

    #[test]
    fn cold_then_cached_bit_identical() {
        let eng = engine();
        let q = Query::new("toy", 3);
        let cold = eng.execute(&q).unwrap();
        assert!(!cold.cached);
        let warm = eng.execute(&q).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.answer.indices, warm.answer.indices);
        assert_eq!(
            cold.answer.mhr.map(f64::to_bits),
            warm.answer.mhr.map(f64::to_bits)
        );
        let st = eng.cache_stats();
        assert_eq!((st.hits, st.misses), (1, 1));
    }

    #[test]
    fn algorithm_case_shares_cache_entry() {
        let eng = engine();
        let mut a = Query::new("toy", 3);
        a.alg = "BiGreedy".into();
        let mut b = Query::new("toy", 3);
        b.alg = "bigreedy".into();
        assert!(!eng.execute(&a).unwrap().cached);
        assert!(eng.execute(&b).unwrap().cached);
    }

    #[test]
    fn skyline_answers_reference_full_dataset_rows() {
        let eng = engine();
        let mut with = Query::new("toy", 3);
        with.alg = "intcov".into();
        let mut without = with.clone();
        without.skyline = false;
        let a = eng.execute(&with).unwrap();
        let b = eng.execute(&without).unwrap();
        // IntCov is exact and the restriction lossless: the same MHR, and
        // `with`'s rows are valid row ids of the full dataset.
        let prep = eng.catalog().get("toy").unwrap();
        assert!(a.answer.indices.iter().all(|&i| i < prep.dataset.len()));
        assert!((a.answer.mhr.unwrap() - b.answer.mhr.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn replacing_a_dataset_invalidates_its_cached_answers() {
        let eng = engine();
        let mut q = Query::new("toy", 3);
        q.alg = "intcov".into();
        let first = eng.execute(&q).unwrap();
        assert!(!first.cached);
        assert!(eng.execute(&q).unwrap().cached);

        // Re-register "toy" with different data (previous best rows gone).
        let replacement = Dataset::new(
            "toy",
            2,
            vec![0.3, 0.9, 0.9, 0.2, 0.5, 0.5, 0.6, 0.6],
            vec![0, 1, 0, 1],
            vec![],
        )
        .unwrap();
        eng.catalog().insert_dataset(replacement).unwrap();

        // Same query: the stale answer must not be served.
        let fresh = eng.execute(&q).unwrap();
        assert!(!fresh.cached, "served a stale pre-replacement answer");
        let prep = eng.catalog().get("toy").unwrap();
        assert!(fresh.answer.indices.iter().all(|&i| i < prep.dataset.len()));
        assert!(eng.execute(&q).unwrap().cached, "new answer not cached");
    }

    #[test]
    fn mutations_invalidate_by_delta_not_by_dataset() {
        let eng = engine();
        let mut q_sky = Query::new("toy", 3);
        q_sky.alg = "intcov".into();
        let mut q_full = q_sky.clone();
        q_full.skyline = false;
        assert!(!eng.execute(&q_sky).unwrap().cached);
        assert!(!eng.execute(&q_full).unwrap().cached);

        // Dominated append: the skyline form is untouched, so the
        // skyline-restricted answer must still hit; the full-form answer
        // (whose candidate set grew) must not.
        let rep = eng.append_row("toy", &[0.01, 0.01], 0).unwrap();
        assert!(!rep.sky_changed && !rep.rebuilt);
        assert_eq!(rep.cache_dropped, 1, "only the full-form answer drops");
        assert!(eng.execute(&q_sky).unwrap().cached, "skyline hit lost");
        assert!(!eng.execute(&q_full).unwrap().cached);

        // Deleting that trailing dominated row: same delta.
        let rows = eng.catalog().get("toy").unwrap().dataset.len();
        let rep = eng.delete_row("toy", rows - 1).unwrap();
        assert!(!rep.sky_changed);
        assert_eq!(rep.cache_dropped, 1);
        assert!(eng.execute(&q_sky).unwrap().cached, "skyline hit lost");

        // A skyline-changing append drops both forms.
        let rep = eng.append_row("toy", &[1.0, 1.0], 1).unwrap();
        assert!(rep.sky_changed);
        assert!(!eng.execute(&q_sky).unwrap().cached);
        let m = eng.metrics();
        assert_eq!(m.mutations_total.get(), 3);
        assert!(m.cache_invalidated.get() >= 3);
    }

    #[test]
    fn mutated_answers_match_a_fresh_engine() {
        // After a mutation sequence, every algorithm's answer through the
        // live engine equals a fresh engine built over the same rows.
        let eng = engine();
        eng.append_row("toy", &[0.85, 0.85], 0).unwrap();
        eng.append_row("toy", &[0.05, 0.6], 1).unwrap();
        eng.delete_row("toy", 2).unwrap();
        let prep = eng.catalog().get("toy").unwrap();
        let fresh_cat = Arc::new(Catalog::new());
        fresh_cat
            .insert_dataset(
                Dataset::new(
                    "toy",
                    prep.dataset.dim(),
                    prep.dataset.points_flat().to_vec(),
                    prep.dataset.groups().to_vec(),
                    prep.dataset.group_names().to_vec(),
                )
                .unwrap(),
            )
            .unwrap();
        let fresh = QueryEngine::new(fresh_cat, 64);
        for alg in ["intcov", "bigreedy", "f-greedy"] {
            for skyline in [true, false] {
                let mut q = Query::new("toy", 3);
                q.alg = alg.into();
                q.skyline = skyline;
                let a = eng.execute(&q).unwrap();
                let b = fresh.execute(&q).unwrap();
                assert_eq!(a.answer.indices, b.answer.indices, "{alg} sky={skyline}");
                assert_eq!(
                    a.answer.mhr.map(f64::to_bits),
                    b.answer.mhr.map(f64::to_bits),
                    "{alg} sky={skyline}"
                );
            }
        }
    }

    #[test]
    fn typed_errors_surface() {
        let eng = engine();
        let q = Query::new("absent", 3);
        assert_eq!(
            eng.execute(&q).unwrap_err(),
            ServiceError::UnknownDataset {
                name: "absent".into()
            }
        );
        let mut bad = Query::new("toy", 3);
        bad.alg = "nope".into();
        assert!(matches!(
            eng.execute(&bad).unwrap_err(),
            ServiceError::Core(fairhms_core::types::CoreError::UnknownAlgorithm { .. })
        ));
    }
}
