//! Service-wide telemetry: the named span map of the request lifecycle.
//!
//! [`ServiceMetrics`] owns every histogram, counter, and gauge the
//! serving layer records into, built on the lock-free primitives from
//! [`fairhms_obs`]. One instance lives in the [`crate::QueryEngine`] and
//! is shared (by `Arc`) with the catalog, executor, and server, so a
//! `METRICS` wire request or a JSON snapshot sees one coherent view of
//! the whole process.
//!
//! The span map (all durations in nanoseconds):
//!
//! | name | recorded by | covers |
//! |------|-------------|--------|
//! | `server.read` | server | blocking wait for the next request line/frame (includes client idle time) |
//! | `server.decode` | server | parsing one request (text verb or binary frame) |
//! | `server.encode` | server | rendering one response through the negotiated codec |
//! | `server.flush` | server | flushing the response to the socket |
//! | `engine.cache_lookup` | engine | solution-cache consultation (hit or miss) |
//! | `engine.flight_wait` | engine | blocked on another worker's identical in-flight solve |
//! | `engine.warm_probe` | engine | warm-start tier lookup |
//! | `engine.solve.<family>` | engine | the cold solve, labeled per registry algorithm family |
//! | `catalog.shard_prep` | catalog | per-shard normalize + skyline work (one observation per shard) |
//! | `catalog.merge` | catalog | deterministic shard-skyline merge |
//! | `executor.queue_wait` | executor | batch query sat queued before a worker claimed it |
//! | `executor.run` | executor | worker executing one batch query |
//!
//! Gauges: `conn.active` (open connections), `streams.active` (streamed
//! batches in flight), `queue.depth` (solves waiting in the bounded
//! queue). Counters: `queries.total` (engine executions) and
//! `shed.total` (requests refused by admission control). The admission
//! instruments and `queries.total` record even when telemetry is
//! disabled, because `STATS` reports them. `locks.recovered` exports
//! [`fairhms_obs::sync::recovered_lock_count`]: nonzero means a worker
//! panicked while holding a lock and the poison was absorbed.
//!
//! Telemetry is gated by [`TelemetryConfig`]: when disabled, spans never
//! read the clock (a single branch per span site) and answers are
//! bit-identical either way — pinned by `tests/telemetry_equivalence.rs`.

use fairhms_core::registry::{family_index, ALGORITHM_NAMES};
use fairhms_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Recorder};

/// Whether the telemetry subsystem records.
///
/// Mirrors [`crate::WarmConfig`]'s env hook: `FAIRHMS_TEST_TELEMETRY`
/// set to `0`/`false`/`off` disables recording, so CI can run the whole
/// service suite on the no-telemetry path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether spans, gauges, and histograms record.
    pub enabled: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self { enabled: true }
    }
}

impl TelemetryConfig {
    /// The default config, overridden by `FAIRHMS_TEST_TELEMETRY`
    /// (`0`/`false`/`off` disables).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("FAIRHMS_TEST_TELEMETRY") {
            if matches!(v.to_ascii_lowercase().as_str(), "0" | "false" | "off") {
                cfg.enabled = false;
            }
        }
        cfg
    }
}

/// Every telemetry instrument in the serving layer, by name.
///
/// See the module docs for the span map. Fields are public so recording
/// sites write `metrics.recorder().span(&metrics.cache_lookup)` without
/// a lookup table on the hot path; [`ServiceMetrics::histograms`]
/// provides the name⇢instrument iteration for export.
#[derive(Debug)]
pub struct ServiceMetrics {
    recorder: Recorder,
    /// `server.read` — wait for the next request (includes client idle).
    pub read: Histogram,
    /// `server.decode` — request parse.
    pub decode: Histogram,
    /// `server.encode` — response render.
    pub encode: Histogram,
    /// `server.flush` — socket flush.
    pub flush: Histogram,
    /// `engine.cache_lookup` — solution-cache consultation.
    pub cache_lookup: Histogram,
    /// `engine.flight_wait` — blocked on an identical in-flight solve.
    pub flight_wait: Histogram,
    /// `engine.warm_probe` — warm-start tier lookup.
    pub warm_probe: Histogram,
    /// `engine.solve.<family>` — cold solves, indexed by
    /// [`fairhms_core::registry::family_index`].
    pub solve: Vec<Histogram>,
    /// `catalog.shard_prep` — per-shard prepare (one observation/shard).
    pub shard_prep: Histogram,
    /// `catalog.merge` — shard-skyline merge.
    pub merge: Histogram,
    /// `executor.queue_wait` — batch query queued before claim.
    pub queue_wait: Histogram,
    /// `executor.run` — worker executing one batch query.
    pub run: Histogram,
    /// `conn.active` — open connections.
    pub conn_active: Gauge,
    /// `streams.active` — streamed batches in flight.
    pub streams_active: Gauge,
    /// `queries.total` — engine executions. Always recorded (STATS
    /// reports it even with telemetry off).
    pub total_queries: Counter,
    /// `queue.depth` — solves waiting in the bounded global queue.
    /// Always recorded (STATS reports it even with telemetry off).
    pub queue_depth: Gauge,
    /// `shed.total` — requests refused by admission control (`ERR busy`).
    /// Always recorded (STATS reports it even with telemetry off).
    pub shed_total: Counter,
    /// `mutations.total` — catalog mutations applied (`APPEND`/`DELETE`).
    /// Always recorded (STATS reports it even with telemetry off).
    pub mutations_total: Counter,
    /// `cache.invalidated` — answer-cache entries dropped by mutation
    /// delta sweeps. Always recorded.
    pub cache_invalidated: Counter,
    /// `warm.invalidated` — warm-start entries dropped by mutation delta
    /// sweeps. Always recorded.
    pub warm_invalidated: Counter,
    /// Exponential moving average of `engine.execute` wall time in
    /// microseconds (α = 1/8), always on: the basis for the
    /// `retry_after_ms` advice carried by shed responses.
    avg_execute_us: std::sync::atomic::AtomicU64,
}

impl ServiceMetrics {
    /// Builds the full instrument set; `enabled` gates span recording.
    pub fn new(enabled: bool) -> Self {
        Self {
            recorder: if enabled {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            },
            read: Histogram::new(),
            decode: Histogram::new(),
            encode: Histogram::new(),
            flush: Histogram::new(),
            cache_lookup: Histogram::new(),
            flight_wait: Histogram::new(),
            warm_probe: Histogram::new(),
            solve: ALGORITHM_NAMES.iter().map(|_| Histogram::new()).collect(),
            shard_prep: Histogram::new(),
            merge: Histogram::new(),
            queue_wait: Histogram::new(),
            run: Histogram::new(),
            conn_active: Gauge::new(),
            streams_active: Gauge::new(),
            total_queries: Counter::new(),
            queue_depth: Gauge::new(),
            shed_total: Counter::new(),
            mutations_total: Counter::new(),
            cache_invalidated: Counter::new(),
            warm_invalidated: Counter::new(),
            avg_execute_us: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Instruments gated by [`TelemetryConfig::from_env`].
    pub fn from_env() -> Self {
        Self::new(TelemetryConfig::from_env().enabled)
    }

    /// The span gate shared by every recording site.
    pub fn recorder(&self) -> Recorder {
        self.recorder
    }

    /// Whether spans record.
    pub fn enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The per-family solve histogram for `alg` (any accepted spelling),
    /// or `None` for names outside the registry.
    pub fn solve_hist(&self, alg: &str) -> Option<&Histogram> {
        family_index(alg).map(|i| &self.solve[i])
    }

    /// Every histogram with its export name, in stable order. Names
    /// contain no whitespace, `,`, or `:` — the text wire rendering uses
    /// those as delimiters.
    pub fn histograms(&self) -> Vec<(String, &Histogram)> {
        let mut out: Vec<(String, &Histogram)> = vec![
            ("server.read".into(), &self.read),
            ("server.decode".into(), &self.decode),
            ("server.encode".into(), &self.encode),
            ("server.flush".into(), &self.flush),
            ("engine.cache_lookup".into(), &self.cache_lookup),
            ("engine.flight_wait".into(), &self.flight_wait),
            ("engine.warm_probe".into(), &self.warm_probe),
        ];
        for (name, hist) in ALGORITHM_NAMES.iter().zip(self.solve.iter()) {
            out.push((format!("engine.solve.{name}"), hist));
        }
        out.extend([
            ("catalog.shard_prep".into(), &self.shard_prep),
            ("catalog.merge".into(), &self.merge),
            ("executor.queue_wait".into(), &self.queue_wait),
            ("executor.run".into(), &self.run),
        ]);
        out
    }

    /// Every counter/gauge with its export name, as `u64` levels (gauges
    /// are instantaneous and never negative here).
    pub fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("conn.active".into(), self.conn_active.get().max(0) as u64),
            (
                "streams.active".into(),
                self.streams_active.get().max(0) as u64,
            ),
            ("queries.total".into(), self.total_queries.get()),
            ("queue.depth".into(), self.queue_depth.get().max(0) as u64),
            ("shed.total".into(), self.shed_total.get()),
            ("mutations.total".into(), self.mutations_total.get()),
            ("cache.invalidated".into(), self.cache_invalidated.get()),
            ("warm.invalidated".into(), self.warm_invalidated.get()),
            (
                "locks.recovered".into(),
                fairhms_obs::sync::recovered_lock_count(),
            ),
        ]
    }

    /// Folds one `engine.execute` wall time into the always-on EWMA that
    /// backs [`ServiceMetrics::retry_after_ms`]. One atomic store per
    /// query; never gated by telemetry (shed advice must work with
    /// telemetry off).
    pub fn note_execute_micros(&self, micros: u64) {
        use std::sync::atomic::Ordering;
        // ordering: EWMA cell; a racing lost update only skews back-off
        // advice by one sample, no data is published through it.
        let prev = self.avg_execute_us.load(Ordering::Relaxed);
        let next = if prev == 0 {
            micros.max(1)
        } else {
            ((prev * 7 + micros) / 8).max(1)
        };
        // ordering: see the load above — advisory EWMA cell.
        self.avg_execute_us.store(next, Ordering::Relaxed);
    }

    /// The current `engine.execute` EWMA in microseconds (0 until the
    /// first query completes).
    pub fn avg_execute_micros(&self) -> u64 {
        self.avg_execute_us
            // ordering: advisory EWMA read; staleness only skews advice.
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Back-off advice for a shed response: roughly how long the work
    /// already admitted ahead of the client will take to drain
    /// (`(queued / workers + 1) × avg execute time`), clamped to
    /// `[1 ms, 30 s]` so the advice is always positive and never absurd.
    pub fn retry_after_ms(&self, queued: usize, workers: usize) -> u64 {
        let avg_us = self.avg_execute_micros().max(1);
        let rounds = (queued as u64) / (workers.max(1) as u64) + 1;
        (rounds.saturating_mul(avg_us) / 1000).clamp(1, 30_000)
    }

    /// Point-in-time export of every **non-empty** histogram plus all
    /// counters — the payload behind the `METRICS` wire verb and the
    /// JSON snapshot writer. Empty histograms are elided so the wire
    /// line stays proportional to actual activity.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: self.enabled(),
            counters: self.counters(),
            histograms: self
                .histograms()
                .into_iter()
                .filter_map(|(name, h)| {
                    let s = h.snapshot();
                    (s.count() > 0).then_some((name, s))
                })
                .collect(),
        }
    }
}

/// A coherent point-in-time view of [`ServiceMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Whether span recording was enabled when captured.
    pub enabled: bool,
    /// Counter and gauge levels, by export name.
    pub counters: Vec<(String, u64)>,
    /// Non-empty histograms, by export name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object:
    /// `{"enabled":…,"counters":{…},"histograms":{name:{count,sum,mean,p50,p90,p99,max},…}}`.
    /// Times are nanoseconds. This is the format the bench harness
    /// embeds in `BENCH_service.json`.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .fold(fairhms_obs::json::Obj::new(), |o, (name, v)| {
                o.u64(name, *v)
            })
            .build();
        let histograms = self
            .histograms
            .iter()
            .fold(fairhms_obs::json::Obj::new(), |o, (name, s)| {
                o.raw(name, &s.to_json())
            })
            .build();
        fairhms_obs::json::Obj::new()
            .raw("enabled", if self.enabled { "true" } else { "false" })
            .raw("counters", &counters)
            .raw("histograms", &histograms)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_names_are_wire_safe() {
        let m = ServiceMetrics::new(true);
        for (name, _) in m.histograms() {
            assert!(
                !name.contains([' ', '\t', ',', ':', '\n']),
                "histogram name {name:?} collides with wire delimiters"
            );
        }
        for (name, _) in m.counters() {
            assert!(
                !name.contains([' ', '\t', ',', ':', '\n']),
                "counter name {name:?} collides with wire delimiters"
            );
        }
    }

    #[test]
    fn solve_hist_resolves_aliases_to_one_family() {
        let m = ServiceMetrics::new(true);
        let a = m.solve_hist("BiGreedy+").unwrap();
        a.record(7);
        let b = m.solve_hist("bigreedyplus").unwrap();
        assert_eq!(b.count(), 1, "alias did not share the family histogram");
        assert!(m.solve_hist("nope").is_none());
    }

    #[test]
    fn snapshot_elides_empty_histograms() {
        let m = ServiceMetrics::new(true);
        m.cache_lookup.record(100);
        let snap = m.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "engine.cache_lookup");
        assert!(snap.enabled);
        // counters always present
        assert!(snap.counters.iter().any(|(n, _)| n == "queries.total"));
    }

    #[test]
    fn disabled_metrics_still_count_queries() {
        let m = ServiceMetrics::new(false);
        m.total_queries.inc();
        assert!(!m.enabled());
        let snap = m.snapshot();
        assert!(!snap.enabled);
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "queries.total" && *v == 1));
    }

    #[test]
    fn retry_advice_tracks_the_execute_ewma_and_stays_clamped() {
        let m = ServiceMetrics::new(false);
        // No observations yet: advice still ≥ 1 ms.
        assert_eq!(m.retry_after_ms(0, 4), 1);
        m.note_execute_micros(8_000); // first sample seeds the EWMA
        assert_eq!(m.avg_execute_micros(), 8_000);
        m.note_execute_micros(8_000);
        assert_eq!(m.avg_execute_micros(), 8_000);
        // 8 ms per solve, 8 queued over 4 workers → 3 rounds → 24 ms.
        assert_eq!(m.retry_after_ms(8, 4), 24);
        // Advice is clamped to 30 s even under absurd backlogs.
        m.note_execute_micros(u64::MAX / 16);
        assert_eq!(m.retry_after_ms(1_000_000, 1), 30_000);
        // Admission instruments record with telemetry disabled.
        m.shed_total.inc();
        for _ in 0..3 {
            m.queue_depth.inc();
        }
        let c = m.counters();
        assert!(c.iter().any(|(n, v)| n == "shed.total" && *v == 1));
        assert!(c.iter().any(|(n, v)| n == "queue.depth" && *v == 3));
    }

    #[test]
    fn snapshot_json_shape() {
        let m = ServiceMetrics::new(true);
        m.read.record(50);
        let j = m.snapshot().to_json();
        assert!(j.starts_with("{\"enabled\":true"));
        assert!(j.contains("\"counters\":{"));
        assert!(j.contains("\"server.read\":{\"count\":1"));
    }
}
