//! The readiness-driven front end: one `poll(2)` loop, many connections.
//!
//! Selected via [`crate::server::FrontendKind::Event`]. Where the
//! threaded front end spends one blocked OS thread per connection, this
//! loop owns every socket at once:
//!
//! * a single thread polls the listener, a self-pipe
//!   ([`crate::reactor`]), and every connection for readiness — an idle
//!   connection costs one poll-set entry, not a thread, and shutdown is
//!   a wake, not a 200 ms timeout expiry;
//! * each connection is a small state machine ([`Conn`]) that buffers
//!   raw bytes, carves them into request lines (batch bodies included),
//!   and queues encoded response frames for readiness-driven writes —
//!   one slow or byte-at-a-time client can never stall another;
//! * solves never run on the loop thread: they are admitted into a
//!   bounded `SolveQueue` and executed by a resident `WorkerPool`,
//!   whose completions come back over a channel followed by a wake. The
//!   heavy `LOAD` admin verb (disk read + dataset preparation) rides the
//!   same pool — bypassing the queue bound, since control verbs are
//!   never shed — while the issuing connection parks its input behind a
//!   barrier so pipelined requests keep their sequential order; light
//!   control verbs (PING, STATS, …) answer inline on the loop.
//!
//! Admission control happens at the loop, where load first becomes
//! visible: the connection cap ([`ServeOptions::max_conns`]), the
//! per-connection quotas ([`ServeOptions::max_inflight_queries`],
//! [`ServeOptions::max_conn_batches`]), the server-wide stream gate, and
//! the solve-queue bound all shed with a typed `ERR busy` carrying
//! `retry_after_ms` advice priced from the execute-time EWMA
//! ([`crate::metrics::ServiceMetrics::retry_after_ms`]). Every shed
//! increments `shed.total`.
//!
//! The wire contract is bit-identical to the threaded front end (pinned
//! by `tests/frontend_equivalence.rs`): the protocol mirror rules —
//! line/batch size limits, lossy UTF-8 per complete line, batch bodies
//! consumed fully before erroring, HELLO acknowledged in the previous
//! codec — are shared with [`crate::server`] or reimplemented here to
//! the letter. Responses per connection are delivered in request order
//! (streamed batch frames in completion order within their batch slot),
//! exactly as a sequential connection thread would produce them.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use crate::codec::CodecKind;
use crate::engine::QueryEngine;
use crate::executor::{SolveDone, SolveJob, SolveQueue, WorkDone, WorkItem, WorkerPool};
use crate::metrics::ServiceMetrics;
use crate::protocol::{self, Request, Response};
use crate::query::Query;
use crate::reactor::{poll, PollFd, WakePipe, Waker, POLLIN, POLLOUT};
use crate::server::{
    self, ServeOptions, StreamGate, StreamPermit, MAX_BATCH, MAX_BATCH_BYTES, MAX_LINE_BYTES,
};
use crate::ServiceError;

/// Per-`read(2)` scratch size; the in-buffer grows only as a line needs.
const READ_CHUNK: usize = 16 * 1024;

/// Output-buffer cap per connection. A client that stops reading while
/// requesting work accumulates frames here; past the cap the connection
/// is dropped rather than growing server memory without bound.
const MAX_OUTBUF_BYTES: usize = 64 << 20;

/// Everything the connection state machines need besides their socket.
struct Shared {
    engine: Arc<QueryEngine>,
    metrics: Arc<ServiceMetrics>,
    queue: Arc<SolveQueue>,
    gate: StreamGate,
    opts: Arc<ServeOptions>,
    workers: usize,
    started: Instant,
}

impl Shared {
    /// The busy error for a full solve queue.
    fn queue_full_busy(&self) -> ServiceError {
        self.metrics.shed_total.inc();
        ServiceError::Busy {
            reason: format!("solve queue full (depth {})", self.opts.queue_depth),
            retry_after_ms: self
                .metrics
                .retry_after_ms(self.queue.depth(), self.workers),
        }
    }
}

/// Encodes one response with a codec of `kind`, falling back exactly as
/// the threaded path does (see [`server::encode_into`]).
fn encode(kind: CodecKind, resp: &Response, m: &ServiceMetrics) -> Vec<u8> {
    let mut frame = Vec::new();
    let codec = kind.new_codec();
    if server::encode_into(codec.as_ref(), &mut frame, resp, m).is_err() {
        frame.clear(); // not encodable and the fallback failed: drop the frame
    }
    frame
}

/// An in-progress `BATCH` body: the header arrived, `n` lines have not.
struct BatchCollect {
    n: usize,
    stream: bool,
    lines: Vec<String>,
    bytes: usize,
}

/// A batch admitted to the solve queue, collecting its answers.
struct BatchEntry {
    ticket: u64,
    kind: CodecKind,
    n: usize,
    stream: bool,
    header_sent: bool,
    completed: usize,
    /// `stream=true`: encoded `seq`-tagged frames in completion order,
    /// not yet moved to the out-buffer.
    frames: VecDeque<Vec<u8>>,
    /// `stream=false`: encoded frames by request index, emitted together
    /// once the batch completes.
    slots: Vec<Option<Vec<u8>>>,
    /// Holds the server-wide stream-gate slot for the batch's lifetime;
    /// dropped (released) with the entry — including when the connection
    /// dies mid-batch.
    _permit: Option<StreamPermit>,
}

impl BatchEntry {
    fn done(&self) -> bool {
        self.completed == self.n && self.frames.is_empty()
    }
}

/// One response-order FIFO entry. A sequential connection thread answers
/// requests in arrival order; this FIFO reproduces that order under
/// pipelining: an entry's frames reach the out-buffer only once every
/// earlier entry has fully delivered.
enum Entry {
    /// Already-encoded frame(s): light control verbs, HELLO acks,
    /// protocol errors, admission sheds.
    Ready(Vec<u8>),
    /// A single `QUERY` awaiting its solve. `kind` snapshots the codec
    /// at admit time, so a pipelined `HELLO` behind it re-codes only
    /// what follows.
    Single {
        ticket: u64,
        kind: CodecKind,
        done: Option<Vec<u8>>,
    },
    /// A heavy control verb (`LOAD`) executing on the worker pool.
    Control {
        ticket: u64,
        kind: CodecKind,
        done: Option<Vec<u8>>,
    },
    /// A batch awaiting (some of) its slots.
    Batch(BatchEntry),
}

/// What processing a connection's input decided.
enum Outcome {
    Continue,
    /// A `SHUTDOWN` request: stop the server once the `OK bye` flushes.
    Shutdown,
}

/// One connection's full state. Dropping a `Conn` releases everything it
/// holds: the socket, any stream permits (via its pending entries), and
/// the `conn.active` gauge level.
struct Conn {
    stream: TcpStream,
    slot: usize,
    generation: u64,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_written: usize,
    /// Response codec for *newly arriving* requests; entries snapshot the
    /// kind at parse time, so a pipelined `HELLO` re-codes only what
    /// follows it.
    kind: CodecKind,
    pending: VecDeque<Entry>,
    collecting: Option<BatchCollect>,
    inflight_singles: usize,
    active_batches: usize,
    /// In-flight `Entry::Control` jobs. While nonzero the connection
    /// stops carving input (and drops read interest, so TCP backpressure
    /// bounds buffering): requests pipelined behind a `LOAD` — typically
    /// queries against the dataset being loaded — are admitted only once
    /// it completes, exactly as the sequential threaded path orders them.
    control_inflight: usize,
    next_ticket: u64,
    /// Set by `SHUTDOWN` and by peer EOF: stop reading; the connection is
    /// reaped once its out-buffer drains *and* no admitted work is still
    /// pending (everything received before a FIN still answers).
    closing: bool,
    /// Set by `SHUTDOWN` only: unprocessed input is discarded rather
    /// than resumed (a FIN leaves buffered complete lines processable).
    discard_input: bool,
    metrics: Arc<ServiceMetrics>,
}

impl Drop for Conn {
    fn drop(&mut self) {
        // Counterpart of the inc at accept; always-on because the gauge
        // backs the STATS `conns_open` field.
        self.metrics.conn_active.dec();
    }
}

impl Conn {
    fn new(stream: TcpStream, slot: usize, generation: u64, metrics: Arc<ServiceMetrics>) -> Conn {
        Conn {
            stream,
            slot,
            generation,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_written: 0,
            kind: CodecKind::Text,
            pending: VecDeque::new(),
            collecting: None,
            inflight_singles: 0,
            active_batches: 0,
            control_inflight: 0,
            next_ticket: 0,
            closing: false,
            discard_input: false,
            metrics,
        }
    }

    fn has_output(&self) -> bool {
        self.out_written < self.outbuf.len()
    }

    fn take_ticket(&mut self) -> u64 {
        self.next_ticket += 1;
        self.next_ticket
    }

    /// Encodes `resp` with the connection's *current* codec and appends
    /// it as a ready FIFO entry.
    fn push_ready(&mut self, resp: &Response, sh: &Shared) {
        let frame = encode(self.kind, resp, &sh.metrics);
        self.pending.push_back(Entry::Ready(frame));
    }

    /// Drains the socket into the in-buffer and processes every complete
    /// line. `Err(())` means the connection must be dropped (peer closed,
    /// I/O error, or an abuse limit hit — same conditions that make the
    /// threaded path return an error and drop).
    fn on_readable(&mut self, sh: &Shared) -> Result<Outcome, ()> {
        let mut buf = [0u8; READ_CHUNK];
        let mut saw_eof = false;
        loop {
            match (&self.stream).read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => self.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        let outcome = self.process_input(sh)?;
        if saw_eof {
            // A half-written request dies with the peer (the threaded
            // path sees EOF mid-line and returns), but everything already
            // admitted still answers into the out-buffer; close once the
            // pending FIFO and the out-buffer have both drained.
            self.closing = true;
        }
        Ok(outcome)
    }

    /// Carves buffered bytes into complete lines and handles each.
    /// Stops early (leaving the tail buffered) while a control barrier
    /// is up; the event loop resumes it once the barrier lifts.
    fn process_input(&mut self, sh: &Shared) -> Result<Outcome, ()> {
        let mut outcome = Outcome::Continue;
        let mut start = 0usize;
        while !self.discard_input && self.control_inflight == 0 {
            let Some(pos) = self.inbuf[start..].iter().position(|&b| b == b'\n') else {
                break;
            };
            let end = start + pos + 1;
            // Mirror of the threaded per-line limit (which counts the
            // terminator): an oversized line drops the connection.
            if end - start > MAX_LINE_BYTES {
                return Err(());
            }
            let raw = self.inbuf[start..end].to_vec();
            start = end;
            if let Outcome::Shutdown = self.handle_line(&raw, sh)? {
                outcome = Outcome::Shutdown;
            }
        }
        // A partial line past the limit can never complete legally. (A
        // tail holding complete lines — parked behind a control barrier
        // or a SHUTDOWN — is exempt: it is bounded by what the socket
        // buffer held, not open-ended.)
        let rest = &self.inbuf[start..];
        if rest.len() > MAX_LINE_BYTES && !rest.contains(&b'\n') {
            return Err(());
        }
        self.inbuf.drain(..start);
        Ok(outcome)
    }

    /// Handles one complete raw line (terminator included): either the
    /// next body line of a collecting batch, or a top-level request.
    fn handle_line(&mut self, raw: &[u8], sh: &Shared) -> Result<Outcome, ()> {
        if let Some(mut c) = self.collecting.take() {
            c.bytes += raw.len();
            if c.bytes > MAX_BATCH_BYTES {
                // Connection-fatal, like the threaded path: dropping
                // mid-batch desynchronizes the connection anyway.
                return Err(());
            }
            c.lines
                .push(String::from_utf8_lossy(raw).trim().to_string());
            if c.lines.len() == c.n {
                self.finish_batch(c, sh);
            } else {
                self.collecting = Some(c);
            }
            return Ok(Outcome::Continue);
        }
        // Decode the complete line exactly once (multi-byte UTF-8 split
        // across reads is whole again by now).
        let decode_span = sh.metrics.recorder().span(&sh.metrics.decode);
        let decoded = String::from_utf8_lossy(raw);
        let trimmed = decoded.trim();
        if trimmed.is_empty() {
            return Ok(Outcome::Continue);
        }
        let parsed = protocol::parse_request(trimmed);
        drop(decode_span);
        match parsed {
            Err(e) => self.push_ready(&Response::error(&e), sh),
            Ok(Request::Hello {
                version,
                codec: kind,
            }) => {
                // Acknowledge through the *previous* codec, then swap —
                // the client reads the ack before switching.
                let ack = Response::Hello {
                    version,
                    codec: kind,
                };
                self.push_ready(&ack, sh);
                self.kind = kind;
            }
            Ok(Request::Shutdown) => {
                self.push_ready(&Response::Bye, sh);
                self.closing = true;
                self.discard_input = true;
                return Ok(Outcome::Shutdown);
            }
            Ok(Request::Query(q)) => self.admit_single(q, sh),
            Ok(Request::Load { name, path }) => {
                self.admit_control(WorkItem::Load { name, path }, sh)
            }
            Ok(Request::Append { name, row, group }) => {
                self.admit_control(WorkItem::Append { name, row, group }, sh)
            }
            Ok(Request::Delete { name, row }) => {
                self.admit_control(WorkItem::Delete { name, row }, sh)
            }
            Ok(Request::Batch { n, stream }) => {
                if n > MAX_BATCH {
                    let e =
                        ServiceError::Protocol(format!("batch size {n} exceeds limit {MAX_BATCH}"));
                    self.push_ready(&Response::error(&e), sh);
                } else if n == 0 {
                    self.finish_batch(
                        BatchCollect {
                            n: 0,
                            stream,
                            lines: Vec::new(),
                            bytes: 0,
                        },
                        sh,
                    );
                } else {
                    self.collecting = Some(BatchCollect {
                        n,
                        stream,
                        lines: Vec::with_capacity(n),
                        bytes: 0,
                    });
                }
            }
            Ok(req) => {
                let resp =
                    server::control_response(&sh.engine, sh.workers, &sh.opts, sh.started, &req)
                        .expect("non-control verbs are matched above");
                self.push_ready(&resp, sh);
            }
        }
        Ok(Outcome::Continue)
    }

    /// Admits one single `QUERY`: per-connection quota, then the bounded
    /// solve queue; either refusal sheds with typed retry advice.
    #[allow(clippy::disallowed_methods)] // queue-age stamp; see R5 waiver inside
    fn admit_single(&mut self, q: Box<Query>, sh: &Shared) {
        let m = &*sh.metrics;
        if self.inflight_singles >= sh.opts.max_inflight_queries {
            m.shed_total.inc();
            let busy = ServiceError::Busy {
                reason: format!(
                    "{} queries in flight on this connection (limit {})",
                    self.inflight_singles, sh.opts.max_inflight_queries
                ),
                retry_after_ms: m.retry_after_ms(sh.queue.depth(), sh.workers),
            };
            self.push_ready(&Response::error(&busy), sh);
            return;
        }
        let ticket = self.take_ticket();
        let job = SolveJob {
            conn: self.slot,
            generation: self.generation,
            ticket,
            batch_index: None,
            work: WorkItem::Solve(q),
            // fairhms-lint: allow(R5) admission-control deadline stamp:
            // queue-age shedding must work with telemetry off.
            enqueued: Instant::now(),
        };
        match sh.queue.try_push(job) {
            Ok(()) => {
                self.pending.push_back(Entry::Single {
                    ticket,
                    kind: self.kind,
                    done: None,
                });
                self.inflight_singles += 1;
            }
            Err(_shed) => {
                let busy = sh.queue_full_busy();
                self.push_ready(&Response::error(&busy), sh);
            }
        }
    }

    /// Admits a heavy control verb (`LOAD`, `APPEND`, `DELETE`) to the
    /// worker pool: disk reads and catalog mutations must not stall every
    /// connection on the loop thread. The job bypasses the queue bound
    /// (control verbs are never shed) and raises the connection's input
    /// barrier ([`Conn::control_inflight`]) until it completes — so a
    /// pipelined mutate→query sequence keeps its sequential semantics.
    #[allow(clippy::disallowed_methods)] // queue-age stamp; see R5 waiver inside
    fn admit_control(&mut self, work: WorkItem, sh: &Shared) {
        let ticket = self.take_ticket();
        let job = SolveJob {
            conn: self.slot,
            generation: self.generation,
            ticket,
            batch_index: None,
            work,
            // fairhms-lint: allow(R5) admission-control deadline stamp:
            // queue-age shedding must work with telemetry off.
            enqueued: Instant::now(),
        };
        match sh.queue.push_control(job) {
            Ok(()) => {
                self.pending.push_back(Entry::Control {
                    ticket,
                    kind: self.kind,
                    done: None,
                });
                self.control_inflight += 1;
            }
            Err(job) => {
                // Only a closed queue refuses control jobs — the server
                // is tearing down; answer inline, nobody left to stall.
                let resp = job.work.run_control(&sh.engine, &sh.opts);
                self.push_ready(&resp, sh);
            }
        }
    }

    /// Admits a fully collected batch body: parse, per-connection batch
    /// quota, stream gate (streamed only), then per-slot queue admission
    /// — a full queue sheds individual slots, never the whole batch, so
    /// the client always receives exactly `n` answer frames.
    #[allow(clippy::disallowed_methods)] // queue-age stamp; see R5 waiver inside
    fn finish_batch(&mut self, c: BatchCollect, sh: &Shared) {
        let m = &*sh.metrics;
        let queries = match server::parse_batch_lines(&c.lines) {
            Ok(qs) => qs,
            Err(e) => {
                self.push_ready(&Response::error(&e), sh);
                return;
            }
        };
        if self.active_batches >= sh.opts.max_conn_batches {
            m.shed_total.inc();
            let busy = ServiceError::Busy {
                reason: format!(
                    "{} batches in flight on this connection (limit {})",
                    self.active_batches, sh.opts.max_conn_batches
                ),
                retry_after_ms: m.retry_after_ms(sh.queue.depth(), sh.workers),
            };
            self.push_ready(&Response::error(&busy), sh);
            return;
        }
        let permit = if c.stream {
            match sh.gate.try_acquire(&sh.metrics) {
                Ok(p) => Some(p),
                Err((active, limit)) => {
                    let busy = server::gate_busy(m, active, limit, sh.queue.depth(), sh.workers);
                    self.push_ready(&Response::error(&busy), sh);
                    return;
                }
            }
        } else {
            None
        };
        let ticket = self.take_ticket();
        let n = queries.len();
        let mut entry = BatchEntry {
            ticket,
            kind: self.kind,
            n,
            stream: c.stream,
            header_sent: false,
            completed: 0,
            frames: VecDeque::new(),
            slots: if c.stream {
                Vec::new()
            } else {
                (0..n).map(|_| None).collect()
            },
            _permit: permit,
        };
        for (i, q) in queries.into_iter().enumerate() {
            let job = SolveJob {
                conn: self.slot,
                generation: self.generation,
                ticket,
                batch_index: Some(i),
                work: WorkItem::Solve(Box::new(q)),
                // fairhms-lint: allow(R5) admission-control deadline stamp:
                // queue-age shedding must work with telemetry off.
                enqueued: Instant::now(),
            };
            if sh.queue.try_push(job).is_err() {
                let busy = sh.queue_full_busy();
                let seq = if c.stream { Some(i as u64) } else { None };
                let frame = encode(self.kind, &Response::error_at(seq, &busy), m);
                if c.stream {
                    entry.frames.push_back(frame);
                } else {
                    entry.slots[i] = Some(frame);
                }
                entry.completed += 1;
            }
        }
        self.active_batches += 1;
        self.pending.push_back(Entry::Batch(entry));
    }

    /// Routes one completed job into its FIFO entry.
    fn complete(&mut self, done: SolveDone, m: &ServiceMetrics) {
        // Linear scan: connections hold at most quota-bounded entries.
        for entry in self.pending.iter_mut() {
            match entry {
                Entry::Single {
                    ticket,
                    kind,
                    done: slot,
                } if *ticket == done.ticket => {
                    debug_assert!(done.batch_index.is_none());
                    let WorkDone::Solve { result, .. } = &done.done else {
                        debug_assert!(false, "single entries only admit solves");
                        return;
                    };
                    *slot = Some(encode(*kind, &Response::from_result(None, result), m));
                    return;
                }
                Entry::Control {
                    ticket,
                    kind,
                    done: slot,
                } if *ticket == done.ticket => {
                    let WorkDone::Control(resp) = &done.done else {
                        debug_assert!(false, "control entries only admit control verbs");
                        return;
                    };
                    *slot = Some(encode(*kind, resp, m));
                    // Lift the input barrier; the event loop resumes any
                    // lines parked behind it this same iteration.
                    self.control_inflight -= 1;
                    return;
                }
                Entry::Batch(b) if b.ticket == done.ticket => {
                    let Some(i) = done.batch_index else { return };
                    let WorkDone::Solve { result, .. } = &done.done else {
                        debug_assert!(false, "batch slots only admit solves");
                        return;
                    };
                    let seq = b.stream.then_some(i as u64);
                    let frame = encode(b.kind, &Response::from_result(seq, result), m);
                    if b.stream {
                        b.frames.push_back(frame);
                    } else {
                        b.slots[i] = Some(frame);
                    }
                    b.completed += 1;
                    return;
                }
                _ => {}
            }
        }
        // No matching entry: the completion raced a connection teardown
        // path that already dropped the entry; nothing to deliver.
    }

    /// Moves every deliverable frame from the FIFO into the out-buffer,
    /// preserving request order across entries.
    fn pump(&mut self, sh: &Shared) {
        loop {
            let Some(head) = self.pending.front_mut() else {
                return;
            };
            match head {
                Entry::Ready(_) => {
                    let Some(Entry::Ready(bytes)) = self.pending.pop_front() else {
                        unreachable!()
                    };
                    self.outbuf.extend_from_slice(&bytes);
                }
                Entry::Single { done: Some(_), .. } => {
                    let Some(Entry::Single {
                        done: Some(bytes), ..
                    }) = self.pending.pop_front()
                    else {
                        unreachable!()
                    };
                    self.outbuf.extend_from_slice(&bytes);
                    self.inflight_singles -= 1;
                }
                Entry::Single { done: None, .. } => return,
                Entry::Control { done: Some(_), .. } => {
                    let Some(Entry::Control {
                        done: Some(bytes), ..
                    }) = self.pending.pop_front()
                    else {
                        unreachable!()
                    };
                    self.outbuf.extend_from_slice(&bytes);
                }
                Entry::Control { done: None, .. } => return,
                Entry::Batch(b) => {
                    if !b.header_sent {
                        let header = Response::BatchHeader {
                            n: b.n,
                            stream: b.stream,
                        };
                        let frame = encode(b.kind, &header, &sh.metrics);
                        self.outbuf.extend_from_slice(&frame);
                        b.header_sent = true;
                    }
                    if b.stream {
                        while let Some(f) = b.frames.pop_front() {
                            self.outbuf.extend_from_slice(&f);
                        }
                    } else if b.completed == b.n {
                        for slot in b.slots.iter_mut() {
                            let bytes = slot.take().expect("completed batch slot missing");
                            self.outbuf.extend_from_slice(&bytes);
                        }
                    }
                    if b.done() {
                        self.pending.pop_front();
                        self.active_batches -= 1;
                    } else {
                        return;
                    }
                }
            }
        }
    }

    /// Writes as much buffered output as the socket accepts right now.
    /// `Err(())` drops the connection (write failure or a client so slow
    /// its buffered output exceeds [`MAX_OUTBUF_BYTES`]).
    fn try_flush(&mut self) -> Result<(), ()> {
        while self.has_output() {
            match (&self.stream).write(&self.outbuf[self.out_written..]) {
                Ok(0) => return Err(()),
                Ok(n) => self.out_written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if self.out_written == self.outbuf.len() {
            self.outbuf.clear();
            self.out_written = 0;
        } else if self.out_written > MAX_OUTBUF_BYTES / 2 {
            self.outbuf.drain(..self.out_written);
            self.out_written = 0;
        }
        if self.outbuf.len() - self.out_written > MAX_OUTBUF_BYTES {
            return Err(());
        }
        Ok(())
    }
}

/// Accepts every pending connection, enforcing the connection cap with a
/// best-effort text busy line (a fresh connection has not negotiated a
/// codec, so text is the one encoding it must understand).
fn accept_ready(
    listener: &TcpListener,
    conns: &mut Vec<Option<Conn>>,
    open: &mut usize,
    next_generation: &mut u64,
    sh: &Shared,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(true).ok();
                stream.set_nodelay(true).ok();
                if *open >= sh.opts.max_conns {
                    sh.metrics.shed_total.inc();
                    let busy = ServiceError::Busy {
                        reason: format!("too many connections (limit {})", sh.opts.max_conns),
                        retry_after_ms: sh.metrics.retry_after_ms(sh.queue.depth(), sh.workers),
                    };
                    let frame = encode(CodecKind::Text, &Response::error(&busy), &sh.metrics);
                    let _ = (&stream).write(&frame);
                    continue; // dropped: the cap exists to bound state
                }
                sh.metrics.conn_active.inc();
                *next_generation += 1;
                let slot = match conns.iter().position(Option::is_none) {
                    Some(s) => s,
                    None => {
                        conns.push(None);
                        conns.len() - 1
                    }
                };
                conns[slot] = Some(Conn::new(
                    stream,
                    slot,
                    *next_generation,
                    Arc::clone(&sh.metrics),
                ));
                *open += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) => {
                // Same policy as the threaded accept loop: transient
                // failures must not take the service down.
                eprintln!("fairhms-service: accept error (continuing): {e}");
                break;
            }
        }
    }
}

/// The event loop. Runs until `stop` is observed (set externally and
/// signalled through the waker, or by a client `SHUTDOWN`); on exit it
/// closes the solve queue and joins the worker pool.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::disallowed_methods)] // shutdown drain deadline; see R5 waiver inside
pub(crate) fn run(
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    workers: usize,
    stop: Arc<AtomicBool>,
    opts: Arc<ServeOptions>,
    started: Instant,
    pipe: WakePipe,
    waker: Waker,
) {
    let metrics = Arc::clone(engine.metrics());
    let workers = workers.max(1);
    let queue = SolveQueue::new(opts.queue_depth, Arc::clone(&metrics));
    let (done_tx, done_rx) = mpsc::channel::<SolveDone>();
    let pool = WorkerPool::spawn(
        workers,
        Arc::clone(&engine),
        Arc::clone(&queue),
        done_tx,
        waker,
        opts.queue_deadline_ms,
        Arc::clone(&opts),
    );
    let gate = StreamGate::new(opts.max_stream_batches);
    let sh = Shared {
        engine,
        metrics,
        queue: Arc::clone(&queue),
        gate,
        opts,
        workers,
        started,
    };
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut open = 0usize;
    let mut next_generation = 0u64;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut slots: Vec<usize> = Vec::new();

    // ordering: stop flag is a rare, correctness-critical edge; SeqCst
    // keeps shutdown visible without reasoning about weaker pairs.
    while !stop.load(Ordering::SeqCst) {
        // (Re)build the poll set: wake pipe, listener, then every open
        // connection — read interest unless closing, write interest when
        // output is buffered.
        fds.clear();
        slots.clear();
        fds.push(PollFd::new(pipe.fd(), POLLIN));
        fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        for (slot, c) in conns.iter().enumerate() {
            let Some(c) = c else { continue };
            let mut events = 0i16;
            // No read interest while closing, or while a control barrier
            // parks this connection's input (TCP backpressure bounds what
            // the client can buffer at us in the meantime).
            if !c.closing && c.control_inflight == 0 {
                events |= POLLIN;
            }
            if c.has_output() {
                events |= POLLOUT;
            }
            // `events` may be 0 — e.g. a closing connection whose
            // admitted solves are still in flight. The completion wakes
            // the loop via the self-pipe, and POLLERR/HUP are delivered
            // regardless of interest.
            fds.push(PollFd::new(c.stream.as_raw_fd(), events));
            slots.push(slot);
        }
        // Block indefinitely: every state change that matters arrives as
        // readiness or as a self-pipe wake (solve completions, shutdown).
        // This is what replaces the threaded path's 200 ms timeout spin.
        if poll(&mut fds, -1).is_err() {
            std::thread::sleep(std::time::Duration::from_millis(5));
            continue;
        }
        if fds[0].ready(POLLIN) {
            pipe.drain();
        }
        // ordering: stop flag re-check after a wake; SeqCst as above.
        if stop.load(Ordering::SeqCst) {
            break;
        }

        // Completions first: they free quota slots and fill FIFO entries
        // before any new admission decisions this iteration.
        while let Ok(done) = done_rx.try_recv() {
            let Some(conn) = conns.get_mut(done.conn).and_then(Option::as_mut) else {
                continue;
            };
            if conn.generation != done.generation {
                continue; // the slot was reused; the addressee is gone
            }
            if let WorkDone::Solve { query, result } = &done.done {
                server::log_if_slow(sh.opts.slow_query_ms, query, result);
            }
            conn.complete(done, &sh.metrics);
        }

        if fds[1].ready(POLLIN) {
            accept_ready(&listener, &mut conns, &mut open, &mut next_generation, &sh);
        }

        // Readable connections make progress on their input.
        let mut shutdown_conn: Option<usize> = None;
        for (i, slot) in slots.iter().enumerate() {
            let fd = &fds[i + 2];
            let Some(conn) = conns[*slot].as_mut() else {
                continue;
            };
            if fd.ready(POLLIN) && !conn.closing {
                match conn.on_readable(&sh) {
                    Ok(Outcome::Shutdown) => shutdown_conn = Some(*slot),
                    Ok(Outcome::Continue) => {}
                    Err(()) => {
                        conns[*slot] = None;
                        open -= 1;
                    }
                }
            }
        }

        // Every connection pumps deliverable frames and flushes; closing
        // connections leave once fully drained. (All of them, not just
        // the ready ones: completions and quota releases above may have
        // made new frames deliverable on connections with no socket
        // event.)
        for (slot, c) in conns.iter_mut().enumerate() {
            let Some(conn) = c.as_mut() else { continue };
            // A lifted control barrier may have left complete lines
            // parked in the in-buffer; resume them now — no new socket
            // event will re-trigger processing.
            let mut dead = false;
            if conn.control_inflight == 0 && !conn.discard_input && !conn.inbuf.is_empty() {
                match conn.process_input(&sh) {
                    Ok(Outcome::Shutdown) => shutdown_conn = Some(slot),
                    Ok(Outcome::Continue) => {}
                    Err(()) => dead = true,
                }
            }
            conn.pump(&sh);
            // A closing connection is reaped only once its out-buffer is
            // flushed AND no admitted work is still pending — answers to
            // requests received before a FIN must still be delivered.
            let dead = dead
                || conn.try_flush().is_err()
                || (conn.closing && !conn.has_output() && conn.pending.is_empty());
            if dead {
                *c = None;
                open -= 1;
            }
        }

        if let Some(slot) = shutdown_conn {
            // `SHUTDOWN`: make sure the `OK bye` reaches the client (its
            // frame is tiny; one bounded POLLOUT wait covers a full
            // socket buffer), then stop.
            if let Some(conn) = conns[slot].as_mut() {
                // fairhms-lint: allow(R5) bounded shutdown drain: makes
                // sure `OK bye` reaches the client, once per process exit.
                let deadline = Instant::now() + std::time::Duration::from_secs(2);
                // fairhms-lint: allow(R5) bounded shutdown drain (see above).
                while conn.has_output() && Instant::now() < deadline {
                    let mut w = [PollFd::new(conn.stream.as_raw_fd(), POLLOUT)];
                    let _ = poll(&mut w, 50);
                    if conn.try_flush().is_err() {
                        break;
                    }
                }
            }
            // ordering: stop flag store; SeqCst pairs with the loop loads.
            stop.store(true, Ordering::SeqCst);
            break;
        }
    }

    // Teardown: stop admission, then let each worker finish its current
    // solve; dropping the receiver makes their next send fail so they
    // exit without draining a backlog nobody will read.
    queue.close();
    drop(done_rx);
    pool.join();
    drop(conns);
}
