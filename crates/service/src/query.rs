//! The canonical [`Query`] type and its cache fingerprint.

/// One FairHMS request against a cataloged dataset.
///
/// Two queries that differ only in field spelling (algorithm case) solve
/// the same instance; [`Query::canonicalized`] normalizes those before
/// fingerprinting so they share a cache entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Catalog key of the target dataset.
    pub dataset: String,
    /// Solution size.
    pub k: usize,
    /// Algorithm name, resolved via [`fairhms_core::registry::by_name`].
    pub alg: String,
    /// Slack parameter for the derived per-group bounds.
    pub alpha: f64,
    /// `true` → balanced bounds, `false` → proportional bounds (the
    /// paper's two policies, see `fairhms_matroid`).
    pub balanced: bool,
    /// RNG seed for sampling-based algorithms; fixed seed + fixed query →
    /// bit-identical answer, which is what makes caching sound.
    pub seed: u64,
    /// Solve on the union of per-group skylines (lossless; on by default).
    pub skyline: bool,
}

impl Query {
    /// A query with the evaluation defaults: `BiGreedy`, `α = 0.1`,
    /// proportional bounds, seed 42, skyline restriction on.
    pub fn new(dataset: impl Into<String>, k: usize) -> Self {
        Self {
            dataset: dataset.into(),
            k,
            alg: "bigreedy".to_string(),
            alpha: 0.1,
            balanced: false,
            seed: 42,
            skyline: true,
        }
    }

    /// The same query with all free-form fields normalized: the algorithm
    /// is resolved to its canonical registry spelling (so `"BiGreedy+"`
    /// and `"bigreedyplus"` fingerprint identically); unknown names are
    /// lowercased and left for [`fairhms_core::registry::by_name`] to
    /// reject with a typed error at solve time.
    pub fn canonicalized(&self) -> Query {
        let mut q = self.clone();
        q.alg = match fairhms_core::registry::canonical_name(&q.alg) {
            Some(canon) => canon.to_string(),
            None => q.alg.to_ascii_lowercase(),
        };
        q
    }

    /// A 64-bit FNV-1a fingerprint of the canonical query, used as the
    /// solution-cache key. Field values are length-prefixed so adjacent
    /// fields cannot alias (`("ab", "c")` vs `("a", "bc")`).
    ///
    /// The fingerprint is a fast router, not an identity proof: the cache
    /// stores the canonical query alongside each answer and verifies
    /// equality on every hit, so an (engineered) FNV collision degrades
    /// to a cache miss, never to serving the wrong answer.
    pub fn fingerprint(&self) -> u64 {
        self.canonicalized().fingerprint_for_epoch(0)
    }

    /// [`Query::fingerprint`] folded with a dataset registration epoch,
    /// so replacing a catalog entry under the same name invalidates every
    /// cached answer computed against the old data.
    ///
    /// Hashes `self` as-is — the caller must already hold the canonical
    /// form (see [`Query::canonicalized`]); the engine's hot path calls
    /// this once per request and must not re-clone the query.
    pub fn fingerprint_for_epoch(&self, epoch: u64) -> u64 {
        self.fingerprint_keyed(epoch, 0)
    }

    /// [`Query::fingerprint_for_epoch`] additionally folded with the
    /// dataset's group-generation digest for the form this query solves
    /// on (`sky_digest` when `skyline`, `full_digest` otherwise — see
    /// `PreparedDataset::digest_for`). Mutations bump only the touched
    /// groups' generations, so cached answers whose form the mutation
    /// did not disturb keep fingerprinting (and verifying) identically
    /// and survive as hits; disturbed forms re-key and the stale entries
    /// age out or are swept by the engine's delta invalidation.
    ///
    /// Hashes `self` as-is — the caller must already hold the canonical
    /// form (see [`Query::canonicalized`]); the engine's hot path calls
    /// this once per request and must not re-clone the query.
    pub fn fingerprint_keyed(&self, epoch: u64, digest: u64) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(epoch);
        h.write_u64(digest);
        h.write_str(&self.dataset);
        h.write_u64(self.k as u64);
        h.write_str(&self.alg);
        h.write_u64(self.alpha.to_bits());
        h.write_u64(self.balanced as u64);
        h.write_u64(self.seed);
        h.write_u64(self.skyline as u64);
        h.finish()
    }
}

/// Minimal FNV-1a, kept in-tree so fingerprints are stable across runs and
/// platforms (std's `DefaultHasher` stream is not a documented guarantee).
struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    fn new() -> Self {
        Self {
            state: 0xcbf29ce484222325,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x100000001b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_algorithm_case() {
        let mut a = Query::new("adult", 8);
        let mut b = a.clone();
        a.alg = "BiGreedy".into();
        b.alg = "bigreedy".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_unifies_algorithm_aliases() {
        for (x, y) in [
            ("bigreedy+", "BiGreedyPlus"),
            ("f-greedy", "FGreedy"),
            ("greedy", "RDP-Greedy"),
            ("g-dmm", "GDMM"),
        ] {
            let mut a = Query::new("adult", 8);
            let mut b = a.clone();
            a.alg = x.into();
            b.alg = y.into();
            assert_eq!(a.fingerprint(), b.fingerprint(), "{x} vs {y}");
        }
        // distinct algorithms still fingerprint apart
        let mut a = Query::new("adult", 8);
        let mut b = a.clone();
        a.alg = "bigreedy".into();
        b.alg = "bigreedy+".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_separates_every_field() {
        let base = Query::new("adult", 8);
        let variants = [
            Query {
                dataset: "compas".into(),
                ..base.clone()
            },
            Query {
                k: 9,
                ..base.clone()
            },
            Query {
                alg: "f-greedy".into(),
                ..base.clone()
            },
            Query {
                alpha: 0.2,
                ..base.clone()
            },
            Query {
                balanced: true,
                ..base.clone()
            },
            Query {
                seed: 43,
                ..base.clone()
            },
            Query {
                skyline: false,
                ..base.clone()
            },
        ];
        let f0 = base.fingerprint();
        let mut seen = vec![f0];
        for v in variants {
            let f = v.fingerprint();
            assert!(!seen.contains(&f), "collision for {v:?}");
            seen.push(f);
        }
    }

    #[test]
    fn fingerprint_resists_field_aliasing() {
        // Length-prefixing keeps (dataset="ab", alg-prefix) from aliasing
        // (dataset="a", ...): adjacent strings cannot shift into each other.
        let mut a = Query::new("ab", 1);
        a.alg = "x".into();
        let mut b = Query::new("a", 1);
        b.alg = "bx".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
