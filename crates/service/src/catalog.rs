//! Named-dataset catalog with memoized, optionally sharded preprocessing.
//!
//! Every FairHMS algorithm consumes the same prepared form of a dataset:
//! scale-normalized coordinates restricted to the union of per-group
//! skylines. The batch CLI recomputes that on every `solve`; the catalog
//! computes it **once per dataset** at registration time and hands out
//! shared [`PreparedDataset`]s, so a query's marginal cost is just the
//! solve itself.
//!
//! With [`CatalogConfig::shards`] > 1, the skyline reduction is
//! *partitioned*: a [`ShardPlan`] splits the rows, each shard's group
//! skyline runs on its own std thread against the one shared matrix (a
//! view, never a copy), and a final merge pass reduces the union — an
//! output **bit-identical** to the unsharded pipeline (see
//! [`fairhms_data::shard`]), so sharding is purely a preparation-latency
//! knob, invisible to answers.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

use fairhms_obs::sync::{read_or_recover, write_or_recover};
use std::time::Instant;

use fairhms_data::csv;
use fairhms_data::shard::{merge_shard_skylines_parallel, PartitionStrategy, ShardPlan};
use fairhms_data::skyline::group_skyline_of_rows;
use fairhms_data::Dataset;

use crate::ServiceError;

/// Upper limit on the configurable shard count (CLI `--shards`, wire
/// `SHARDS`): beyond this, per-shard thread and merge overhead dwarfs any
/// parallelism a realistic machine can supply.
pub const MAX_SHARDS: usize = 64;

/// Catalog-wide preparation tunables, applied to every subsequent dataset
/// registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogConfig {
    /// Number of preparation shards (clamped to `1..=`[`MAX_SHARDS`]).
    /// 1 = the classic unsharded pipeline.
    pub shards: usize,
    /// How rows are dealt to shards.
    pub strategy: PartitionStrategy,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            strategy: PartitionStrategy::GroupStratified,
        }
    }
}

impl CatalogConfig {
    /// A config with `shards` shards and the default (group-stratified)
    /// strategy.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: shards.clamp(1, MAX_SHARDS),
            ..Self::default()
        }
    }

    /// The default config, overridden by the `FAIRHMS_TEST_SHARDS` (shard
    /// count) and `FAIRHMS_TEST_STRATEGY` (`roundrobin`/`stratified`)
    /// environment variables when set.
    ///
    /// This is the CI hook that re-runs the whole service test suite over
    /// the sharded pipeline (`scripts/ci.sh` sets `FAIRHMS_TEST_SHARDS=4`
    /// for the second pass): [`Catalog::new`] routes through it, so every
    /// test that builds a catalog exercises whichever pipeline the
    /// environment selects. Unset (production) it is exactly
    /// `CatalogConfig::default()`.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("FAIRHMS_TEST_SHARDS") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.shards = n.clamp(1, MAX_SHARDS);
            }
        }
        if let Ok(v) = std::env::var("FAIRHMS_TEST_STRATEGY") {
            if let Some(s) = PartitionStrategy::parse(&v) {
                cfg.strategy = s;
            }
        }
        cfg
    }
}

/// One shard's view of a prepared dataset: which rows it owned, what its
/// local group skyline kept, and what the pass cost.
///
/// Holds row indices only — the points stay in the parent
/// [`PreparedDataset`]'s shared matrix.
#[derive(Debug)]
pub struct ShardPrep {
    /// How many rows this shard was dealt. (The full assignment lists are
    /// dropped after the merge — retaining them would pin `O(n)` extra
    /// memory per catalog entry for introspection nothing reads.)
    pub num_rows: usize,
    /// This shard's group-skyline survivors (global row ids, ascending).
    /// The union over shards, reduced once more, is the exact global
    /// group skyline.
    pub skyline_rows: Vec<usize>,
    /// Per-group row counts of the shard's dealt rows.
    pub group_sizes: Vec<usize>,
    /// Wall-clock of this shard's skyline pass, microseconds.
    pub prep_micros: u64,
}

/// A dataset plus everything the engine precomputes for it.
///
/// Both dataset forms are held behind [`Arc`] so the engine hands the
/// *same* allocation to every concurrent solve: a cold query costs an
/// `Arc` refcount bump, never a point-matrix copy
/// (`fairhms_core::types::FairHmsInstance` shares the handle).
#[derive(Debug)]
pub struct PreparedDataset {
    /// Catalog key.
    pub name: String,
    /// The full dataset, scale-normalized — shared, never copied, by
    /// `skyline=false` solves.
    pub dataset: Arc<Dataset>,
    /// Union of per-group skyline rows (indices into `dataset`), the
    /// lossless restriction every algorithm runs on by default. Shared
    /// (`Arc<[usize]>`) so the engine's per-query
    /// [`fairhms_core::types::CandidateSet`] holds the row map by
    /// refcount, not by copy.
    pub skyline_rows: Arc<[usize]>,
    /// `dataset` restricted to `skyline_rows` (row `i` here is row
    /// `skyline_rows[i]` of `dataset`) — shared by default-path solves.
    pub skyline_data: Arc<Dataset>,
    /// Per-group row counts of the full dataset.
    pub group_sizes: Vec<usize>,
    /// Per-group row counts of `skyline_data` — the form bounds are
    /// derived from on the default (skyline-restricted) solve path, so
    /// the engine does not rescan group labels per cold solve.
    pub skyline_group_sizes: Vec<usize>,
    /// Registration epoch, unique per catalog insert. The engine folds it
    /// into cache keys, so replacing a dataset under the same name
    /// orphans (rather than serves) every answer cached against the old
    /// data. 0 for datasets prepared outside a catalog.
    pub epoch: u64,
    /// Wall-clock cost of normalization + skyline preprocessing.
    pub prep_micros: u64,
    /// Wall-clock of the final shard-skyline merge pass alone,
    /// microseconds (a component of `prep_micros`) — the catalog's
    /// `catalog.merge` telemetry observation.
    pub merge_micros: u64,
    /// Partition strategy the preparation ran under.
    pub strategy: PartitionStrategy,
    /// Per-shard preparation views (length 1 for the unsharded pipeline).
    /// `skyline_rows` is always the merged, exact global group skyline.
    pub shards: Vec<ShardPrep>,
}

impl PreparedDataset {
    /// Normalizes `data` and builds the group-skyline restriction through
    /// the classic single-shard pipeline.
    pub fn prepare(name: impl Into<String>, data: Dataset) -> Result<Self, ServiceError> {
        Self::prepare_with(name, data, &CatalogConfig::default())
    }

    /// Normalizes `data` and builds the group-skyline restriction,
    /// partitioned across `cfg.shards` preparation shards.
    ///
    /// Each shard's group-skyline pass runs on its own scoped std thread
    /// and reads the one shared point matrix (no per-shard dataset copy);
    /// [`merge_shard_skylines_parallel`] then reduces the union to the
    /// exact global
    /// group skyline, so the resulting `skyline_rows`/`skyline_data` are
    /// **bit-identical for every shard count and strategy** — pinned by
    /// the shard-equivalence test suite.
    #[allow(clippy::disallowed_methods)] // prep-stage timing; see R5 waivers inside
    pub fn prepare_with(
        name: impl Into<String>,
        mut data: Dataset,
        cfg: &CatalogConfig,
    ) -> Result<Self, ServiceError> {
        if data.is_empty() {
            return Err(ServiceError::Dataset("dataset has no rows".into()));
        }
        // fairhms-lint: allow(R5) one-time prep-stage wall clock; feeds
        // the STATS prep_micros field, not a per-query hot path.
        let t = Instant::now();
        let plan = ShardPlan::build(&data, cfg.shards.clamp(1, MAX_SHARDS), cfg.strategy);
        let strategy = plan.strategy();
        data.normalize_parallel(plan.num_shards());
        let shards = prepare_shards(&data, plan);
        let per_shard: Vec<&[usize]> = shards.iter().map(|s| s.skyline_rows.as_slice()).collect();
        // fairhms-lint: allow(R5) one-time prep-stage wall clock (merge).
        let tm = Instant::now();
        let skyline_rows: Arc<[usize]> = merge_shard_skylines_parallel(&data, &per_shard).into();
        let merge_micros = tm.elapsed().as_micros() as u64;
        let skyline_data = Arc::new(data.subset(&skyline_rows));
        let group_sizes = data.group_sizes();
        let skyline_group_sizes = skyline_data.group_sizes();
        Ok(Self {
            name: name.into(),
            dataset: Arc::new(data),
            skyline_rows,
            skyline_data,
            group_sizes,
            skyline_group_sizes,
            epoch: 0,
            prep_micros: t.elapsed().as_micros() as u64,
            merge_micros,
            strategy,
            shards,
        })
    }

    /// One-line summary for `LIST` responses: `name:n:d:groups:skyline`.
    pub fn summary(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.name,
            self.dataset.len(),
            self.dataset.dim(),
            self.dataset.num_groups(),
            self.skyline_rows.len()
        )
    }

    /// Number of preparation shards this dataset was prepared with.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Runs every shard's group-skyline pass — on scoped std threads when the
/// plan has more than one shard. Each thread reads the shared matrix
/// through `&Dataset`; only row-index lists are moved, nothing is copied.
#[allow(clippy::disallowed_methods)] // prep-stage timing; see R5 waiver inside
fn prepare_shards(data: &Dataset, plan: ShardPlan) -> Vec<ShardPrep> {
    let prep_one = |rows: Vec<usize>| -> ShardPrep {
        // fairhms-lint: allow(R5) per-shard prep-stage wall clock; feeds
        // the catalog.shard_prep span, recorded only when enabled.
        let t = Instant::now();
        let skyline_rows = group_skyline_of_rows(data, &rows);
        let mut group_sizes = vec![0usize; data.num_groups()];
        for &r in &rows {
            group_sizes[data.group_of(r)] += 1;
        }
        ShardPrep {
            num_rows: rows.len(),
            skyline_rows,
            group_sizes,
            prep_micros: t.elapsed().as_micros() as u64,
        }
    };
    let mut assignments = plan.into_assignments();
    if assignments.len() == 1 {
        return vec![prep_one(assignments.pop().expect("one shard"))];
    }
    std::thread::scope(|s| {
        let prep_one = &prep_one;
        let handles: Vec<_> = assignments
            .into_iter()
            .map(|rows| s.spawn(move || prep_one(rows)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// A concurrent map of named [`PreparedDataset`]s.
///
/// Reads (the per-query hot path) take a shared lock; registration — rare —
/// takes the exclusive lock only to publish the already-prepared entry, so
/// queries are never blocked behind preprocessing.
pub struct Catalog {
    inner: RwLock<HashMap<String, Arc<PreparedDataset>>>,
    /// Monotone counter handing each insert a fresh epoch (starting at 1
    /// so the standalone-`prepare` epoch 0 never collides).
    next_epoch: std::sync::atomic::AtomicU64,
    /// Preparation tunables applied to future registrations (the wire
    /// `SHARDS` verb mutates it at runtime, hence the lock).
    config: RwLock<CatalogConfig>,
    /// Telemetry sink for preparation spans, linked by the engine that
    /// owns this catalog (see [`crate::QueryEngine::with_config`]).
    /// `None` for catalogs used outside an engine — preparation then
    /// simply records nothing.
    metrics: RwLock<Option<Arc<crate::metrics::ServiceMetrics>>>,
}

impl Default for Catalog {
    /// Same as [`Catalog::new`]: empty, configured from the environment.
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog with [`CatalogConfig::from_env`] preparation
    /// settings (the defaults unless `FAIRHMS_TEST_SHARDS`/`_STRATEGY`
    /// are set — see that method for why the environment is consulted).
    pub fn new() -> Self {
        Self::with_config(CatalogConfig::from_env())
    }

    /// An empty catalog with explicit preparation settings.
    pub fn with_config(config: CatalogConfig) -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
            next_epoch: std::sync::atomic::AtomicU64::new(0),
            config: RwLock::new(config),
            metrics: RwLock::new(None),
        }
    }

    /// Links the telemetry surface preparation spans record into.
    /// Called by the engine that owns this catalog; idempotent.
    pub fn set_metrics(&self, metrics: Arc<crate::metrics::ServiceMetrics>) {
        *write_or_recover(&self.metrics) = Some(metrics);
    }

    /// The current preparation config.
    pub fn config(&self) -> CatalogConfig {
        *read_or_recover(&self.config)
    }

    /// Sets the shard count for *future* registrations (already-prepared
    /// datasets are untouched — their answers are identical under any
    /// shard count anyway). Clamped to `1..=`[`MAX_SHARDS`].
    pub fn set_shards(&self, shards: usize) -> usize {
        let clamped = shards.clamp(1, MAX_SHARDS);
        write_or_recover(&self.config).shards = clamped;
        clamped
    }

    /// Registers `data` under its own dataset name. Returns the prepared
    /// entry; replaces any previous dataset with the same name.
    pub fn insert_dataset(&self, data: Dataset) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = data.name().to_string();
        self.insert_named(name, data)
    }

    /// Registers `data` under an explicit catalog key.
    ///
    /// Names must be valid on the wire: non-empty, no whitespace (the
    /// protocol tokenizes on spaces) and none of `=,:"` (field/list
    /// delimiters in `QUERY` and `LIST`). A name that violated this would
    /// register fine but be unreachable or corrupt `LIST` output for
    /// every client, so it is rejected up front.
    pub fn insert_named(
        &self,
        name: impl Into<String>,
        data: Dataset,
    ) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = name.into();
        if name.is_empty()
            || name
                .chars()
                .any(|c| c.is_whitespace() || matches!(c, '=' | ',' | ':' | '"'))
        {
            return Err(ServiceError::Dataset(format!(
                "invalid catalog name {name:?}: must be non-empty, without whitespace or '=,:\"'"
            )));
        }
        let mut prepared = PreparedDataset::prepare_with(name.clone(), data, &self.config())?;
        prepared.epoch = 1 + self
            .next_epoch
            // ordering: epoch tickets only need uniqueness; fetch_add
            // provides it without ordering other memory.
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Preparation telemetry: one `catalog.shard_prep` observation per
        // shard plus one `catalog.merge` — derived from the wall-clock
        // numbers the prepare pipeline already measures, so this costs no
        // extra clock reads on any path.
        if let Some(m) = read_or_recover(&self.metrics).as_ref() {
            if m.enabled() {
                for s in &prepared.shards {
                    m.shard_prep.record(s.prep_micros.saturating_mul(1000));
                }
                m.merge.record(prepared.merge_micros.saturating_mul(1000));
            }
        }
        let prepared = Arc::new(prepared);
        write_or_recover(&self.inner).insert(name, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Loads a `attr_1,…,attr_d,group` CSV (dimensionality sniffed from the
    /// first row) and registers it under `name`.
    pub fn load_csv(
        &self,
        name: impl Into<String>,
        path: &Path,
    ) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = name.into();
        let data = csv::read_dataset_auto(path, &name)
            .map_err(|e| ServiceError::Dataset(format!("{}: {e}", path.display())))?;
        self.insert_named(name, data)
    }

    /// The prepared dataset registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedDataset>> {
        read_or_recover(&self.inner).get(name).cloned()
    }

    /// Like [`Catalog::get`] but with a typed error for the engine.
    pub fn get_required(&self, name: &str) -> Result<Arc<PreparedDataset>, ServiceError> {
        self.get(name).ok_or_else(|| ServiceError::UnknownDataset {
            name: name.to_string(),
        })
    }
}

/// Resolves a `LOAD path=<path>` request against the server's
/// `--load-root` allowlist directory.
///
/// The admin verb must not become an arbitrary-file read: `requested` has
/// to be a relative path, and its canonical form (symlinks and `..`
/// resolved by the OS) must still sit under the canonical root — so
/// `path=../secret.csv`, absolute paths, and symlink escapes are all
/// refused with a typed error before any file is opened.
pub fn resolve_under_root(
    root: &Path,
    requested: &str,
) -> Result<std::path::PathBuf, ServiceError> {
    if requested.is_empty() || Path::new(requested).is_absolute() {
        return Err(ServiceError::Protocol(format!(
            "path: {requested:?} must be relative to the server's --load-root"
        )));
    }
    let root = root
        .canonicalize()
        .map_err(|e| ServiceError::Dataset(format!("load root {}: {e}", root.display())))?;
    let full = root
        .join(requested)
        .canonicalize()
        .map_err(|e| ServiceError::Dataset(format!("{requested}: {e}")))?;
    if !full.starts_with(&root) {
        return Err(ServiceError::Protocol(format!(
            "path: {requested:?} escapes the server's --load-root"
        )));
    }
    Ok(full)
}

impl Catalog {
    /// Sorted catalog keys.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = read_or_recover(&self.inner).keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        read_or_recover(&self.inner).len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        read_or_recover(&self.inner).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 6 points, 2 groups; rows 4 (0.2,0.2) and 5 (0.3,0.1) are
        // dominated within their groups.
        Dataset::new(
            "toy",
            2,
            vec![1.0, 0.1, 0.8, 0.6, 0.2, 0.9, 0.9, 0.3, 0.2, 0.2, 0.3, 0.1],
            vec![0, 0, 1, 1, 0, 1],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn prepare_normalizes_and_restricts() {
        let prep = PreparedDataset::prepare("toy", toy()).unwrap();
        // normalize() is scale-only: max per attribute becomes 1.
        let max0 = (0..prep.dataset.len())
            .map(|i| prep.dataset.point(i)[0])
            .fold(0.0f64, f64::max);
        assert!((max0 - 1.0).abs() < 1e-12);
        // dominated rows are dropped from the skyline restriction
        assert!(prep.skyline_rows.len() < prep.dataset.len());
        assert_eq!(prep.skyline_data.len(), prep.skyline_rows.len());
        assert_eq!(prep.group_sizes, vec![3, 3]);
        assert_eq!(
            prep.summary(),
            format!("toy:6:2:2:{}", prep.skyline_rows.len())
        );
    }

    #[test]
    fn catalog_round_trip_and_listing() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.insert_dataset(toy()).unwrap();
        cat.insert_named("alias", toy()).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.names(), vec!["alias".to_string(), "toy".to_string()]);
        assert!(cat.get("toy").is_some());
        assert_eq!(
            cat.get_required("nope").unwrap_err(),
            ServiceError::UnknownDataset {
                name: "nope".into()
            }
        );
    }

    #[test]
    fn load_csv_sniffs_dimensionality() {
        let dir = std::env::temp_dir().join("fairhms_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d3.csv");
        std::fs::write(&path, "0.5,0.2,0.9,a\n0.9,0.8,0.1,b\n0.2,0.9,0.5,a\n").unwrap();
        let cat = Catalog::new();
        let prep = cat.load_csv("d3", &path).unwrap();
        assert_eq!(prep.dataset.dim(), 3);
        assert_eq!(prep.dataset.num_groups(), 2);
        assert!(cat.get("d3").is_some());
    }

    #[test]
    fn rejects_wire_unsafe_names() {
        let cat = Catalog::new();
        for bad in ["", "my data", "a,b", "a:b", "a=b", "tab\tname"] {
            assert!(
                matches!(cat.insert_named(bad, toy()), Err(ServiceError::Dataset(_))),
                "{bad:?} should be rejected"
            );
        }
        assert!(cat.insert_named("ok-name_2", toy()).is_ok());
    }

    #[test]
    fn resolve_under_root_confines_load_paths() {
        let root = std::env::temp_dir().join("fairhms_load_root_test");
        std::fs::create_dir_all(root.join("sub")).unwrap();
        std::fs::write(root.join("ok.csv"), "0.1,0.2,a\n").unwrap();
        std::fs::write(root.join("sub/nested.csv"), "0.1,0.2,a\n").unwrap();
        let outside = std::env::temp_dir().join("fairhms_load_root_outside.csv");
        std::fs::write(&outside, "0.1,0.2,a\n").unwrap();

        // In-root files resolve, including nested ones.
        assert!(resolve_under_root(&root, "ok.csv").is_ok());
        assert!(resolve_under_root(&root, "sub/nested.csv").is_ok());
        // `..` inside the root is fine as long as it does not escape.
        assert!(resolve_under_root(&root, "sub/../ok.csv").is_ok());

        // Absolute paths, traversal escapes, empty and missing paths: no.
        let abs = outside.to_string_lossy().to_string();
        for bad in [
            abs.as_str(),
            "../fairhms_load_root_outside.csv",
            "sub/../../fairhms_load_root_outside.csv",
            "",
            "missing.csv",
        ] {
            assert!(
                resolve_under_root(&root, bad).is_err(),
                "{bad:?} should be refused"
            );
        }
    }

    #[test]
    fn rejects_empty_dataset() {
        let empty = Dataset::ungrouped("e", 2, vec![]).unwrap();
        assert!(matches!(
            Catalog::new().insert_dataset(empty),
            Err(ServiceError::Dataset(_))
        ));
    }
}
