//! Named-dataset catalog with memoized preprocessing.
//!
//! Every FairHMS algorithm consumes the same prepared form of a dataset:
//! scale-normalized coordinates restricted to the union of per-group
//! skylines. The batch CLI recomputes that on every `solve`; the catalog
//! computes it **once per dataset** at registration time and hands out
//! shared [`PreparedDataset`]s, so a query's marginal cost is just the
//! solve itself.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use fairhms_data::csv;
use fairhms_data::skyline::group_skyline_indices;
use fairhms_data::Dataset;

use crate::ServiceError;

/// A dataset plus everything the engine precomputes for it.
///
/// Both dataset forms are held behind [`Arc`] so the engine hands the
/// *same* allocation to every concurrent solve: a cold query costs an
/// `Arc` refcount bump, never a point-matrix copy
/// (`fairhms_core::types::FairHmsInstance` shares the handle).
#[derive(Debug)]
pub struct PreparedDataset {
    /// Catalog key.
    pub name: String,
    /// The full dataset, scale-normalized — shared, never copied, by
    /// `skyline=false` solves.
    pub dataset: Arc<Dataset>,
    /// Union of per-group skyline rows (indices into `dataset`), the
    /// lossless restriction every algorithm runs on by default.
    pub skyline_rows: Vec<usize>,
    /// `dataset` restricted to `skyline_rows` (row `i` here is row
    /// `skyline_rows[i]` of `dataset`) — shared by default-path solves.
    pub skyline_data: Arc<Dataset>,
    /// Per-group row counts of the full dataset.
    pub group_sizes: Vec<usize>,
    /// Per-group row counts of `skyline_data` — the form bounds are
    /// derived from on the default (skyline-restricted) solve path, so
    /// the engine does not rescan group labels per cold solve.
    pub skyline_group_sizes: Vec<usize>,
    /// Registration epoch, unique per catalog insert. The engine folds it
    /// into cache keys, so replacing a dataset under the same name
    /// orphans (rather than serves) every answer cached against the old
    /// data. 0 for datasets prepared outside a catalog.
    pub epoch: u64,
    /// Wall-clock cost of normalization + skyline preprocessing.
    pub prep_micros: u64,
}

impl PreparedDataset {
    /// Normalizes `data` and builds the group-skyline restriction.
    pub fn prepare(name: impl Into<String>, mut data: Dataset) -> Result<Self, ServiceError> {
        if data.is_empty() {
            return Err(ServiceError::Dataset("dataset has no rows".into()));
        }
        let t = Instant::now();
        data.normalize();
        let skyline_rows = group_skyline_indices(&data);
        let skyline_data = Arc::new(data.subset(&skyline_rows));
        let group_sizes = data.group_sizes();
        let skyline_group_sizes = skyline_data.group_sizes();
        Ok(Self {
            name: name.into(),
            dataset: Arc::new(data),
            skyline_rows,
            skyline_data,
            group_sizes,
            skyline_group_sizes,
            epoch: 0,
            prep_micros: t.elapsed().as_micros() as u64,
        })
    }

    /// One-line summary for `LIST` responses: `name:n:d:groups:skyline`.
    pub fn summary(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.name,
            self.dataset.len(),
            self.dataset.dim(),
            self.dataset.num_groups(),
            self.skyline_rows.len()
        )
    }
}

/// A concurrent map of named [`PreparedDataset`]s.
///
/// Reads (the per-query hot path) take a shared lock; registration — rare —
/// takes the exclusive lock only to publish the already-prepared entry, so
/// queries are never blocked behind preprocessing.
#[derive(Default)]
pub struct Catalog {
    inner: RwLock<HashMap<String, Arc<PreparedDataset>>>,
    /// Monotone counter handing each insert a fresh epoch (starting at 1
    /// so the standalone-`prepare` epoch 0 never collides).
    next_epoch: std::sync::atomic::AtomicU64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `data` under its own dataset name. Returns the prepared
    /// entry; replaces any previous dataset with the same name.
    pub fn insert_dataset(&self, data: Dataset) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = data.name().to_string();
        self.insert_named(name, data)
    }

    /// Registers `data` under an explicit catalog key.
    ///
    /// Names must be valid on the wire: non-empty, no whitespace (the
    /// protocol tokenizes on spaces) and none of `=,:"` (field/list
    /// delimiters in `QUERY` and `LIST`). A name that violated this would
    /// register fine but be unreachable or corrupt `LIST` output for
    /// every client, so it is rejected up front.
    pub fn insert_named(
        &self,
        name: impl Into<String>,
        data: Dataset,
    ) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = name.into();
        if name.is_empty()
            || name
                .chars()
                .any(|c| c.is_whitespace() || matches!(c, '=' | ',' | ':' | '"'))
        {
            return Err(ServiceError::Dataset(format!(
                "invalid catalog name {name:?}: must be non-empty, without whitespace or '=,:\"'"
            )));
        }
        let mut prepared = PreparedDataset::prepare(name.clone(), data)?;
        prepared.epoch = 1 + self
            .next_epoch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let prepared = Arc::new(prepared);
        self.inner
            .write()
            .unwrap()
            .insert(name, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Loads a `attr_1,…,attr_d,group` CSV (dimensionality sniffed from the
    /// first row) and registers it under `name`.
    pub fn load_csv(
        &self,
        name: impl Into<String>,
        path: &Path,
    ) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = name.into();
        let data = csv::read_dataset_auto(path, &name)
            .map_err(|e| ServiceError::Dataset(format!("{}: {e}", path.display())))?;
        self.insert_named(name, data)
    }

    /// The prepared dataset registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedDataset>> {
        self.inner.read().unwrap().get(name).cloned()
    }

    /// Like [`Catalog::get`] but with a typed error for the engine.
    pub fn get_required(&self, name: &str) -> Result<Arc<PreparedDataset>, ServiceError> {
        self.get(name).ok_or_else(|| ServiceError::UnknownDataset {
            name: name.to_string(),
        })
    }

    /// Sorted catalog keys.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 6 points, 2 groups; rows 4 (0.2,0.2) and 5 (0.3,0.1) are
        // dominated within their groups.
        Dataset::new(
            "toy",
            2,
            vec![1.0, 0.1, 0.8, 0.6, 0.2, 0.9, 0.9, 0.3, 0.2, 0.2, 0.3, 0.1],
            vec![0, 0, 1, 1, 0, 1],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn prepare_normalizes_and_restricts() {
        let prep = PreparedDataset::prepare("toy", toy()).unwrap();
        // normalize() is scale-only: max per attribute becomes 1.
        let max0 = (0..prep.dataset.len())
            .map(|i| prep.dataset.point(i)[0])
            .fold(0.0f64, f64::max);
        assert!((max0 - 1.0).abs() < 1e-12);
        // dominated rows are dropped from the skyline restriction
        assert!(prep.skyline_rows.len() < prep.dataset.len());
        assert_eq!(prep.skyline_data.len(), prep.skyline_rows.len());
        assert_eq!(prep.group_sizes, vec![3, 3]);
        assert_eq!(
            prep.summary(),
            format!("toy:6:2:2:{}", prep.skyline_rows.len())
        );
    }

    #[test]
    fn catalog_round_trip_and_listing() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.insert_dataset(toy()).unwrap();
        cat.insert_named("alias", toy()).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.names(), vec!["alias".to_string(), "toy".to_string()]);
        assert!(cat.get("toy").is_some());
        assert_eq!(
            cat.get_required("nope").unwrap_err(),
            ServiceError::UnknownDataset {
                name: "nope".into()
            }
        );
    }

    #[test]
    fn load_csv_sniffs_dimensionality() {
        let dir = std::env::temp_dir().join("fairhms_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d3.csv");
        std::fs::write(&path, "0.5,0.2,0.9,a\n0.9,0.8,0.1,b\n0.2,0.9,0.5,a\n").unwrap();
        let cat = Catalog::new();
        let prep = cat.load_csv("d3", &path).unwrap();
        assert_eq!(prep.dataset.dim(), 3);
        assert_eq!(prep.dataset.num_groups(), 2);
        assert!(cat.get("d3").is_some());
    }

    #[test]
    fn rejects_wire_unsafe_names() {
        let cat = Catalog::new();
        for bad in ["", "my data", "a,b", "a:b", "a=b", "tab\tname"] {
            assert!(
                matches!(cat.insert_named(bad, toy()), Err(ServiceError::Dataset(_))),
                "{bad:?} should be rejected"
            );
        }
        assert!(cat.insert_named("ok-name_2", toy()).is_ok());
    }

    #[test]
    fn rejects_empty_dataset() {
        let empty = Dataset::ungrouped("e", 2, vec![]).unwrap();
        assert!(matches!(
            Catalog::new().insert_dataset(empty),
            Err(ServiceError::Dataset(_))
        ));
    }
}
