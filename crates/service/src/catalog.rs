//! Named-dataset catalog with memoized, optionally sharded preprocessing.
//!
//! Every FairHMS algorithm consumes the same prepared form of a dataset:
//! scale-normalized coordinates restricted to the union of per-group
//! skylines. The batch CLI recomputes that on every `solve`; the catalog
//! computes it **once per dataset** at registration time and hands out
//! shared [`PreparedDataset`]s, so a query's marginal cost is just the
//! solve itself.
//!
//! With [`CatalogConfig::shards`] > 1, the skyline reduction is
//! *partitioned*: a [`ShardPlan`] splits the rows, each shard's group
//! skyline runs on its own std thread against the one shared matrix (a
//! view, never a copy), and a final merge pass reduces the union — an
//! output **bit-identical** to the unsharded pipeline (see
//! [`fairhms_data::shard`]), so sharding is purely a preparation-latency
//! knob, invisible to answers.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

use fairhms_obs::sync::{read_or_recover, write_or_recover};
use std::time::Instant;

use fairhms_data::csv;
use fairhms_data::shard::{merge_shard_skylines_parallel, PartitionStrategy, ShardPlan};
use fairhms_data::skyline::{bucket_skyline, dominates, group_skyline_of_rows};
use fairhms_data::Dataset;

use crate::ServiceError;

/// Upper limit on the configurable shard count (CLI `--shards`, wire
/// `SHARDS`): beyond this, per-shard thread and merge overhead dwarfs any
/// parallelism a realistic machine can supply.
pub const MAX_SHARDS: usize = 64;

/// Catalog-wide preparation tunables, applied to every subsequent dataset
/// registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogConfig {
    /// Number of preparation shards (clamped to `1..=`[`MAX_SHARDS`]).
    /// 1 = the classic unsharded pipeline.
    pub shards: usize,
    /// How rows are dealt to shards.
    pub strategy: PartitionStrategy,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            strategy: PartitionStrategy::GroupStratified,
        }
    }
}

impl CatalogConfig {
    /// A config with `shards` shards and the default (group-stratified)
    /// strategy.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: shards.clamp(1, MAX_SHARDS),
            ..Self::default()
        }
    }

    /// The default config, overridden by the `FAIRHMS_TEST_SHARDS` (shard
    /// count) and `FAIRHMS_TEST_STRATEGY` (`roundrobin`/`stratified`)
    /// environment variables when set.
    ///
    /// This is the CI hook that re-runs the whole service test suite over
    /// the sharded pipeline (`scripts/ci.sh` sets `FAIRHMS_TEST_SHARDS=4`
    /// for the second pass): [`Catalog::new`] routes through it, so every
    /// test that builds a catalog exercises whichever pipeline the
    /// environment selects. Unset (production) it is exactly
    /// `CatalogConfig::default()`.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("FAIRHMS_TEST_SHARDS") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.shards = n.clamp(1, MAX_SHARDS);
            }
        }
        if let Ok(v) = std::env::var("FAIRHMS_TEST_STRATEGY") {
            if let Some(s) = PartitionStrategy::parse(&v) {
                cfg.strategy = s;
            }
        }
        cfg
    }
}

/// One shard's view of a prepared dataset: which rows it owned, what its
/// local group skyline kept (and what it dominated), and what the pass
/// cost.
///
/// Holds row indices only — the points stay in the parent
/// [`PreparedDataset`]'s shared matrix.
#[derive(Debug, Clone)]
pub struct ShardPrep {
    /// How many rows this shard was dealt.
    pub num_rows: usize,
    /// This shard's group-skyline survivors (global row ids, ascending).
    /// The union over shards, reduced once more, is the exact global
    /// group skyline.
    pub skyline_rows: Vec<usize>,
    /// The shard's dealt rows its local group skyline *dominated* (global
    /// row ids, ascending; disjoint from `skyline_rows`, union = dealt
    /// rows). This is the repair set of incremental deletion: removing a
    /// local skyline member can only resurrect rows it dominated, and
    /// those all live in its own shard's dominated set.
    pub dominated_rows: Vec<usize>,
    /// Per-group row counts of the shard's dealt rows.
    pub group_sizes: Vec<usize>,
    /// Wall-clock of this shard's skyline pass, microseconds.
    pub prep_micros: u64,
}

/// Per-group mutation generations of a prepared dataset — the refinement
/// of the flat registration epoch that makes *delta* invalidation
/// possible.
///
/// Each group holds two monotone counters: `full[g]` advances whenever a
/// mutation touches group `g`'s rows at all, `sky[g]` only when group
/// `g`'s *skyline* (contents or row ids) changed. The engine folds a
/// digest of the relevant vector into every cache key and `WarmKey`, so
/// a mutation that provably cannot affect a cached answer — the common
/// dominated append, or a mutation on a different dataset — leaves those
/// keys valid instead of orphaning them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupGenerations {
    sky: Vec<u64>,
    full: Vec<u64>,
}

impl GroupGenerations {
    /// Generation zero for `num_groups` groups (a fresh registration).
    pub fn new(num_groups: usize) -> Self {
        Self {
            sky: vec![0; num_groups],
            full: vec![0; num_groups],
        }
    }

    /// Per-group skyline generations.
    pub fn sky(&self) -> &[u64] {
        &self.sky
    }

    /// Per-group full-form generations.
    pub fn full(&self) -> &[u64] {
        &self.full
    }

    /// Advances group `g`'s full-form generation (its row set mutated).
    pub fn bump_full(&mut self, g: usize) {
        self.full[g] += 1;
    }

    /// Advances group `g`'s skyline generation (its skyline changed).
    pub fn bump_sky(&mut self, g: usize) {
        self.sky[g] += 1;
    }

    /// Advances every generation — the full-rebuild (invariant-repair)
    /// path, where nothing incremental can be trusted to have survived.
    pub fn bump_all(&mut self) {
        for g in self.sky.iter_mut().chain(self.full.iter_mut()) {
            *g += 1;
        }
    }
}

/// FNV-1a over a word stream — the digest `GroupGenerations` vectors are
/// folded down to for cache keys (same constants as the query
/// fingerprint). A digest match is probabilistic (2⁻⁶⁴ collision odds);
/// the answer cache additionally verifies the stored `(epoch, digest,
/// query)` preimage on every hit, so a collision degrades to a miss,
/// never a wrong answer.
fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// A dataset plus everything the engine precomputes for it.
///
/// Both dataset forms are held behind [`Arc`] so the engine hands the
/// *same* allocation to every concurrent solve: a cold query costs an
/// `Arc` refcount bump, never a point-matrix copy
/// (`fairhms_core::types::FairHmsInstance` shares the handle).
#[derive(Debug)]
pub struct PreparedDataset {
    /// Catalog key.
    pub name: String,
    /// The full dataset, scale-normalized — shared, never copied, by
    /// `skyline=false` solves.
    pub dataset: Arc<Dataset>,
    /// Union of per-group skyline rows (indices into `dataset`), the
    /// lossless restriction every algorithm runs on by default. Shared
    /// (`Arc<[usize]>`) so the engine's per-query
    /// [`fairhms_core::types::CandidateSet`] holds the row map by
    /// refcount, not by copy.
    pub skyline_rows: Arc<[usize]>,
    /// `dataset` restricted to `skyline_rows` (row `i` here is row
    /// `skyline_rows[i]` of `dataset`) — shared by default-path solves.
    pub skyline_data: Arc<Dataset>,
    /// Per-group row counts of the full dataset.
    pub group_sizes: Vec<usize>,
    /// Per-group row counts of `skyline_data` — the form bounds are
    /// derived from on the default (skyline-restricted) solve path, so
    /// the engine does not rescan group labels per cold solve.
    pub skyline_group_sizes: Vec<usize>,
    /// Registration epoch, unique per catalog insert. The engine folds it
    /// into cache keys, so replacing a dataset under the same name
    /// orphans (rather than serves) every answer cached against the old
    /// data. 0 for datasets prepared outside a catalog.
    pub epoch: u64,
    /// Wall-clock cost of normalization + skyline preprocessing.
    pub prep_micros: u64,
    /// Wall-clock of the final shard-skyline merge pass alone,
    /// microseconds (a component of `prep_micros`) — the catalog's
    /// `catalog.merge` telemetry observation.
    pub merge_micros: u64,
    /// Partition strategy the preparation ran under.
    pub strategy: PartitionStrategy,
    /// Per-shard preparation views (length 1 for the unsharded pipeline).
    /// `skyline_rows` is always the merged, exact global group skyline.
    pub shards: Vec<ShardPrep>,
    /// Per-group mutation generations (see [`GroupGenerations`]); all
    /// zero at registration. `sky_digest`/`full_digest` are derived from
    /// them and must be refreshed together.
    pub generations: GroupGenerations,
    /// Digest of the skyline generations + skyline size — folded into
    /// cache keys of `skyline=true` queries.
    pub sky_digest: u64,
    /// Digest of the full-form generations + row count — folded into
    /// cache keys of `skyline=false` queries.
    pub full_digest: u64,
    /// Per column: how many rows hold the coordinate exactly `1.0`.
    /// Together with `nonzeros_per_col` this tracks the normalization
    /// invariant *every column maximum is exactly 0 or 1* (scale-only
    /// normalization makes each nonzero column's max element `x/x == 1.0`
    /// exactly), under which re-normalization is the identity — the
    /// precondition of every incremental mutation fast path.
    pub ones_per_col: Vec<usize>,
    /// Per column: how many rows hold a coordinate `> 0`.
    pub nonzeros_per_col: Vec<usize>,
}

impl PreparedDataset {
    /// Normalizes `data` and builds the group-skyline restriction through
    /// the classic single-shard pipeline.
    pub fn prepare(name: impl Into<String>, data: Dataset) -> Result<Self, ServiceError> {
        Self::prepare_with(name, data, &CatalogConfig::default())
    }

    /// Normalizes `data` and builds the group-skyline restriction,
    /// partitioned across `cfg.shards` preparation shards.
    ///
    /// Each shard's group-skyline pass runs on its own scoped std thread
    /// and reads the one shared point matrix (no per-shard dataset copy);
    /// [`merge_shard_skylines_parallel`] then reduces the union to the
    /// exact global
    /// group skyline, so the resulting `skyline_rows`/`skyline_data` are
    /// **bit-identical for every shard count and strategy** — pinned by
    /// the shard-equivalence test suite.
    #[allow(clippy::disallowed_methods)] // prep-stage timing; see R5 waivers inside
    pub fn prepare_with(
        name: impl Into<String>,
        mut data: Dataset,
        cfg: &CatalogConfig,
    ) -> Result<Self, ServiceError> {
        if data.is_empty() {
            return Err(ServiceError::Dataset("dataset has no rows".into()));
        }
        // fairhms-lint: allow(R5) one-time prep-stage wall clock; feeds
        // the STATS prep_micros field, not a per-query hot path.
        let t = Instant::now();
        let plan = ShardPlan::build(&data, cfg.shards.clamp(1, MAX_SHARDS), cfg.strategy);
        let strategy = plan.strategy();
        data.normalize_parallel(plan.num_shards());
        let shards = prepare_shards(&data, plan);
        let per_shard: Vec<&[usize]> = shards.iter().map(|s| s.skyline_rows.as_slice()).collect();
        // fairhms-lint: allow(R5) one-time prep-stage wall clock (merge).
        let tm = Instant::now();
        let skyline_rows: Arc<[usize]> = merge_shard_skylines_parallel(&data, &per_shard).into();
        let merge_micros = tm.elapsed().as_micros() as u64;
        let skyline_data = Arc::new(data.subset(&skyline_rows));
        let group_sizes = data.group_sizes();
        let skyline_group_sizes = skyline_data.group_sizes();
        let mut ones_per_col = vec![0usize; data.dim()];
        let mut nonzeros_per_col = vec![0usize; data.dim()];
        for p in data.points_flat().chunks_exact(data.dim()) {
            for (c, &v) in p.iter().enumerate() {
                if v == 1.0 {
                    ones_per_col[c] += 1;
                }
                if v > 0.0 {
                    nonzeros_per_col[c] += 1;
                }
            }
        }
        let generations = GroupGenerations::new(data.num_groups());
        let mut prepared = Self {
            name: name.into(),
            dataset: Arc::new(data),
            skyline_rows,
            skyline_data,
            group_sizes,
            skyline_group_sizes,
            epoch: 0,
            prep_micros: t.elapsed().as_micros() as u64,
            merge_micros,
            strategy,
            shards,
            generations,
            sky_digest: 0,
            full_digest: 0,
            ones_per_col,
            nonzeros_per_col,
        };
        prepared.refresh_digests();
        Ok(prepared)
    }

    /// Recomputes `sky_digest`/`full_digest` from the current generations
    /// and dataset shape. Must be called after any generation bump.
    fn refresh_digests(&mut self) {
        let sky = &self.generations.sky;
        self.sky_digest = fnv1a_words(
            [0x51u64, self.skyline_rows.len() as u64]
                .into_iter()
                .chain(sky.iter().copied()),
        );
        let full = &self.generations.full;
        self.full_digest = fnv1a_words(
            [0xF1u64, self.dataset.len() as u64]
                .into_iter()
                .chain(full.iter().copied()),
        );
    }

    /// The digest a query of the given form (`skyline=true`/`false`)
    /// folds into its cache key and `WarmKey`.
    pub fn digest_for(&self, skyline: bool) -> u64 {
        if skyline {
            self.sky_digest
        } else {
            self.full_digest
        }
    }

    /// One-line summary for `LIST` responses: `name:n:d:groups:skyline`.
    pub fn summary(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.name,
            self.dataset.len(),
            self.dataset.dim(),
            self.dataset.num_groups(),
            self.skyline_rows.len()
        )
    }

    /// Number of preparation shards this dataset was prepared with.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Runs every shard's group-skyline pass — on scoped std threads when the
/// plan has more than one shard. Each thread reads the shared matrix
/// through `&Dataset`; only row-index lists are moved, nothing is copied.
#[allow(clippy::disallowed_methods)] // prep-stage timing; see R5 waiver inside
fn prepare_shards(data: &Dataset, plan: ShardPlan) -> Vec<ShardPrep> {
    let prep_one = |rows: Vec<usize>| -> ShardPrep {
        // fairhms-lint: allow(R5) per-shard prep-stage wall clock; feeds
        // the catalog.shard_prep span, recorded only when enabled.
        let t = Instant::now();
        let skyline_rows = group_skyline_of_rows(data, &rows);
        let mut group_sizes = vec![0usize; data.num_groups()];
        for &r in &rows {
            group_sizes[data.group_of(r)] += 1;
        }
        // Dealt rows minus local survivors (both sorted ascending): the
        // shard's dominated set, kept as the repair unit of incremental
        // deletion. Computed here — the assignment lists are dropped
        // after the merge.
        let mut dominated_rows = Vec::with_capacity(rows.len() - skyline_rows.len());
        let mut sky_it = skyline_rows.iter().peekable();
        for &r in &rows {
            if sky_it.peek() == Some(&&r) {
                sky_it.next();
            } else {
                dominated_rows.push(r);
            }
        }
        ShardPrep {
            num_rows: rows.len(),
            skyline_rows,
            dominated_rows,
            group_sizes,
            prep_micros: t.elapsed().as_micros() as u64,
        }
    };
    let mut assignments = plan.into_assignments();
    if assignments.len() == 1 {
        return vec![prep_one(assignments.pop().expect("one shard"))];
    }
    std::thread::scope(|s| {
        let prep_one = &prep_one;
        let handles: Vec<_> = assignments
            .into_iter()
            .map(|rows| s.spawn(move || prep_one(rows)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// What a catalog mutation did — the engine turns this into delta cache
/// sweeps and the wire `MUTATED` response.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// The dataset's new prepared form (already published in the catalog).
    pub prep: Arc<PreparedDataset>,
    /// Whether any group's skyline changed (contents or row ids).
    pub sky_changed: bool,
    /// Whether the slow path ran: the mutation broke the normalization
    /// invariant and the dataset was fully re-prepared from scratch.
    pub rebuilt: bool,
}

/// Sorted-`Vec` helpers for the shard bookkeeping lists.
fn insert_sorted(v: &mut Vec<usize>, x: usize) {
    let pos = v.partition_point(|&r| r < x);
    v.insert(pos, x);
}

fn remove_sorted(v: &mut Vec<usize>, x: usize) -> bool {
    match v.binary_search(&x) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

fn contains_sorted(v: &[usize], x: usize) -> bool {
    v.binary_search(&x).is_ok()
}

/// Shifts every id greater than `removed` down by one (ascending lists
/// stay ascending — the order is preserved by a monotone map).
fn renumber_after(v: &mut [usize], removed: usize) {
    for r in v.iter_mut() {
        if *r > removed {
            *r -= 1;
        }
    }
}

/// The slow mutation path: the fast-path invariant broke (a column
/// maximum left `{0, 1}`), so `data` — the already-mutated row set — is
/// re-prepared from scratch (re-normalizing it, which restores the
/// invariant). Every generation bumps: nothing incremental survived.
fn rebuild_prepared(
    prep: &PreparedDataset,
    data: Dataset,
    cfg: &CatalogConfig,
) -> Result<PreparedDataset, ServiceError> {
    let mut rebuilt = PreparedDataset::prepare_with(prep.name.clone(), data, cfg)?;
    rebuilt.epoch = prep.epoch;
    rebuilt.generations = prep.generations.clone();
    rebuilt.generations.bump_all();
    rebuilt.refresh_digests();
    Ok(rebuilt)
}

/// Incremental append: `coords` joins `prep` as the last row of `group`.
///
/// Fast path (the normalization invariant holds afterwards): the new
/// point is tested against its group's skyline only — first the local
/// skyline of the shard it is dealt to, then the global one — inserting
/// it and pruning newly dominated members; no other group's state is
/// touched and no full prep runs. Returns the new prepared form plus
/// `(sky_changed, rebuilt)`.
fn apply_append(
    prep: &PreparedDataset,
    coords: &[f64],
    group: usize,
    cfg: &CatalogConfig,
) -> Result<(PreparedDataset, bool, bool), ServiceError> {
    let data = prep
        .dataset
        .with_appended_row(coords, group)
        .map_err(|e| ServiceError::Dataset(e.to_string()))?;
    // Fast path only while every column max stays exactly 0 or 1: a
    // coordinate past 1, or a strictly-interior coordinate landing in an
    // all-zero column, changes some column's max — re-normalization is
    // no longer the identity, so prep must rerun.
    let breaks_invariant = coords
        .iter()
        .enumerate()
        .any(|(c, &v)| v > 1.0 || (v > 0.0 && v < 1.0 && prep.ones_per_col[c] == 0));
    if breaks_invariant {
        return Ok((rebuild_prepared(prep, data, cfg)?, true, true));
    }

    let new_row = data.len() - 1;
    let p = data.point(new_row);
    let mut shards = prep.shards.clone();
    let mut skyline_rows = prep.skyline_rows.to_vec();
    let mut sky_changed = false;

    // Deal the new row to the least-loaded shard (ties to the lowest
    // index — deterministic, so mutation sequences replay identically).
    let s = shards
        .iter()
        .enumerate()
        .min_by_key(|(i, sp)| (sp.num_rows, *i))
        .map(|(i, _)| i)
        .expect("prepared datasets have at least one shard");
    let shard = &mut shards[s];
    let dominated_locally = shard
        .skyline_rows
        .iter()
        .any(|&r| data.group_of(r) == group && dominates(data.point(r), p));
    if dominated_locally {
        // Dominated by a same-group local member: by transitivity it is
        // dominated globally too — no skyline anywhere changes.
        insert_sorted(&mut shard.dominated_rows, new_row);
    } else {
        // Joins the shard's local group skyline, pruning members it
        // dominates into the shard's dominated set.
        let mut pruned = Vec::new();
        shard.skyline_rows.retain(|&r| {
            if data.group_of(r) == group && dominates(p, data.point(r)) {
                pruned.push(r);
                false
            } else {
                true
            }
        });
        insert_sorted(&mut shard.skyline_rows, new_row);
        for r in pruned {
            insert_sorted(&mut shard.dominated_rows, r);
        }
        // Global test: members the new point dominates leave the global
        // skyline (they stay valid in *other* shards' local skylines —
        // those only rank rows against shard-local competitors). If the
        // point is dominated by a global member, the global skyline is
        // already exact: anything it dominates was already pruned by
        // that member, transitively.
        let dominated_globally = skyline_rows
            .iter()
            .any(|&r| data.group_of(r) == group && dominates(data.point(r), p));
        if !dominated_globally {
            skyline_rows.retain(|&r| !(data.group_of(r) == group && dominates(p, data.point(r))));
            insert_sorted(&mut skyline_rows, new_row);
            sky_changed = true;
        }
    }
    shard.num_rows += 1;
    shard.group_sizes[group] += 1;

    let mut ones_per_col = prep.ones_per_col.clone();
    let mut nonzeros_per_col = prep.nonzeros_per_col.clone();
    for (c, &v) in coords.iter().enumerate() {
        if v == 1.0 {
            ones_per_col[c] += 1;
        }
        if v > 0.0 {
            nonzeros_per_col[c] += 1;
        }
    }
    let mut group_sizes = prep.group_sizes.clone();
    group_sizes[group] += 1;

    let dataset = Arc::new(data);
    // An unchanged skyline keeps its derived structures by refcount: the
    // restricted dataset's rows (ids, coords, groups) are identical, so
    // its cached SoA view stays valid — sharing is what keeps a
    // dominated append O(|skyline of one group|).
    let (skyline_rows, skyline_data, skyline_group_sizes) = if sky_changed {
        let rows: Arc<[usize]> = skyline_rows.into();
        let sd = Arc::new(dataset.subset(&rows));
        let sg = sd.group_sizes();
        (rows, sd, sg)
    } else {
        (
            Arc::clone(&prep.skyline_rows),
            Arc::clone(&prep.skyline_data),
            prep.skyline_group_sizes.clone(),
        )
    };
    let mut generations = prep.generations.clone();
    generations.bump_full(group);
    if sky_changed {
        generations.bump_sky(group);
    }
    let mut next = PreparedDataset {
        name: prep.name.clone(),
        dataset,
        skyline_rows,
        skyline_data,
        group_sizes,
        skyline_group_sizes,
        epoch: prep.epoch,
        prep_micros: prep.prep_micros,
        merge_micros: prep.merge_micros,
        strategy: prep.strategy,
        shards,
        generations,
        sky_digest: 0,
        full_digest: 0,
        ones_per_col,
        nonzeros_per_col,
    };
    next.refresh_digests();
    Ok((next, sky_changed, false))
}

/// Incremental delete of `row` (current compacted id; later rows shift
/// down by one).
///
/// Fast path: a dominated row leaves its shard's dominated set and no
/// skyline anywhere changes; a skyline member's group is repaired from
/// the per-shard dominated set (shard-locally) and from the shards'
/// local skylines (globally) — never from a full prep. Returns the new
/// prepared form plus `(sky_changed, rebuilt)`.
fn apply_delete(
    prep: &PreparedDataset,
    row: usize,
    cfg: &CatalogConfig,
) -> Result<(PreparedDataset, bool, bool), ServiceError> {
    let n = prep.dataset.len();
    if row >= n {
        return Err(ServiceError::Dataset(format!(
            "row {row} out of range (dataset has {n} rows)"
        )));
    }
    if n == 1 {
        return Err(ServiceError::Dataset(
            "deleting the last row would leave an empty dataset".into(),
        ));
    }
    let group = prep.dataset.group_of(row);
    let removed_point = prep.dataset.point(row).to_vec();
    let data = prep
        .dataset
        .with_removed_row(row)
        .map_err(|e| ServiceError::Dataset(e.to_string()))?;

    // Invariant check: removing a column's last exact-1.0 while other
    // rows are still nonzero there leaves that column max strictly
    // inside (0, 1) — re-normalization would rescale it, so prep reruns.
    let mut ones_per_col = prep.ones_per_col.clone();
    let mut nonzeros_per_col = prep.nonzeros_per_col.clone();
    let mut breaks_invariant = false;
    for (c, &v) in removed_point.iter().enumerate() {
        if v == 1.0 {
            ones_per_col[c] -= 1;
        }
        if v > 0.0 {
            nonzeros_per_col[c] -= 1;
        }
        if ones_per_col[c] == 0 && nonzeros_per_col[c] > 0 {
            breaks_invariant = true;
        }
    }
    if breaks_invariant {
        return Ok((rebuild_prepared(prep, data, cfg)?, true, true));
    }

    let old = &prep.dataset; // id space of the bookkeeping lists below
    let mut shards = prep.shards.clone();
    let mut skyline_rows = prep.skyline_rows.to_vec();
    let s = shards
        .iter()
        .position(|sp| {
            contains_sorted(&sp.skyline_rows, row) || contains_sorted(&sp.dominated_rows, row)
        })
        .expect("every row lives in exactly one shard");
    let was_local_sky = remove_sorted(&mut shards[s].skyline_rows, row);
    if !was_local_sky {
        remove_sorted(&mut shards[s].dominated_rows, row);
    }
    let was_global_sky = contains_sorted(&skyline_rows, row);
    debug_assert!(
        was_local_sky || !was_global_sky,
        "a global skyline member survives its own shard"
    );
    let mut sky_changed = false;
    if was_local_sky {
        // Shard-local repair of the removed member's group: its skyline
        // is recomputed from the surviving local members plus the
        // shard's dominated rows of that group — the only rows the
        // removal can resurrect (anything else is dominated by a member
        // that still exists).
        let shard = &mut shards[s];
        let mut cand: Vec<usize> = shard
            .skyline_rows
            .iter()
            .chain(shard.dominated_rows.iter())
            .copied()
            .filter(|&r| old.group_of(r) == group)
            .collect();
        cand.sort_unstable();
        let local_sky = bucket_skyline(old, &cand);
        shard.skyline_rows.retain(|&r| old.group_of(r) != group);
        shard.dominated_rows.retain(|&r| old.group_of(r) != group);
        for &r in &cand {
            if contains_sorted(&local_sky, r) {
                shard.skyline_rows.push(r);
            } else {
                shard.dominated_rows.push(r);
            }
        }
        shard.skyline_rows.sort_unstable();
        shard.dominated_rows.sort_unstable();
        if was_global_sky {
            // Global repair of the group: reduce the union of every
            // shard's (updated) local skyline for it — exactly the merge
            // step of sharded prep, restricted to one group.
            remove_sorted(&mut skyline_rows, row);
            let mut cand: Vec<usize> = shards
                .iter()
                .flat_map(|sp| sp.skyline_rows.iter().copied())
                .filter(|&r| old.group_of(r) == group)
                .collect();
            cand.sort_unstable();
            let global_sky = bucket_skyline(old, &cand);
            skyline_rows.retain(|&r| old.group_of(r) != group);
            skyline_rows.extend(global_sky);
            skyline_rows.sort_unstable();
            sky_changed = true;
        }
        // A locally-sky but globally-dominated member: its global
        // dominator also dominates (transitively) everything it
        // dominated, so the global skyline is already exact.
    }

    // Deletion renumbers every later row. A group whose skyline holds
    // any id past the removed row serves *different indices* after the
    // shift — cached answers quoting the old ids must drop, so those
    // groups' skyline generations bump alongside the mutated group's.
    let mut bump_sky = vec![false; old.num_groups()];
    if sky_changed {
        bump_sky[group] = true;
    }
    for &r in skyline_rows.iter().filter(|&&r| r > row) {
        bump_sky[old.group_of(r)] = true;
    }
    renumber_after(&mut skyline_rows, row);
    for sp in &mut shards {
        renumber_after(&mut sp.skyline_rows, row);
        renumber_after(&mut sp.dominated_rows, row);
    }
    shards[s].num_rows -= 1;
    shards[s].group_sizes[group] -= 1;
    let mut group_sizes = prep.group_sizes.clone();
    group_sizes[group] -= 1;

    let dataset = Arc::new(data);
    // Same sharing rule as append: an unchanged skyline *set* (same rows
    // modulo the id shift, identical coords and groups) keeps the
    // restricted dataset and its cached SoA view by refcount.
    let (skyline_rows, skyline_data, skyline_group_sizes) = if sky_changed {
        let rows: Arc<[usize]> = skyline_rows.into();
        let sd = Arc::new(dataset.subset(&rows));
        let sg = sd.group_sizes();
        (rows, sd, sg)
    } else {
        (
            skyline_rows.into(),
            Arc::clone(&prep.skyline_data),
            prep.skyline_group_sizes.clone(),
        )
    };
    let mut generations = prep.generations.clone();
    generations.bump_full(group);
    for (g, bump) in bump_sky.into_iter().enumerate() {
        if bump {
            generations.bump_sky(g);
        }
    }
    let mut next = PreparedDataset {
        name: prep.name.clone(),
        dataset,
        skyline_rows,
        skyline_data,
        group_sizes,
        skyline_group_sizes,
        epoch: prep.epoch,
        prep_micros: prep.prep_micros,
        merge_micros: prep.merge_micros,
        strategy: prep.strategy,
        shards,
        generations,
        sky_digest: 0,
        full_digest: 0,
        ones_per_col,
        nonzeros_per_col,
    };
    next.refresh_digests();
    Ok((next, sky_changed, false))
}

/// A concurrent map of named [`PreparedDataset`]s.
///
/// Reads (the per-query hot path) take a shared lock; registration — rare —
/// takes the exclusive lock only to publish the already-prepared entry, so
/// queries are never blocked behind preprocessing.
pub struct Catalog {
    inner: RwLock<HashMap<String, Arc<PreparedDataset>>>,
    /// Monotone counter handing each insert a fresh epoch (starting at 1
    /// so the standalone-`prepare` epoch 0 never collides).
    next_epoch: std::sync::atomic::AtomicU64,
    /// Preparation tunables applied to future registrations (the wire
    /// `SHARDS` verb mutates it at runtime, hence the lock).
    config: RwLock<CatalogConfig>,
    /// Telemetry sink for preparation spans, linked by the engine that
    /// owns this catalog (see [`crate::QueryEngine::with_config`]).
    /// `None` for catalogs used outside an engine — preparation then
    /// simply records nothing.
    metrics: RwLock<Option<Arc<crate::metrics::ServiceMetrics>>>,
}

impl Default for Catalog {
    /// Same as [`Catalog::new`]: empty, configured from the environment.
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog with [`CatalogConfig::from_env`] preparation
    /// settings (the defaults unless `FAIRHMS_TEST_SHARDS`/`_STRATEGY`
    /// are set — see that method for why the environment is consulted).
    pub fn new() -> Self {
        Self::with_config(CatalogConfig::from_env())
    }

    /// An empty catalog with explicit preparation settings.
    pub fn with_config(config: CatalogConfig) -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
            next_epoch: std::sync::atomic::AtomicU64::new(0),
            config: RwLock::new(config),
            metrics: RwLock::new(None),
        }
    }

    /// Links the telemetry surface preparation spans record into.
    /// Called by the engine that owns this catalog; idempotent.
    pub fn set_metrics(&self, metrics: Arc<crate::metrics::ServiceMetrics>) {
        *write_or_recover(&self.metrics) = Some(metrics);
    }

    /// The current preparation config.
    pub fn config(&self) -> CatalogConfig {
        *read_or_recover(&self.config)
    }

    /// Sets the shard count for *future* registrations (already-prepared
    /// datasets are untouched — their answers are identical under any
    /// shard count anyway). Clamped to `1..=`[`MAX_SHARDS`].
    pub fn set_shards(&self, shards: usize) -> usize {
        let clamped = shards.clamp(1, MAX_SHARDS);
        write_or_recover(&self.config).shards = clamped;
        clamped
    }

    /// Registers `data` under its own dataset name. Returns the prepared
    /// entry; replaces any previous dataset with the same name.
    pub fn insert_dataset(&self, data: Dataset) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = data.name().to_string();
        self.insert_named(name, data)
    }

    /// Registers `data` under an explicit catalog key.
    ///
    /// Names must be valid on the wire: non-empty, no whitespace (the
    /// protocol tokenizes on spaces) and none of `=,:"` (field/list
    /// delimiters in `QUERY` and `LIST`). A name that violated this would
    /// register fine but be unreachable or corrupt `LIST` output for
    /// every client, so it is rejected up front.
    pub fn insert_named(
        &self,
        name: impl Into<String>,
        data: Dataset,
    ) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = name.into();
        if name.is_empty()
            || name
                .chars()
                .any(|c| c.is_whitespace() || matches!(c, '=' | ',' | ':' | '"'))
        {
            return Err(ServiceError::Dataset(format!(
                "invalid catalog name {name:?}: must be non-empty, without whitespace or '=,:\"'"
            )));
        }
        let mut prepared = PreparedDataset::prepare_with(name.clone(), data, &self.config())?;
        prepared.epoch = 1 + self
            .next_epoch
            // ordering: epoch tickets only need uniqueness; fetch_add
            // provides it without ordering other memory.
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Preparation telemetry: one `catalog.shard_prep` observation per
        // shard plus one `catalog.merge` — derived from the wall-clock
        // numbers the prepare pipeline already measures, so this costs no
        // extra clock reads on any path.
        if let Some(m) = read_or_recover(&self.metrics).as_ref() {
            if m.enabled() {
                for s in &prepared.shards {
                    m.shard_prep.record(s.prep_micros.saturating_mul(1000));
                }
                m.merge.record(prepared.merge_micros.saturating_mul(1000));
            }
        }
        let prepared = Arc::new(prepared);
        write_or_recover(&self.inner).insert(name, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Loads a `attr_1,…,attr_d,group` CSV (dimensionality sniffed from the
    /// first row) and registers it under `name`.
    pub fn load_csv(
        &self,
        name: impl Into<String>,
        path: &Path,
    ) -> Result<Arc<PreparedDataset>, ServiceError> {
        let name = name.into();
        let data = csv::read_dataset_auto(path, &name)
            .map_err(|e| ServiceError::Dataset(format!("{}: {e}", path.display())))?;
        self.insert_named(name, data)
    }

    /// Appends one row (`coords`, labeled `group`) to the dataset
    /// registered under `name`, maintaining its prepared form
    /// incrementally (see `apply_append`'s fast/slow paths).
    ///
    /// Copy-on-write under the catalog's existing write lock: the new
    /// [`PreparedDataset`] is built from the old one's parts (sharing
    /// what the mutation provably did not touch) and published
    /// atomically — concurrent queries see either the old or the new
    /// prepared form, never a half-mutated one. Mutations to the same
    /// catalog serialize on the lock; no other lock is held inside.
    pub fn append_row(
        &self,
        name: &str,
        coords: &[f64],
        group: usize,
    ) -> Result<MutationOutcome, ServiceError> {
        let cfg = self.config();
        let mut map = write_or_recover(&self.inner);
        let prep = map.get(name).ok_or_else(|| ServiceError::UnknownDataset {
            name: name.to_string(),
        })?;
        let (next, sky_changed, rebuilt) = apply_append(prep, coords, group, &cfg)?;
        let next = Arc::new(next);
        map.insert(name.to_string(), Arc::clone(&next));
        Ok(MutationOutcome {
            prep: next,
            sky_changed,
            rebuilt,
        })
    }

    /// Deletes `row` (current compacted id) from the dataset registered
    /// under `name`, repairing its prepared form incrementally (see
    /// `apply_delete`). Same copy-on-write publication discipline as
    /// [`Catalog::append_row`].
    pub fn delete_row(&self, name: &str, row: usize) -> Result<MutationOutcome, ServiceError> {
        let cfg = self.config();
        let mut map = write_or_recover(&self.inner);
        let prep = map.get(name).ok_or_else(|| ServiceError::UnknownDataset {
            name: name.to_string(),
        })?;
        let (next, sky_changed, rebuilt) = apply_delete(prep, row, &cfg)?;
        let next = Arc::new(next);
        map.insert(name.to_string(), Arc::clone(&next));
        Ok(MutationOutcome {
            prep: next,
            sky_changed,
            rebuilt,
        })
    }

    /// The prepared dataset registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedDataset>> {
        read_or_recover(&self.inner).get(name).cloned()
    }

    /// Like [`Catalog::get`] but with a typed error for the engine.
    pub fn get_required(&self, name: &str) -> Result<Arc<PreparedDataset>, ServiceError> {
        self.get(name).ok_or_else(|| ServiceError::UnknownDataset {
            name: name.to_string(),
        })
    }
}

/// Resolves a `LOAD path=<path>` request against the server's
/// `--load-root` allowlist directory.
///
/// The admin verb must not become an arbitrary-file read: `requested` has
/// to be a relative path, and its canonical form (symlinks and `..`
/// resolved by the OS) must still sit under the canonical root — so
/// `path=../secret.csv`, absolute paths, and symlink escapes are all
/// refused with a typed error before any file is opened.
pub fn resolve_under_root(
    root: &Path,
    requested: &str,
) -> Result<std::path::PathBuf, ServiceError> {
    if requested.is_empty() || Path::new(requested).is_absolute() {
        return Err(ServiceError::Protocol(format!(
            "path: {requested:?} must be relative to the server's --load-root"
        )));
    }
    let root = root
        .canonicalize()
        .map_err(|e| ServiceError::Dataset(format!("load root {}: {e}", root.display())))?;
    let full = root
        .join(requested)
        .canonicalize()
        .map_err(|e| ServiceError::Dataset(format!("{requested}: {e}")))?;
    if !full.starts_with(&root) {
        return Err(ServiceError::Protocol(format!(
            "path: {requested:?} escapes the server's --load-root"
        )));
    }
    Ok(full)
}

impl Catalog {
    /// Sorted catalog keys.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = read_or_recover(&self.inner).keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        read_or_recover(&self.inner).len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        read_or_recover(&self.inner).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 6 points, 2 groups; rows 4 (0.2,0.2) and 5 (0.3,0.1) are
        // dominated within their groups.
        Dataset::new(
            "toy",
            2,
            vec![1.0, 0.1, 0.8, 0.6, 0.2, 0.9, 0.9, 0.3, 0.2, 0.2, 0.3, 0.1],
            vec![0, 0, 1, 1, 0, 1],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn prepare_normalizes_and_restricts() {
        let prep = PreparedDataset::prepare("toy", toy()).unwrap();
        // normalize() is scale-only: max per attribute becomes 1.
        let max0 = (0..prep.dataset.len())
            .map(|i| prep.dataset.point(i)[0])
            .fold(0.0f64, f64::max);
        assert!((max0 - 1.0).abs() < 1e-12);
        // dominated rows are dropped from the skyline restriction
        assert!(prep.skyline_rows.len() < prep.dataset.len());
        assert_eq!(prep.skyline_data.len(), prep.skyline_rows.len());
        assert_eq!(prep.group_sizes, vec![3, 3]);
        assert_eq!(
            prep.summary(),
            format!("toy:6:2:2:{}", prep.skyline_rows.len())
        );
    }

    #[test]
    fn catalog_round_trip_and_listing() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.insert_dataset(toy()).unwrap();
        cat.insert_named("alias", toy()).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.names(), vec!["alias".to_string(), "toy".to_string()]);
        assert!(cat.get("toy").is_some());
        assert_eq!(
            cat.get_required("nope").unwrap_err(),
            ServiceError::UnknownDataset {
                name: "nope".into()
            }
        );
    }

    #[test]
    fn load_csv_sniffs_dimensionality() {
        let dir = std::env::temp_dir().join("fairhms_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d3.csv");
        std::fs::write(&path, "0.5,0.2,0.9,a\n0.9,0.8,0.1,b\n0.2,0.9,0.5,a\n").unwrap();
        let cat = Catalog::new();
        let prep = cat.load_csv("d3", &path).unwrap();
        assert_eq!(prep.dataset.dim(), 3);
        assert_eq!(prep.dataset.num_groups(), 2);
        assert!(cat.get("d3").is_some());
    }

    #[test]
    fn rejects_wire_unsafe_names() {
        let cat = Catalog::new();
        for bad in ["", "my data", "a,b", "a:b", "a=b", "tab\tname"] {
            assert!(
                matches!(cat.insert_named(bad, toy()), Err(ServiceError::Dataset(_))),
                "{bad:?} should be rejected"
            );
        }
        assert!(cat.insert_named("ok-name_2", toy()).is_ok());
    }

    #[test]
    fn resolve_under_root_confines_load_paths() {
        let root = std::env::temp_dir().join("fairhms_load_root_test");
        std::fs::create_dir_all(root.join("sub")).unwrap();
        std::fs::write(root.join("ok.csv"), "0.1,0.2,a\n").unwrap();
        std::fs::write(root.join("sub/nested.csv"), "0.1,0.2,a\n").unwrap();
        let outside = std::env::temp_dir().join("fairhms_load_root_outside.csv");
        std::fs::write(&outside, "0.1,0.2,a\n").unwrap();

        // In-root files resolve, including nested ones.
        assert!(resolve_under_root(&root, "ok.csv").is_ok());
        assert!(resolve_under_root(&root, "sub/nested.csv").is_ok());
        // `..` inside the root is fine as long as it does not escape.
        assert!(resolve_under_root(&root, "sub/../ok.csv").is_ok());

        // Absolute paths, traversal escapes, empty and missing paths: no.
        let abs = outside.to_string_lossy().to_string();
        for bad in [
            abs.as_str(),
            "../fairhms_load_root_outside.csv",
            "sub/../../fairhms_load_root_outside.csv",
            "",
            "missing.csv",
        ] {
            assert!(
                resolve_under_root(&root, bad).is_err(),
                "{bad:?} should be refused"
            );
        }
    }

    /// Re-preps `prep`'s current stored rows from scratch and asserts the
    /// incremental bookkeeping matches it exactly: global skyline rows,
    /// restricted dataset, group sizes, invariant counters, and the
    /// shard lists' partition discipline.
    fn assert_matches_oracle(cat: &Catalog, name: &str) {
        let prep = cat.get(name).unwrap();
        let data = Dataset::new(
            name,
            prep.dataset.dim(),
            prep.dataset.points_flat().to_vec(),
            prep.dataset.groups().to_vec(),
            prep.dataset.group_names().to_vec(),
        )
        .unwrap();
        let oracle = PreparedDataset::prepare_with(name, data, &cat.config()).unwrap();
        assert_eq!(
            prep.dataset.points_flat(),
            oracle.dataset.points_flat(),
            "stored rows must already be normalized (column maxes 0 or 1)"
        );
        assert_eq!(&*prep.skyline_rows, &*oracle.skyline_rows, "skyline rows");
        assert_eq!(
            prep.skyline_data.points_flat(),
            oracle.skyline_data.points_flat()
        );
        assert_eq!(prep.skyline_data.groups(), oracle.skyline_data.groups());
        assert_eq!(prep.group_sizes, oracle.group_sizes);
        assert_eq!(prep.skyline_group_sizes, oracle.skyline_group_sizes);
        assert_eq!(prep.ones_per_col, oracle.ones_per_col);
        assert_eq!(prep.nonzeros_per_col, oracle.nonzeros_per_col);
        // Shard bookkeeping: disjoint skyline/dominated per shard, union
        // over shards = all rows, and each shard's lists are consistent
        // (every dealt row is in exactly one list).
        let mut seen = vec![0usize; prep.dataset.len()];
        for sp in &prep.shards {
            assert_eq!(sp.num_rows, sp.skyline_rows.len() + sp.dominated_rows.len());
            for &r in sp.skyline_rows.iter().chain(&sp.dominated_rows) {
                seen[r] += 1;
            }
            // each shard's local skyline is exact for its own rows
            let mut rows: Vec<usize> = sp
                .skyline_rows
                .iter()
                .chain(&sp.dominated_rows)
                .copied()
                .collect();
            rows.sort_unstable();
            assert_eq!(sp.skyline_rows, group_skyline_of_rows(&prep.dataset, &rows));
        }
        assert!(seen.iter().all(|&c| c == 1), "rows partition across shards");
    }

    #[test]
    fn append_and_delete_track_the_reprep_oracle() {
        let cat = Catalog::new();
        cat.insert_dataset(toy()).unwrap();
        // Dominated append: no skyline changes.
        let out = cat.append_row("toy", &[0.1, 0.1], 0).unwrap();
        assert!(!out.sky_changed && !out.rebuilt);
        assert_matches_oracle(&cat, "toy");
        // Skyline-joining append that prunes a member.
        let out = cat.append_row("toy", &[1.0, 1.0], 0).unwrap();
        assert!(out.sky_changed && !out.rebuilt);
        assert_matches_oracle(&cat, "toy");
        // Delete a dominated row (row 4 = (0.2,0.2) pre-normalization,
        // still dominated after): skyline untouched.
        let out = cat.delete_row("toy", 4).unwrap();
        assert!(!out.sky_changed && !out.rebuilt);
        assert_matches_oracle(&cat, "toy");
        // Delete a skyline member: repair from the dominated set.
        let prep = cat.get("toy").unwrap();
        let member = prep.skyline_rows[0];
        let out = cat.delete_row("toy", member).unwrap();
        assert!(out.sky_changed && !out.rebuilt);
        assert_matches_oracle(&cat, "toy");
    }

    #[test]
    fn invariant_breaking_mutations_take_the_rebuild_path() {
        let cat = Catalog::new();
        cat.insert_dataset(toy()).unwrap();
        // A coordinate past 1 breaks the normalized domain: full rebuild.
        let out = cat.append_row("toy", &[2.0, 0.5], 0).unwrap();
        assert!(out.rebuilt);
        assert_matches_oracle(&cat, "toy");
        // Deleting the only exact-1.0 of a column while interior values
        // remain also rebuilds (the 2.0 append above renormalized; find
        // the row holding column 0's max).
        let prep = cat.get("toy").unwrap();
        let row_max = (0..prep.dataset.len())
            .find(|&i| prep.dataset.point(i)[0] == 1.0)
            .unwrap();
        let out = cat.delete_row("toy", row_max).unwrap();
        assert!(out.rebuilt);
        assert_matches_oracle(&cat, "toy");
    }

    #[test]
    fn mutation_generations_and_digests_move_only_when_they_must() {
        let cat = Catalog::new();
        cat.insert_dataset(toy()).unwrap();
        let before = cat.get("toy").unwrap();
        // Dominated append in group 0: full digest moves (row count and
        // group 0's rows changed), sky digest must NOT (the skyline —
        // contents and ids — is untouched).
        let out = cat.append_row("toy", &[0.05, 0.05], 0).unwrap();
        assert_eq!(out.prep.sky_digest, before.sky_digest);
        assert_ne!(out.prep.full_digest, before.full_digest);
        assert_eq!(out.prep.generations.sky(), before.generations.sky());
        assert_ne!(out.prep.generations.full(), before.generations.full());
        assert_eq!(out.prep.epoch, before.epoch, "mutations never re-epoch");
        // Deleting that trailing dominated row (id n-1, past every
        // skyline id): sky digest again unchanged.
        let n = out.prep.dataset.len();
        let before = out.prep;
        let out = cat.delete_row("toy", n - 1).unwrap();
        assert_eq!(out.prep.sky_digest, before.sky_digest);
        assert_ne!(out.prep.full_digest, before.full_digest);
        // A skyline-changing append moves the sky digest.
        let before = out.prep;
        let out = cat.append_row("toy", &[1.0, 1.0], 1).unwrap();
        assert!(out.sky_changed);
        assert_ne!(out.prep.sky_digest, before.sky_digest);
    }

    #[test]
    fn unchanged_skyline_mutations_share_derived_structures() {
        let cat = Catalog::new();
        cat.insert_dataset(toy()).unwrap();
        let before = cat.get("toy").unwrap();
        let out = cat.append_row("toy", &[0.05, 0.05], 0).unwrap();
        assert!(Arc::ptr_eq(&out.prep.skyline_data, &before.skyline_data));
        assert!(!Arc::ptr_eq(&out.prep.dataset, &before.dataset));
        let out2 = cat.append_row("toy", &[1.0, 1.0], 0).unwrap();
        assert!(!Arc::ptr_eq(&out2.prep.skyline_data, &before.skyline_data));
    }

    #[test]
    fn mutation_errors_are_typed_and_leave_the_catalog_untouched() {
        let cat = Catalog::new();
        cat.insert_dataset(toy()).unwrap();
        let before = cat.get("toy").unwrap();
        assert!(matches!(
            cat.append_row("nope", &[0.1, 0.1], 0),
            Err(ServiceError::UnknownDataset { .. })
        ));
        assert!(matches!(
            cat.append_row("toy", &[0.1], 0),
            Err(ServiceError::Dataset(_))
        ));
        assert!(matches!(
            cat.append_row("toy", &[0.1, 0.1], 99),
            Err(ServiceError::Dataset(_))
        ));
        assert!(matches!(
            cat.delete_row("toy", 999),
            Err(ServiceError::Dataset(_))
        ));
        let after = cat.get("toy").unwrap();
        assert!(
            Arc::ptr_eq(&before, &after),
            "failed mutations publish nothing"
        );
    }

    #[test]
    fn mutation_churn_matches_oracle_across_shard_counts() {
        // A deterministic mixed append/delete workload over several shard
        // counts and both strategies; after every step the incremental
        // state must equal a from-scratch re-prep of the stored rows.
        for shards in [1usize, 3] {
            for strategy in [
                PartitionStrategy::RoundRobin,
                PartitionStrategy::GroupStratified,
            ] {
                let cat = Catalog::with_config(CatalogConfig { shards, strategy });
                cat.insert_dataset(toy()).unwrap();
                let mut x = 0.17_f64;
                for step in 0..40 {
                    let prep = cat.get("toy").unwrap();
                    let n = prep.dataset.len();
                    x = (x * 883.11).fract();
                    if step % 3 == 2 && n > 2 {
                        let row = (x * n as f64) as usize % n;
                        cat.delete_row("toy", row).unwrap();
                    } else {
                        let g = step % 2;
                        // Quantized coords: plenty of ties, duplicates,
                        // exact 1.0s, and zeros.
                        let a = (x * 5.0).floor() / 4.0; // may exceed 1 → rebuilds
                        x = (x * 883.11).fract();
                        let b = (x * 4.0).floor() / 4.0;
                        cat.append_row("toy", &[a.min(1.25), b], g).unwrap();
                    }
                    assert_matches_oracle(&cat, "toy");
                }
            }
        }
    }

    #[test]
    fn rejects_empty_dataset() {
        let empty = Dataset::ungrouped("e", 2, vec![]).unwrap();
        assert!(matches!(
            Catalog::new().insert_dataset(empty),
            Err(ServiceError::Dataset(_))
        ));
    }
}
