//! Zero-copy regression tests for the serving stack.
//!
//! The catalog shares prepared datasets through `Arc<Dataset>`, and the
//! engine hands that same allocation to every solve. These tests pin the
//! contract: N concurrent queries against one dataset perform **zero**
//! dataset deep copies (observed via the [`fairhms_data::deep_clone_count`]
//! probe), return bit-identical answers for identical queries, and leave
//! the catalog as the sole owner of the prepared allocations afterwards.
//!
//! Kept in its own integration-test binary so no unrelated test can move
//! the process-wide clone counter while these assertions run.

use std::sync::Arc;

use fairhms_data::shard::PartitionStrategy;
use fairhms_data::{deep_clone_count, Dataset};
use fairhms_service::{Catalog, CatalogConfig, PreparedDataset, Query, QueryEngine};

fn toy_data() -> Dataset {
    let points = vec![
        1.0, 0.1, 0.8, 0.6, 0.2, 0.9, 0.9, 0.3, 0.4, 0.8, 0.7, 0.7, 0.6, 0.75, 0.95, 0.2,
    ];
    Dataset::new("toy", 2, points, vec![0, 1, 0, 1, 0, 1, 0, 1], vec![]).unwrap()
}

fn toy_engine() -> (Arc<QueryEngine>, Arc<PreparedDataset>) {
    let catalog = Arc::new(Catalog::new());
    let prep = catalog.insert_dataset(toy_data()).unwrap();
    (Arc::new(QueryEngine::new(catalog, 256)), prep)
}

#[test]
fn concurrent_cold_solves_share_one_allocation() {
    let (eng, prep) = toy_engine();
    let clones_before = deep_clone_count();

    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || {
                // A per-thread cold solve (distinct seed) on the skyline
                // path, one on the full-matrix path, and one query shared
                // by every thread.
                let mut mine = Query::new("toy", 3);
                mine.seed = 1_000 + t as u64;
                eng.execute(&mine).unwrap();
                let mut full = mine.clone();
                full.skyline = false;
                eng.execute(&full).unwrap();

                let shared = Query::new("toy", 4);
                let s = eng.execute(&shared).unwrap();
                (s.answer.indices.clone(), s.answer.mhr.map(f64::to_bits))
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // The shared query answers bit-identically on every thread.
    for pair in results.windows(2) {
        assert_eq!(pair[0].0, pair[1].0, "indices differ across threads");
        assert_eq!(pair[0].1, pair[1].1, "mhr bits differ across threads");
    }
    // No solve — skyline or full-matrix, cold or coalesced — deep-copied
    // the dataset. Before the Arc refactor every cold solve did.
    assert_eq!(
        deep_clone_count(),
        clones_before,
        "a solve deep-copied the dataset"
    );
    // Every instance has been dropped: the prepared entry is the sole
    // owner again, so the engine held Arc clones, not private copies.
    assert_eq!(Arc::strong_count(&prep.skyline_data), 1);
    assert_eq!(Arc::strong_count(&prep.dataset), 1);
}

/// The sharded pipeline keeps the zero-deep-copy contract: preparation
/// shards are row-index views into the one shared matrix, and concurrent
/// cold solves against a multi-shard catalog perform zero dataset deep
/// copies while answering bit-identically to the single-shard path.
#[test]
fn sharded_concurrent_cold_solves_stay_zero_copy_and_bit_identical() {
    // Reference answers from an explicitly single-shard catalog.
    let single = Arc::new(Catalog::with_config(CatalogConfig::with_shards(1)));
    single.insert_dataset(toy_data()).unwrap();
    let single = QueryEngine::new(single, 256);
    let reference: Vec<_> = (0..4u64)
        .map(|t| {
            let mut q = Query::new("toy", 3);
            q.seed = 2_000 + t;
            let r = single.execute(&q).unwrap();
            (r.answer.indices.clone(), r.answer.mhr.map(f64::to_bits))
        })
        .collect();

    for strategy in [
        PartitionStrategy::RoundRobin,
        PartitionStrategy::GroupStratified,
    ] {
        let catalog = Arc::new(Catalog::with_config(CatalogConfig {
            shards: 4,
            strategy,
        }));
        // Registration itself (normalize + 4 parallel shard skylines +
        // merge) must not deep-copy: shards share the matrix by view.
        let clones_before = deep_clone_count();
        let prep = catalog.insert_dataset(toy_data()).unwrap();
        assert_eq!(
            deep_clone_count(),
            clones_before,
            "sharded preparation deep-copied the dataset ({strategy})"
        );
        assert_eq!(prep.num_shards(), 4);

        let eng = Arc::new(QueryEngine::new(catalog, 256));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let eng = Arc::clone(&eng);
                std::thread::spawn(move || {
                    let mut q = Query::new("toy", 3);
                    q.seed = 2_000 + t;
                    let r = eng.execute(&q).unwrap();
                    (r.answer.indices.clone(), r.answer.mhr.map(f64::to_bits))
                })
            })
            .collect();
        let got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got, reference, "sharded answers diverged ({strategy})");
        assert_eq!(
            deep_clone_count(),
            clones_before,
            "a sharded cold solve deep-copied the dataset ({strategy})"
        );
        // Engine dropped → catalog is again the sole owner of both
        // prepared allocations.
        drop(eng);
        assert_eq!(Arc::strong_count(&prep.skyline_data), 1);
        assert_eq!(Arc::strong_count(&prep.dataset), 1);
    }
}

#[test]
fn cache_hits_bypass_the_solver_and_share_the_answer() {
    let (eng, _prep) = toy_engine();
    let q = Query::new("toy", 3);
    let cold = eng.execute(&q).unwrap();
    assert!(!cold.cached);

    let clones_after_cold = deep_clone_count();
    for _ in 0..16 {
        let warm = eng.execute(&q).unwrap();
        assert!(warm.cached);
        // The hit returns the very Answer the cold solve produced — no
        // re-solve, no rebuilt payload.
        assert!(
            Arc::ptr_eq(&warm.answer, &cold.answer),
            "cache hit rebuilt the answer"
        );
    }
    let st = eng.cache_stats();
    assert_eq!(st.misses, 1, "cache hits re-entered the solver");
    assert_eq!(st.hits, 16);
    assert_eq!(deep_clone_count(), clones_after_cold);
}
