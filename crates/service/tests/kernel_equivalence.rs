//! Kernel-backend equivalence suite: the cache-blocked SoA kernels must
//! be **provably inert** — every registry algorithm returns bit-identical
//! answers (`mhr` compared by bits) under the `Scalar` and `Blocked`
//! backends, both on cold solves and when reusing warm-start state
//! (δ-net + cached `db_max`). If any of these fail, the kernel layer is
//! changing answers and must not ship.
//!
//! This is the service-level end of the bit-identity contract pinned at
//! unit level in `fairhms_geometry::soa` and by
//! `crates/geometry/tests/kernel_properties.rs`: one accumulator per row,
//! dims ascending, max folded in row order — so switching backends can
//! change speed, never bits. `scripts/ci.sh` additionally re-runs the
//! whole service suite under `FAIRHMS_TEST_KERNEL=scalar`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::registry::ALGORITHM_NAMES;
use fairhms_data::{gen, Dataset};
use fairhms_geometry::soa::{set_kernel_backend, KernelBackend};
use fairhms_service::{Catalog, Query, QueryEngine, WarmConfig};

fn generated(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

fn engine(data: Dataset, warm: bool) -> QueryEngine {
    let cat = Arc::new(Catalog::new());
    cat.insert_dataset(data).unwrap();
    QueryEngine::with_warm_config(
        cat,
        1024,
        WarmConfig {
            enabled: warm,
            capacity: 512,
        },
    )
}

/// One (indices, mhr bits, violations) fingerprint, or the typed error.
type Outcome = Result<(Vec<usize>, Option<u64>, usize), String>;

fn run_suite(backend: KernelBackend, warm: bool) -> Vec<(String, Outcome)> {
    set_kernel_backend(backend);
    // Fresh engine per backend: each builds its own SoA views and warm
    // state under the backend being tested — nothing leaks across runs.
    let eng = engine(generated("kq", 220, 3, 3, 17), warm);
    let mut out = Vec::new();
    for alg in ALGORITHM_NAMES {
        for (k, skyline) in [(4usize, true), (3, false)] {
            // Near-miss α pair: under `warm` the second solve reuses the
            // deposited δ-net and db_max vector, so the warm reuse path
            // itself is part of what must be backend-invariant.
            for alpha in [0.1f64, 0.25] {
                let mut q = Query::new("kq", k);
                q.alg = alg.to_string();
                q.skyline = skyline;
                q.alpha = alpha;
                let ctx = format!("alg={alg} k={k} skyline={skyline} α={alpha} warm={warm}");
                let outcome = match eng.execute(&q) {
                    Ok(r) => Ok((
                        r.answer.indices.clone(),
                        r.answer.mhr.map(f64::to_bits),
                        r.answer.violations,
                    )),
                    Err(e) => Err(format!("{e:?}")),
                };
                out.push((ctx, outcome));
            }
        }
    }
    out
}

/// The headline contract: every registry algorithm × candidate form ×
/// near-miss α pair × {warm, cold} gives identical indices and identical
/// mhr bits under both kernel backends.
#[test]
fn served_answers_are_kernel_backend_invariant() {
    // Remember the environment-selected backend and restore it at the
    // end, so this test composes with the CI kernel matrix and with any
    // concurrently configured test binaries.
    let restore = KernelBackend::from_env();
    for warm in [false, true] {
        let scalar = run_suite(KernelBackend::Scalar, warm);
        let blocked = run_suite(KernelBackend::Blocked, warm);
        assert_eq!(scalar.len(), blocked.len());
        for ((ctx_s, a), (ctx_b, b)) in scalar.iter().zip(&blocked) {
            assert_eq!(ctx_s, ctx_b);
            assert_eq!(a, b, "{ctx_s}: scalar vs blocked outcomes diverged");
        }
        // The sweep must actually have produced answers, not a wall of
        // uniform rejections.
        assert!(
            scalar.iter().filter(|(_, o)| o.is_ok()).count() > scalar.len() / 2,
            "most solves failed — the equivalence sweep is vacuous"
        );
    }
    set_kernel_backend(restore);
}
