//! Mutable-catalog integration suite: the `APPEND`/`DELETE` wire verbs,
//! incremental skyline maintenance pinned against a from-scratch re-prep
//! oracle, and group-delta cache invalidation (cached answers whose
//! digest a mutation did not move must keep hitting).
//!
//! The engine-level interleaving property runs under whatever
//! `FAIRHMS_TEST_SHARDS`/`FAIRHMS_TEST_KERNEL` axes CI selects; the TCP
//! tests additionally run over both codecs and both front ends via
//! `FAIRHMS_TEST_CODEC`/`FAIRHMS_TEST_FRONTEND` (`scripts/ci.sh`).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::registry::ALGORITHM_NAMES;
use fairhms_data::{gen, Dataset};
use fairhms_service::{
    Catalog, FrontendKind, Query, QueryEngine, Response, ServeOptions, Server, ServerConfig,
    WireClient,
};

fn generated(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

/// An engine over one small 2-dimensional dataset (so even `intcov`,
/// exact and 2D-only, participates).
fn engine_with(name: &str, n: usize, seed: u64) -> QueryEngine {
    let catalog = Arc::new(Catalog::new());
    catalog
        .insert_dataset(generated(name, n, 2, 3, seed))
        .unwrap();
    QueryEngine::new(catalog, 4096)
}

/// Rebuilds a fresh engine from the live prep's *stored* rows — the
/// re-prep oracle. The normalization invariant (every column max exactly
/// 0 or 1 after any mutation) makes `prepare`'s normalize the identity
/// on stored rows, so the oracle is exact, not approximate.
fn reprep_oracle(live: &QueryEngine, name: &str) -> QueryEngine {
    let prep = live.catalog().get(name).expect("dataset registered");
    let data = Dataset::new(
        name,
        prep.dataset.dim(),
        prep.dataset.points_flat().to_vec(),
        prep.dataset.groups().to_vec(),
        prep.dataset.group_names().to_vec(),
    )
    .unwrap();
    let catalog = Arc::new(Catalog::new());
    catalog.insert_dataset(data).unwrap();
    QueryEngine::new(catalog, 4096)
}

/// Asserts the live (mutated) engine and a from-scratch re-prep agree:
/// identical group skyline, and bit-identical answers from every
/// registered algorithm in both query forms.
fn assert_matches_oracle(live: &QueryEngine, name: &str, ctx: &str) {
    let fresh = reprep_oracle(live, name);
    let live_prep = live.catalog().get(name).unwrap();
    let fresh_prep = fresh.catalog().get(name).unwrap();
    assert_eq!(
        live_prep.skyline_rows, fresh_prep.skyline_rows,
        "{ctx}: incremental group skyline diverged from re-prep"
    );
    for alg in ALGORITHM_NAMES {
        for skyline in [true, false] {
            let mut q = Query::new(name, 3);
            q.alg = alg.to_string();
            q.skyline = skyline;
            match (live.execute(&q), fresh.execute(&q)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.answer.indices, b.answer.indices,
                        "{ctx}: {alg} skyline={skyline} indices diverged"
                    );
                    assert_eq!(
                        a.answer.mhr.map(f64::to_bits),
                        b.answer.mhr.map(f64::to_bits),
                        "{ctx}: {alg} skyline={skyline} mhr bits diverged"
                    );
                }
                // Typed refusals (e.g. DMM's k-vs-d floor) must agree too.
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "{ctx}: {alg} skyline={skyline} errors diverged")
                }
                (a, b) => panic!(
                    "{ctx}: {alg} skyline={skyline} live/fresh disagree on success: \
                     {a:?} vs {b:?}"
                ),
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Append { coords: [f64; 2], group: usize },
    Delete { raw: usize },
    Query { k: usize, alg: usize, skyline: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The last coordinate choice (1.3) exceeds 1.0, forcing the
    // normalization-rebuild slow path into the interleaving mix.
    const COORDS: [f64; 6] = [0.0, 0.2, 0.5, 0.85, 1.0, 1.3];
    (
        (
            0usize..3,
            0usize..COORDS.len(),
            0usize..COORDS.len(),
            0usize..3,
        ),
        (
            0usize..10_000,
            2usize..5,
            0usize..ALGORITHM_NAMES.len(),
            0usize..2,
        ),
    )
        .prop_map(|((kind, xi, yi, group), (raw, k, alg, sky))| match kind {
            0 => Op::Append {
                coords: [COORDS[xi], COORDS[yi]],
                group,
            },
            1 => Op::Delete { raw },
            _ => Op::Query {
                k,
                alg,
                skyline: sky == 0,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole pin: any interleaving of APPEND/DELETE/QUERY leaves the
    /// catalog — skylines, shard views, every derived structure answers
    /// are solved from — bit-identical to preparing the surviving rows
    /// from scratch. Queries run *between* mutations so stale `OnceLock`
    /// SoA views or cached `db_max` preimages would be observed, not
    /// skipped over.
    #[test]
    fn mutation_interleavings_match_a_fresh_reprep(ops in proptest::collection::vec(op_strategy(), 0..14)) {
        let live = engine_with("mut", 40, 17);
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Append { coords, group } => {
                    live.append_row("mut", coords, *group).unwrap();
                }
                Op::Delete { raw } => {
                    let rows = live.catalog().get("mut").unwrap().dataset.len();
                    if rows > 4 {
                        live.delete_row("mut", raw % rows).unwrap();
                    }
                }
                Op::Query { k, alg, skyline } => {
                    let mut q = Query::new("mut", *k);
                    q.alg = ALGORITHM_NAMES[*alg].to_string();
                    q.skyline = *skyline;
                    // Typed refusals (small-k floors) are fine mid-run;
                    // the oracle comparison re-checks them at the end.
                    let _ = live.execute(&q);
                }
            }
            if i == ops.len() - 1 {
                assert_matches_oracle(&live, "mut", &format!("after {} ops", ops.len()));
            }
        }
        if ops.is_empty() {
            assert_matches_oracle(&live, "mut", "no ops");
        }
    }
}

/// Staleness regression: a query answered *before* a mutation must not
/// leave any derived structure (`Dataset::soa()` SoA views, cached
/// `db_max` preimages, shard prep) serving pre-mutation rows afterwards.
/// Runs under both kernel backends via the `FAIRHMS_TEST_KERNEL` axis in
/// `scripts/ci.sh`.
#[test]
fn append_after_queries_serves_fresh_rows() {
    let live = engine_with("stale", 60, 23);
    // Populate every cache tier and OnceLock before mutating.
    for alg in ALGORITHM_NAMES {
        for skyline in [true, false] {
            let mut q = Query::new("stale", 3);
            q.alg = alg.to_string();
            q.skyline = skyline;
            let _ = live.execute(&q);
        }
    }
    // A dominating point: every group-0 skyline answer must now see it.
    let rep = live.append_row("stale", &[1.0, 1.0], 0).unwrap();
    assert!(
        rep.sky_changed,
        "a dominating append must change the skyline"
    );
    assert_matches_oracle(&live, "stale", "after dominating append");

    // And the delete direction: drop the dominating row again.
    let rows = live.catalog().get("stale").unwrap().dataset.len();
    let rep = live.delete_row("stale", rows - 1).unwrap();
    assert!(rep.sky_changed);
    assert_matches_oracle(&live, "stale", "after deleting the dominator");
}

fn spawn_two_dataset_server(frontend: Option<FrontendKind>) -> Server {
    let catalog = Arc::new(Catalog::new());
    catalog
        .insert_dataset(generated("demo", 120, 2, 3, 11))
        .unwrap();
    catalog
        .insert_dataset(generated("other", 80, 2, 2, 7))
        .unwrap();
    let engine = Arc::new(QueryEngine::new(catalog, 4096));
    let mut opts = ServeOptions::default();
    if let Some(f) = frontend {
        opts.frontend = f;
    }
    Server::spawn_with(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
        },
        opts,
    )
    .unwrap()
}

fn warm(client: &mut WireClient, q: &Query) {
    let cold = client.query(q).unwrap();
    assert!(!cold.cached, "first solve must be cold");
    let hot = client.query(q).unwrap();
    assert!(hot.cached, "second solve must hit the cache");
}

/// Satellite pin: delta invalidation over the wire. A dominated append
/// moves only the full-form digest, so the skyline-form cached answer
/// and every entry for an untouched dataset keep hitting; a
/// sky-changing append drops the skyline-form entry too.
#[test]
fn delta_invalidation_preserves_untouched_cached_answers() {
    let server = spawn_two_dataset_server(None);
    let addr = server.addr();
    let mut client = WireClient::connect_env(addr).unwrap();

    let mut q_sky = Query::new("demo", 3);
    q_sky.alg = "bigreedy".into();
    let mut q_full = q_sky.clone();
    q_full.skyline = false;
    let mut q_other = Query::new("other", 3);
    q_other.alg = "f-greedy".into();
    warm(&mut client, &q_sky);
    warm(&mut client, &q_full);
    warm(&mut client, &q_other);

    // 1. Dominated append: (0,0) sits under every group-0 point.
    let resp = client.append("demo", &[0.0, 0.0], 0).unwrap();
    let Response::Mutated {
        op,
        sky_changed,
        rows,
        ..
    } = &resp
    else {
        panic!("expected Mutated, got {resp:?}");
    };
    assert_eq!(op, "append");
    assert_eq!(*rows, 121);
    assert!(!sky_changed, "(0,0) must be dominated");
    // Skyline-form entry survives (sky digest unmoved); the untouched
    // dataset survives; the full-form entry is gone (row count moved).
    assert!(
        client.query(&q_sky).unwrap().cached,
        "sky entry must survive"
    );
    assert!(
        client.query(&q_other).unwrap().cached,
        "other dataset must survive"
    );
    assert!(
        !client.query(&q_full).unwrap().cached,
        "full entry must drop"
    );
    let hot = client.query(&q_full).unwrap();
    assert!(hot.cached);

    // 2. Dominated delete of the appended row (highest id, off-skyline:
    //    no generation moves except full).
    let resp = client.delete("demo", 120).unwrap();
    let Response::Mutated {
        op,
        sky_changed,
        rows,
        ..
    } = &resp
    else {
        panic!("expected Mutated, got {resp:?}");
    };
    assert_eq!(op, "delete");
    assert_eq!(*rows, 120);
    assert!(!sky_changed);
    assert!(
        client.query(&q_sky).unwrap().cached,
        "sky entry must still survive"
    );
    assert!(client.query(&q_other).unwrap().cached);

    // 3. Sky-changing append drops the skyline-form entry as well.
    let resp = client.append("demo", &[1.0, 1.0], 0).unwrap();
    let Response::Mutated { sky_changed, .. } = &resp else {
        panic!("expected Mutated, got {resp:?}");
    };
    assert!(sky_changed, "(1,1) must enter the skyline");
    assert!(!client.query(&q_sky).unwrap().cached, "sky entry must drop");
    assert!(
        client.query(&q_other).unwrap().cached,
        "other dataset still untouched"
    );

    // STATS counts all three mutations (appended-field, both codecs).
    client.send_line("STATS").unwrap();
    match client.recv().unwrap() {
        Response::Stats {
            mutations_total, ..
        } => assert_eq!(mutations_total, 3),
        other => panic!("expected Stats, got {other:?}"),
    }
    server.shutdown();
}

/// Mutation errors are typed wire errors and leave the connection usable.
#[test]
fn mutation_errors_answer_err_and_keep_the_connection() {
    let server = spawn_two_dataset_server(None);
    let addr = server.addr();
    let mut client = WireClient::connect_env(addr).unwrap();

    // Unknown dataset, wrong dimension, out-of-range row.
    for line in [
        "APPEND name=absent row=0.5,0.5 group=0",
        "APPEND name=demo row=0.5,0.5,0.5 group=0",
        "APPEND name=demo row=0.5,0.5 group=99",
        "DELETE name=demo row=100000",
        "DELETE name=absent row=0",
    ] {
        client.send_line(line).unwrap();
        match client.recv().unwrap() {
            Response::Error { .. } => {}
            other => panic!("{line}: expected ERR, got {other:?}"),
        }
    }
    // The connection still answers; and no mutation was counted.
    client.send_line("STATS").unwrap();
    match client.recv().unwrap() {
        Response::Stats {
            mutations_total, ..
        } => assert_eq!(mutations_total, 0),
        other => panic!("expected Stats, got {other:?}"),
    }
    server.shutdown();
}

/// Pipelined mutate→query keeps sequential semantics on both front ends:
/// the query arriving in the same TCP segment as the APPEND must execute
/// *after* it (the event front end parks the connection's input behind
/// its control barrier; the threaded front end is sequential by
/// construction).
#[test]
fn pipelined_mutate_then_query_is_sequential_on_both_front_ends() {
    for frontend in [FrontendKind::Threaded, FrontendKind::Event] {
        let server = spawn_two_dataset_server(Some(frontend));
        let addr = server.addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        // One write carrying both requests: a sky-changing append and a
        // skyline query behind it.
        write!(
            writer,
            "APPEND name=demo row=1.0,1.0 group=0\nQUERY dataset=demo k=3 alg=bigreedy\n"
        )
        .unwrap();
        writer.flush().unwrap();

        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("OK mutated") && line.contains("sky_changed=true"),
            "{frontend}: first frame must be the mutation ack, got {line:?}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("OK alg="),
            "{frontend}: second frame must be the answer, got {line:?}"
        );

        // If the pipelined query had raced ahead of the append, its cache
        // entry would carry the pre-mutation digest and the append would
        // have dropped it — this follow-up would then be a cold miss.
        let mut follow = WireClient::connect(addr).unwrap();
        let mut q = Query::new("demo", 3);
        q.alg = "bigreedy".into();
        let hit = follow.query(&q).unwrap();
        assert!(
            hit.cached,
            "{frontend}: pipelined query must have executed after the append"
        );
        server.shutdown();
    }
}
