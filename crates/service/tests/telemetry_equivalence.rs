//! Telemetry equivalence suite: recording per-stage histograms must be
//! **provably inert** — every registry algorithm returns bit-identical
//! answers (`mhr` compared by bits) with telemetry enabled vs. disabled
//! — and the METRICS wire surface must report a non-zero snapshot over
//! *both* codecs after a mixed workload.
//!
//! Engines are built with *explicit* [`TelemetryConfig`]s, so the suite
//! pins the contract under any `FAIRHMS_TEST_TELEMETRY` environment the
//! CI matrix selects.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::registry::ALGORITHM_NAMES;
use fairhms_data::{gen, Dataset};
use fairhms_service::{
    Catalog, CodecKind, Query, QueryEngine, Server, ServerConfig, TelemetryConfig, WarmConfig,
    WireClient,
};

fn generated(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

fn engine(data: Dataset, telemetry: bool) -> QueryEngine {
    let cat = Arc::new(Catalog::new());
    let eng = QueryEngine::with_config(
        Arc::clone(&cat),
        1024,
        WarmConfig {
            enabled: true,
            capacity: 256,
        },
        TelemetryConfig { enabled: telemetry },
    );
    cat.insert_dataset(data).unwrap();
    eng
}

fn assert_same_outcome(
    a: &Result<fairhms_service::QueryResponse, fairhms_service::ServiceError>,
    b: &Result<fairhms_service::QueryResponse, fairhms_service::ServiceError>,
    ctx: &str,
) {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.answer.indices, b.answer.indices,
                "{ctx}: indices diverged"
            );
            assert_eq!(
                a.answer.mhr.map(f64::to_bits),
                b.answer.mhr.map(f64::to_bits),
                "{ctx}: mhr bits diverged"
            );
            assert_eq!(
                a.answer.violations, b.answer.violations,
                "{ctx}: violations diverged"
            );
            assert_eq!(a.answer.alg, b.answer.alg, "{ctx}: alg name diverged");
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{ctx}: errors diverged"),
        (a, b) => panic!("{ctx}: one path failed, the other did not: {a:?} vs {b:?}"),
    }
}

/// The headline contract: every registry algorithm, both bounds
/// policies, skyline on/off, cold and cached, is bit-identical between
/// a telemetry-on engine and a telemetry-off one. Spans read clocks and
/// bump atomics — they must never touch solver state.
#[test]
fn served_answers_are_telemetry_invariant() {
    let data = || generated("tel", 240, 2, 3, 21);
    let on = engine(data(), true);
    let off = engine(data(), false);

    for alg in ALGORITHM_NAMES {
        for (k, balanced, skyline) in [(3usize, false, true), (5, true, true), (4, false, false)] {
            for alpha in [0.05f64, 0.2] {
                let mut q = Query::new("tel", k);
                q.alg = alg.to_string();
                q.balanced = balanced;
                q.skyline = skyline;
                q.alpha = alpha;
                // Twice each: the repeat exercises the cache-hit path
                // (whose lookup span is the hottest) on both engines.
                for round in 0..2 {
                    let a = on.execute(&q);
                    let b = off.execute(&q);
                    assert_same_outcome(
                        &a,
                        &b,
                        &format!(
                            "alg={alg} k={k} balanced={balanced} skyline={skyline} \
                             α={alpha} round={round}"
                        ),
                    );
                }
            }
        }
    }

    // Telemetry actually recorded on the enabled engine…
    let snap = on.metrics().snapshot();
    assert!(snap.enabled);
    assert!(
        snap.histograms
            .iter()
            .any(|(n, h)| n == "engine.cache_lookup" && h.count() > 0),
        "no cache_lookup spans recorded"
    );
    assert!(
        snap.histograms
            .iter()
            .any(|(n, h)| n.starts_with("engine.solve.") && h.count() > 0),
        "no solve spans recorded"
    );
    // …and the disabled engine recorded no histogram samples at all
    // (total_queries is an always-on counter by design).
    let snap_off = off.metrics().snapshot();
    assert!(!snap_off.enabled);
    assert!(
        snap_off.histograms.iter().all(|(_, h)| h.count() == 0),
        "disabled telemetry recorded spans: {:?}",
        snap_off
            .histograms
            .iter()
            .map(|(n, _)| n)
            .collect::<Vec<_>>()
    );
    assert_eq!(snap_off.histograms.len(), 0, "empty histograms not elided");
}

/// The `stages` breakdown rides on responses exactly when telemetry is
/// on, and its parts are consistent with the total.
#[test]
fn stage_timings_present_iff_telemetry_enabled() {
    let on = engine(generated("st", 160, 2, 3, 7), true);
    let off = engine(generated("st", 160, 2, 3, 7), false);
    let q = Query::new("st", 4);

    let cold = on.execute(&q).unwrap();
    let st = cold.stages.expect("telemetry on: stages missing");
    assert!(st.solve_ns > 0, "cold solve recorded no solve time");
    let hit = on.execute(&q).unwrap();
    assert!(hit.cached);
    let st = hit.stages.expect("telemetry on: stages missing on hit");
    assert_eq!(st.solve_ns, 0, "cache hit must not report solve time");

    assert!(off.execute(&q).unwrap().stages.is_none());
    assert!(off.execute(&q).unwrap().stages.is_none());
}

/// METRICS over a real TCP server: after a mixed workload the snapshot
/// is non-zero, and the text and binary codecs decode the same counter
/// set (histogram quantiles are monotone; counts match across codecs
/// for the already-recorded past).
#[test]
fn metrics_verb_reports_nonzero_over_both_codecs() {
    let cat = Arc::new(Catalog::new());
    let eng = Arc::new(QueryEngine::with_config(
        Arc::clone(&cat),
        1024,
        WarmConfig {
            enabled: true,
            capacity: 64,
        },
        TelemetryConfig { enabled: true },
    ));
    cat.insert_dataset(generated("wire", 200, 2, 3, 5)).unwrap();
    let server = Server::spawn(
        Arc::clone(&eng),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
        },
    )
    .unwrap();
    let addr = server.addr();

    // Mixed workload over BOTH codecs: cold solves, repeats (hits), an
    // error, and a batch.
    for kind in [CodecKind::Text, CodecKind::Binary] {
        let mut client = WireClient::negotiate(addr, kind).unwrap();
        for k in [3usize, 4, 5] {
            let mut q = Query::new("wire", k);
            q.alg = "bigreedy".into();
            client.query(&q).unwrap();
            client.query(&q).unwrap(); // cache hit
        }
        let qs: Vec<Query> = (3..7).map(|k| Query::new("wire", k)).collect();
        let results = client.batch(&qs, false).unwrap();
        assert_eq!(results.len(), qs.len());
    }

    // METRICS decodes over both codecs and reports the workload.
    for kind in [CodecKind::Text, CodecKind::Binary] {
        let mut client = WireClient::negotiate(addr, kind).unwrap();
        let (enabled, counters, histograms) = client.metrics().unwrap();
        assert!(enabled, "codec {kind:?}: telemetry reported disabled");
        let total = counters
            .iter()
            .find(|(n, _)| n == "queries.total")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(total >= 20, "codec {kind:?}: queries.total = {total}");
        for want in ["engine.cache_lookup", "server.encode", "executor.run"] {
            let h = histograms
                .iter()
                .find(|h| h.name == want)
                .unwrap_or_else(|| panic!("codec {kind:?}: histogram {want} missing"));
            assert!(h.count > 0, "codec {kind:?}: {want} empty");
            assert!(
                h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max,
                "codec {kind:?}: {want} quantiles not monotone: {h:?}"
            );
        }
        assert!(
            histograms
                .iter()
                .any(|h| h.name.starts_with("engine.solve.") && h.count > 0),
            "codec {kind:?}: no per-family solve histogram"
        );
    }

    server.shutdown();
}
