//! Deterministic overload and fault-injection harness for the serving
//! front ends.
//!
//! Pins the admission-control contract of the event front end — idle
//! connections cost poll-set entries rather than threads, the bounded
//! solve queue sheds with typed `retry_after_ms` advice, per-connection
//! quotas refuse pipelined floods without desynchronizing, and the
//! `queue_depth`/`shed_total`/`conns_open` gauges agree exactly with
//! what clients observed — plus the fault-injection matrix both front
//! ends must survive: clients dropping mid-frame (text and binary),
//! half-written handshakes, byte-at-a-time delivery, abandoned batch
//! bodies, and vanished streamed-batch readers, none of which may leak a
//! quota/stream slot, desync another connection, or wedge shutdown.
//!
//! Determinism comes from configuration, not timing: `queue_depth: 0`
//! sheds every solve, quota limits of 0 shed every admission, and the
//! accounting identities (`observed busy == shed_total`,
//! `answered + shed == burst`) hold under any scheduling.

#![allow(clippy::disallowed_methods)] // tests bound waits with deadlines (R5 exempts test code)
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_data::{gen, Dataset};
use fairhms_service::codec::CodecKind;
use fairhms_service::protocol::{parse_response, Response};
use fairhms_service::{
    Catalog, FrontendKind, Query, QueryEngine, ServeOptions, Server, ServerConfig, WireClient,
};

fn generated(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

fn spawn(workers: usize, opts: ServeOptions) -> Server {
    let catalog = Arc::new(Catalog::new());
    catalog
        .insert_dataset(generated("demo", 120, 2, 3, 11))
        .unwrap();
    let engine = Arc::new(QueryEngine::new(catalog, 4096));
    Server::spawn_with(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
        },
        opts,
    )
    .unwrap()
}

fn event_opts() -> ServeOptions {
    ServeOptions {
        frontend: FrontendKind::Event,
        ..ServeOptions::default()
    }
}

/// Connects and completes one PING round trip, so the server has
/// definitely accepted (and counted) the connection.
fn connect_pinged(server: &Server) -> WireClient {
    let mut c = WireClient::connect(server.addr()).unwrap();
    c.send_line("PING").unwrap();
    assert_eq!(c.recv().unwrap(), Response::Pong);
    c
}

/// The admission gauges from a `STATS` round trip:
/// `(queue_depth, shed_total, conns_open)`.
fn gauges(client: &mut WireClient) -> (u64, u64, u64) {
    client.send_line("STATS").unwrap();
    match client.recv().unwrap() {
        Response::Stats {
            queue_depth,
            shed_total,
            conns_open,
            ..
        } => (queue_depth, shed_total, conns_open),
        other => panic!("expected STATS, got {other:?}"),
    }
}

/// Number of OS threads in this test process (Linux).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// Polls `probe` until `cond` holds on the gauges or the deadline
/// passes; disconnect cleanup is asynchronous on both front ends.
fn wait_for_gauges(probe: &mut WireClient, cond: impl Fn((u64, u64, u64)) -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let g = gauges(probe);
        if cond(g) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last gauges {g:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------
// Overload: idle fan-out, bounded-queue sheds, quotas, accounting
// ---------------------------------------------------------------------

/// The tentpole resource claim: 500 mostly-idle connections on the event
/// front end cost poll-set entries, not threads — the process grows by
/// the event loop plus the worker pool only — and every one of them is
/// visible in the `conns_open` gauge.
#[test]
fn five_hundred_idle_connections_hold_no_threads() {
    const WORKERS: usize = 2;
    let baseline = thread_count();
    let server = spawn(WORKERS, event_opts());
    let mut idle = Vec::with_capacity(500);
    for _ in 0..500 {
        idle.push(connect_pinged(&server));
    }
    let grown = thread_count() - baseline;
    assert!(
        grown <= WORKERS + 4,
        "event front end grew {grown} threads for 500 idle connections \
         (expected <= workers {WORKERS} + 4)"
    );

    let mut probe = connect_pinged(&server);
    let (_, _, conns_open) = gauges(&mut probe);
    assert_eq!(conns_open, 501, "500 idle connections + the probe");

    // Disconnects are observed and the gauge settles back to the probe.
    drop(idle);
    wait_for_gauges(&mut probe, |(_, _, c)| c == 1, "conns_open to settle");
    server.shutdown();
}

/// A burst past the solve-queue bound sheds deterministically
/// (`queue_depth: 0` refuses every admission): every response is a typed
/// busy carrying actionable retry advice, and the gauges account for the
/// burst exactly.
#[test]
fn bounded_queue_sheds_bursts_with_retry_advice_and_exact_gauges() {
    const IDLE: usize = 50;
    const BURST: usize = 40;
    let server = spawn(
        1,
        ServeOptions {
            queue_depth: 0,
            ..event_opts()
        },
    );
    let _idle: Vec<WireClient> = (0..IDLE).map(|_| connect_pinged(&server)).collect();

    // Pipeline the whole burst in one write; the loop sheds each QUERY
    // at admission and answers in request order.
    let mut burst = WireClient::connect(server.addr()).unwrap();
    let block = "QUERY dataset=demo k=3 alg=bigreedy\n".repeat(BURST);
    burst.send_line(block.trim_end()).unwrap();
    let mut shed = 0usize;
    for i in 0..BURST {
        match burst.recv().unwrap() {
            Response::Busy {
                seq: None,
                retry_after_ms,
                message,
            } => {
                assert!(retry_after_ms >= 1, "frame {i}: advice must be actionable");
                assert!(
                    message.contains("solve queue full (depth 0)"),
                    "frame {i}: unexpected shed reason {message:?}"
                );
                shed += 1;
            }
            other => panic!("frame {i}: expected ERR busy, got {other:?}"),
        }
    }
    assert_eq!(shed, BURST, "a zero-depth queue sheds the whole burst");

    let mut probe = connect_pinged(&server);
    let (queue_depth, shed_total, conns_open) = gauges(&mut probe);
    assert_eq!(queue_depth, 0, "nothing was admitted");
    assert_eq!(
        shed_total, BURST as u64,
        "shed_total must match the busy responses clients observed"
    );
    assert_eq!(conns_open, (IDLE + 2) as u64, "idle + burst + probe");
    server.shutdown();
}

/// With a real (nonzero) queue bound, sheds and answers partition the
/// burst exactly: `answered + shed == burst` and `shed_total` equals the
/// busy frames the client saw — under any worker scheduling.
#[test]
fn sheds_plus_answers_account_for_the_whole_burst() {
    const BURST: usize = 12;
    let server = spawn(
        1,
        ServeOptions {
            queue_depth: 4,
            ..event_opts()
        },
    );
    let mut burst = WireClient::connect(server.addr()).unwrap();
    let block = "QUERY dataset=demo k=3 alg=bigreedy\n".repeat(BURST);
    burst.send_line(block.trim_end()).unwrap();
    let (mut answered, mut shed) = (0u64, 0u64);
    for i in 0..BURST {
        match burst.recv().unwrap() {
            Response::Answer { answer, .. } => {
                assert_eq!(answer.indices.len(), 3, "frame {i}");
                answered += 1;
            }
            Response::Busy { retry_after_ms, .. } => {
                assert!(retry_after_ms >= 1, "frame {i}");
                shed += 1;
            }
            other => panic!("frame {i}: expected answer or busy, got {other:?}"),
        }
    }
    assert_eq!(answered + shed, BURST as u64);

    let mut probe = connect_pinged(&server);
    let (queue_depth, shed_total, _) = gauges(&mut probe);
    assert_eq!(queue_depth, 0, "the queue drained");
    assert_eq!(shed_total, shed, "gauge and observed sheds must agree");
    server.shutdown();
}

/// Per-connection quotas (limits of 0 make the shed deterministic)
/// refuse single queries and batches with typed busy errors, and the
/// connection stays perfectly synchronized afterwards.
#[test]
fn per_connection_quotas_shed_without_desync() {
    let server = spawn(
        1,
        ServeOptions {
            max_inflight_queries: 0,
            max_conn_batches: 0,
            ..event_opts()
        },
    );
    let mut c = WireClient::connect(server.addr()).unwrap();

    c.send_line("QUERY dataset=demo k=3").unwrap();
    match c.recv().unwrap() {
        Response::Busy {
            retry_after_ms,
            message,
            ..
        } => {
            assert!(retry_after_ms >= 1);
            assert!(
                message.contains("queries in flight on this connection (limit 0)"),
                "unexpected quota reason {message:?}"
            );
        }
        other => panic!("expected busy, got {other:?}"),
    }

    let queries = vec![Query::new("demo", 2), Query::new("demo", 3)];
    match c.send_batch(&queries, false).unwrap() {
        Response::Busy { message, .. } => assert!(
            message.contains("batches in flight on this connection (limit 0)"),
            "unexpected quota reason {message:?}"
        ),
        other => panic!("expected busy, got {other:?}"),
    }

    // Both sheds consumed their full request (batch body included): the
    // connection is not desynchronized.
    c.send_line("PING").unwrap();
    assert_eq!(c.recv().unwrap(), Response::Pong);

    let (_, shed_total, _) = gauges(&mut c);
    assert_eq!(shed_total, 2, "one per refused admission");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Fault injection (both front ends)
// ---------------------------------------------------------------------

/// The full client-misbehavior matrix; run identically against both
/// front ends. Every scenario must leave the server answering cleanly on
/// other connections, release every quota/stream slot, settle the
/// `conns_open` gauge, and shut down promptly.
fn fault_injection_suite(frontend: FrontendKind) {
    let server = spawn(
        2,
        ServeOptions {
            frontend,
            max_stream_batches: 1,
            ..ServeOptions::default()
        },
    );
    let addr = server.addr();
    let mut probe = connect_pinged(&server);

    // (a) Drop mid-line: a text request with no terminator.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"QUERY dataset=demo k=3").unwrap();
        drop(s);
    }
    // (b) Half-written HELLO handshake.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"HELLO version=2 cod").unwrap();
        drop(s);
    }
    // (c) Binary client vanishes mid-response-frame: negotiate binary,
    // request a solve, read two bytes of the length-prefixed frame, die.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"HELLO version=2 codec=binary\n").unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut ack = String::new();
        r.read_line(&mut ack).unwrap();
        assert_eq!(ack.trim(), "OK version=2 codec=binary");
        s.write_all(b"QUERY dataset=demo k=3 alg=bigreedy\n")
            .unwrap();
        let mut partial = [0u8; 2];
        std::io::Read::read_exact(&mut r, &mut partial).unwrap();
        drop(s);
    }
    // (d) Abandoned batch body: header promises 3 lines, one arrives.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"BATCH 3\nQUERY dataset=demo k=2\n").unwrap();
        drop(s);
    }
    // After every drop the server still answers instantly elsewhere.
    probe.send_line("PING").unwrap();
    assert_eq!(probe.recv().unwrap(), Response::Pong);

    // (e) Byte-at-a-time delivery makes progress and never desyncs a
    // concurrent connection: between every single byte the fast client
    // completes a full round trip.
    {
        let slow = TcpStream::connect(addr).unwrap();
        for &byte in b"QUERY dataset=demo k=3 alg=bigreedy\n".iter() {
            (&slow).write_all(&[byte]).unwrap();
            probe.send_line("PING").unwrap();
            assert_eq!(probe.recv().unwrap(), Response::Pong);
        }
        let mut r = BufReader::new(slow);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let ans = parse_response(line.trim()).unwrap();
        assert_eq!(ans.indices.len(), 3, "byte-at-a-time query still solves");
    }

    // (f) A streamed-batch reader that vanishes must release the gate
    // slot (max_stream_batches: 1 makes a leak block forever).
    let queries = vec![Query::new("demo", 2), Query::new("demo", 3)];
    {
        let mut a = WireClient::connect(addr).unwrap();
        match a.send_batch(&queries, true).unwrap() {
            Response::BatchHeader { n: 2, stream: true } => {}
            other => panic!("expected stream header, got {other:?}"),
        }
        drop(a); // never reads its frames
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut b = WireClient::connect(addr).unwrap();
        match b.send_batch(&queries, true).unwrap() {
            Response::BatchHeader { .. } => {
                for _ in 0..queries.len() {
                    b.recv().unwrap();
                }
                break; // slot was released
            }
            Response::Busy { .. } => {
                assert!(
                    Instant::now() < deadline,
                    "stream-gate slot leaked by a vanished reader"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected header or busy, got {other:?}"),
        }
    }

    // Every faulty connection is reaped: the gauge settles to the probe.
    wait_for_gauges(&mut probe, |(_, _, c)| c == 1, "conns_open to settle");

    // (g) Shutdown completes promptly even with an idle client attached.
    let _idle = TcpStream::connect(addr).unwrap();
    let t = Instant::now();
    server.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(3),
        "shutdown wedged after fault injection"
    );
}

#[test]
fn fault_injection_event_frontend() {
    fault_injection_suite(FrontendKind::Event);
}

#[test]
fn fault_injection_threaded_frontend() {
    fault_injection_suite(FrontendKind::Threaded);
}

// ---------------------------------------------------------------------
// Pipelining and half-close ordering contracts (both front ends)
// ---------------------------------------------------------------------

/// A pipelined codec switch re-codes only what follows it: a `QUERY`
/// admitted before `HELLO codec=binary` must answer through the codec in
/// effect when it was parsed, even though its solve completes after the
/// switch — exactly the frame sequence a sequential connection thread
/// produces.
fn pipelined_hello_recodes_only_later_requests(frontend: FrontendKind) {
    let server = spawn(
        2,
        ServeOptions {
            frontend,
            ..ServeOptions::default()
        },
    );
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(
        b"QUERY dataset=demo k=3 alg=bigreedy\n\
          HELLO version=2 codec=binary\n\
          QUERY dataset=demo k=3 alg=bigreedy\n",
    )
    .unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    let text = CodecKind::Text.new_codec();
    let binary = CodecKind::Binary.new_codec();

    // Frame 1: the pre-switch query, in text.
    let first = match text.read_frame(&mut r).unwrap() {
        Some(Response::Answer { answer, .. }) => answer,
        other => panic!("expected a text-coded answer first, got {other:?}"),
    };
    // Frame 2: the HELLO ack, still text (the previous codec).
    match text.read_frame(&mut r).unwrap() {
        Some(Response::Hello { codec, .. }) => assert_eq!(codec, CodecKind::Binary),
        other => panic!("expected the text-coded HELLO ack second, got {other:?}"),
    }
    // Frame 3: the post-switch query, in binary.
    let third = match binary.read_frame(&mut r).unwrap() {
        Some(Response::Answer { answer, .. }) => answer,
        other => panic!("expected a binary-coded answer third, got {other:?}"),
    };
    assert_eq!(
        first.indices, third.indices,
        "same query before and after the switch must agree"
    );
    server.shutdown();
}

#[test]
fn pipelined_hello_recodes_only_later_requests_event() {
    pipelined_hello_recodes_only_later_requests(FrontendKind::Event);
}

#[test]
fn pipelined_hello_recodes_only_later_requests_threaded() {
    pipelined_hello_recodes_only_later_requests(FrontendKind::Threaded);
}

/// Requests received before a FIN still answer: a client that sends a
/// query and immediately half-closes its write side must receive the
/// answer, then a clean EOF.
fn half_close_still_answers_admitted_work(frontend: FrontendKind) {
    let server = spawn(
        2,
        ServeOptions {
            frontend,
            ..ServeOptions::default()
        },
    );
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"QUERY dataset=demo k=3 alg=bigreedy\n")
        .unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let mut r = BufReader::new(s);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    let ans = parse_response(line.trim()).unwrap();
    assert_eq!(
        ans.indices.len(),
        3,
        "half-closed connection lost its in-flight answer"
    );
    line.clear();
    assert_eq!(
        r.read_line(&mut line).unwrap(),
        0,
        "expected a clean EOF after the final answer"
    );
    server.shutdown();
}

#[test]
fn half_close_still_answers_admitted_work_event() {
    half_close_still_answers_admitted_work(FrontendKind::Event);
}

#[test]
fn half_close_still_answers_admitted_work_threaded() {
    half_close_still_answers_admitted_work(FrontendKind::Threaded);
}

/// On the event front end `LOAD` executes on the worker pool (a disk
/// read must not stall the loop), but requests pipelined behind it keep
/// their sequential order: LOAD-then-QUERY written as one block answers
/// `Loaded` first and then solves against the freshly loaded dataset.
#[test]
fn pipelined_load_then_query_keeps_sequential_order() {
    let root = std::env::temp_dir().join("fairhms_overload_load_root");
    std::fs::create_dir_all(&root).unwrap();
    let mut csv = String::new();
    for i in 0..40 {
        let x = (i as f64) / 40.0;
        csv.push_str(&format!("{},{},g{}\n", x, 1.0 - x, i % 2));
    }
    std::fs::write(root.join("extra.csv"), csv).unwrap();

    let server = spawn(
        2,
        ServeOptions {
            load_root: Some(root),
            ..event_opts()
        },
    );
    let mut c = WireClient::connect(server.addr()).unwrap();
    // One write: the query races the load unless admission is ordered.
    c.send_line("LOAD name=extra path=extra.csv\nQUERY dataset=extra k=3")
        .unwrap();
    match c.recv().unwrap() {
        Response::Loaded { name, rows, .. } => {
            assert_eq!((name.as_str(), rows), ("extra", 40));
        }
        other => panic!("expected Loaded first, got {other:?}"),
    }
    match c.recv().unwrap() {
        Response::Answer { answer, .. } => assert_eq!(
            answer.indices.len(),
            3,
            "pipelined query must see the loaded dataset"
        ),
        other => panic!("expected the pipelined query's answer second, got {other:?}"),
    }
    // The connection (and its input barrier) is fully released.
    c.send_line("PING").unwrap();
    assert_eq!(c.recv().unwrap(), Response::Pong);
    server.shutdown();
}

/// Shutdown on the event front end is a wake, not a timeout expiry: with
/// 100 idle connections attached it completes promptly.
#[test]
fn event_shutdown_is_immediate_with_idle_connections() {
    let server = spawn(2, event_opts());
    let _idle: Vec<WireClient> = (0..100).map(|_| connect_pinged(&server)).collect();
    let t = Instant::now();
    server.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "event shutdown took {:?} with idle connections",
        t.elapsed()
    );
}
