//! Sharded-catalog equivalence suite: prepared datasets and served
//! answers must be **bit-identical** for every shard count and partition
//! strategy. This is the contract that makes `--shards` a pure
//! preparation-latency knob — if any of these fail, sharding is changing
//! answers and must not ship.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::registry::ALGORITHM_NAMES;
use fairhms_data::shard::PartitionStrategy;
use fairhms_data::{gen, Dataset};
use fairhms_service::{Catalog, CatalogConfig, PreparedDataset, Query, QueryEngine};

const STRATEGIES: [PartitionStrategy; 2] = [
    PartitionStrategy::RoundRobin,
    PartitionStrategy::GroupStratified,
];

fn generated(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

fn cfg(shards: usize, strategy: PartitionStrategy) -> CatalogConfig {
    CatalogConfig { shards, strategy }
}

/// Prepared form equality, field by field, against the 1-shard reference.
fn assert_prep_identical(reference: &PreparedDataset, sharded: &PreparedDataset, label: &str) {
    assert_eq!(
        reference.skyline_rows, sharded.skyline_rows,
        "{label}: skyline_rows diverged"
    );
    assert_eq!(
        reference.skyline_data.points_flat(),
        sharded.skyline_data.points_flat(),
        "{label}: skyline matrix diverged"
    );
    assert_eq!(
        reference.skyline_data.groups(),
        sharded.skyline_data.groups(),
        "{label}: skyline group labels diverged"
    );
    assert_eq!(
        reference.dataset.points_flat(),
        sharded.dataset.points_flat(),
        "{label}: normalized matrix diverged"
    );
    assert_eq!(
        reference.skyline_group_sizes, sharded.skyline_group_sizes,
        "{label}: skyline group sizes diverged"
    );
}

#[test]
fn prepared_form_is_shard_count_invariant() {
    for (n, d, c) in [(300, 3, 3), (500, 2, 4), (200, 4, 2)] {
        let reference = PreparedDataset::prepare_with(
            "ref",
            generated("ds", n, d, c, 7),
            &cfg(1, STRATEGIES[0]),
        )
        .unwrap();
        for shards in [2usize, 3, 4, 7, 8] {
            for strat in STRATEGIES {
                let sharded = PreparedDataset::prepare_with(
                    "sharded",
                    generated("ds", n, d, c, 7),
                    &cfg(shards, strat),
                )
                .unwrap();
                assert_eq!(sharded.num_shards(), shards.min(n));
                // Shard views are consistent: the dealt rows cover the
                // dataset, each shard's skyline fits inside its deal, and
                // the merged skyline is a subset of the shard-skyline
                // union.
                assert_eq!(
                    sharded.shards.iter().map(|sp| sp.num_rows).sum::<usize>(),
                    n
                );
                for sp in &sharded.shards {
                    assert_eq!(sp.group_sizes.iter().sum::<usize>(), sp.num_rows);
                    assert!(sp.skyline_rows.len() <= sp.num_rows);
                }
                let union: std::collections::HashSet<usize> = sharded
                    .shards
                    .iter()
                    .flat_map(|sp| sp.skyline_rows.iter().copied())
                    .collect();
                assert!(sharded.skyline_rows.iter().all(|r| union.contains(r)));
                assert_prep_identical(
                    &reference,
                    &sharded,
                    &format!("n={n} d={d} c={c} shards={shards} strat={strat}"),
                );
            }
        }
    }
}

/// Served answers are bit-identical between a 1-shard and a multi-shard
/// engine, across every registered algorithm (2D dataset so `intcov`
/// participates), both bounds policies, several k and seeds.
#[test]
fn served_answers_are_shard_count_invariant() {
    let data = || generated("eq", 240, 2, 3, 21);
    let reference = {
        let cat = Arc::new(Catalog::with_config(cfg(1, STRATEGIES[0])));
        cat.insert_dataset(data()).unwrap();
        QueryEngine::new(cat, 1024)
    };
    for shards in [2usize, 4, 7] {
        for strat in STRATEGIES {
            let sharded = {
                let cat = Arc::new(Catalog::with_config(cfg(shards, strat)));
                cat.insert_dataset(data()).unwrap();
                QueryEngine::new(cat, 1024)
            };
            for alg in ALGORITHM_NAMES {
                for (k, balanced, seed) in [(3usize, false, 42u64), (5, true, 7), (6, false, 99)] {
                    let mut q = Query::new("eq", k);
                    q.alg = alg.to_string();
                    q.balanced = balanced;
                    q.seed = seed;
                    let a = reference.execute(&q);
                    let b = sharded.execute(&q);
                    match (a, b) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(
                                a.answer.indices, b.answer.indices,
                                "indices diverged: alg={alg} k={k} shards={shards} {strat}"
                            );
                            assert_eq!(
                                a.answer.mhr.map(f64::to_bits),
                                b.answer.mhr.map(f64::to_bits),
                                "mhr bits diverged: alg={alg} k={k} shards={shards} {strat}"
                            );
                            assert_eq!(a.answer.violations, b.answer.violations);
                        }
                        // An algorithm that rejects the instance (e.g. a
                        // k < d gate) must reject it identically.
                        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "errors diverged: alg={alg}"),
                        (a, b) => {
                            panic!("one path failed, the other did not: {alg}: {a:?} vs {b:?}")
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Edge cases: degraded shapes must degrade identically, never violate
// bounds that were feasible unsharded.
// ---------------------------------------------------------------------

/// A group smaller than the shard count: its rows land in |D_c| shards;
/// prep and solves stay identical, and a lower bound of 1 on the tiny
/// group is still met.
#[test]
fn group_smaller_than_shard_count() {
    // Group 2 has a single member (row 6: weak point, kept only by the
    // per-group skyline).
    let mk = || {
        Dataset::new(
            "tiny-group",
            2,
            vec![
                1.0, 0.1, 0.2, 0.9, 0.7, 0.7, 0.9, 0.3, 0.4, 0.8, 0.6, 0.6, 0.05, 0.05,
            ],
            vec![0, 0, 1, 1, 0, 1, 2],
            vec![],
        )
        .unwrap()
    };
    let reference = PreparedDataset::prepare_with("r", mk(), &cfg(1, STRATEGIES[0])).unwrap();
    for strat in STRATEGIES {
        let sharded = PreparedDataset::prepare_with("s", mk(), &cfg(4, strat)).unwrap();
        assert_prep_identical(&reference, &sharded, &format!("tiny group, {strat}"));
        // The singleton group survives the merged skyline.
        assert!(sharded.skyline_rows.contains(&6));
        assert_eq!(sharded.skyline_group_sizes[2], 1);

        let cat = Arc::new(Catalog::with_config(cfg(4, strat)));
        cat.insert_dataset(mk()).unwrap();
        let eng = QueryEngine::new(cat, 64);
        let mut q = Query::new("tiny-group", 3);
        q.alg = "intcov".into();
        let resp = eng.execute(&q).unwrap();
        // Proportional bounds give group 2 a lower bound of at most 1;
        // feasible unsharded, so it must be met sharded: zero violations.
        assert_eq!(resp.answer.violations, 0);
        assert!(resp.answer.indices.iter().all(|&i| i < 7));
    }
}

/// A group that is *named* but has no rows at all (vacant label): prep
/// must not panic, the empty group contributes nothing anywhere, and
/// derived bounds stay feasible.
#[test]
fn vacant_group_degrades_gracefully() {
    let mk = || {
        Dataset::new(
            "vacant",
            2,
            vec![1.0, 0.1, 0.2, 0.9, 0.7, 0.7, 0.9, 0.3],
            vec![0, 1, 0, 1],
            // Group 2 exists in the schema but owns no rows.
            vec!["a".into(), "b".into(), "ghost".into()],
        )
        .unwrap()
    };
    let reference = PreparedDataset::prepare_with("r", mk(), &cfg(1, STRATEGIES[0])).unwrap();
    for shards in [2usize, 3, 7] {
        for strat in STRATEGIES {
            let sharded = PreparedDataset::prepare_with("s", mk(), &cfg(shards, strat)).unwrap();
            assert_prep_identical(
                &reference,
                &sharded,
                &format!("vacant group {shards} {strat}"),
            );
            assert_eq!(sharded.skyline_group_sizes.len(), 3);
            assert_eq!(sharded.skyline_group_sizes[2], 0);
        }
    }
    let cat = Arc::new(Catalog::with_config(cfg(
        3,
        PartitionStrategy::GroupStratified,
    )));
    cat.insert_dataset(mk()).unwrap();
    let eng = QueryEngine::new(cat, 64);
    let mut q = Query::new("vacant", 2);
    q.alg = "intcov".into();
    // Bounds repair clamps the vacant group to l=h=0; the solve succeeds.
    assert_eq!(eng.execute(&q).unwrap().answer.violations, 0);
}

/// Fewer rows than requested shards: the plan clamps to n shards and the
/// pipeline behaves exactly like the unsharded one.
#[test]
fn fewer_rows_than_shards() {
    let mk = || {
        Dataset::new(
            "micro",
            2,
            vec![1.0, 0.2, 0.3, 0.9, 0.6, 0.6],
            vec![0, 1, 0],
            vec![],
        )
        .unwrap()
    };
    let reference = PreparedDataset::prepare_with("r", mk(), &cfg(1, STRATEGIES[0])).unwrap();
    for strat in STRATEGIES {
        let sharded = PreparedDataset::prepare_with("s", mk(), &cfg(8, strat)).unwrap();
        assert_eq!(sharded.num_shards(), 3, "clamped to n");
        assert_prep_identical(&reference, &sharded, &format!("n<shards {strat}"));

        let cat = Arc::new(Catalog::with_config(cfg(8, strat)));
        cat.insert_dataset(mk()).unwrap();
        let eng = QueryEngine::new(cat, 64);
        let mut q = Query::new("micro", 2);
        q.alg = "intcov".into();
        let resp = eng.execute(&q).unwrap();
        assert_eq!(resp.answer.violations, 0);
        assert_eq!(resp.answer.indices.len(), 2);
    }
}

// ---------------------------------------------------------------------
// Randomized end-to-end property: random dataset/bounds/k, sharded vs
// unsharded answers bit-identical (vendored proptest; deterministic
// algorithms so equality is exact, not statistical).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_queries_shard_invariant(
        n in 20usize..120,
        c in 1usize..4,
        k in 2usize..8,
        alpha in 0.0f64..0.5,
        balanced_bit in 0u8..2,
        seed in 0u64..1000,
    ) {
        let balanced = balanced_bit == 1;
        let data = |nm: &str| generated(nm, n, 2, c, seed.wrapping_mul(31).wrapping_add(n as u64));
        let reference = {
            let cat = Arc::new(Catalog::with_config(cfg(1, STRATEGIES[0])));
            cat.insert_dataset(data("p")).unwrap();
            QueryEngine::new(cat, 64)
        };
        for shards in [2usize, 3, 7] {
            for strat in STRATEGIES {
                let cat = Arc::new(Catalog::with_config(cfg(shards, strat)));
                cat.insert_dataset(data("p")).unwrap();
                let eng = QueryEngine::new(cat, 64);
                for alg in ["intcov", "f-greedy", "bigreedy"] {
                    let mut q = Query::new("p", k.min(n));
                    q.alg = alg.into();
                    q.alpha = alpha;
                    q.balanced = balanced;
                    q.seed = seed;
                    let a = reference.execute(&q);
                    let b = eng.execute(&q);
                    match (a, b) {
                        (Ok(a), Ok(b)) => {
                            prop_assert_eq!(&a.answer.indices, &b.answer.indices);
                            prop_assert_eq!(
                                a.answer.mhr.map(f64::to_bits),
                                b.answer.mhr.map(f64::to_bits)
                            );
                        }
                        (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                        (a, b) => {
                            return Err(TestCaseError::fail(format!(
                                "divergent outcome for {alg}: {a:?} vs {b:?}"
                            )))
                        }
                    }
                }
            }
        }
    }
}
