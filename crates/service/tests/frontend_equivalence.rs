//! Front-end equivalence suite: the event-driven and thread-per-connection
//! front ends are wire-compatible down to the bit.
//!
//! For every registered algorithm, across both codecs (text, binary) and
//! both batch deliveries (buffered, streamed), the two front ends must
//! return identical payloads — same indices, bit-identical `mhr`
//! (`f64::to_bits`), same algorithm attribution and violation counts —
//! and identical typed errors for failing queries. Only transport
//! plumbing may differ between the front ends, never answers.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::registry::ALGORITHM_NAMES;
use fairhms_data::{gen, Dataset};
use fairhms_service::codec::CodecKind;
use fairhms_service::protocol::WireAnswer;
use fairhms_service::{
    Catalog, FrontendKind, Query, QueryEngine, ServeOptions, Server, ServerConfig, ServiceError,
    WireClient,
};

fn generated(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

/// A 2-dimensional dataset so even `intcov` (exact, 2D-only) runs.
fn spawn_frontend(frontend: FrontendKind) -> Server {
    let catalog = Arc::new(Catalog::new());
    catalog
        .insert_dataset(generated("demo", 120, 2, 3, 11))
        .unwrap();
    let engine = Arc::new(QueryEngine::new(catalog, 4096));
    Server::spawn_with(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
        },
        ServeOptions {
            frontend,
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

fn client(server: &Server, kind: CodecKind) -> WireClient {
    match kind {
        CodecKind::Text => WireClient::connect(server.addr()).unwrap(),
        CodecKind::Binary => WireClient::negotiate(server.addr(), kind).unwrap(),
    }
}

/// Every registered algorithm, plus slots that must fail with typed
/// errors identically on both front ends.
fn probe_queries() -> Vec<Query> {
    let mut qs = Vec::new();
    for alg in ALGORITHM_NAMES {
        for k in [2usize, 3] {
            let mut q = Query::new("demo", k);
            q.alg = alg.to_string();
            q.alpha = 0.25;
            qs.push(q);
        }
    }
    // A duplicate (cache interaction) and two failing slots.
    qs.push(qs[0].clone());
    qs.push(Query::new("absent", 3));
    let mut bad_alg = Query::new("demo", 3);
    bad_alg.alg = "no-such-alg".to_string();
    qs.push(bad_alg);
    qs
}

/// Payload equality modulo transport metadata: `cached`/`micros` vary by
/// server instance and scheduling; everything the solver produced must
/// not.
fn assert_same_payload(a: &WireAnswer, b: &WireAnswer, ctx: &str) {
    assert_eq!(a.indices, b.indices, "{ctx}: indices diverged");
    assert_eq!(
        a.mhr.map(f64::to_bits),
        b.mhr.map(f64::to_bits),
        "{ctx}: mhr bits diverged"
    );
    assert_eq!(a.alg, b.alg, "{ctx}: algorithm diverged");
    assert_eq!(a.violations, b.violations, "{ctx}: violations diverged");
}

fn assert_same_slots(
    threaded: &[Result<WireAnswer, ServiceError>],
    event: &[Result<WireAnswer, ServiceError>],
    queries: &[Query],
    ctx: &str,
) {
    assert_eq!(threaded.len(), event.len(), "{ctx}: slot count diverged");
    for (i, (t, e)) in threaded.iter().zip(event.iter()).enumerate() {
        let slot = format!("{ctx} slot {i} ({} k={})", queries[i].alg, queries[i].k);
        match (t, e) {
            (Ok(ta), Ok(ea)) => assert_same_payload(ta, ea, &slot),
            (Err(te), Err(ee)) => {
                assert_eq!(te.to_string(), ee.to_string(), "{slot}: errors diverged")
            }
            (t, e) => panic!("{slot}: outcome diverged — threaded {t:?}, event {e:?}"),
        }
    }
}

/// The full matrix: every algorithm × {text, binary} × {buffered,
/// streamed}, bit-identical between the two front ends.
#[test]
fn front_ends_agree_for_every_algorithm_codec_and_delivery() {
    let threaded = spawn_frontend(FrontendKind::Threaded);
    let event = spawn_frontend(FrontendKind::Event);
    let queries = probe_queries();

    for kind in [CodecKind::Text, CodecKind::Binary] {
        for stream in [false, true] {
            let ctx = format!("{kind:?}/{}", if stream { "stream" } else { "buffered" });
            let t = client(&threaded, kind).batch(&queries, stream).unwrap();
            let e = client(&event, kind).batch(&queries, stream).unwrap();
            assert_same_slots(&t, &e, &queries, &ctx);
        }
    }
    threaded.shutdown();
    event.shutdown();
}

/// The single-query (non-batch) path agrees too, including typed errors.
#[test]
fn single_query_path_agrees_between_front_ends() {
    let threaded = spawn_frontend(FrontendKind::Threaded);
    let event = spawn_frontend(FrontendKind::Event);
    let mut tc = client(&threaded, CodecKind::Text);
    let mut ec = client(&event, CodecKind::Text);

    for alg in ALGORITHM_NAMES {
        let mut q = Query::new("demo", 3);
        q.alg = alg.to_string();
        q.alpha = 0.25;
        match (tc.query(&q), ec.query(&q)) {
            (Ok(ta), Ok(ea)) => assert_same_payload(&ta, &ea, &format!("single {alg}")),
            (Err(te), Err(ee)) => assert_eq!(
                te.to_string(),
                ee.to_string(),
                "single {alg}: errors diverged"
            ),
            (t, e) => panic!("single {alg}: outcome diverged — threaded {t:?}, event {e:?}"),
        }
    }

    let bad = Query::new("absent", 3);
    let te = tc.query(&bad).unwrap_err();
    let ee = ec.query(&bad).unwrap_err();
    assert_eq!(
        te.to_string(),
        ee.to_string(),
        "typed errors diverged between front ends"
    );

    threaded.shutdown();
    event.shutdown();
}
